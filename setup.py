"""Setuptools shim.

Kept alongside pyproject.toml so that `pip install -e .` works in fully
offline environments that lack the `wheel` package (pip falls back to the
legacy `setup.py develop` editable path when no [build-system] table is
present)."""

from setuptools import setup

setup()
