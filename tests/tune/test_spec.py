"""TuneSpec/ParamSpec: validation, serde round-trip, vector application."""

import json

import pytest

from repro.core.heuristics import DEFAULT_HEURISTICS, TUNABLE_PARAMS
from repro.tune import ParamSpec, TuneSpec, apply_params, known_bound


def _spec(**kw):
    kw.setdefault("params", (ParamSpec("speculation_bias"),))
    return TuneSpec(**kw)


# -- ParamSpec --------------------------------------------------------------

def test_registered_bounds_resolve():
    b = ParamSpec("classify.likely_threshold").bound()
    reg = TUNABLE_PARAMS["classify.likely_threshold"]
    assert (b.lo, b.hi, b.kind) == (reg.lo, reg.hi, reg.kind)


def test_narrowed_range_accepted():
    p = ParamSpec("speculation_bias", lo=0.6, hi=0.8)
    p.validate()
    assert p.bound().lo == 0.6


def test_widened_range_rejected():
    with pytest.raises(ValueError, match="exceeds the registered bound"):
        ParamSpec("speculation_bias", lo=0.0, hi=2.0).validate()


def test_unknown_param_rejected():
    with pytest.raises(ValueError, match="unknown tunable parameter"):
        ParamSpec("no_such_knob").validate()


def test_config_axis_resolves():
    assert known_bound("config.fetch_width").kind == "int"


def test_choice_param_subset():
    p = ParamSpec("split_style", choices=("inline",))
    p.validate()
    assert p.bound().choices == ("inline",)
    with pytest.raises(ValueError, match="not in"):
        ParamSpec("split_style", choices=("zigzag",)).validate()


def test_paper_defaults_inside_every_bound():
    """The paper's global values are always admissible candidates."""
    from repro.tune import default_value

    for name, bound in TUNABLE_PARAMS.items():
        assert bound.contains(default_value(name)), name


# -- TuneSpec validation ----------------------------------------------------

def test_empty_params_rejected():
    with pytest.raises(ValueError, match="nothing to search"):
        TuneSpec(params=()).validate()


def test_duplicate_axis_rejected():
    with pytest.raises(ValueError, match="duplicate search axis"):
        _spec(params=(ParamSpec("min_gain"),
                      ParamSpec("min_gain"))).validate()


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError, match="unknown benchmark"):
        _spec(benchmarks=("nosuch",)).validate()


def test_bad_fidelities_rejected():
    with pytest.raises(ValueError, match="fidelities"):
        _spec(fidelities=(1.0, 0.5)).validate()
    with pytest.raises(ValueError, match="fidelities"):
        _spec(fidelities=(0.25, 0.5)).validate()


def test_tiny_budget_rejected():
    with pytest.raises(ValueError, match="budget"):
        _spec(budget=1).validate()


# -- serde round-trip -------------------------------------------------------

def test_tunespec_roundtrip_through_json():
    spec = TuneSpec(
        params=(ParamSpec("speculation_bias", lo=0.6, hi=0.9),
                ParamSpec("split_style", choices=("inline",)),
                ParamSpec("config.fetch_width")),
        benchmarks=("compress", "grep"), scale=0.25, budget=16, seed=9,
        fidelities=(0.5, 1.0), max_steps=1000, keep=0.25,
        mutation_rate=0.75)
    restored = TuneSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec


def test_tunespec_schema_checked():
    from repro.core.serde import SchemaMismatch

    payload = _spec().to_dict()
    payload["schema_version"] = 0
    with pytest.raises(SchemaMismatch):
        TuneSpec.from_dict(payload)


# -- apply_params -----------------------------------------------------------

def test_apply_params_routes_three_namespaces():
    heur, config = apply_params({
        "classify.likely_threshold": 0.9,
        "speculation_bias": 0.7,
        "config.fetch_width": 8,
    })
    assert heur.classify.likely_threshold == 0.9
    assert heur.speculation_bias == 0.7
    assert config == {"fetch_width": 8}
    # untouched knobs keep their paper values
    assert heur.classify.bias_threshold == \
        DEFAULT_HEURISTICS.classify.bias_threshold


def test_apply_params_empty_is_default():
    heur, config = apply_params({})
    assert heur == DEFAULT_HEURISTICS
    assert config == {}


def test_apply_params_rejects_unknown():
    with pytest.raises(ValueError, match="ClassifyConfig"):
        apply_params({"classify.nope": 1})
    with pytest.raises(ValueError, match="MachineConfig"):
        apply_params({"config.nope": 1})
    with pytest.raises(ValueError, match="FeedbackHeuristics"):
        apply_params({"nope": 1})
