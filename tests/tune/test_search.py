"""The closed-loop search: determinism, resume, winners, fleet batching.

Every test runs at tiny scale over a two-benchmark zoo so the whole file
stays in tier-1 time; the full-zoo, full-scale behavior is exercised by
``tools/bench_suite.py --skip``-gated phases and the CI ``tune`` job.
"""

import json

import pytest

from repro.engine import ArtifactCache
from repro.engine.cells import COUNTERS, execute_cell
from repro.obs import metrics as _metrics
from repro.tune import (
    ParamSpec, TuneResult, TuneSpec, apply_params, format_tune_result,
    run_tune, tune_result_key,
)
from repro.tune.evaluate import candidate_cells, evaluate_batch

SPEC = TuneSpec(
    params=(ParamSpec("classify.likely_threshold"),
            ParamSpec("speculation_bias"),
            ParamSpec("mispredict_penalty")),
    benchmarks=("compress", "grep"),
    scale=0.01, budget=6, seed=11, fidelities=(0.5, 1.0))


@pytest.fixture(autouse=True)
def _clean_metrics():
    _metrics.REGISTRY.reset()
    _metrics.metrics_disable()
    yield
    _metrics.REGISTRY.reset()
    _metrics.metrics_disable()


@pytest.fixture(scope="module")
def first_result(tmp_path_factory):
    """One cached search shared by the read-only assertions below."""
    cache = ArtifactCache(tmp_path_factory.mktemp("tune-cache"))
    result = run_tune(SPEC, cache=cache, jobs=1)
    return cache, result


# -- structure --------------------------------------------------------------

def test_default_vector_is_candidate_zero(first_result):
    _, result = first_result
    cand0 = result.candidates[0]
    assert cand0["index"] == 0
    assert cand0["origin"] == "default"
    heur, config = apply_params(cand0["params"])
    from repro.core.heuristics import DEFAULT_HEURISTICS

    assert heur == DEFAULT_HEURISTICS
    assert config == {}


def test_budget_respected(first_result):
    _, result = first_result
    assert 2 <= result.evaluations <= SPEC.budget


def test_pareto_front_nonempty_and_valid(first_result):
    _, result = first_result
    indices = {c["index"] for c in result.candidates}
    assert result.pareto
    assert set(result.pareto) <= indices


def test_winner_ipc_never_below_default(first_result):
    """Candidate 0 competes, so the per-workload winner is structurally
    at least as good as the paper's global thresholds — with bounded
    code growth (the <=5% slack of the bench gate)."""
    _, result = first_result
    assert result.per_workload  # both benchmarks finished
    for bench, w in result.per_workload.items():
        assert w["ipc"] >= w["default_ipc"], bench
        assert w["code_growth"] <= \
            w["default_code_growth"] * 1.05 + 1e-9, bench


def test_render_mentions_every_winner(first_result):
    _, result = first_result
    text = format_tune_result(result)
    for bench in result.per_workload:
        assert bench in text
    assert "Pareto front" in text


# -- serde ------------------------------------------------------------------

def test_result_roundtrip_through_json(first_result):
    _, result = first_result
    restored = TuneResult.from_dict(
        json.loads(json.dumps(result.to_dict())))
    assert restored.to_dict() == result.to_dict()


def test_result_schema_checked(first_result):
    from repro.core.serde import SchemaMismatch

    _, result = first_result
    payload = result.to_dict()
    payload["schema_version"] = 0
    with pytest.raises(SchemaMismatch):
        TuneResult.from_dict(payload)


# -- determinism + resume ---------------------------------------------------

def test_same_seed_same_budget_identical_front():
    a = run_tune(SPEC, cache=None, jobs=1)
    b = run_tune(SPEC, cache=None, jobs=1)
    assert a.pareto == b.pareto
    assert a.to_dict() == b.to_dict()


def test_different_seed_changes_candidates():
    import dataclasses

    a = run_tune(SPEC, cache=None, jobs=1)
    b = run_tune(dataclasses.replace(SPEC, seed=SPEC.seed + 1),
                 cache=None, jobs=1)
    assert [c["params"] for c in a.candidates[1:]] \
        != [c["params"] for c in b.candidates[1:]]


def test_warm_rerun_zero_compiles(first_result):
    """A resumed identical search executes nothing: the result-level
    cache answers before a single cell is keyed."""
    cache, result = first_result
    COUNTERS.reset()
    again = run_tune(SPEC, cache=cache, jobs=1)
    assert COUNTERS.compiles == 0
    assert COUNTERS.simulates == 0
    assert again.to_dict() == result.to_dict()


def test_result_key_depends_on_spec_and_backend():
    import dataclasses

    k = tune_result_key(SPEC, "reference")
    assert k != tune_result_key(SPEC, "fast")
    assert k != tune_result_key(
        dataclasses.replace(SPEC, seed=SPEC.seed + 1), "reference")
    assert k == tune_result_key(dataclasses.replace(SPEC), "reference")


def test_cell_level_resume_zero_work(tmp_path):
    """Even without the result-level entry, every cell of a repeated
    candidate evaluation is an artifact-cache hit."""
    from repro.workloads import benchmark_programs

    programs = {n: p for n, p in benchmark_programs(0.01).items()
                if n == "compress"}
    heur, overrides = apply_params({"speculation_bias": 0.7})
    cells = candidate_cells(heur, overrides, programs,
                            max_steps=50_000_000, timeout=None,
                            backend="reference")
    cache = ArtifactCache(tmp_path / "cells")
    evaluate_batch(cells, programs, cache, jobs=1)
    COUNTERS.reset()
    _, hits, executed = evaluate_batch(cells, programs, cache, jobs=1)
    assert (hits, executed) == (len(cells), 0)
    assert COUNTERS.compiles == 0 and COUNTERS.simulates == 0


def test_tune_cells_shared_with_suite_cache(tmp_path):
    """The default candidate's cell is *the same artifact* the suite
    runner computes: a tables run pre-warms the search."""
    from repro.engine.suite import run_suite
    from repro.workloads import benchmark_programs

    cache = ArtifactCache(tmp_path / "shared")
    run_suite(scale=0.01, cache=cache, jobs=1)  # pre-warm, all schemes

    programs = {n: p for n, p in benchmark_programs(0.01).items()
                if n == "compress"}
    heur, overrides = apply_params({})  # the default vector
    cells = candidate_cells(heur, overrides, programs,
                            max_steps=50_000_000, timeout=None,
                            backend="reference")
    COUNTERS.reset()
    _, hits, executed = evaluate_batch(cells, programs, cache, jobs=1)
    assert (hits, executed) == (len(cells), 0)
    assert COUNTERS.compiles == 0


# -- fleet batching ---------------------------------------------------------

def test_remote_client_routes_batches(monkeypatch):
    """With a client, each round's grid goes through one batched
    executor call instead of the local pool."""
    import repro.serve.client as serve_client

    batches = []

    def fake_remote_cell_executor(client):
        def _execute(cells):
            batches.append(len(cells))
            return {key: execute_cell(spec) for key, spec in cells}

        return _execute

    monkeypatch.setattr(serve_client, "remote_cell_executor",
                        fake_remote_cell_executor)
    result = run_tune(SPEC, cache=None, jobs=1, client=object())
    assert batches, "executor never invoked"
    assert sum(batches) == result.cells_executed
    local = run_tune(SPEC, cache=None, jobs=1)
    assert result.to_dict() == local.to_dict()


# -- observability ----------------------------------------------------------

def test_search_emits_round_metrics():
    _metrics.metrics_enable()
    run_tune(SPEC, cache=None, jobs=1)
    counters = _metrics.REGISTRY.snapshot()["counters"]
    assert counters.get("tune.rounds", 0) >= 2
    assert counters.get("tune.cells.miss", 0) > 0
