"""Pareto-front extraction over the tuner's objective vectors."""

from repro.tune import dominates, pareto_front


def _v(ipc, growth, cost):
    return {"ipc": ipc, "code_growth": growth, "compile_cost": cost}


def test_dominates_strict():
    assert dominates(_v(2.0, 1.0, 10), _v(1.9, 1.0, 10))
    assert dominates(_v(2.0, 1.0, 9), _v(2.0, 1.0, 10))
    assert not dominates(_v(2.0, 1.0, 10), _v(2.0, 1.0, 10))  # equal
    assert not dominates(_v(2.0, 1.2, 10), _v(1.9, 1.0, 10))  # trade-off


def test_front_keeps_tradeoffs():
    pts = [_v(2.0, 1.10, 30),   # fastest
           _v(1.8, 1.00, 10),   # cheapest
           _v(1.9, 1.05, 20),   # middle (non-dominated)
           _v(1.7, 1.10, 40)]   # dominated by everything above
    assert pareto_front(pts) == [0, 1, 2]


def test_front_keeps_ties():
    pts = [_v(2.0, 1.0, 10), _v(2.0, 1.0, 10), _v(1.0, 2.0, 99)]
    assert pareto_front(pts) == [0, 1]


def test_single_point():
    assert pareto_front([_v(1.0, 1.0, 1)]) == [0]


def test_empty():
    assert pareto_front([]) == []
