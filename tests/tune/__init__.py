"""Tests of the closed-loop heuristic tuner (repro.tune)."""
