"""Adversarial inputs produce structured errors, never raw tracebacks.

The front end is the first consumer of untrusted input, so its failure
mode is pinned as API: every malformed source/trace raises the right
:class:`IngestError` subclass carrying the offending line number — and
nothing deeper (KeyError, AttributeError, RecursionError...) escapes.
"""

import json
from pathlib import Path

import pytest

from repro.ingest import (IngestError, LowerError, RegisterPressureError,
                          SourceError, TraceError, import_path,
                          import_source, import_trace, parse_source,
                          parse_trace)

FIXTURES = Path(__file__).parent / "fixtures"


def _wrap(body: str) -> str:
    return "@main {\n.entry:\n" + body + "  ret;\n}\n"


# -- source grammar --------------------------------------------------------

@pytest.mark.parametrize("body,match", [
    ("  x: int = frobnicate 1;\n", "unknown value op"),
    ("  launch_missiles;\n", "unknown op"),
    ("  x: quux = const 1;\n", "unknown type"),
    ("  x: int = const banana;\n", "bad int literal"),
    ("  x: bool = const 7;\n", "true/false"),
    ("  x: int = add;\n", "takes 2 argument"),
    ("  x: int = const 1 2;\n", "exactly one literal"),
    ("  x: int = const 1\n", "must end with ';'"),
    ("  jmp nodot;\n", "bad block label"),
    ("  br .a .b;\n", "takes 1 argument"),
    ("  x: int = add y y;\n", "undefined variable"),
], ids=["unknown-value-op", "unknown-effect-op", "unknown-type",
        "bad-int-literal", "bad-bool-literal", "arity", "const-arity",
        "missing-semicolon", "label-syntax",
        "br-arity", "undefined-variable"])
def test_source_violations_are_located_errors(body, match):
    with pytest.raises(SourceError, match=match) as info:
        parse_source(_wrap(body))
    assert info.value.lineno == 3  # the injected line, 1-based
    assert isinstance(info.value, IngestError)


@pytest.mark.parametrize("text,match", [
    ("", "no function found"),
    ("@main {\n", "missing closing"),
    ("@main {\n}\n", "has no blocks"),
    ("@main {\n  x: int = const 1;\n}\n", "start with a block label"),
    ("@main {\n.a:\n  ret;\n}\nextra\n", "after closing"),
    ("@main {\n@again {\n", "second function"),
    ("@main {\n.a:\n  x: int = const 1;\n}\n", "terminator"),
    ("@main {\n.a:\n  ret;\n.a:\n  ret;\n}\n", "duplicate block label"),
    ("@main {\n.a:\n  ret;\n  x: int = const 1;\n}\n",
     "does not end with a terminator"),
    ("@main {\n.a:\n  jmp .nowhere;\n}\n", "undefined block label"),
], ids=["empty", "unclosed", "no-blocks", "body-before-label",
        "trailing-text", "nested-function", "missing-terminator",
        "duplicate-label", "ops-after-terminator", "undefined-label"])
def test_source_structure_violations(text, match):
    with pytest.raises(SourceError, match=match):
        parse_source(text)


def test_terminator_in_middle_of_block():
    with pytest.raises(SourceError, match="middle of block"):
        parse_source("@main {\n.a:\n  ret;\n  nop;\n  ret;\n}\n")


# -- committed adversarial fixtures ----------------------------------------

def test_bad_unknown_op_fixture():
    with pytest.raises(SourceError, match="unknown value op"):
        import_path(FIXTURES / "bad_unknown_op.bril")


def test_bad_noterm_fixture():
    with pytest.raises(SourceError, match="terminator"):
        import_path(FIXTURES / "bad_noterm.bril")


def test_bad_pressure_fixture_is_structured():
    with pytest.raises(RegisterPressureError) as info:
        import_path(FIXTURES / "bad_pressure.bril")
    err = info.value
    assert err.variables == 30
    assert err.available == 26
    assert isinstance(err, LowerError)  # pressure is a lowering failure
    assert "spilling is not supported" in str(err)


def test_bad_records_trace_every_line_is_rejected():
    """The malformed-per-line fixture: each line past the valid prefix is
    bad in its own distinct way, and each is rejected AT ITS LINE."""
    lines = (FIXTURES / "bad_records.trace.jsonl").read_text().splitlines()
    prefix, bad = lines[:2], lines[2:]
    assert len(bad) >= 6
    for line in bad:
        text = "\n".join(prefix + [line]) + "\n"
        with pytest.raises(TraceError) as info:
            parse_trace(text)
        assert info.value.lineno == 3, f"line {line!r} not located"


# -- trace semantics -------------------------------------------------------

def _rec(**kw) -> str:
    return json.dumps(kw)


def test_trace_exec_before_definition():
    text = _rec(kind="exec", label=".a") + "\n"
    with pytest.raises(TraceError, match="undefined block"):
        parse_trace(text)


def test_trace_br_exec_requires_taken():
    text = "\n".join([
        _rec(kind="block", label=".a",
             ops=["c: bool = const true", "br c .a .a"]),
        _rec(kind="exec", label=".a"),
    ]) + "\n"
    with pytest.raises(TraceError, match='needs "taken"'):
        parse_trace(text)


def test_trace_meta_must_come_first():
    text = "\n".join([
        _rec(kind="block", label=".a", ops=["ret"]),
        _rec(kind="meta", name="late"),
    ]) + "\n"
    with pytest.raises(TraceError, match="must come first"):
        parse_trace(text)


def test_trace_empty_is_an_error():
    with pytest.raises(TraceError, match="defines no blocks"):
        parse_trace("")


def test_trace_undefined_jmp_target_is_trace_error():
    text = _rec(kind="block", label=".a", ops=["jmp .gone"]) + "\n"
    with pytest.raises(TraceError, match="undefined block label"):
        parse_trace(text)


# -- no tracebacks escape --------------------------------------------------

@pytest.mark.parametrize("junk", [
    "\x00\x01\x02", "@", "@main { .a: ret; }", "{}", "[1,2,3]",
    "@main {\n.a:\n  :::;\n}\n", "@main {\n.a:\n  x: int = = =;\n}\n",
])
def test_source_junk_never_escapes_ingest_error(junk):
    with pytest.raises(IngestError):
        import_source(junk)


@pytest.mark.parametrize("junk", [
    "null", "42", '"string"', '{"kind": []}', "{",
    '{"kind": "block"}', '{"kind": "block", "label": ".a", "ops": []}',
    '{"kind": "block", "label": ".a", "ops": [42]}',
])
def test_trace_junk_never_escapes_ingest_error(junk):
    with pytest.raises(IngestError):
        import_trace(junk + "\n")


def test_load_imported_names_the_offending_file(tmp_path):
    from repro.workloads import load_imported

    bad = tmp_path / "broken.bril"
    bad.write_text("@main {\n.a:\n  x: int = frobnicate 1;\n  ret;\n}\n")
    with pytest.raises(SourceError, match="broken.bril"):
        load_imported([bad])


def test_unknown_suffix_is_a_lower_error(tmp_path):
    f = tmp_path / "prog.xyz"
    f.write_text("whatever")
    with pytest.raises(LowerError, match="unknown import suffix"):
        import_path(f)
