# main@711ce4237733
main:
    li r27, 2097152
b_entry:
    li r1, 10
    li r2, 0
    li r3, 1
    li r4, 0
    j b_loop
b_loop:
    slt r5, r2, r1
    bnez r5, b_body
    j b_done
b_body:
    add r4, r4, r2
    add r2, r2, r3
    j b_loop
b_done:
    sw r4, 0(r27)
    addi r27, r27, 4
    halt

