# collatz@c57f88ea5776
main:
    li r27, 2097152
b_entry:
    li r1, 27
    li r2, 0
    li r3, 1
    li r4, 2
    li r5, 3
    li r6, 0
    j b_check
b_check:
    seq r7, r1, r3
    bnez r7, b_out
b_step:
    div r8, r1, r4
    mul r9, r8, r4
    sub r10, r1, r9
    sne r11, r10, r2
    bnez r11, b_odd
    j b_even
b_odd:
    mul r12, r1, r5
    add r1, r12, r3
    j b_bump
b_even:
    mov r1, r8
    j b_bump
b_bump:
    add r6, r6, r3
    j b_check
b_out:
    sw r6, 0(r27)
    addi r27, r27, 4
    halt

