# hotcold@6fa8e4ac140d
main:
    li r27, 2097152
b_top:
    li r1, 0
    li r2, 1
    li r3, 5
    j b_chk
b_chk:
    slt r4, r1, r3
    bnez r4, b_hot
    j b_cold
b_hot:
    add r1, r1, r2
    j b_chk
b_cold:
    sw r1, 0(r27)
    addi r27, r27, 4
    halt

