# fib@48844181a984
main:
    li r27, 2097152
b_entry:
    li r1, 0
    li r2, 1
    li r3, 0
    li r4, 15
    li r5, 1
    j b_loop
b_loop:
    slt r6, r3, r4
    bnez r6, b_body
    j b_done
b_body:
    add r7, r1, r2
    mov r1, r2
    mov r2, r7
    add r3, r3, r5
    j b_loop
b_done:
    sw r1, 0(r27)
    addi r27, r27, 4
    halt

