# gcd@9dc086acbd35
main:
    li r27, 2097152
b_entry:
    li r1, 1071
    li r2, 462
    j b_check
b_check:
    seq r3, r1, r2
    bnez r3, b_out
b_body:
    sgt r4, r1, r2
    bnez r4, b_cuta
    j b_cutb
b_cuta:
    sub r1, r1, r2
    j b_check
b_cutb:
    sub r2, r2, r1
    j b_check
b_out:
    sw r1, 0(r27)
    addi r27, r27, 4
    halt

