# parity@81a36783dbd0
main:
    li r27, 2097152
b_entry:
    li r1, 7
    li r2, 1103515245
    li r3, 12345
    li r4, 2
    li r5, 0
    li r6, 1
    li r7, 0
    li r8, 0
    li r9, 24
    j b_loop
b_loop:
    slt r10, r8, r9
    bnez r10, b_body
    j b_done
b_body:
    mul r11, r1, r2
    add r1, r11, r3
    div r12, r1, r4
    mul r13, r12, r4
    sub r14, r1, r13
    sne r15, r14, r5
    bnez r15, b_odd
    j b_next
b_odd:
    add r7, r7, r6
    j b_next
b_next:
    add r8, r8, r6
    j b_loop
b_done:
    sw r7, 0(r27)
    addi r27, r27, 4
    halt

