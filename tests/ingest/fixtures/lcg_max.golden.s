# lcg_max@edab9c73890e
main:
    li r27, 2097152
b_entry:
    li r1, 12345
    li r2, 1103515245
    li r3, 12345
    li r4, 255
    li r5, 0
    li r6, 0
    li r7, 32
    li r8, 1
    j b_loop
b_loop:
    slt r9, r6, r7
    bnez r9, b_body
    j b_done
b_body:
    mul r10, r1, r2
    add r1, r10, r3
    and r11, r1, r4
    sgt r12, r11, r5
    bnez r12, b_upd
    j b_next
b_upd:
    mov r5, r11
    j b_next
b_next:
    add r6, r6, r8
    j b_loop
b_done:
    sw r5, 0(r27)
    addi r27, r27, 4
    halt

