# branchy@e0e8b317af52
main:
    li r27, 2097152
b_init:
    li r1, 0
    li r2, 1
    li r3, 8
    li r4, 0
    li r5, 5
    li r6, 3
    j b_chk
b_chk:
    slt r7, r1, r3
    bnez r7, b_body
    j b_end
b_body:
    sgt r8, r5, r6
    bnez r8, b_hi
b_lo:
    sub r4, r4, r2
    j b_join
b_join:
    sub r5, r5, r2
    add r1, r1, r2
    j b_chk
b_hi:
    add r4, r4, r5
    j b_join
b_end:
    sw r4, 0(r27)
    addi r27, r27, 4
    halt

