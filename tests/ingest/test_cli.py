"""CLI surface of the import path (in-process, same idiom as
tests/test_cli.py): ``repro ingest`` check/update/emit modes, ``tables
--import``, and imported files as program arguments everywhere."""

import shutil
from pathlib import Path

import pytest

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_ingest_lists_imports(capsys):
    assert main(["ingest", str(FIXTURES / "gcd.bril")]) == 0
    out = capsys.readouterr().out
    assert "imported as gcd@" in out
    assert "all ok" in out


def test_ingest_emit_prints_assembly(capsys):
    assert main(["ingest", str(FIXTURES / "fib.bril"), "--emit"]) == 0
    out = capsys.readouterr().out
    assert "halt" in out
    assert "b_loop:" in out


def test_ingest_check_replays_committed_goldens(capsys):
    # The CI gate: the committed corpus must replay clean, bad_* skipped.
    assert main(["ingest", str(FIXTURES), "--check"]) == 0
    out = capsys.readouterr().out
    assert "DRIFT" not in out
    assert "bad_" not in out


def test_ingest_check_detects_drift(tmp_path, capsys):
    src = tmp_path / "gcd.bril"
    shutil.copy(FIXTURES / "gcd.bril", src)
    shutil.copy(FIXTURES / "gcd.golden.s", tmp_path / "gcd.golden.s")
    src.write_text(src.read_text().replace("const 462", "const 463"))
    assert main(["ingest", str(src), "--check"]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_ingest_check_missing_golden_fails(tmp_path, capsys):
    src = tmp_path / "gcd.bril"
    shutil.copy(FIXTURES / "gcd.bril", src)
    assert main(["ingest", str(src), "--check"]) == 1
    assert "golden missing" in capsys.readouterr().err


def test_ingest_update_goldens_round_trips(tmp_path, capsys):
    src = tmp_path / "sum.bril"
    shutil.copy(FIXTURES / "sum_loop.bril", src)
    assert main(["ingest", str(src), "--update-goldens",
                 "--no-stats"]) == 0
    assert (tmp_path / "sum.golden.s").exists()
    assert main(["ingest", str(src), "--check"]) == 0


def test_ingest_bad_file_exits_nonzero(capsys):
    assert main(["ingest", str(FIXTURES / "bad_unknown_op.bril")]) == 1
    err = capsys.readouterr().err
    assert "FAILED" in err
    assert "unknown value op" in err
    assert "Traceback" not in err


def test_ingest_no_files_is_usage_error(tmp_path, capsys):
    assert main(["ingest", str(tmp_path)]) == 2
    assert "no import files" in capsys.readouterr().err


def test_run_accepts_imported_file(capsys):
    assert main(["run", str(FIXTURES / "fib.bril")]) == 0
    out = capsys.readouterr().out
    assert "fib@" in out
    assert "IPC" in out


def test_run_scheme_melded(capsys):
    assert main(["run", str(FIXTURES / "parity.bril"),
                 "--scheme", "melded"]) == 0
    assert "IPC" in capsys.readouterr().out


def test_profile_accepts_imported_trace(capsys):
    assert main(["profile", str(FIXTURES / "hot_loop.trace.jsonl")]) == 0
    assert "freq=" in capsys.readouterr().out


def test_run_rejects_broken_import(tmp_path):
    bad = tmp_path / "broken.bril"
    bad.write_text("@main {\n.a:\n  x: int = oops 1;\n  ret;\n}\n")
    with pytest.raises(SystemExit, match="cannot import"):
        main(["run", str(bad)])


def test_tables_import_runs_all_schemes(capsys):
    # Acceptance criterion: an imported workload end-to-end through
    # `repro tables` under all six schemes.
    assert main(["tables", "--scale", "0.05", "--strict",
                 "--import", str(FIXTURES / "parity.bril")]) == 0
    captured = capsys.readouterr()
    assert "imported workload: parity@" in captured.err
    assert "parity@" in captured.out
    assert "Melded" in captured.out  # the sixth scheme column rendered


def test_tables_import_rejects_bad_file(capsys):
    assert main(["tables", "--import",
                 str(FIXTURES / "bad_unknown_op.bril")]) == 2
    assert "unknown value op" in capsys.readouterr().err
