"""Golden-file conformance for the import path (the ISSUE 10 contract).

Every fixture under ``fixtures/`` carries two committed goldens:

* ``<stem>.golden.s``   — the lowered program, byte-exact;
* ``<stem>.stats.json`` — full six-scheme stats, byte-exact on BOTH
  execution backends (reference == fast == committed).

The suite runs from a cold cache (the suite-wide ``REPRO_CACHE_DIR``
fixture points at an empty temp dir, and nothing here passes a cache),
so a pass means the whole parse → lower → verify → profile → compile →
simulate chain reproduces the committed bytes from scratch.  Refresh
after an intentional change with::

    python -m repro ingest tests/ingest/fixtures --update-goldens
"""

import json
from pathlib import Path

import pytest

from repro.ingest import (expand_fixtures, golden_path, import_path,
                          lowered_text, stats_path, stats_text)
from repro.ingest.golden import STATS_MAX_STEPS

FIXTURES = Path(__file__).parent / "fixtures"
GOOD = expand_fixtures([FIXTURES])
IDS = [p.name for p in GOOD]


def test_corpus_meets_issue_floor():
    # ISSUE 10: >= 6 sources and >= 3 traces (incl. one malformed case).
    sources = list(FIXTURES.glob("*.bril"))
    traces = list(FIXTURES.glob("*.trace.jsonl"))
    assert len([s for s in sources if not s.name.startswith("bad_")]) >= 6
    assert len(traces) >= 3
    assert any(t.name.startswith("bad_") for t in traces)
    assert len(GOOD) >= 8
    for f in GOOD:  # every good fixture has both goldens committed
        assert golden_path(f).exists(), f"missing {golden_path(f)}"
        assert stats_path(f).exists(), f"missing {stats_path(f)}"


@pytest.mark.parametrize("fixture", GOOD, ids=IDS)
def test_lowered_golden_byte_exact(fixture):
    assert lowered_text(fixture) == golden_path(fixture).read_text()


@pytest.mark.parametrize("fixture", GOOD, ids=IDS)
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_stats_golden_byte_exact_on_both_backends(fixture, backend):
    prog = import_path(fixture)
    got = stats_text(prog, backend=backend, max_steps=STATS_MAX_STEPS)
    assert got == stats_path(fixture).read_text(), (
        f"{stats_path(fixture).name} drifted on the {backend} backend")


@pytest.mark.parametrize("fixture", GOOD, ids=IDS)
def test_stats_golden_covers_all_six_schemes(fixture):
    from repro.eval.runner import SCHEMES

    payload = json.loads(stats_path(fixture).read_text())
    assert sorted(payload["schemes"]) == sorted(SCHEMES)


def test_import_is_deterministic():
    # Same bytes -> same Program dict (the engine cache fingerprint).
    f = FIXTURES / "gcd.bril"
    assert import_path(f).to_dict() == import_path(f).to_dict()


def test_content_hash_isolates_cache_cells(tmp_path):
    # Two byte-different files with the same function name get distinct
    # program names, hence distinct engine cache keys: an import can
    # never poison another import's (or a synthetic benchmark's) cells.
    from repro.core.heuristics import DEFAULT_HEURISTICS
    from repro.engine.keys import cell_key
    from repro.sim.config import r10k_config

    a = tmp_path / "a.bril"
    b = tmp_path / "b.bril"
    a.write_text("@main {\n.e:\n  x: int = const 1;\n  print x;\n"
                 "  ret;\n}\n")
    b.write_text("@main {\n.e:\n  x: int = const 2;\n  print x;\n"
                 "  ret;\n}\n")
    pa, pb = import_path(a), import_path(b)
    assert pa.name != pb.name
    cfg = r10k_config("twobit")
    ka = cell_key(pa, "Proposed", DEFAULT_HEURISTICS, cfg, 1000)
    kb = cell_key(pb, "Proposed", DEFAULT_HEURISTICS, cfg, 1000)
    assert ka != kb
