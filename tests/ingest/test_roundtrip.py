"""Hypothesis round-trip properties of the ingest front end.

The printer is the parser's inverse on the whole IR space, not just the
committed fixtures: for every generated function, ``parse_source ∘
print_source`` is the identity (structurally — line numbers are
provenance, excluded from equality), printing is idempotent, and the
generated function lowers to a program the robust verifier accepts.

``derandomize=True`` keeps tier-1 deterministic (same policy as
``tests/fastsim/test_property.py``).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ingest import parse_source, print_source
from repro.ingest.lower import ALLOCATABLE
from repro.ingest.model import VALUE_OPS, Block, Function, Op
from repro.ingest.source import print_op

_SETTINGS = dict(max_examples=60, deadline=None, derandomize=True,
                 suppress_health_check=[HealthCheck.too_slow])

_VARS = [f"v{i}" for i in range(8)]
_PURE_VALUE_OPS = sorted(set(VALUE_OPS) - {"const"})


@st.composite
def functions(draw) -> Function:
    """A random valid Function: every used variable is defined in the
    entry block, every block ends in a terminator, every label exists."""
    n_blocks = draw(st.integers(1, 5))
    labels = [f".b{i}" for i in range(n_blocks)]
    int_consts = st.integers(-(2 ** 31), 2 ** 31 - 1)

    def value_op(dest):
        kind = draw(st.sampled_from(["const_int", "const_bool", "op"]))
        if kind == "const_int":
            return Op(op="const", dest=dest, type="int",
                      value=draw(int_consts))
        if kind == "const_bool":
            return Op(op="const", dest=dest, type="bool",
                      value=draw(st.integers(0, 1)))
        op = draw(st.sampled_from(_PURE_VALUE_OPS))
        args = tuple(draw(st.sampled_from(_VARS))
                     for _ in range(VALUE_OPS[op]))
        typ = "bool" if op in ("eq", "ne", "lt", "gt", "le", "ge", "not") \
            else "int"
        return Op(op=op, dest=dest, type=typ, args=args)

    blocks = []
    for i, label in enumerate(labels):
        ops = []
        if i == 0:  # define the whole variable universe up front
            ops += [Op(op="const", dest=v, type="int",
                       value=draw(int_consts)) for v in _VARS]
        for _ in range(draw(st.integers(0, 3))):
            ops.append(value_op(draw(st.sampled_from(_VARS))))
        if draw(st.booleans()):
            ops.append(Op(op="print",
                          args=(draw(st.sampled_from(_VARS)),)))
        term = draw(st.sampled_from(["jmp", "br", "ret"]))
        if term == "jmp":
            ops.append(Op(op="jmp",
                          labels=(draw(st.sampled_from(labels)),)))
        elif term == "br":
            ops.append(Op(op="br", args=(draw(st.sampled_from(_VARS)),),
                          labels=(draw(st.sampled_from(labels)),
                                  draw(st.sampled_from(labels)))))
        else:
            ops.append(Op(op="ret"))
        blocks.append(Block(label=label, ops=ops))
    return Function(name=draw(st.sampled_from(["main", "f", "kern_1"])),
                    blocks=blocks)


@settings(**_SETTINGS)
@given(fn=functions())
def test_parse_print_parse_is_identity(fn):
    assert parse_source(print_source(fn)) == fn


@settings(**_SETTINGS)
@given(fn=functions())
def test_print_is_idempotent(fn):
    text = print_source(fn)
    assert print_source(parse_source(text)) == text


@settings(**_SETTINGS)
@given(fn=functions())
def test_generated_functions_lower_and_verify(fn):
    # The function fits the register file by construction (8 variables),
    # so lowering must succeed and hand back a verifier-clean program.
    from repro.ingest import import_source
    from repro.robust import verify_program

    prog = import_source(print_source(fn))
    assert verify_program(prog) == []
    assert "@" in prog.name  # content hash present -> cache isolation


@settings(**_SETTINGS)
@given(fn=functions())
def test_lowering_allocates_within_the_register_file(fn):
    from repro.ingest import allocate_registers

    regs = allocate_registers(fn)
    assert set(regs) == set(fn.variables())
    assert len(set(regs.values())) == len(regs)  # injective
    assert set(regs.values()) <= set(ALLOCATABLE)


@settings(**_SETTINGS)
@given(fn=functions())
def test_op_print_parse_is_identity(fn):
    from repro.ingest.source import parse_op

    for block in fn.blocks:
        for op in block.ops:
            assert parse_op(print_op(op)) == op
