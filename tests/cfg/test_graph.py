"""CFG construction, linearization, dominators."""

import pytest

from repro.cfg import CFG, Dominators, PostDominators, build_cfg
from repro.isa import parse

# The diamond-in-a-loop shape of the paper's Figure 2:
#   B1 -> B2 (fall, 50%) / B3 (taken, 50%); B2,B3 -> B4; B4 -> B1 or exit.
DIAMOND_LOOP = """
.text
entry:
    li   r1, 0
    li   r2, 100
B1:
    and  r5, r5, r5
    beq  r3, r4, B3
B2:
    add  r6, r6, r7
    j    B4
B3:
    sub  r6, r6, r7
B4:
    addi r1, r1, 1
    bne  r1, r2, B1
exit:
    halt
"""


@pytest.fixture
def cfg():
    return build_cfg(DIAMOND_LOOP)


def _by_label(cfg):
    return {bb.label: bb for bb in cfg.blocks if bb.label}


def test_block_partition(cfg):
    labels = _by_label(cfg)
    assert set(labels) >= {"entry", "B1", "B2", "B3", "B4", "exit"}
    assert len(labels["B1"]) == 2
    assert len(labels["B2"]) == 2  # add + j
    assert len(labels["B3"]) == 1


def test_edges(cfg):
    labels = _by_label(cfg)
    b1 = labels["B1"]
    succs = {cfg.block(s).label for s in cfg.succs(b1.bid)}
    assert succs == {"B2", "B3"}
    assert cfg.taken_edge(b1.bid).dst == labels["B3"].bid
    assert cfg.fall_edge(b1.bid).dst == labels["B2"].bid
    b4 = labels["B4"]
    succs4 = {cfg.block(s).label for s in cfg.succs(b4.bid)}
    assert succs4 == {"B1", "exit"}
    assert cfg.succs(labels["exit"].bid) == []


def test_preds(cfg):
    labels = _by_label(cfg)
    preds_b4 = {cfg.block(p).label for p in cfg.preds(labels["B4"].bid)}
    assert preds_b4 == {"B2", "B3"}


def test_check_passes(cfg):
    cfg.check()


def test_reverse_postorder_starts_at_entry(cfg):
    rpo = cfg.reverse_postorder()
    assert rpo[0] == cfg.entry.bid
    assert set(rpo) == {bb.bid for bb in cfg.blocks}


def test_dominators(cfg):
    labels = _by_label(cfg)
    doms = Dominators(cfg)
    b1, b2, b3, b4 = (labels[x].bid for x in ("B1", "B2", "B3", "B4"))
    assert doms.dominates(b1, b2)
    assert doms.dominates(b1, b3)
    assert doms.dominates(b1, b4)
    assert not doms.dominates(b2, b4)
    assert not doms.dominates(b3, b4)
    assert doms.idom[b4] == b1
    assert doms.idom[cfg.entry.bid] is None


def test_postdominators(cfg):
    labels = _by_label(cfg)
    pdoms = PostDominators(cfg)
    b1, b2, b4 = (labels[x].bid for x in ("B1", "B2", "B4"))
    assert pdoms.post_dominates(b4, b1)
    assert pdoms.post_dominates(b4, b2)
    assert not pdoms.post_dominates(b2, b1)


def test_roundtrip_to_program(cfg):
    prog = cfg.to_program()
    prog.validate()
    cfg2 = CFG.from_program(prog)
    # Same block structure (count and edge multiset by label).
    assert len(cfg2) == len(cfg)

    def shape(c):
        lbl = {bb.bid: bb.label or f"@{i}" for i, bb in enumerate(c.blocks)}
        return sorted((lbl[e.src], lbl[e.dst], e.kind)
                      for b in c.blocks for e in c.succ_edges[b.bid])

    assert shape(cfg2) == shape(cfg)


def test_roundtrip_preserves_execution():
    """Linearized program must behave identically (smoke: same instr list
    modulo jump insertion)."""
    cfg = build_cfg(DIAMOND_LOOP)
    prog = cfg.to_program()
    ops = [i.op for i in prog]
    assert ops.count("halt") == 1
    assert ops.count("beq") == 1
    assert ops.count("bne") == 1


def test_new_block_layout_placement(cfg):
    b1 = _by_label(cfg)["B1"]
    nb = cfg.new_block(label="NEW", after=b1.bid)
    idx = cfg.layout_index(b1.bid)
    assert cfg.blocks[idx + 1] is nb


def test_fallthrough_jump_materialized():
    # A CFG whose fall-through successor is moved needs an explicit jump.
    cfg = build_cfg(DIAMOND_LOOP)
    labels = _by_label(cfg)
    # Move B2 to the end of layout.
    b2 = labels["B2"]
    cfg.blocks.remove(b2)
    cfg.blocks.append(b2)
    prog = cfg.to_program()
    prog.validate()  # would fail if fall-through was broken


def test_call_falls_through():
    src = """
.text
main:
    jal f
    halt
f:
    jr r31
"""
    cfg = build_cfg(src)
    # jal block must have a fall-through successor (the halt block).
    entry = cfg.entry
    assert entry.instructions[-1].op == "jal"
    succs = cfg.succs(entry.bid)
    assert len(succs) == 1
    assert cfg.block(succs[0]).instructions[0].op == "halt"


def test_unreachable_block_tolerated():
    src = """
.text
    j end
dead:
    add r1, r1, r1
end:
    halt
"""
    cfg = build_cfg(src)
    assert len(cfg.reachable()) == 2
    Dominators(cfg)  # must not crash
    cfg.to_program().validate()
