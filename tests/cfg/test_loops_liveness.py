"""Loop detection, liveness and def-use chains."""

import pytest

from repro.cfg import (
    LoopForest, analyze_block, build_cfg, live_after_index, liveness,
    single_use,
)

LOOP = """
.text
entry:
    li   r1, 0
    li   r2, 10
outer:
    li   r3, 0
inner:
    addi r3, r3, 1
    bne  r3, r2, inner
    addi r1, r1, 1
    bne  r1, r2, outer
exit:
    halt
"""


def _by_label(cfg):
    return {bb.label: bb for bb in cfg.blocks if bb.label}


def test_two_nested_loops():
    cfg = build_cfg(LOOP)
    forest = LoopForest(cfg)
    assert len(forest.loops) == 2
    inner, outer = forest.loops  # sorted smallest first
    assert len(inner.body) < len(outer.body)
    assert inner.parent is outer
    assert outer.children == [inner]
    assert inner.depth == 2
    assert outer.depth == 1


def test_loop_headers_and_exits():
    cfg = build_cfg(LOOP)
    labels = _by_label(cfg)
    forest = LoopForest(cfg)
    inner, outer = forest.loops
    assert inner.header == labels["inner"].bid
    assert outer.header == labels["outer"].bid
    assert len(inner.exits) == 1
    assert len(outer.exits) == 1


def test_loop_branch_classification():
    cfg = build_cfg(LOOP)
    forest = LoopForest(cfg)
    inner, outer = forest.loops
    br_inner = forest.branches(inner)
    assert len(br_inner) == 1
    assert br_inner[0].direction == "backward"
    br_outer = forest.branches(outer)
    directions = {b.direction for b in br_outer}
    assert "backward" in directions


def test_forward_branch_classified():
    src = """
.text
top:
    beq r1, r2, skip
    add r3, r3, r4
skip:
    addi r5, r5, 1
    bne r5, r6, top
    halt
"""
    cfg = build_cfg(src)
    forest = LoopForest(cfg)
    assert len(forest.loops) == 1
    brs = forest.branches(forest.loops[0])
    dirs = {b.instr.op: b.direction for b in brs}
    assert dirs["beq"] == "forward"
    assert dirs["bne"] == "backward"
    exit_flags = {b.instr.op: b.is_exit for b in brs}
    assert exit_flags["beq"] is False
    assert exit_flags["bne"] is False  # taken edge stays in loop


def test_innermost():
    cfg = build_cfg(LOOP)
    forest = LoopForest(cfg)
    inners = forest.innermost()
    assert len(inners) == 1
    assert inners[0].depth == 2


def test_loop_of_block():
    cfg = build_cfg(LOOP)
    labels = _by_label(cfg)
    forest = LoopForest(cfg)
    assert forest.loop_of_block(labels["inner"].bid).depth == 2
    assert forest.loop_of_block(labels["outer"].bid).depth == 1
    assert forest.loop_of_block(labels["exit"].bid) is None


# ---- liveness ----------------------------------------------------------------

LIVE = """
.text
entry:
    li  r1, 1
    beq r2, r3, other
then:
    add r4, r1, r2
    j   join
other:
    add r4, r5, r6
join:
    add r7, r4, r1
    halt
"""


def test_liveness_basic():
    cfg = build_cfg(LIVE)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    info = liveness(cfg)
    # r1 is live into both arms (used at join and in then).
    assert "r1" in info.live_in[labels["then"].bid]
    assert "r1" in info.live_in[labels["other"].bid]
    # r4 live out of both arms.
    assert "r4" in info.live_out[labels["then"].bid]
    assert "r4" in info.live_out[labels["other"].bid]
    # r5 live only into 'other'.
    assert "r5" in info.live_in[labels["other"].bid]
    assert "r5" not in info.live_in[labels["then"].bid]
    # Nothing live out of the join/halt block.
    assert info.live_out[labels["join"].bid] == set()


def test_liveness_kill():
    cfg = build_cfg(LIVE)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    info = liveness(cfg)
    # r4 defined in 'then' before any use: not live-in there.
    assert "r4" not in info.live_in[labels["then"].bid]


def test_live_at_exit_seed():
    cfg = build_cfg(LIVE)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    info = liveness(cfg, live_at_exit={"r7"})
    assert "r7" in info.live_out[labels["join"].bid]


def test_live_after_index():
    cfg = build_cfg(LIVE)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    entry = labels["entry"]
    # After li r1,1 (index 0), r1 is live (used later).
    live = live_after_index(cfg, entry.bid, 0)
    assert "r1" in live


def test_guarded_def_does_not_kill():
    src = """
.text
    li r1, 1
    (cc0) li r1, 2
    add r2, r1, r1
    halt
"""
    cfg = build_cfg(src)
    bb = cfg.entry
    assert "r1" not in bb.kills() or "r1" in bb.uses_before_def() or True
    # The guarded write must not kill r1: upward liveness flows through.
    kills = bb.kills()
    assert "r1" in kills  # killed by the *unguarded* li at index 0
    src2 = """
.text
    (cc0) li r1, 2
    add r2, r1, r1
    halt
"""
    bb2 = build_cfg(src2).entry
    assert "r1" not in bb2.kills()
    assert "r1" in bb2.uses_before_def()


# ---- def-use -------------------------------------------------------------------


def test_defuse_chains():
    cfg = build_cfg("""
.text
    li  r1, 5
    add r2, r1, r1
    add r3, r2, r1
    halt
""")
    bb = cfg.entry
    du = analyze_block(bb)
    assert du.uses_of[0] == [1, 2]
    assert du.uses_of[1] == [2]
    assert du.def_of_use[(1, "r1")] == 0
    assert du.def_of_use[(2, "r2")] == 1


def test_defuse_live_in_is_minus_one():
    cfg = build_cfg(".text\nadd r2, r1, r1\nhalt\n")
    du = analyze_block(cfg.entry)
    assert du.def_of_use[(0, "r1")] == -1


def test_single_use():
    cfg = build_cfg("""
.text
    li  r1, 5
    add r2, r1, r1
    li  r1, 9
    add r3, r2, r2
    halt
""")
    bb = cfg.entry
    # r1 def at 0 is used once... twice actually (add uses it twice but one
    # instruction). uses_of counts instructions.
    du = analyze_block(bb)
    assert du.uses_of[0] == [1]
    assert single_use(bb, 0) == 1  # killed at index 2, single user at 1
