"""Documentation consistency checks."""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_isa_doc_is_current():
    """docs/ISA.md must match the generator's output (no drift)."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from gen_isa_doc import render
    finally:
        sys.path.pop(0)
    assert (ROOT / "docs" / "ISA.md").read_text() == render(), \
        "run: python tools/gen_isa_doc.py"


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/ISA.md",
                 "docs/INGEST.md"):
        path = ROOT / name
        assert path.exists() and path.stat().st_size > 500, name


def test_readme_doc_links_resolve():
    """Every docs/*.md referenced from README.md exists (no dead links —
    the ISSUE 10 regression: new docs must be committed with their
    cross-links)."""
    text = (ROOT / "README.md").read_text()
    referenced = set(re.findall(r"docs/[A-Za-z0-9_.-]+\.md", text))
    assert referenced, "README.md references no docs/*.md at all?"
    for ref in sorted(referenced):
        assert (ROOT / ref).exists(), f"README.md links missing file {ref}"


def test_ingest_doc_covers_the_contract():
    """docs/INGEST.md documents both formats, the lowering rules, and the
    golden-refresh workflow."""
    text = (ROOT / "docs" / "INGEST.md").read_text()
    for needle in ("@main", ".bril", "trace.jsonl", '"kind"', "br ",
                   "register", "r27", "--check", "--update-goldens",
                   "--import", "melded", "content hash"):
        assert needle in text, f"docs/INGEST.md missing {needle!r}"


def test_experiments_covers_all_artifacts():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Figure 2", "Figure", "Table 1", "Table 2", "Table 3",
                     "Table 4", "2756", "3100", "ablation"):
        assert artifact.lower() in text.lower(), artifact


def test_design_lists_every_bench():
    text = (ROOT / "DESIGN.md").read_text()
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        # Every bench is referenced from DESIGN.md or EXPERIMENTS.md.
        exp = (ROOT / "EXPERIMENTS.md").read_text()
        assert bench.name in text or bench.name in exp, bench.name
