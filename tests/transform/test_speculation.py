"""Speculative code motion: mechanics and semantic preservation."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.transform import (
    duplicate_into_predecessors, eliminate_dead_code, forward_substitute_block,
    free_registers, is_speculatable, speculate_from_successor,
)
from tests.transform.conftest import assert_equivalent

# The paper's Figure 1 situation: a sub past a branch, r6 live on the
# fall-through path.
FIG1 = """
.text
main:
    li   r1, 5
    li   r2, 5
    li   r3, 10
    li   r6, 77          # r6 live on fall-thru path
    beq  r1, r2, L1
fall:
    add  r8, r6, r4      # uses OLD r6
    j    end
L1:
    subi r6, r3, 1       # the speculated instruction
    add  r8, r6, r4      # uses NEW r6
end:
    sw   r8, 0(r29)
    halt
"""


def labels_of(cfg):
    return {bb.label: bb for bb in cfg.blocks if bb.label}


def test_fig1_speculation_renames():
    prog = parse(FIG1)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    assert rep.count >= 1
    # r6 was live on the fall path: the hoisted sub must be renamed, with a
    # copy left behind (paper Figure 1(b)).
    assert "r6" in rep.renamed
    fresh = rep.renamed["r6"]
    hoisted = [i for i in lab["main"].instructions
               if i.ann.get("speculated_from") is not None]
    assert hoisted[0].op == "subi"
    assert hoisted[0].dest == fresh
    copies = [i for i in lab["L1"].instructions if i.op == "mov"]
    assert copies and copies[0].dest == "r6" and copies[0].srcs == (fresh,)


def test_fig1_forward_substitution_applied():
    prog = parse(FIG1)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    fresh = rep.renamed["r6"]
    # The dependent add was hoisted too, reading the renamed register
    # directly (the rename map substituted its source).
    add = [i for i in lab["main"].instructions if i.op == "add"][0]
    assert fresh in add.srcs
    # Hoisting only the subi leaves the add behind; forward substitution
    # then rewires it through the copy.
    cfg2 = build_cfg(parse(FIG1))
    lab2 = labels_of(cfg2)
    rep2 = speculate_from_successor(cfg2, lab2["main"].bid, lab2["L1"].bid, 1)
    fresh2 = rep2.renamed["r6"]
    add2 = [i for i in lab2["L1"].instructions if i.op == "add"][0]
    assert fresh2 in add2.srcs


def test_fig1_semantics_preserved():
    prog = parse(FIG1)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    assert_equivalent(parse(FIG1), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r6", "r8"])


def test_fig1_semantics_preserved_on_fall_path():
    # Flip the branch so the fall path executes: old r6 must survive.
    src = FIG1.replace("li   r2, 5", "li   r2, 6")
    prog = parse(src)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r6", "r8"])


def test_no_rename_when_dest_dead_elsewhere():
    src = """
.text
main:
    li  r1, 1
    beq r1, r0, L1
    li  r9, 0
    j   end
L1:
    li  r5, 42        # r5 dead on the other path
    add r6, r5, r5
end:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 1)
    assert rep.count == 1
    assert rep.renamed == {}  # hoisted under its own name
    # r5 is intentionally clobbered on the untaken path (that's what
    # speculation without rename means); every live register must agree.
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r6", "r9"])


def test_stores_not_speculated():
    src = """
.text
main:
    li  r1, 1
    li  r2, 0x1000
    beq r1, r0, L1
    j   end
L1:
    sw  r1, 0(r2)
end:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 4)
    assert rep.count == 0
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1", "r2"])


def test_chain_speculation():
    # Two dependent instructions hoist together through the rename map.
    src = """
.text
main:
    li  r1, 1
    li  r3, 7
    li  r5, 100
    li  r6, 200
    beq r1, r0, L1
    add r9, r5, r6
    j   end
L1:
    addi r5, r3, 1
    add  r6, r5, r5
    add  r9, r5, r6
end:
    sw r9, 0(r29)
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    assert rep.count == 2
    # Both defs were live on the other path -> both renamed.
    assert set(rep.renamed) == {"r5", "r6"}
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r3", "r5", "r6", "r9"])
    # Flip to the fall path too.
    src_flip = src.replace("li  r1, 1", "li  r1, 0")
    cfg2 = build_cfg(src_flip)
    lab2 = labels_of(cfg2)
    speculate_from_successor(cfg2, lab2["main"].bid, lab2["L1"].bid, 2)
    assert_equivalent(parse(src_flip), cfg2.to_program(),
                      regs=["r1", "r3", "r5", "r6", "r9"])


def test_loads_speculated_but_not_past_stores():
    src = """
.text
main:
    li  r1, 1
    li  r2, 0x1000
    beq r1, r0, L1
    j   end
L1:
    sw  r1, 0(r2)
    lw  r4, 0(r2)
end:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 4)
    assert rep.count == 0  # store blocks, load can't pass it


def test_max_ops_respected():
    src = """
.text
main:
    beq r1, r0, L1
    j   end
L1:
    li r3, 1
    li r4, 2
    li r5, 3
end:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2)
    assert rep.count == 2


def test_is_speculatable():
    from repro.isa import Guard, make

    assert is_speculatable(make("add", "r1", "r2", "r3"))
    assert is_speculatable(make("lw", "r1", 0, "r2"))
    assert not is_speculatable(make("sw", "r1", 0, "r2"))
    assert not is_speculatable(make("beq", "r1", "r2", "L"))
    assert not is_speculatable(make("jal", "L"))
    assert not is_speculatable(make("add", "r1", "r2", "r3",
                                    guard=Guard("cc0")))


def test_pool_exhaustion_stops():
    from repro.isa.registers import RegisterPool

    prog = parse(FIG1)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    rep = speculate_from_successor(cfg, lab["main"].bid, lab["L1"].bid, 2,
                                   pool=RegisterPool([]))
    # sub needs a rename (r6 live elsewhere) -> cannot hoist it.
    assert "r6" not in rep.renamed
    assert_equivalent(parse(FIG1), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r6", "r8"])


# ---- downward duplication ------------------------------------------------------

DIAMOND = """
.text
main:
    li  r1, 1
    li  r7, 3
    beq r1, r0, L1
    add r2, r7, r7
    j   join
L1:
    sub r2, r7, r7
join:
    addi r3, r2, 5
    mul  r4, r3, r3
    sw   r4, 0(r29)
    halt
"""


def test_duplicate_into_predecessors():
    cfg = build_cfg(DIAMOND)
    lab = labels_of(cfg)
    n = duplicate_into_predecessors(cfg, lab["join"].bid, 2)
    assert n == 2
    assert len(lab["join"].instructions) == 2  # sw + halt remain
    assert_equivalent(parse(DIAMOND), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r4", "r7"])


def test_duplicate_stops_at_control():
    cfg = build_cfg(DIAMOND)
    lab = labels_of(cfg)
    n = duplicate_into_predecessors(cfg, lab["join"].bid, 10)
    assert n == 3  # addi, mul, sw move; halt does not


def test_duplicate_rejects_conditional_preds():
    src = """
.text
main:
    beq r1, r0, join
    li  r2, 1
join:
    addi r3, r2, 5
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    # One pred reaches join conditionally (the branch): refuse.
    assert duplicate_into_predecessors(cfg, lab["join"].bid, 1) == 0


def test_speculate_then_duplicate_fig2c():
    """The full Figure 2(c) maneuver on a real diamond: hoist from the arms
    into the head, duplicate the join into the freed arm slots."""
    cfg = build_cfg(DIAMOND)
    lab = labels_of(cfg)
    head, join = lab["main"].bid, lab["join"].bid
    arms = cfg.succs(head)
    for arm in arms:
        speculate_from_successor(cfg, head, arm, 1)
    duplicate_into_predecessors(cfg, join, 1)
    eliminate_dead_code(cfg)
    assert_equivalent(parse(DIAMOND), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r4", "r7"])
