"""Differential testing: every transformation pipeline must preserve the
observable behavior of randomly generated programs.

The generator (repro.isa.randprog) produces terminating programs with
counted loops, chained diamonds, and data-dependent branches; each test
co-simulates the original against a transformed version and compares the
observable memory state.
"""

import pytest

from repro.cfg import build_cfg
from repro.core import compile_baseline, compile_proposed
from repro.isa.randprog import observable_state, random_program
from repro.profilefb import ProfileDB
from repro.sched import schedule_region, reorder_block
from repro.transform import (
    eliminate_dead_code, if_convert_diamond, propagate_copies,
)

SEEDS = list(range(24))


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_run(seed):
    prog = random_program(seed)
    state = observable_state(prog)
    assert len(state) == 10


@pytest.mark.parametrize("seed", SEEDS)
def test_cfg_roundtrip_preserves_behavior(seed):
    prog = random_program(seed)
    rebuilt = build_cfg(prog).to_program()
    assert observable_state(rebuilt) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_local_scheduling_preserves_behavior(seed):
    prog = random_program(seed)
    cfg = build_cfg(prog)
    for bb in cfg.blocks:
        if bb.instructions:
            reorder_block(bb)
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_cleanup_passes_preserve_behavior(seed):
    prog = random_program(seed)
    cfg = build_cfg(prog)
    propagate_copies(cfg)
    eliminate_dead_code(cfg)
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_region_scheduling_preserves_behavior(seed):
    prog = random_program(seed)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    schedule_region(cfg, profile=db)
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_ifconvert_everything_convertible_preserves_behavior(seed):
    prog = random_program(seed)
    cfg = build_cfg(prog)
    # Greedily convert until nothing matches (chains collapse bottom-up).
    changed = True
    while changed:
        changed = False
        for bb in list(cfg.blocks):
            if bb.bid in cfg._by_id and if_convert_diamond(cfg, bb.bid):
                changed = True
                break
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_baseline_pipeline_preserves_behavior(seed):
    prog = random_program(seed)
    out = compile_baseline(prog).program
    assert observable_state(out) == observable_state(prog)


@pytest.mark.parametrize("seed", SEEDS)
def test_proposed_pipeline_preserves_behavior(seed):
    prog = random_program(seed)
    out = compile_proposed(prog).program
    assert observable_state(out) == observable_state(prog)


# ---- call-containing programs (jal/jr barriers) ------------------------------

from repro.isa.randprog import RandProgConfig

CALL_SEEDS = list(range(12))


def _call_prog(seed):
    return random_program(seed, RandProgConfig(with_calls=True))


@pytest.mark.parametrize("seed", CALL_SEEDS)
def test_call_programs_run(seed):
    prog = _call_prog(seed)
    assert any(i.op == "jal" for i in prog) or True  # calls are probabilistic
    observable_state(prog)


@pytest.mark.parametrize("seed", CALL_SEEDS)
def test_call_programs_roundtrip(seed):
    prog = _call_prog(seed)
    rebuilt = build_cfg(prog).to_program()
    assert observable_state(rebuilt) == observable_state(prog)


@pytest.mark.parametrize("seed", CALL_SEEDS)
def test_call_programs_baseline_pipeline(seed):
    prog = _call_prog(seed)
    out = compile_baseline(prog).program
    assert observable_state(out) == observable_state(prog)


@pytest.mark.parametrize("seed", CALL_SEEDS)
def test_call_programs_proposed_pipeline(seed):
    prog = _call_prog(seed)
    out = compile_proposed(prog).program
    assert observable_state(out) == observable_state(prog)
