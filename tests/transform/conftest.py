"""Shared helpers: semantic-equivalence checking via co-simulation."""

import pytest

from repro.isa import parse
from repro.sim import FunctionalSim


def run(prog, max_steps=2_000_000):
    sim = FunctionalSim(prog, max_steps=max_steps)
    sim.run()
    return sim


def assert_equivalent(prog_a, prog_b, regs=None, ignore=(), max_steps=2_000_000):
    """Run both programs; assert identical final integer registers (except
    *ignore*; pass ``regs=[]`` to compare memory only) and identical
    memory effects."""
    a = run(prog_a, max_steps)
    b = run(prog_b, max_steps)
    keys = regs if regs is not None else [f"r{i}" for i in range(29)]
    for r in keys:
        if r in ignore:
            continue
        assert a.regs[r] == b.regs[r], \
            f"{r}: {a.regs[r]:#x} != {b.regs[r]:#x}"
    # Compare all memory both programs touched.
    pages = set(a.mem._pages) | set(b.mem._pages)
    for pno in pages:
        pa = a.mem._pages.get(pno, bytearray(4096))
        pb = b.mem._pages.get(pno, bytearray(4096))
        assert pa == pb, f"memory page {pno:#x} differs"
    return a, b


@pytest.fixture
def equivalent():
    return assert_equivalent
