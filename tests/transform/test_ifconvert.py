"""If-conversion (guarded execution) tests."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.transform import (
    find_diamond, if_convert_diamond, lower_guards,
)
from tests.transform.conftest import assert_equivalent

DIAMOND = """
.text
main:
    li  r1, {r1}
    li  r2, 5
    li  r7, 3
    beq r1, r2, L1
    add r3, r7, r7      # fall arm
    subi r4, r7, 1
    j   join
L1:
    sub r3, r7, r7      # taken arm
    addi r4, r7, 10
join:
    add r5, r3, r4
    sw  r5, 0(r29)
    halt
"""

TRIANGLE = """
.text
main:
    li  r1, {r1}
    li  r2, 5
    li  r3, 100
    beq r1, r2, join
    addi r3, r3, 11     # executed only when branch NOT taken
join:
    sw  r3, 0(r29)
    halt
"""


def labels_of(cfg):
    return {bb.label: bb for bb in cfg.blocks if bb.label}


def test_find_diamond():
    cfg = build_cfg(DIAMOND.format(r1=5))
    lab = labels_of(cfg)
    shape = find_diamond(cfg, lab["main"].bid)
    assert shape is not None
    fall, taken, join = shape
    assert cfg.block(taken).label == "L1"
    assert cfg.block(join).label == "join"


def test_find_diamond_rejects_straightline():
    cfg = build_cfg(".text\nli r1, 1\nhalt\n")
    assert find_diamond(cfg, cfg.entry.bid) is None


def test_if_convert_structure():
    cfg = build_cfg(DIAMOND.format(r1=5))
    lab = labels_of(cfg)
    res = if_convert_diamond(cfg, lab["main"].bid)
    assert res is not None
    assert res.guarded_ops == 4
    head = cfg.block(res.head)
    # No branch remains in the head; it falls through to the join.
    assert head.terminator is None
    assert len(cfg.succs(res.head)) == 1
    # Both guard senses present.
    senses = {i.guard.sense for i in head.instructions if i.guard}
    assert senses == {True, False}


def test_if_convert_semantics_taken():
    src = DIAMOND.format(r1=5)  # branch taken
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    if_convert_diamond(cfg, lab["main"].bid)
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r4", "r5", "r7"])


def test_if_convert_semantics_not_taken():
    src = DIAMOND.format(r1=6)  # branch falls through
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    if_convert_diamond(cfg, lab["main"].bid)
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r4", "r5", "r7"])


@pytest.mark.parametrize("r1", [5, 6])
def test_if_convert_triangle(r1):
    src = TRIANGLE.format(r1=r1)
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    res = if_convert_diamond(cfg, lab["main"].bid)
    assert res is not None
    assert res.guarded_ops == 1
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3"])


def test_if_convert_removes_branch_and_blocks():
    cfg = build_cfg(DIAMOND.format(r1=5))
    nblocks = len(cfg.blocks)
    lab = labels_of(cfg)
    if_convert_diamond(cfg, lab["main"].bid)
    assert len(cfg.blocks) == nblocks - 2
    prog = cfg.to_program()
    assert not any(i.is_branch for i in prog)


def test_if_convert_rejects_arm_with_call():
    src = """
.text
main:
    beq r1, r2, L1
    jal f
    j   join
L1:
    li  r3, 1
join:
    halt
f:
    jr r31
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    assert if_convert_diamond(cfg, lab["main"].bid) is None


def test_if_convert_rejects_no_free_cc():
    from repro.isa.registers import RegisterPool

    cfg = build_cfg(DIAMOND.format(r1=5))
    lab = labels_of(cfg)
    assert if_convert_diamond(cfg, lab["main"].bid,
                              cc_pool=RegisterPool([])) is None


def test_guarded_stores_supported_functionally():
    src = """
.text
main:
    li  r1, 5
    li  r2, 5
    li  r7, 9
    beq r1, r2, L1
    sw  r7, 0(r29)
    j   join
L1:
    sw  r7, 4(r29)
join:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    res = if_convert_diamond(cfg, lab["main"].bid)
    assert res is not None
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1", "r2", "r7"])


# ---- guard lowering -----------------------------------------------------------


@pytest.mark.parametrize("r1", [5, 6])
def test_lower_guards_preserves_semantics(r1):
    src = DIAMOND.format(r1=r1)
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    if_convert_diamond(cfg, lab["main"].bid)
    n = lower_guards(cfg)
    assert n == 4
    prog = cfg.to_program()
    # All remaining ops are native: no guards on non-cc-writing ops.
    for ins in prog:
        if ins.guard is not None:
            assert ins.dest is None or ins.dest.startswith("cc")
    assert_equivalent(parse(src), prog,
                      regs=["r1", "r2", "r3", "r4", "r5", "r7"])


def test_lower_guards_rejects_guarded_store():
    src = """
.text
main:
    li r1, 5
    beq r1, r0, L1
    sw r1, 0(r29)
    j  join
L1:
    sw r1, 4(r29)
join:
    halt
"""
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    if_convert_diamond(cfg, lab["main"].bid)
    with pytest.raises(ValueError):
        lower_guards(cfg)
