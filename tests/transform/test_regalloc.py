"""Register compaction: interference, coloring, semantic preservation."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.isa.randprog import RandProgConfig, observable_state, random_program
from repro.transform import (
    build_interference, compact_registers, free_registers, register_pressure,
)
from tests.transform.conftest import assert_equivalent


def test_disjoint_ranges_share_a_register():
    src = """
.text
    li  r5, 1
    add r6, r5, r5
    sw  r6, 0(r29)
    li  r10, 2          # r5/r6 dead here: r10/r11 can reuse them
    add r11, r10, r10
    sw  r11, 4(r29)
    halt
"""
    cfg = build_cfg(src)
    rep = compact_registers(cfg)
    assert rep.registers_after < rep.registers_before
    assert_equivalent(parse(src), cfg.to_program(), regs=[])


def test_interfering_ranges_stay_apart():
    src = """
.text
    li  r1, 1
    li  r2, 2
    add r3, r1, r2      # r1 and r2 simultaneously live
    sw  r3, 0(r29)
    halt
"""
    cfg = build_cfg(src)
    adj = build_interference(cfg)
    assert "r2" in adj["r1"]
    compact_registers(cfg)
    # Values must still be distinct.
    from repro.sim import final_state

    s = final_state(cfg.to_program())
    assert s.mem.read_word(0x7FFFFF00) == 3


def test_keeps_original_names_when_legal():
    src = ".text\nli r1, 1\nsw r1, 0(r29)\nhalt\n"
    cfg = build_cfg(src)
    rep = compact_registers(cfg)
    assert rep.mapping == {}


def test_reserved_untouched():
    src = ".text\nli r1, 5\nsw r1, 0(r29)\njal f\nhalt\nf:\njr r31\n"
    cfg = build_cfg(src)
    rep = compact_registers(cfg)
    assert "r29" not in rep.mapping
    assert "r31" not in rep.mapping


def test_compaction_replenishes_rename_pool():
    # A program squatting on high register numbers with short lifetimes.
    lines = [".text"]
    for i in range(1, 28):
        lines.append(f"    li   r{i}, {i}")
        lines.append(f"    sw   r{i}, {4 * i}(r29)")
    lines.append("    halt")
    src = "\n".join(lines)
    cfg = build_cfg(src)
    before = len(free_registers(cfg))
    compact_registers(cfg)
    after = len(free_registers(cfg))
    assert after > before


def test_register_pressure():
    low = build_cfg(".text\nli r1, 1\nsw r1, 0(r29)\nhalt\n")
    assert register_pressure(low) <= 2
    src = (".text\n" + "\n".join(f"li r{i}, {i}" for i in range(1, 9))
           + "\n" + "\n".join(f"sw r{i}, {4 * i}(r29)" for i in range(1, 9))
           + "\nhalt\n")
    high = build_cfg(src)
    assert register_pressure(high) >= 8


@pytest.mark.parametrize("seed", range(16))
def test_compaction_preserves_random_programs(seed):
    prog = random_program(seed)
    cfg = build_cfg(prog)
    compact_registers(cfg)
    # The observable funnel registers may themselves be renamed; compare
    # the machine's full visible effect instead: run both and compare the
    # stored words after remapping-aware stores (the stores were remapped
    # consistently, so the memory image must be identical).
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", range(8))
def test_compaction_preserves_call_programs(seed):
    prog = random_program(seed, RandProgConfig(with_calls=True))
    cfg = build_cfg(prog)
    compact_registers(cfg)
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", range(8))
def test_compaction_then_proposed_pipeline(seed):
    from repro.core import compile_proposed

    prog = random_program(seed)
    cfg = build_cfg(prog)
    compact_registers(cfg)
    out = compile_proposed(cfg.to_program()).program
    assert observable_state(out) == observable_state(prog)
