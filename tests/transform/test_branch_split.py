"""Branch splitting: both the Figure 5 sectioned form (default) and the
literal Figure 7(b) inline form."""

import pytest

from repro.cfg import LoopForest, build_cfg
from repro.isa import parse
from repro.profilefb import ProfileDB, Segment
from repro.sim import TimingSim, r10k_config
from repro.transform import (
    SplitNotApplicable, ensure_preheader, split_branch, split_branch_inline,
    split_branch_sectioned, split_from_profile,
)
from tests.transform.conftest import assert_equivalent

# A loop whose forward branch is taken for i<40 and not-taken after; r10
# accumulates on the taken path, r11 on the fall path.
TWO_PHASE = """
.text
main:
    li   r1, 0
    li   r2, 100
loop:
    slti r3, r1, 40
    bnez r3, hot
    addi r11, r11, 1
    j    latch
hot:
    addi r10, r10, 1
latch:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""

SEGS_2 = (Segment(0, 40, "taken", 1.0), Segment(40, 100, "nottaken", 0.0))
SEGS_3 = (Segment(0, 40, "taken", 1.0),
          Segment(40, 60, "mixed", 0.5),
          Segment(60, 100, "nottaken", 0.0))


def labels_of(cfg):
    return {bb.label: bb for bb in cfg.blocks if bb.label}


def split(style, segs=SEGS_2, src=TWO_PHASE):
    cfg = build_cfg(src)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    rep = split_branch(cfg, forest, lab["loop"].bid, segs, style=style)
    return cfg, rep


# ---- inline style (Figure 7(b) literal) -------------------------------------------

def test_inline_structure():
    cfg, rep = split("inline")
    assert rep.likely_branches == 2
    assert rep.boundaries == [40]
    prog = cfg.to_program()
    ops = [i.op for i in prog]
    assert ops.count("bctl") == 2   # one likely per biased segment
    assert ops.count("bct") == 1    # the plain fallback
    assert any(i.op == "li" and i.ann.get("split_counter") for i in prog)
    assert any(i.op == "addi" and i.ann.get("split_counter") for i in prog)


@pytest.mark.parametrize("style", ["inline", "sectioned"])
def test_two_phase_semantics(style):
    cfg, _ = split(style)
    a, b = assert_equivalent(parse(TWO_PHASE), cfg.to_program(),
                             regs=["r1", "r2", "r10", "r11"])
    assert b.regs["r10"] == 40
    assert b.regs["r11"] == 60


@pytest.mark.parametrize("style", ["inline", "sectioned"])
def test_three_phase_semantics(style):
    cfg, rep = split(style, SEGS_3)
    assert rep.boundaries == [40, 60]
    assert_equivalent(parse(TWO_PHASE), cfg.to_program(),
                      regs=["r1", "r2", "r10", "r11"])


# ---- sectioned style (Figure 5) --------------------------------------------------

def test_sectioned_structure():
    cfg, rep = split("sectioned")
    prog = cfg.to_program()
    ops = [i.op for i in prog]
    # Section 1's split branch became a likely; section 1's latch has a
    # likely stay-branch; section 2 (original) keeps plain forms on the
    # split branch (negated likely for its nottaken bias).
    assert ops.count("bctl") == 1            # section-stay test
    assert ops.count("bnezl") + ops.count("beqzl") >= 2  # specialized branches
    assert rep.likely_branches == 3


def test_sectioned_clones_loop_body():
    cfg_orig = build_cfg(TWO_PHASE)
    n_orig = len(cfg_orig.blocks)
    cfg, _ = split("sectioned")
    # One extra body clone (4 blocks) + handoff block + (preheader reused).
    assert len(cfg.blocks) > n_orig


def test_sectioned_improves_prediction():
    """The headline property: sectioned split code predicts better than
    the original under the same 2-bit hardware."""
    orig = parse(TWO_PHASE)
    cfg, _ = split("sectioned")
    split_prog = cfg.to_program()
    st_orig = TimingSim(r10k_config("twobit")).run_program(orig)
    st_split = TimingSim(r10k_config("twobit")).run_program(split_prog)
    assert st_split.predictor.accuracy >= st_orig.predictor.accuracy


def test_sectioned_helps_on_toggling_segment():
    """A branch that toggles inside a segment but is biased outside: the
    sectioned code isolates the anomaly and the biased sections become
    perfectly predicted likelies."""
    src = """
.text
main:
    li   r1, 0
    li   r2, 200
loop:
    slti r3, r1, 80
    bnez r3, hot          # T for i<80...
    li   r4, 120
    slt  r5, r1, r4
    beqz r5, cold         # F for i>=120
    andi r6, r1, 1
    bnez r6, hot
    j    cold
hot:
    addi r10, r10, 1
    j    latch
cold:
    addi r11, r11, 1
latch:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""
    prog = parse(src)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    rep = split_from_profile(cfg, forest, lab["loop"].bid, db)
    assert rep.likely_branches >= 1
    new_prog = cfg.to_program()
    assert_equivalent(parse(src), new_prog, regs=["r1", "r2", "r10", "r11"])
    st_orig = TimingSim(r10k_config("twobit")).run_program(parse(src))
    st_split = TimingSim(r10k_config("twobit")).run_program(new_prog)
    assert st_split.mispredict_events <= st_orig.mispredict_events


def test_inline_hurts_prediction_documented():
    """Reproduction finding (EXPERIMENTS.md): the literal inline encoding
    degrades prediction under always-taken likely semantics, because each
    likely branch falls through in the segments where its predicate is
    false."""
    orig = parse(TWO_PHASE)
    cfg, _ = split("inline")
    st_orig = TimingSim(r10k_config("twobit")).run_program(orig)
    st_inline = TimingSim(r10k_config("twobit")).run_program(cfg.to_program())
    assert st_inline.predictor.accuracy < st_orig.predictor.accuracy


# ---- rejection paths ----------------------------------------------------------------

@pytest.mark.parametrize("style", ["inline", "sectioned"])
def test_rejects_all_mixed(style):
    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    segs = (Segment(0, 50, "mixed", 0.5), Segment(50, 100, "mixed", 0.4))
    with pytest.raises(SplitNotApplicable):
        split_branch(cfg, forest, lab["loop"].bid, segs, style=style)


@pytest.mark.parametrize("style", ["inline", "sectioned"])
def test_rejects_non_loop_branch(style):
    src = """
.text
    beq r1, r2, A
    li r3, 1
A:
    halt
"""
    cfg = build_cfg(src)
    forest = LoopForest(cfg)
    with pytest.raises(SplitNotApplicable):
        split_branch(cfg, forest, cfg.entry.bid, SEGS_2, style=style)


def test_rejects_wrong_segment_count():
    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    with pytest.raises(SplitNotApplicable):
        split_branch(cfg, forest, lab["loop"].bid,
                     (Segment(0, 100, "taken", 1.0),))


@pytest.mark.parametrize("style", ["inline", "sectioned"])
def test_rejects_register_pressure(style):
    from repro.isa.registers import RegisterPool

    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    with pytest.raises(SplitNotApplicable):
        split_branch(cfg, forest, lab["loop"].bid, SEGS_2, style=style,
                     cc_pool=RegisterPool(["cc0", "cc1"]))


def test_sectioned_rejects_latch_branch():
    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    with pytest.raises(SplitNotApplicable):
        split_branch_sectioned(cfg, forest, lab["latch"].bid, SEGS_2)


def test_unknown_style():
    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    with pytest.raises(ValueError):
        split_branch(cfg, forest, lab["loop"].bid, SEGS_2, style="magic")


def test_split_from_profile_end_to_end():
    prog = parse(TWO_PHASE)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    rep = split_from_profile(cfg, forest, lab["loop"].bid, db)
    assert rep.likely_branches >= 1
    assert_equivalent(parse(TWO_PHASE), cfg.to_program(),
                      regs=["r1", "r2", "r10", "r11"])


def test_split_from_profile_rejects_unphased():
    prog = parse(TWO_PHASE)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    with pytest.raises(SplitNotApplicable):
        split_from_profile(cfg, forest, lab["latch"].bid, db)  # back branch


def test_ensure_preheader_reuses_existing():
    cfg = build_cfg(TWO_PHASE)
    lab = labels_of(cfg)
    forest = LoopForest(cfg)
    loop = forest.loops[0]
    pre1 = ensure_preheader(cfg, loop)
    assert pre1 == lab["main"].bid
    assert ensure_preheader(cfg, loop) == pre1


def test_ensure_preheader_creates_when_needed():
    src = """
.text
    beq r9, r0, loop
    li r8, 1
loop:
    addi r1, r1, 1
    bne r1, r2, loop
    halt
"""
    cfg = build_cfg(src)
    forest = LoopForest(cfg)
    loop = forest.loops[0]
    nblocks = len(cfg.blocks)
    pre = ensure_preheader(cfg, loop)
    assert len(cfg.blocks) == nblocks + 1
    assert cfg.succs(pre) == [loop.header]
    cfg.to_program().validate()
