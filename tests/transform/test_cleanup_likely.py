"""DCE, copy propagation, branch-likely conversion."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.profilefb import ProfileDB
from repro.transform import (
    apply_branch_likely, eliminate_dead_code, forward_substitute_block,
    negate_branch, propagate_copies,
)
from tests.transform.conftest import assert_equivalent


# ---- DCE ------------------------------------------------------------------------

def test_dce_removes_unused():
    src = ".text\nli r1, 1\nli r2, 2\nsw r1, 0(r29)\nhalt\n"
    cfg = build_cfg(src)
    n = eliminate_dead_code(cfg)
    assert n == 1  # li r2 dead
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1"])


def test_dce_respects_liveness_across_blocks():
    src = """
.text
    li r1, 1
    beq r1, r0, L
    j end
L:
    add r2, r1, r1
end:
    sw r1, 0(r29)
    halt
"""
    cfg = build_cfg(src)
    eliminate_dead_code(cfg)
    # li r1 must survive (used by branch and store); add r2 is dead.
    ops = [i.op for i in cfg.to_program()]
    assert "li" in ops
    assert "add" not in ops


def test_dce_keeps_stores_and_branches():
    src = ".text\nL:\nsw r1, 0(r29)\nbne r1, r2, L2\nL2:\nhalt\n"
    cfg = build_cfg(src)
    eliminate_dead_code(cfg)
    ops = [i.op for i in cfg.to_program()]
    assert "sw" in ops and "bne" in ops


def test_dce_chain():
    # A dead chain: both instructions removable once the tail is dead.
    src = ".text\nli r1, 1\nadd r2, r1, r1\nhalt\n"
    cfg = build_cfg(src)
    n = eliminate_dead_code(cfg)
    assert n == 2


def test_dce_live_at_exit_seed():
    src = ".text\nli r1, 1\nhalt\n"
    cfg = build_cfg(src)
    assert eliminate_dead_code(cfg, live_at_exit={"r1"}) == 0


def test_dce_removes_nops():
    src = ".text\nnop\nli r1, 1\nsw r1, 0(r29)\nnop\nhalt\n"
    cfg = build_cfg(src)
    eliminate_dead_code(cfg)
    assert "nop" not in [i.op for i in cfg.to_program()]


def test_dce_keeps_guarded_writes():
    # A guarded write is partial: conservatively kept.
    src = ".text\ncmpeq cc0, r1, r1\n(cc0) li r2, 5\nsw r2, 0(r29)\nhalt\n"
    cfg = build_cfg(src)
    eliminate_dead_code(cfg)
    assert any(i.is_guarded for i in cfg.to_program())


# ---- copy propagation ------------------------------------------------------------

def test_copyprop_basic():
    src = ".text\nli r1, 7\nmov r2, r1\nadd r3, r2, r2\nsw r3, 0(r29)\nhalt\n"
    cfg = build_cfg(src)
    n = propagate_copies(cfg)
    assert n >= 1
    add = [i for i in cfg.entry.instructions if i.op == "add"][0]
    assert add.srcs == ("r1", "r1")
    eliminate_dead_code(cfg)  # the mov is now dead
    assert "mov" not in [i.op for i in cfg.to_program()]
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1", "r3"])


def test_copyprop_stops_at_redef_of_source():
    src = (".text\nli r1, 7\nmov r2, r1\nli r1, 9\nadd r3, r2, r2\n"
           "sw r3, 0(r29)\nsw r1, 4(r29)\nhalt\n")
    cfg = build_cfg(src)
    propagate_copies(cfg)
    add = [i for i in cfg.entry.instructions if i.op == "add"][0]
    assert add.srcs == ("r2", "r2")  # r1 was clobbered: no propagation
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1", "r2", "r3"])


def test_copyprop_chain():
    src = (".text\nli r1, 7\nmov r2, r1\nmov r3, r2\nadd r4, r3, r3\n"
           "sw r4, 0(r29)\nhalt\n")
    cfg = build_cfg(src)
    propagate_copies(cfg)
    add = [i for i in cfg.entry.instructions if i.op == "add"][0]
    assert add.srcs == ("r1", "r1")


def test_forward_subst_block():
    cfg = build_cfg(".text\nsubi r9, r3, 1\nmov r6, r9\nadd r8, r6, r4\nhalt\n")
    bb = cfg.entry
    n = forward_substitute_block(bb)
    assert n == 1
    assert bb.instructions[2].srcs == ("r9", "r4")


# ---- branch-likely ------------------------------------------------------------------

LOOP = """
.text
    li r1, 0
    li r2, 50
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""


def test_apply_branch_likely_on_hot_loop():
    prog = parse(LOOP)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    rep = apply_branch_likely(cfg, db)
    assert rep.converted == 1
    assert "bnel" in [i.op for i in cfg.to_program()]
    assert_equivalent(parse(LOOP), cfg.to_program(), regs=["r1", "r2"])


def test_apply_branch_likely_negates_nottaken():
    src = """
.text
    li r1, 0
    li r2, 50
    li r5, 1000
L:
    addi r1, r1, 1
    beq r1, r5, far     # almost never taken
    addi r3, r3, 1
far:
    bne r1, r2, L
    halt
"""
    prog = parse(src)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    rep = apply_branch_likely(cfg, db)
    assert rep.negated == 1
    ops = [i.op for i in cfg.to_program()]
    assert "bnel" in ops  # negated beq -> bne -> bnel (plus loop bnel)
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r5"])


def test_negate_branch_swaps_edges():
    src = ".text\nbeq r1, r2, A\nli r3, 1\nA:\nhalt\n"
    cfg = build_cfg(src)
    head = cfg.entry.bid
    t_before = cfg.taken_edge(head).dst
    f_before = cfg.fall_edge(head).dst
    assert negate_branch(cfg, head)
    assert cfg.taken_edge(head).dst == f_before
    assert cfg.fall_edge(head).dst == t_before
    assert cfg.entry.terminator.op == "bne"
    # Semantics: both branch outcomes.
    for r1 in (0, 1):
        src_v = f".text\nli r1, {r1}\nli r2, 0\nbeq r1, r2, A\nli r3, 1\nA:\nhalt\n"
        cfg2 = build_cfg(src_v)
        negate_branch(cfg2, cfg2.entry.bid)
        assert_equivalent(parse(src_v), cfg2.to_program(),
                          regs=["r1", "r2", "r3"])


def test_likely_not_applied_to_irregular():
    src = """
.text
    li r1, 0
    li r2, 40
L:
    andi r3, r1, 1
    beqz r3, even
    addi r4, r4, 1
even:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""
    prog = parse(src)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    rep = apply_branch_likely(cfg, db)
    # Only the back branch converts; the alternating beqz must not.
    ops = [i.op for i in cfg.to_program()]
    assert "beqz" in ops
    assert "beqzl" not in ops
