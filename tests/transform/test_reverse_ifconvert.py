"""Reverse if-conversion: guarded code back to explicit control flow."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.isa.randprog import observable_state, random_program
from repro.transform import (
    fully_lower, if_convert_diamond, reverse_if_convert,
)
from tests.transform.conftest import assert_equivalent

GUARDED = """
.text
main:
    li   r1, {r1}
    li   r2, 5
    cmpeq cc0, r1, r2
    (cc0)  addi r3, r3, 10
    (cc0)  addi r4, r4, 20
    (!cc0) addi r3, r3, 1
    sw   r3, 0(r29)
    sw   r4, 4(r29)
    halt
"""


@pytest.mark.parametrize("r1", [5, 6])
def test_reverse_basic_semantics(r1):
    src = GUARDED.format(r1=r1)
    cfg = build_cfg(src)
    rep = reverse_if_convert(cfg)
    assert rep.runs_converted == 2      # (cc0) run and (!cc0) run
    assert rep.instructions_unguarded == 3
    prog = cfg.to_program()
    assert not any(i.is_guarded for i in prog)
    assert_equivalent(parse(src), prog, regs=["r1", "r2", "r3", "r4"])


def test_reverse_emits_branches():
    cfg = build_cfg(GUARDED.format(r1=5))
    reverse_if_convert(cfg)
    ops = [i.op for i in cfg.to_program()]
    assert "bcf" in ops   # skip positive-sense run when guard false
    assert "bct" in ops   # skip negative-sense run when guard true


@pytest.mark.parametrize("r1", [5, 6])
def test_reverse_handles_guarded_stores(r1):
    src = f"""
.text
main:
    li   r1, {r1}
    li   r2, 5
    li   r5, 99
    cmpeq cc0, r1, r2
    (cc0)  sw r5, 0(r29)
    (!cc0) sw r5, 4(r29)
    halt
"""
    cfg = build_cfg(src)
    reverse_if_convert(cfg)
    prog = cfg.to_program()
    assert not any(i.is_guarded for i in prog)
    assert_equivalent(parse(src), prog, regs=["r1", "r2", "r5"])


@pytest.mark.parametrize("r1", [5, 6])
def test_ifconvert_then_reverse_roundtrip(r1):
    """if-convert a diamond, then reverse-convert: behavior identical."""
    src = f"""
.text
main:
    li  r1, {r1}
    li  r2, 5
    li  r7, 3
    beq r1, r2, L1
    add r3, r7, r7
    j   join
L1:
    sub r3, r7, r7
join:
    sw  r3, 0(r29)
    halt
"""
    cfg = build_cfg(src)
    lab = {bb.label: bb for bb in cfg.blocks if bb.label}
    assert if_convert_diamond(cfg, lab["main"].bid) is not None
    reverse_if_convert(cfg)
    prog = cfg.to_program()
    assert not any(i.is_guarded for i in prog)
    assert_equivalent(parse(src), prog, regs=["r1", "r2", "r3", "r7"])


def test_reverse_run_in_terminated_block():
    # Guarded run in a block ending with a branch: terminator moves to tail.
    src = """
.text
main:
    li   r1, 1
    cmpne cc1, r1, r0
    (cc1) addi r2, r2, 7
    bnez r1, end
    li   r3, 5
end:
    sw   r2, 0(r29)
    halt
"""
    cfg = build_cfg(src)
    reverse_if_convert(cfg)
    prog = cfg.to_program()
    prog.validate()
    assert_equivalent(parse(src), prog, regs=["r1", "r2", "r3"])


def test_reverse_noop_on_unguarded():
    cfg = build_cfg(".text\nli r1, 1\nhalt\n")
    rep = reverse_if_convert(cfg)
    assert rep.runs_converted == 0
    assert rep.blocks_added == 0


@pytest.mark.parametrize("seed", range(8))
def test_fully_lower_after_greedy_ifconvert(seed):
    """Property: greedy if-conversion followed by full lowering round-trips
    random programs (predication as a purely internal representation)."""
    prog = random_program(seed)
    cfg = build_cfg(prog)
    changed = True
    while changed:
        changed = False
        for bb in list(cfg.blocks):
            if bb.bid in cfg._by_id and if_convert_diamond(cfg, bb.bid):
                changed = True
                break
    fully_lower(cfg)
    lowered = cfg.to_program()
    assert not any(i.is_guarded and i.dest is None for i in lowered)
    assert observable_state(lowered) == observable_state(prog)
