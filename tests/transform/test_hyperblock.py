"""Hyperblock formation and straight-line block merging."""

import pytest

from repro.cfg import build_cfg
from repro.isa import parse
from repro.isa.randprog import observable_state, random_program
from repro.profilefb import ProfileDB
from repro.transform import form_hyperblocks, merge_straightline_blocks
from tests.transform.conftest import assert_equivalent

CHAIN = """
.text
main:
    li  r1, {r1}
    li  r2, 1
    li  r3, 2
    beq r1, r2, a1
    addi r4, r4, 10
    j   m1
a1:
    addi r4, r4, 20
m1:
    beq r1, r3, a2
    addi r5, r5, 10
    j   m2
a2:
    addi r5, r5, 20
m2:
    sw  r4, 0(r29)
    sw  r5, 4(r29)
    halt
"""


@pytest.mark.parametrize("r1", [1, 2, 3])
def test_chain_collapses_to_one_block(r1):
    src = CHAIN.format(r1=r1)
    cfg = build_cfg(src)
    rep = form_hyperblocks(cfg)
    assert rep.conversions == 2
    assert rep.merged >= 1
    # Everything is now one straight-line block.
    assert len([bb for bb in cfg.blocks if bb.instructions]) == 1
    assert_equivalent(parse(src), cfg.to_program(),
                      regs=["r1", "r2", "r3", "r4", "r5"])


def test_profile_gating_spares_predictable_branches():
    # A branch taken every iteration: the 2-bit predictor nails it, so the
    # gated hyperblock former must leave it alone.
    src = """
.text
main:
    li r1, 0
    li r2, 100
loop:
    beq r1, r2, done      # not taken for 100 iterations: predictable
    addi r3, r3, 1
done:
    addi r1, r1, 1
    bne r1, r2, loop
    halt
"""
    prog = parse(src)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    rep = form_hyperblocks(cfg, profile=db)
    assert rep.conversions == 0


def test_merge_straightline_blocks():
    src = """
.text
a:
    li r1, 1
    j  b
b:
    li r2, 2
c:
    li r3, 3
    halt
"""
    cfg = build_cfg(src)
    # 'c:' is not a branch target, so b and c share a block: one seam.
    n = merge_straightline_blocks(cfg)
    assert n == 1
    assert len(cfg.blocks) == 1
    assert_equivalent(parse(src), cfg.to_program(), regs=["r1", "r2", "r3"])


def test_merge_keeps_branch_targets():
    src = """
.text
    beq r1, r2, t
    li r3, 1
t:
    li r4, 2
    halt
"""
    cfg = build_cfg(src)
    # 't' has two preds: not mergeable into its fall-through predecessor.
    n = merge_straightline_blocks(cfg)
    cfg.to_program().validate()


@pytest.mark.parametrize("seed", range(10))
def test_hyperblocks_preserve_random_programs(seed):
    prog = random_program(seed)
    cfg = build_cfg(prog)
    form_hyperblocks(cfg)
    assert observable_state(cfg.to_program()) == observable_state(prog)


@pytest.mark.parametrize("seed", range(6))
def test_gated_hyperblocks_preserve_random_programs(seed):
    prog = random_program(seed)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    form_hyperblocks(cfg, profile=db)
    assert observable_state(cfg.to_program()) == observable_state(prog)
