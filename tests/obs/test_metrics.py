"""Metrics registry: no-op fast path, counters, histogram buckets."""

from repro.obs.metrics import (
    DEFAULT_BOUNDS, Counter, Histogram, MetricsRegistry, REGISTRY,
    metrics_disable, metrics_enable, metrics_enabled, metrics_snapshot,
)


def test_disabled_recording_is_a_no_op():
    reg = MetricsRegistry()
    assert not reg.enabled
    reg.inc("a.b")
    reg.observe("c.d", 3.0)
    snap = reg.snapshot()
    assert snap == {"counters": {}, "histograms": {}}


def test_enable_then_record():
    reg = MetricsRegistry()
    reg.enable()
    reg.inc("engine.cache.hits")
    reg.inc("engine.cache.hits", 4)
    reg.observe("pipeline.retire_per_cycle", 2)
    snap = reg.snapshot()
    assert snap["counters"] == {"engine.cache.hits": 5}
    assert snap["histograms"]["pipeline.retire_per_cycle"]["count"] == 1


def test_disable_keeps_values_reset_clears_them():
    reg = MetricsRegistry()
    reg.enable()
    reg.inc("x")
    reg.disable()
    reg.inc("x")  # ignored
    assert reg.snapshot()["counters"] == {"x": 1}
    reg.reset()
    assert reg.snapshot()["counters"] == {}
    assert not reg.enabled  # reset leaves the gate alone


def test_counter_eager_creation():
    reg = MetricsRegistry()
    c = reg.counter("made.eagerly")
    assert isinstance(c, Counter)
    assert c.value == 0
    assert reg.counter("made.eagerly") is c


def test_histogram_buckets_and_overflow():
    h = Histogram("h", bounds=(1, 2, 4))
    for v in (0, 1, 2, 3, 4, 100):
        h.observe(v)
    # counts[i] counts observations <= bounds[i]; counts[-1] overflows.
    assert h.counts == [2, 1, 2, 1]
    assert h.count == 6
    assert h.total == 110
    assert h.mean == 110 / 6
    d = h.to_dict()
    assert d["bounds"] == [1, 2, 4]
    assert d["mean"] == h.mean


def test_histogram_default_bounds():
    h = Histogram("h")
    assert h.bounds == DEFAULT_BOUNDS
    assert len(h.counts) == len(DEFAULT_BOUNDS) + 1
    assert h.mean == 0.0


def test_custom_bounds_via_observe():
    reg = MetricsRegistry()
    reg.enable()
    reg.observe("gap", 1000, bounds=(10, 100, 1000))
    h = reg.snapshot()["histograms"]["gap"]
    assert h["bounds"] == [10, 100, 1000]
    assert h["counts"] == [0, 0, 1, 0]


def test_global_helpers_round_trip():
    assert not metrics_enabled()
    metrics_enable()
    try:
        assert metrics_enabled()
        REGISTRY.inc("global.test")
        assert metrics_snapshot()["counters"]["global.test"] == 1
    finally:
        metrics_disable()
    assert not metrics_enabled()
