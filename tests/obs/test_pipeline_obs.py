"""Pipeline observer: result parity, sampling, entropy, metric feeds."""

import json

import pytest

from repro.isa import parse
from repro.obs.metrics import MetricsRegistry, metrics_enable
from repro.obs.pipeline_obs import (
    PipelineObserver, heat_report, maybe_observer, outcome_entropy,
)
from repro.sim import TimingSim, r10k_config


LOOP_SRC = """.text
li r9, 0
li r10, 16
LOOP:
add r1, r1, r2
add r3, r1, r2
addi r9, r9, 1
bne r9, r10, LOOP
halt
"""


@pytest.fixture
def loop_prog():
    return parse(LOOP_SRC)


def _run(prog, observer=None):
    return TimingSim(r10k_config("twobit"), observer=observer)\
        .run_program(prog)


def test_observed_run_has_identical_stats(loop_prog):
    """The observer must never perturb the simulation it watches."""
    baseline = _run(loop_prog)
    observed = _run(loop_prog, observer=PipelineObserver(MetricsRegistry()))
    assert json.dumps(baseline.to_dict(), sort_keys=True) \
        == json.dumps(observed.to_dict(), sort_keys=True)


def test_counters_fed_from_run(loop_prog):
    reg = MetricsRegistry()
    reg.enable()
    obs = PipelineObserver(reg)
    stats = _run(loop_prog, observer=obs)
    snap = reg.snapshot()
    assert snap["counters"]["pipeline.cycles"] == stats.cycles
    assert snap["counters"]["pipeline.committed"] == stats.committed
    assert snap["counters"]["pipeline.traced_entries"] == obs.trace_entries
    # Rate histograms saw one observation per cycle-stage call.
    assert snap["histograms"]["pipeline.retire_per_cycle"]["count"] > 0
    assert snap["histograms"]["pipeline.issue_per_cycle"]["count"] > 0
    assert snap["histograms"]["pipeline.fetch_per_cycle"]["count"] > 0


def test_branch_entropy_recorded(loop_prog):
    reg = MetricsRegistry()
    reg.enable()
    obs = PipelineObserver(reg)
    _run(loop_prog, observer=obs)
    # The loop back-edge is taken 15/16 times: entropy strictly in (0, 1).
    assert obs.branch_outcomes, "no branch outcomes collected"
    assert obs.branch_entropy
    for h in obs.branch_entropy.values():
        assert 0.0 < h < 1.0
    assert reg.snapshot()["histograms"]["pipeline.branch_entropy"]["count"] \
        == len(obs.branch_entropy)


def test_sampling_and_heat_report(loop_prog):
    obs = PipelineObserver(MetricsRegistry(), sample_interval=1)
    _run(loop_prog, observer=obs)
    assert sum(obs.pc_samples.values()) == obs.trace_entries
    report = heat_report(obs.pc_samples, loop_prog)
    assert "heat report" in report
    assert f"{obs.trace_entries} samples" in report
    assert "#" in report  # at least one heat bar


def test_heat_report_empty_samples(loop_prog):
    report = heat_report({}, loop_prog)
    assert "(no samples)" in report


def test_sample_interval_thins_samples(loop_prog):
    dense = PipelineObserver(MetricsRegistry(), sample_interval=1)
    sparse = PipelineObserver(MetricsRegistry(), sample_interval=7)
    _run(loop_prog, observer=dense)
    _run(loop_prog, observer=sparse)
    assert sum(sparse.pc_samples.values()) \
        == dense.trace_entries // 7


def test_maybe_observer_gating():
    assert maybe_observer() is None  # registry disabled (conftest)
    obs = maybe_observer(sample_interval=5)
    assert obs is not None and obs.sample_interval == 5
    metrics_enable()
    assert isinstance(maybe_observer(), PipelineObserver)


@pytest.mark.parametrize("taken,total,expected", [
    (0, 0, 0.0),      # no outcomes
    (0, 10, 0.0),     # never taken
    (10, 10, 0.0),    # always taken
    (5, 10, 1.0),     # perfectly unbiased
])
def test_outcome_entropy_edges(taken, total, expected):
    assert outcome_entropy(taken, total) == pytest.approx(expected)


def test_outcome_entropy_asymmetric():
    h = outcome_entropy(1, 10)
    assert 0.0 < h < outcome_entropy(3, 10) < 1.0
