"""Trace aggregation and the per-name timing table."""

import io

from repro.obs.summarize import aggregate_spans, summarize_trace
from repro.obs.trace import read_trace, span, tracing


def _rec(name, dur_ns, error=None):
    attrs = {"error": error} if error else {}
    return {"name": name, "dur_ns": dur_ns, "attrs": attrs}


def test_aggregate_counts_totals_mean_max():
    agg = aggregate_spans([_rec("a", 10), _rec("a", 30), _rec("b", 5)])
    assert agg["a"] == {"count": 2, "total_ns": 40, "max_ns": 30,
                        "errors": 0, "mean_ns": 20.0}
    assert agg["b"]["count"] == 1
    assert agg["b"]["mean_ns"] == 5.0


def test_aggregate_counts_errors():
    agg = aggregate_spans([_rec("a", 10), _rec("a", 10, error="KeyError")])
    assert agg["a"]["errors"] == 1


def test_aggregate_empty():
    assert aggregate_spans([]) == {}


def test_summarize_sorts_by_total_descending():
    text = summarize_trace([_rec("small", 1_000_000),
                            _rec("big", 9_000_000),
                            _rec("big", 9_000_000)])
    lines = text.splitlines()
    assert lines[0] == "3 spans, 2 distinct names"
    assert "span" in lines[1] and "total ms" in lines[1]
    assert lines[2].startswith("big")
    assert lines[3].startswith("small")


def test_summarize_flags_errored_spans():
    text = summarize_trace([_rec("x", 10, error="ValueError")])
    assert "(1 errored)" in text


def test_summarize_round_trip_from_real_trace():
    sink = io.StringIO()
    with tracing(sink):
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
    text = summarize_trace(read_trace(io.StringIO(sink.getvalue())))
    assert "3 spans, 2 distinct names" in text
    assert "outer" in text and "inner" in text
