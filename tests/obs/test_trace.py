"""Tracing spans: nesting, JSONL round-trip, null-span fast path."""

import io
import json

import pytest

from repro.obs.trace import (
    NULL_SPAN, TRACE_SCHEMA_VERSION, Tracer, active_tracer, install,
    read_trace, span, tracing, uninstall,
)


def test_span_without_tracer_is_null_span():
    assert span("anything") is NULL_SPAN
    # and the null span is a working no-op context manager
    with span("anything", key=1) as sp:
        sp.set("more", 2)


def test_nesting_parent_ids_and_depth():
    sink = io.StringIO()
    with tracing(sink):
        with span("outer"):
            with span("inner"):
                with span("leaf"):
                    pass
            with span("sibling"):
                pass
    records = {r["name"]: r for r in read_trace(io.StringIO(sink.getvalue()))}
    assert records["outer"]["depth"] == 0
    assert records["outer"]["parent_id"] is None
    assert records["inner"]["parent_id"] == records["outer"]["span_id"]
    assert records["inner"]["depth"] == 1
    assert records["leaf"]["parent_id"] == records["inner"]["span_id"]
    assert records["leaf"]["depth"] == 2
    assert records["sibling"]["parent_id"] == records["outer"]["span_id"]


def test_emission_order_is_completion_order():
    sink = io.StringIO()
    with tracing(sink):
        with span("outer"):
            with span("inner"):
                pass
    names = [r["name"] for r in read_trace(io.StringIO(sink.getvalue()))]
    assert names == ["inner", "outer"]  # children close first


def test_jsonl_round_trip_via_file(tmp_path):
    path = tmp_path / "t.jsonl"
    with tracing(path):
        with span("work", program="compress") as sp:
            sp.set("cells", 3)
    records = read_trace(path)
    assert len(records) == 1
    rec = records[0]
    assert rec["v"] == TRACE_SCHEMA_VERSION
    assert rec["name"] == "work"
    assert rec["attrs"] == {"program": "compress", "cells": 3}
    assert rec["dur_ns"] >= 0
    assert rec["start_ns"] >= 0


def test_exception_recorded_and_propagated():
    sink = io.StringIO()
    with tracing(sink):
        with pytest.raises(KeyError):
            with span("failing"):
                raise KeyError("boom")
    rec = read_trace(io.StringIO(sink.getvalue()))[0]
    assert rec["attrs"]["error"] == "KeyError"


def test_install_uninstall_lifecycle(tmp_path):
    tracer = Tracer(tmp_path / "t.jsonl")
    install(tracer)
    try:
        assert active_tracer() is tracer
        with span("one"):
            pass
    finally:
        uninstall()
        tracer.close()
    assert active_tracer() is None
    assert tracer.emitted == 1


def test_read_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError, match="line 1"):
        read_trace(path)


def test_read_trace_rejects_wrong_schema_version(tmp_path):
    rec = {"v": TRACE_SCHEMA_VERSION + 1, "name": "x", "span_id": 1,
           "parent_id": None, "depth": 0, "start_ns": 0, "dur_ns": 1,
           "attrs": {}}
    path = tmp_path / "stale.jsonl"
    path.write_text(json.dumps(rec) + "\n")
    with pytest.raises(ValueError, match="schema version"):
        read_trace(path)


def test_read_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    with tracing(path):
        with span("a"):
            pass
    path.write_text(path.read_text() + "\n\n")
    assert len(read_trace(path)) == 1
