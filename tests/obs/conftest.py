"""Shared observability-test hygiene: no global state leaks across tests."""

import pytest

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Uninstall any tracer and reset/disable the metrics registry."""
    _trace.uninstall()
    _metrics.REGISTRY.reset()
    _metrics.metrics_disable()
    yield
    _trace.uninstall()
    _metrics.REGISTRY.reset()
    _metrics.metrics_disable()
