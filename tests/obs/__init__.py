"""Observability layer tests."""
