"""Branch predictor unit tests."""

import pytest

from repro.isa import make
from repro.sim.branch_pred import (
    PerfectPredictor, StaticTakenPredictor, TwoBitPredictor, make_predictor,
)


def beq(target="L"):
    return make("beq", "r1", "r2", target)


def beql(target="L"):
    return make("beql", "r1", "r2", target)


def test_two_bit_learns_taken():
    p = TwoBitPredictor(entries=16)
    ins = beq()
    # Initial state weakly not-taken: first taken access mispredicts.
    assert p.access(0, ins, True, target=5) is False
    # Second taken access: counter now weakly-taken -> predicts taken,
    # and the BTB was filled by the first access.
    assert p.access(0, ins, True, target=5) is True
    assert p.access(0, ins, True, target=5) is True


def test_two_bit_hysteresis():
    p = TwoBitPredictor(entries=16)
    ins = beq()
    for _ in range(4):
        p.access(0, ins, True, target=5)
    # Strongly taken now; one not-taken outcome mispredicts but does not
    # flip the prediction...
    assert p.access(0, ins, False) is False
    # ... so a following taken branch is still predicted taken.
    assert p.access(0, ins, True, target=5) is True


def test_two_bit_not_taken_stream_predicted():
    p = TwoBitPredictor(entries=16)
    ins = beq()
    assert p.access(0, ins, False) is True  # init weakly not-taken
    assert p.access(0, ins, False) is True
    assert p.stats.accuracy == 1.0


def test_btb_miss_charged_on_first_taken():
    p = TwoBitPredictor(entries=16, initial_state=2)  # predict taken at init
    ins = beq()
    # Direction correct but BTB cold: counted as a bubble (returns False).
    assert p.access(0, ins, True, target=5) is False
    assert p.stats.btb_misses == 1
    assert p.access(0, ins, True, target=5) is True


def test_aliasing_uses_modulo_index():
    p = TwoBitPredictor(entries=4)
    a, b = beq(), beq()
    for _ in range(3):
        p.access(0, a, True, target=9)
    # pc=4 aliases pc=0 in a 4-entry table: inherits the taken prediction,
    # but its own BTB entry is separate, so first access misses BTB.
    assert p.access(4, b, True, target=9) is False
    assert p.stats.btb_misses >= 1


def test_likely_always_taken_no_table():
    p = TwoBitPredictor(entries=16)
    ins = beql()
    for _ in range(10):
        assert p.access(0, ins, True) is True
    assert p.access(0, ins, False) is False
    # Table untouched by likelies: a plain branch at the same pc still sees
    # the initial weakly-not-taken state.
    plain = beq()
    assert p.access(0, plain, False) is True


def test_likely_stats_separate():
    p = TwoBitPredictor(entries=16)
    p.access(0, beql(), True)
    p.access(4, beq(), False)
    assert p.stats.likely_branches == 1
    assert p.stats.conditional == 1
    assert p.stats.accuracy == 1.0


def test_perfect():
    p = PerfectPredictor()
    assert p.access(0, beq(), True) is True
    assert p.access(0, beq(), False) is True
    assert p.access(0, beql(), False) is True
    assert p.stats.accuracy == 1.0
    assert p.indirect_resolves_in_fetch() is True


def test_static_taken():
    p = StaticTakenPredictor()
    assert p.access(0, beq(), True) is True
    assert p.access(0, beq(), False) is False


def test_factory():
    assert isinstance(make_predictor("twobit"), TwoBitPredictor)
    assert isinstance(make_predictor("perfect"), PerfectPredictor)
    with pytest.raises(ValueError):
        make_predictor("oracle")


def test_power_of_two_required():
    with pytest.raises(ValueError):
        TwoBitPredictor(entries=100)


def test_btb_eviction():
    p = TwoBitPredictor(entries=512, btb_entries=2, initial_state=3)
    # Fill BTB with pcs 0 and 4; pc 8 evicts pc 0.
    for pc in (0, 4, 8):
        p.access(pc, beq(), True, target=1)   # miss, insert
    assert p.access(4, beq(), True, target=1) is True   # still resident
    assert p.access(0, beq(), True, target=1) is False  # evicted
