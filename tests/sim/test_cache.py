"""Cache model tests."""

import pytest

from repro.sim.cache import Cache


def test_cold_miss_then_hit():
    c = Cache(size=1024, line=32, assoc=1)
    assert c.access(0) is False
    assert c.access(0) is True
    assert c.access(4) is True  # same line
    assert c.access(32) is False  # next line


def test_direct_mapped_conflict():
    c = Cache(size=1024, line=32, assoc=1)  # 32 sets
    c.access(0)
    assert c.access(1024) is False  # maps to set 0, evicts
    assert c.access(0) is False     # evicted


def test_two_way_avoids_conflict():
    c = Cache(size=1024, line=32, assoc=2)  # 16 sets
    c.access(0)
    c.access(1024)
    assert c.access(0) is True
    assert c.access(1024) is True


def test_lru_within_set():
    c = Cache(size=1024, line=32, assoc=2)
    c.access(0)       # A
    c.access(1024)    # B
    c.access(0)       # touch A (MRU)
    c.access(2048)    # C evicts B (LRU)
    assert c.access(0) is True
    assert c.access(1024) is False


def test_stats():
    c = Cache(size=1024, line=32, assoc=1)
    c.access(0)
    c.access(0)
    c.access(0)
    assert c.stats.accesses == 3
    assert c.stats.misses == 1
    assert abs(c.stats.hit_rate - 2 / 3) < 1e-12


def test_reset():
    c = Cache(size=1024, line=32, assoc=1)
    c.access(0)
    c.reset()
    assert c.access(0) is False
    assert c.stats.accesses == 1


def test_validation():
    with pytest.raises(ValueError):
        Cache(size=1000, line=32, assoc=1)
    with pytest.raises(ValueError):
        Cache(size=1024, line=24, assoc=1)
