"""Two-level local-history predictor (the paper's future-work direction)."""

import pytest

from repro.isa import make, parse
from repro.sim import TwoLevelPredictor, r10k_config, simulate
from repro.sim.branch_pred import TwoBitPredictor


def beq():
    return make("beq", "r1", "r2", "L")


def feed(pred, pattern, pc=0, repeat=20):
    correct = 0
    total = 0
    for _ in range(repeat):
        for ch in pattern:
            taken = ch == "T"
            ok = pred.access(pc, beq(), taken, target=5)
            correct += ok
            total += 1
    return correct / total


def test_learns_periodic_pattern():
    # TTF repeated: a 2-bit counter caps out well below a two-level table.
    p2 = feed(TwoBitPredictor(entries=16), "TTF")
    pl = feed(TwoLevelPredictor(entries=16, history_bits=4), "TTF")
    assert pl > p2
    assert pl > 0.9  # near-perfect once warmed


def test_learns_alternating():
    pl = feed(TwoLevelPredictor(entries=16, history_bits=4), "TF")
    assert pl > 0.9


def test_biased_stream_still_good():
    pl = feed(TwoLevelPredictor(entries=16, history_bits=4), "TTTTTTTF")
    assert pl > 0.8


def test_likely_bypasses_tables():
    p = TwoLevelPredictor(entries=16)
    likely = make("beql", "r1", "r2", "L")
    assert p.access(0, likely, True) is True
    assert p.access(0, likely, False) is False
    assert p.stats.likely_branches == 2


def test_validation():
    with pytest.raises(ValueError):
        TwoLevelPredictor(entries=100)


def test_available_via_config():
    src = """
.text
    li r1, 0
    li r2, 120
L:
    li   r6, 3
    rem  r3, r1, r6
    bnez r3, skip
    addi r4, r4, 1
skip:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""
    prog = parse(src)
    st2 = simulate(prog, r10k_config("twobit"))
    stl = simulate(prog, r10k_config("twolevel"))
    # The TTF-patterned branch is exactly what local history captures.
    assert stl.mispredict_events < st2.mispredict_events
    assert stl.ipc >= st2.ipc
