"""Functional executor: ISA semantics, traces, branch outcome recording."""

import pytest

from repro.isa import parse
from repro.sim.functional import (
    ExecutionLimitExceeded, FunctionalSim, final_state, run_program, to_signed,
)


def run_src(src, **kw):
    return final_state(parse(".text\n" + src), **kw)


# ---- arithmetic -----------------------------------------------------------------

def test_add_sub():
    s = run_src("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt\n")
    assert s.regs["r3"] == 12
    assert s.regs["r4"] == 2


def test_wraparound():
    s = run_src("li r1, 0x7FFFFFFF\naddi r2, r1, 1\nhalt\n")
    assert s.regs["r2"] == 0x80000000
    assert to_signed(s.regs["r2"]) == -(1 << 31)


def test_negative_values():
    s = run_src("li r1, 3\nli r2, 10\nsub r3, r1, r2\nhalt\n")
    assert to_signed(s.regs["r3"]) == -7


def test_mul_div_rem():
    s = run_src("li r1, -7\nli r2, 2\nmul r3, r1, r2\ndiv r4, r1, r2\n"
                "rem r5, r1, r2\nhalt\n")
    assert to_signed(s.regs["r3"]) == -14
    assert to_signed(s.regs["r4"]) == -3  # truncation toward zero
    assert to_signed(s.regs["r5"]) == -1


def test_div_by_zero_yields_zero():
    s = run_src("li r1, 5\nli r2, 0\ndiv r3, r1, r2\nhalt\n")
    assert s.regs["r3"] == 0
    assert s.stats.div_by_zero == 1


def test_logic_ops():
    s = run_src("li r1, 0xF0\nli r2, 0x0F\nand r3, r1, r2\nor r4, r1, r2\n"
                "xor r5, r1, r2\nnor r6, r1, r2\nhalt\n")
    assert s.regs["r3"] == 0
    assert s.regs["r4"] == 0xFF
    assert s.regs["r5"] == 0xFF
    assert s.regs["r6"] == 0xFFFFFF00


def test_shifts():
    s = run_src("li r1, -8\nsrl r2, r1, 1\nsra r3, r1, 1\nsll r4, r1, 1\nhalt\n")
    assert s.regs["r2"] == 0x7FFFFFFC
    assert to_signed(s.regs["r3"]) == -4
    assert to_signed(s.regs["r4"]) == -16


def test_set_compare():
    s = run_src("li r1, -1\nli r2, 1\nslt r3, r1, r2\nsltu r4, r1, r2\n"
                "seq r5, r1, r2\nsne r6, r1, r2\nhalt\n")
    assert s.regs["r3"] == 1      # signed: -1 < 1
    assert s.regs["r4"] == 0      # unsigned: 0xFFFFFFFF > 1
    assert s.regs["r5"] == 0
    assert s.regs["r6"] == 1


def test_r0_immutable():
    s = run_src("li r0, 99\nadd r1, r0, r0\nhalt\n")
    assert s.regs["r0"] == 0
    assert s.regs["r1"] == 0


def test_lui():
    s = run_src("lui r1, 0x1234\nhalt\n")
    assert s.regs["r1"] == 0x12340000


# ---- memory -----------------------------------------------------------------------

def test_load_store_word():
    s = run_src("li r1, 0x1000\nli r2, 0xCAFE\nsw r2, 4(r1)\nlw r3, 4(r1)\nhalt\n")
    assert s.regs["r3"] == 0xCAFE
    assert s.stats.loads == 1
    assert s.stats.stores == 1


def test_byte_sign_extension():
    s = run_src("li r1, 0x1000\nli r2, 0x80\nsb r2, 0(r1)\n"
                "lb r3, 0(r1)\nlbu r4, 0(r1)\nhalt\n")
    assert to_signed(s.regs["r3"]) == -128
    assert s.regs["r4"] == 0x80


def test_half_sign_extension():
    s = run_src("li r1, 0x1000\nli r2, 0x8000\nsh r2, 0(r1)\n"
                "lh r3, 0(r1)\nlhu r4, 0(r1)\nhalt\n")
    assert to_signed(s.regs["r3"]) == -32768
    assert s.regs["r4"] == 0x8000


def test_data_segment_loaded():
    prog = parse(".data\nv: .word 42\n.text\nla r1, v\nlw r2, 0(r1)\nhalt\n")
    s = final_state(prog)
    assert s.regs["r2"] == 42


# ---- control flow ------------------------------------------------------------------

def test_loop_counts():
    s = run_src("""
    li r1, 0
    li r2, 10
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
""")
    assert s.regs["r1"] == 10
    assert s.stats.branches == 10
    assert s.stats.taken_branches == 9


def test_branch_outcome_bitvector():
    prog = parse("""
.text
    li r1, 0
    li r2, 3
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
""")
    sim = FunctionalSim(prog)
    sim.run()
    (outcomes,) = sim.stats.branch_outcomes.values()
    assert outcomes == [True, True, False]


def test_jal_jr():
    s = run_src("""
    jal f
    li r2, 1
    halt
f:
    li r1, 42
    jr r31
""")
    assert s.regs["r1"] == 42
    assert s.regs["r2"] == 1


def test_branch_likely_semantics_match_plain():
    plain = run_src("li r1, 0\nli r2, 5\nL:\naddi r1, r1, 1\nbne r1, r2, L\nhalt\n")
    likely = run_src("li r1, 0\nli r2, 5\nL:\naddi r1, r1, 1\nbnel r1, r2, L\nhalt\n")
    assert plain.regs["r1"] == likely.regs["r1"] == 5


def test_cc_branches():
    s = run_src("li r1, 3\nli r2, 3\ncmpeq cc0, r1, r2\nbct cc0, Y\n"
                "li r3, 0\nhalt\nY:\nli r3, 1\nhalt\n")
    assert s.regs["r3"] == 1


def test_infinite_loop_detected():
    prog = parse(".text\nL:\nj L\n")
    with pytest.raises(ExecutionLimitExceeded):
        FunctionalSim(prog, max_steps=1000).run()


# ---- guards and conditional moves ----------------------------------------------------

def test_guard_annuls():
    s = run_src("li r1, 1\ncmpeq cc0, r1, r0\n(cc0) li r2, 99\n"
                "(!cc0) li r3, 77\nhalt\n")
    assert s.regs["r2"] == 0      # cc0 false: annulled
    assert s.regs["r3"] == 77     # negative-sense guard fires
    assert s.stats.annulled == 1


def test_annulled_in_trace():
    prog = parse(".text\ncmpeq cc0, r1, r1\n(!cc0) li r2, 5\nhalt\n")
    sim = FunctionalSim(prog)
    entries = list(sim.trace())
    assert [e.annulled for e in entries] == [False, True, False]


def test_cmovt_cmovf():
    s = run_src("li r1, 10\nli r2, 20\ncmpgt cc1, r1, r2\n"
                "cmovt r3, r1, cc1\ncmovf r3, r2, cc1\nhalt\n")
    assert s.regs["r3"] == 20


def test_movz_movn():
    s = run_src("li r1, 5\nli r2, 0\nmovz r3, r1, r2\nmovn r4, r1, r2\nhalt\n")
    assert s.regs["r3"] == 5
    assert s.regs["r4"] == 0


# ---- fp --------------------------------------------------------------------------------

def test_fp_roundtrip():
    s = run_src("li r1, 3\ncvtif f1, r1\nli r2, 4\ncvtif f2, r2\n"
                "fadd f3, f1, f2\nfmul f4, f1, f2\ncvtfi r3, f3\n"
                "cvtfi r4, f4\nhalt\n")
    assert s.regs["r3"] == 7
    assert s.regs["r4"] == 12


def test_fp_memory():
    s = run_src("li r1, 0x2000\nli r2, 5\ncvtif f1, r2\nswf f1, 0(r1)\n"
                "lwf f2, 0(r1)\ncvtfi r3, f2\nhalt\n")
    assert s.regs["r3"] == 5


# ---- stats -------------------------------------------------------------------------------

def test_branch_ratio():
    s = run_src("li r1, 0\nli r2, 4\nL:\naddi r1, r1, 1\nbne r1, r2, L\nhalt\n")
    st = s.stats
    # steps: 2 + 4*2 + 1 = 11; branches 4
    assert st.steps == 11
    assert st.branches == 4
    assert abs(st.branch_ratio - 4 / 11) < 1e-12


def test_trace_entries_have_addresses():
    prog = parse(".text\nli r1, 0x1000\nsw r1, 0(r1)\nlw r2, 0(r1)\nhalt\n")
    sim = FunctionalSim(prog)
    entries = list(sim.trace())
    assert entries[1].addr == 0x1000
    assert entries[2].addr == 0x1000
