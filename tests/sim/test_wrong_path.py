"""Wrong-path fetch modeling (optional timing-simulator mode)."""

import pytest

from repro.isa import parse
from repro.isa.randprog import random_program
from repro.sim import FunctionalSim, TimingSim, r10k_config

MISPREDICTY = """
.text
    li   r1, 0
    li   r2, 200
    li   r4, 12345
L:
    muli r4, r4, 1103515245
    addi r4, r4, 12345
    srl  r5, r4, 16
    andi r5, r5, 1
    beqz r5, even          # coin flip: constant mispredictions
    addi r10, r10, 1
    addi r11, r11, 2
    j    next
even:
    addi r12, r12, 1
    addi r13, r13, 2
next:
    addi r1, r1, 1
    bne  r1, r2, L
    halt
"""


def run(prog, wrong_path, **over):
    sim = TimingSim(r10k_config("twobit", **over), program=prog,
                    model_wrong_path=wrong_path)
    return sim.run_program(prog)


def test_committed_identical():
    """Wrong-path work must not change what commits."""
    prog = parse(MISPREDICTY)
    a = run(prog, False)
    b = run(prog, True)
    assert a.committed == b.committed
    assert a.mispredict_events == b.mispredict_events


def test_phantoms_squashed():
    prog = parse(MISPREDICTY)
    st = run(prog, True)
    assert st.wrong_path_squashed > 0
    st0 = run(prog, False)
    assert st0.wrong_path_squashed == 0


def test_occupancy_rises_with_wrong_path():
    """Phantoms occupy the reservation queues during resolution windows."""
    prog = parse(MISPREDICTY)
    a = run(prog, False, int_queue_size=4)
    b = run(prog, True, int_queue_size=4)
    assert b.queue_full_cycles["alu"] >= a.queue_full_cycles["alu"]


def test_cycles_close_to_baseline():
    """Phantom work competes for units but must not change the timing by
    more than the contention it models (bounded sanity check)."""
    prog = parse(MISPREDICTY)
    a = run(prog, False)
    b = run(prog, True)
    assert b.cycles >= a.cycles  # contention can only slow things
    assert b.cycles <= a.cycles * 1.5


@pytest.mark.parametrize("seed", range(6))
def test_random_programs_commit_conservation(seed):
    prog = random_program(seed)
    fsim = FunctionalSim(prog, record_outcomes=False)
    steps = sum(1 for _ in fsim.trace())
    st = run(prog, True)
    assert st.committed + st.annulled == steps


def test_perfect_prediction_no_phantoms():
    prog = parse(MISPREDICTY)
    sim = TimingSim(r10k_config("perfect"), program=prog,
                    model_wrong_path=True)
    st = sim.run_program(prog)
    assert st.wrong_path_squashed == 0
