"""Fence semantics and unknown-opcode rejection in both simulators."""

import pytest

from repro.isa import parse
from repro.isa.instruction import make
from repro.sim import (
    FunctionalSim, TimingSim, UnmodeledOpcode, r10k_config, simulate,
)


def _run_functional(src):
    sim = FunctionalSim(parse(".text\n" + src))
    sim.run()
    return sim


def test_fence_is_architecturally_transparent():
    # Same registers and memory with and without the barrier.
    body = ("li r1, 7\nli r16, 0x50000\nsw r1, 0(r16)\n"
            "{fence}lw r2, 0(r16)\nadd r3, r1, r2\nhalt\n")
    plain = _run_functional(body.format(fence=""))
    fenced = _run_functional(body.format(fence="fence\n"))
    assert fenced.regs["r3"] == plain.regs["r3"] == 14
    assert fenced.stats.fences == 1
    assert plain.stats.fences == 0
    # The fence is one extra dynamic instruction, nothing else.
    assert fenced.stats.steps == plain.stats.steps + 1


def test_fence_stalls_the_timing_pipeline():
    body = "\n".join(f"add r{3 + (i % 6)}, r1, r2" for i in range(8))
    src = f"li r1, 1\nli r2, 2\n{body}\n{{fence}}{body}\nhalt\n"
    cfg = r10k_config("perfect")
    plain = simulate(parse(".text\n" + src.format(fence="")), cfg)
    fenced = simulate(parse(".text\n" + src.format(fence="fence\n")), cfg)
    assert fenced.fence_events == 1
    assert fenced.fence_stall_cycles > 0
    assert plain.fence_events == 0
    # Draining the window + the configured penalty costs cycles.
    assert fenced.cycles > plain.cycles


def test_fence_stall_cost_scales_with_config():
    src = ("li r1, 1\nli r2, 2\n"
           + "\n".join(f"add r{3 + (i % 6)}, r1, r2" for i in range(8))
           + "\nfence\nadd r3, r1, r2\nhalt\n")
    prog = parse(".text\n" + src)
    cheap = simulate(prog, r10k_config("perfect", fence_stall=0))
    costly = simulate(prog, r10k_config("perfect", fence_stall=12))
    assert costly.cycles > cheap.cycles
    assert costly.fence_stall_cycles > cheap.fence_stall_cycles


def test_functional_sim_rejects_unknown_opcode():
    prog = parse(".text\nli r1, 1\nadd r2, r1, r1\nhalt\n")
    prog.instructions[1].op = "__undocumented_op__"  # buggy in-place pass
    sim = FunctionalSim(prog)
    with pytest.raises(UnmodeledOpcode, match="__undocumented_op__"):
        sim.run()


def test_timing_sim_rejects_unknown_unit_none_opcode():
    from repro.sim.functional import TraceEntry

    prog = parse(".text\nli r1, 1\nnop\nhalt\n")
    prog.instructions[1].op = "__undocumented_op__"
    tsim = TimingSim(r10k_config("perfect"))
    trace = [TraceEntry(ins, idx)
             for idx, ins in enumerate(prog.instructions)]
    with pytest.raises(UnmodeledOpcode):
        # The functional sim would already refuse; drive the timing model
        # directly to prove it refuses independently.
        tsim.run(iter(trace))


def test_fence_survives_dce_and_pins_schedule():
    # The fence has no dest and is not a nop: DCE must keep it, and the
    # local scheduler must not move memory ops across it.
    from repro.cfg.graph import build_cfg
    from repro.sched.ddg import build_ddg
    from repro.transform.dce import eliminate_dead_code

    prog = parse(".text\nli r16, 0x50000\nlw r1, 0(r16)\nfence\n"
                 "lw r2, 4(r16)\nhalt\n")
    cfg = build_cfg(prog)
    eliminate_dead_code(cfg)
    ops = [i.op for i in cfg.to_program().instructions]
    assert "fence" in ops

    block = cfg.entry
    ddg = build_ddg(block.instructions)
    fence_idx = next(i for i, ins in enumerate(block.instructions)
                     if ins.op == "fence")

    def reaches(src, dst):
        seen, stack = set(), [src]
        while stack:
            i = stack.pop()
            if i == dst:
                return True
            if i in seen:
                continue
            seen.add(i)
            stack.extend(e.dst for e in ddg.successors(i))
        return False

    # Every earlier instruction is ordered before the fence, and the
    # fence is ordered before every later one.
    for j in range(fence_idx):
        assert reaches(j, fence_idx)
    for j in range(fence_idx + 1, len(block.instructions)):
        assert reaches(fence_idx, j)
