"""Sparse memory tests, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.memory import AlignmentError, Memory


def test_default_zero():
    m = Memory()
    assert m.read_word(0x1000) == 0
    assert m.read_byte(0xDEADBEEF) == 0


def test_word_roundtrip():
    m = Memory()
    m.write_word(0x100, 0x11223344)
    assert m.read_word(0x100) == 0x11223344
    assert m.read_byte(0x100) == 0x44  # little endian
    assert m.read_byte(0x103) == 0x11


def test_word_wraps_32bit():
    m = Memory()
    m.write_word(0x100, -1)
    assert m.read_word(0x100) == 0xFFFFFFFF


def test_unaligned_word_raises():
    m = Memory()
    with pytest.raises(AlignmentError):
        m.read_word(0x101)
    with pytest.raises(AlignmentError):
        m.write_word(0x102, 5)


def test_half_roundtrip():
    m = Memory()
    m.write_half(0x200, 0xBEEF)
    assert m.read_half(0x200) == 0xBEEF
    with pytest.raises(AlignmentError):
        m.read_half(0x201)


def test_cross_page_bytes():
    m = Memory()
    from repro.sim.memory import PAGE_SIZE
    base = PAGE_SIZE - 2
    m.write_bytes(base, b"abcd")
    assert m.read_bytes(base, 4) == b"abcd"


def test_load_image():
    m = Memory()
    m.load_image({0x10000000: 0x41, 0x10000001: 0x42})
    assert m.read_bytes(0x10000000, 2) == b"AB"


def test_cstring():
    m = Memory()
    m.write_bytes(0x300, b"hello\x00world")
    assert m.read_cstring(0x300) == b"hello"


@given(st.integers(min_value=0, max_value=0xFFFFFFFC // 4 * 4),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=100)
def test_word_roundtrip_property(addr, value):
    addr &= ~3
    m = Memory()
    m.write_word(addr, value)
    assert m.read_word(addr) == value


@given(st.dictionaries(st.integers(min_value=0, max_value=1 << 20),
                       st.integers(min_value=0, max_value=255), max_size=50))
@settings(max_examples=50)
def test_byte_store_property(writes):
    m = Memory()
    for a, v in writes.items():
        m.write_byte(a, v)
    for a, v in writes.items():
        assert m.read_byte(a) == v
