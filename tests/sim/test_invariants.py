"""Timing-simulator invariants, checked over random programs.

These are differential/metamorphic properties: they must hold for ANY
program, so the random generator gives broad coverage cheaply.
"""

import pytest

from repro.isa.randprog import random_program
from repro.sim import FunctionalSim, TimingSim, r10k_config

SEEDS = list(range(12))


def run(prog, predictor="twobit", **over):
    fsim = FunctionalSim(prog, record_outcomes=False)
    st = TimingSim(r10k_config(predictor, **over)).run(fsim.trace())
    return st, fsim.stats


@pytest.mark.parametrize("seed", SEEDS)
def test_ipc_bounded_by_width(seed):
    st, _ = run(random_program(seed))
    assert 0 < st.ipc <= 4.0 + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_commit_conservation(seed):
    """Every dynamically executed instruction commits exactly once."""
    prog = random_program(seed)
    st, ex = run(prog)
    assert st.committed + st.annulled == ex.steps


@pytest.mark.parametrize("seed", SEEDS)
def test_cycles_lower_bound(seed):
    """Cycles >= instructions / commit width (can't beat the width)."""
    prog = random_program(seed)
    st, ex = run(prog)
    assert st.cycles >= ex.steps / 4.0 - 1


@pytest.mark.parametrize("seed", SEEDS)
def test_perfect_never_slower(seed):
    prog = random_program(seed)
    st2, _ = run(prog, "twobit")
    stp, _ = run(prog, "perfect")
    assert stp.cycles <= st2.cycles


@pytest.mark.parametrize("seed", SEEDS)
def test_perfect_has_no_mispredicts(seed):
    stp, _ = run(random_program(seed), "perfect")
    assert stp.mispredict_events == 0
    assert stp.predictor.accuracy == 1.0


@pytest.mark.parametrize("seed", SEEDS)
def test_bigger_machine_never_slower(seed):
    prog = random_program(seed)
    small, _ = run(prog, rob_size=8, int_queue_size=4, addr_queue_size=4)
    big, _ = run(prog)
    assert big.cycles <= small.cycles


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_deterministic(seed):
    prog = random_program(seed)
    a, _ = run(prog)
    b, _ = run(prog)
    assert a.cycles == b.cycles
    assert a.queue_full_cycles == b.queue_full_cycles
    assert a.unit_issues == b.unit_issues


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_queue_full_fraction_valid(seed):
    st, _ = run(random_program(seed))
    for name in ("br", "ldst", "alu", "fp"):
        pct = st.queue_full_pct(name)
        assert 0.0 <= pct <= 100.0


def test_rename_register_stall():
    """Only 32 rename registers: a burst of >32 in-flight defs must stall
    dispatch rather than crash or deadlock."""
    from repro.isa import parse

    body = "\n".join(f"add r{1 + (i % 20)}, r0, r0" for i in range(100))
    prog = parse(f".text\n{body}\nhalt\n")
    st, ex = run(prog, "perfect", rob_size=64)
    assert st.committed == ex.steps


def test_branch_buffer_full_stalls():
    from repro.isa import parse

    # Many independent branches in flight with a tiny branch buffer.
    lines = [".text", "    li r1, 1"]
    for i in range(20):
        lines.append(f"    beq r0, r1, T{i}")
        lines.append(f"T{i}:")
        lines.append("    nop")
    lines.append("    halt")
    prog = parse("\n".join(lines))
    small, _ = run(prog, "perfect", branch_buffer_size=1)
    big, _ = run(prog, "perfect", branch_buffer_size=16)
    assert big.cycles <= small.cycles
    assert small.queue_full_cycles["br"] > 0
