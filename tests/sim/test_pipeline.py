"""Timing-pipeline tests: latency behavior, stalls, occupancy, IPC."""

import pytest

from repro.isa import parse
from repro.sim import MachineConfig, TimingSim, r10k_config, simulate


def sim_src(src, predictor="perfect", **over):
    cfg = r10k_config(predictor, **over)
    return simulate(parse(".text\n" + src), cfg)


def test_serial_dependent_chain():
    # N dependent adds: IPC must approach 1 (latency 1, full bypass).
    n = 64
    body = "\n".join("add r1, r1, r2" for _ in range(n))
    st = sim_src(f"li r1, 0\nli r2, 1\n{body}\nhalt\n")
    assert st.committed == n + 3
    # The chain serializes: at least n cycles.
    assert st.cycles >= n
    assert st.cycles <= n + 20


def _loop_of(body: str, iters: int = 50) -> str:
    """Wrap a straight-line body in a counted loop so the icache warms up."""
    return (f"li r9, 0\nli r10, {iters}\nLOOP:\n{body}\n"
            f"addi r9, r9, 1\nbne r9, r10, LOOP\nhalt\n")


def test_independent_ops_superscalar():
    # Independent adds on distinct registers: 2 ALUs -> IPC close to 2.
    body = "\n".join(f"add r{3 + (i % 6)}, r1, r2" for i in range(12))
    st = sim_src("li r1, 1\nli r2, 2\n" + _loop_of(body))
    assert st.ipc > 1.5


def test_dispatch_width_bounds_ipc():
    body = "\n".join(f"add r{3 + (i % 6)}, r1, r2" for i in range(12))
    st = sim_src("li r1, 1\nli r2, 2\n" + _loop_of(body))
    assert st.ipc <= 4.0 + 1e-9


def test_load_latency():
    # Dependent loads serialize at ldst latency each.
    st_hit = sim_src(
        "li r1, 0x1000\nsw r1, 0(r1)\n" +
        "\n".join("lw r1, 0(r1)" for _ in range(16)) + "\nhalt\n")
    # Each load after the first hits the same line: latency 2 per load.
    assert st_hit.cycles >= 16 * 2


def test_dcache_miss_penalty_visible():
    # Strided loads missing every time vs hitting the same line.
    miss_body = "\n".join(f"lw r{3 + i % 4}, {i * 64}(r1)" for i in range(32))
    hit_body = "\n".join(f"lw r{3 + i % 4}, 0(r1)" for i in range(32))
    st_miss = sim_src(f"li r1, 0x1000\n{miss_body}\nhalt\n")
    st_hit = sim_src(f"li r1, 0x1000\n{hit_body}\nhalt\n")
    assert st_miss.dcache.misses > st_hit.dcache.misses
    # Only one ld/st unit: misses make the program take longer.
    assert st_miss.cycles > st_hit.cycles


def test_mispredict_costs_cycles():
    # A data-dependent unpredictable-ish branch pattern under 2-bit vs
    # perfect prediction.
    src = """
    li r1, 0
    li r2, 200
    li r5, 0
L:
    andi r3, r1, 1
    beqz r3, E
    addi r5, r5, 1
E:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""
    st_2bit = sim_src(src, predictor="twobit")
    st_perf = sim_src(src, predictor="perfect")
    assert st_perf.cycles < st_2bit.cycles
    assert st_perf.ipc > st_2bit.ipc
    assert st_2bit.mispredict_events > 0
    assert st_perf.mispredict_events == 0


def test_alternating_branch_mispredicts_under_twobit():
    # T,F,T,F... defeats a 2-bit counter (it oscillates between weak states).
    src = """
    li r1, 0
    li r2, 100
L:
    andi r3, r1, 1
    bnez r3, ODD
    nop
ODD:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""
    st = sim_src(src, predictor="twobit")
    # The bnez alternates: expect a large mispredict count.
    assert st.mispredict_events > 30


def test_jr_stalls_under_realistic_but_not_perfect():
    src = """
    li r4, 0
    li r5, 50
L:
    jal f
    addi r4, r4, 1
    bne r4, r5, L
    halt
f:
    jr r31
"""
    st_real = sim_src(src, predictor="twobit")
    st_perf = sim_src(src, predictor="perfect")
    assert st_real.indirect_stall_events == 50
    assert st_perf.indirect_stall_events == 0
    assert st_perf.cycles < st_real.cycles


def test_committed_excludes_annulled():
    src = """
    li r1, 1
    cmpeq cc0, r1, r0
    (cc0) li r2, 5
    (cc0) li r3, 6
    halt
"""
    st = sim_src(src)
    assert st.annulled == 2
    assert st.committed == 3
    assert st.ipc == st.committed / st.cycles


def test_queue_full_accounting():
    # A long chain of dependent loads backs up the address queue.
    cfg_small = r10k_config("perfect", addr_queue_size=2)
    body = "li r1, 0x1000\nsw r1, 0(r1)\n" + \
        "\n".join("lw r1, 0(r1)" for _ in range(30)) + "\nhalt\n"
    st = simulate(parse(".text\n" + body), cfg_small)
    assert st.queue_full_cycles["ldst"] > 0
    assert st.queue_full_pct("ldst") > 0


def test_rob_limits_inflight():
    cfg = r10k_config("perfect", rob_size=4)
    n = 40
    body = "\n".join(f"add r{3 + (i % 20)}, r1, r2" for i in range(n))
    st = simulate(parse(f".text\nli r1, 1\nli r2, 2\n{body}\nhalt\n"), cfg)
    st_big = sim_src(f"li r1, 1\nli r2, 2\n{body}\nhalt\n")
    assert st.cycles >= st_big.cycles


def test_unit_full_alu():
    # Saturate both ALUs with independent work.
    n = 80
    body = "\n".join(f"add r{3 + (i % 20)}, r1, r2" for i in range(n))
    st = sim_src(f"li r1, 1\nli r2, 2\n{body}\nhalt\n")
    assert st.unit_full_cycles["alu"] > 0


def test_fpdiv_unpipelined():
    body = "\n".join(f"fdiv f{3 + i % 4}, f1, f2" for i in range(8))
    st = sim_src(f"li r1, 1\ncvtif f1, r1\nli r2, 2\ncvtif f2, r2\n{body}\nhalt\n")
    # 8 divides at 3 cycles each, unpipelined: >= 24 cycles.
    assert st.cycles >= 24


def test_stats_summary_renders():
    st = sim_src("li r1, 1\nhalt\n")
    text = st.summary()
    assert "IPC" in text
    assert "cycles" in text


def test_branch_likely_avoids_bht():
    # A loop branch taken 99x then not-taken once: likely version predicts
    # all taken iterations correctly from the first one.
    src_plain = """
    li r1, 0
    li r2, 100
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""
    src_likely = src_plain.replace("bne ", "bnel ")
    st_plain = sim_src(src_plain, predictor="twobit")
    st_likely = sim_src(src_likely, predictor="twobit")
    # Plain: cold 2-bit counter mispredicts the first iteration(s) + BTB miss.
    # Likely: only the final fall-out mispredicts.
    assert st_likely.mispredict_events <= st_plain.mispredict_events
    assert st_likely.predictor.likely_branches == 100
