"""SweepSpec validation: grid-naming errors and duplicate-axis rejection."""

import pytest

from repro.engine import SweepSpec, grid_from_dict


def _spec(config=None, heur=None):
    return SweepSpec(config_grid=grid_from_dict(config or {}),
                     heur_grid=grid_from_dict(heur or {}))


def test_valid_spec_passes():
    _spec(config={"fetch_width": (2, 4)},
          heur={"speculation_bias": (0.5, 0.8)}).validate()


def test_unknown_config_field_names_grid_and_field():
    with pytest.raises(ValueError) as exc:
        _spec(config={"warp_core": (1,)}).validate()
    msg = str(exc.value)
    assert "config_grid" in msg
    assert "MachineConfig" in msg
    assert "warp_core" in msg


def test_unknown_heur_field_names_grid_and_field():
    with pytest.raises(ValueError) as exc:
        _spec(heur={"warp_core": (1,)}).validate()
    msg = str(exc.value)
    assert "heur_grid" in msg
    assert "FeedbackHeuristics" in msg
    assert "warp_core" in msg


def test_predictor_axis_rejected_with_grid_name():
    with pytest.raises(ValueError, match="config_grid.*predictor"):
        _spec(config={"predictor": ("perfect",)}).validate()


def test_duplicate_within_one_grid_rejected():
    spec = SweepSpec(heur_grid=(("min_gain", (0.0,)),
                                ("min_gain", (1.0,))))
    with pytest.raises(ValueError) as exc:
        spec.validate()
    msg = str(exc.value)
    assert "duplicate sweep axis" in msg
    assert "min_gain" in msg
    assert "appears twice in heur_grid" in msg


def test_field_namespaces_currently_disjoint():
    """No field name is shared between the two grids' dataclasses today;
    if one ever appears, the cross-grid duplicate error (below) is what
    users will see instead of a silent override."""
    from dataclasses import fields

    from repro.core.heuristics import FeedbackHeuristics
    from repro.sim.config import MachineConfig

    config_names = {f.name for f in fields(MachineConfig)}
    heur_names = {f.name for f in fields(FeedbackHeuristics)}
    assert not (config_names & heur_names)


def test_same_name_across_both_grids_rejected(monkeypatch):
    """The cross-grid branch: a name valid in both grids is rejected
    with a message naming both grids (exercised by widening the known
    field sets, since the real dataclasses are disjoint today)."""
    import repro.engine.sweep as sweep_mod

    real_fields = sweep_mod.dc_fields

    class _Fake:
        name = "shared_knob"

    def fake_fields(cls):
        return list(real_fields(cls)) + [_Fake]

    monkeypatch.setattr(sweep_mod, "dc_fields", fake_fields)
    spec = SweepSpec(config_grid=(("shared_knob", (1,)),),
                     heur_grid=(("shared_knob", (2,)),))
    with pytest.raises(ValueError) as exc:
        spec.validate()
    msg = str(exc.value)
    assert "duplicate sweep axis" in msg
    assert "appears in both config_grid and heur_grid" in msg


def test_error_not_raised_deep_in_worker():
    """run_sweep surfaces the validation error before any evaluation."""
    from repro.engine.sweep import run_sweep_impl

    with pytest.raises(ValueError, match="heur_grid"):
        run_sweep_impl(_spec(heur={"bogus": (1,)}))
