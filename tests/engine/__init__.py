"""Tests for the parallel evaluation engine (cache, keys, pool, suite)."""
