"""Cache-key canonicalization: stability, sensitivity, collisions."""

import subprocess
import sys
from dataclasses import replace

import pytest

from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.engine import (
    SCHEMA_VERSION, canonical, canonical_json, cell_key, digest,
    program_digest,
)
from repro.isa import parse
from repro.sim.config import r10k_config

SRC = ".text\nli r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n"


def _prog():
    return parse(SRC, name="tiny")


def test_digest_is_hex_sha256():
    key = digest({"a": 1})
    assert len(key) == 64
    assert all(c in "0123456789abcdef" for c in key)


def test_canonical_json_key_order_independent():
    assert canonical_json({"b": 2, "a": 1}) == canonical_json({"a": 1, "b": 2})


def test_canonical_handles_tuples_and_sets():
    assert canonical((1, 2)) == [1, 2]
    assert canonical({3, 1, 2}) == [1, 2, 3]


def test_canonical_rejects_uncanonicalizable():
    with pytest.raises(TypeError):
        canonical(object())


def test_program_digest_stable_across_reparses():
    assert program_digest(_prog()) == program_digest(_prog())


def test_program_digest_ignores_uid_drift():
    # Parsing other programs first advances the global uid counter; the
    # digest must not see it.
    parse(SRC, name="warmup")
    parse(SRC, name="warmup2")
    assert program_digest(_prog()) == program_digest(_prog())


def test_cell_key_stable_within_process():
    config = r10k_config("twobit")
    k1 = cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS, config, 1000)
    k2 = cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS, config, 1000)
    assert k1 == k2


def test_cell_key_sensitive_to_every_component():
    config = r10k_config("twobit")
    base = cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS, config, 1000)
    assert base != cell_key(
        parse(SRC.replace("li r1, 1", "li r1, 9"), name="tiny"),
        "2bitBP", DEFAULT_HEURISTICS, config, 1000)
    assert base != cell_key(_prog(), "Proposed", DEFAULT_HEURISTICS,
                            config, 1000)
    assert base != cell_key(
        _prog(), "2bitBP",
        replace(DEFAULT_HEURISTICS, speculation_bias=0.99), config, 1000)
    assert base != cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS,
                            r10k_config("perfect"), 1000)
    assert base != cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS,
                            config, 2000)
    assert base != cell_key(_prog(), "2bitBP", DEFAULT_HEURISTICS, config,
                            1000, schema_version=SCHEMA_VERSION + 1)


def test_no_collisions_across_benchmarks():
    from repro.workloads import benchmark_programs

    config = r10k_config("twobit")
    progs = benchmark_programs(0.01)
    keys = {cell_key(p, s, DEFAULT_HEURISTICS, config, 1000)
            for p in progs.values()
            for s in ("2bitBP", "Proposed", "PerfectBP")}
    assert len(keys) == len(progs) * 3


CHILD = r"""
import sys
sys.path.insert(0, {src_path!r})
from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.engine import cell_key
from repro.isa import parse
from repro.sim.config import r10k_config
prog = parse({src!r}, name="tiny")
print(cell_key(prog, "2bitBP", DEFAULT_HEURISTICS,
               r10k_config("twobit"), 1000))
"""


def test_cell_key_stable_across_processes(tmp_path):
    """The same inputs hash identically under different hash seeds."""
    import repro

    src_path = str(next(iter(repro.__path__)) + "/..")
    script = CHILD.format(src_path=src_path, src=SRC)
    keys = set()
    for hashseed in ("0", "42"):
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
            check=True)
        keys.add(out.stdout.strip())
    config = r10k_config("twobit")
    keys.add(cell_key(parse(SRC, name="tiny"), "2bitBP",
                      DEFAULT_HEURISTICS, config, 1000))
    assert len(keys) == 1, f"key drift across processes: {keys}"
