"""Process-pool fan-out: order, parity with serial, worker containment."""

import json

import pytest

from repro.engine import SCHEME_PLAN, CellSpec, run_cells
from repro.workloads import benchmark_programs


@pytest.fixture(scope="module")
def programs():
    """Two small benchmarks (module-scoped: parsing is not free)."""
    progs = benchmark_programs(0.01)
    return {name: progs[name] for name in ("compress", "xlisp")}


def _specs(programs, max_steps=2_000_000):
    specs = []
    for name, prog in programs.items():
        payload = prog.to_dict()
        for scheme, kind, predictor in SCHEME_PLAN:
            specs.append(CellSpec(
                benchmark=name, scheme=scheme, kind=kind,
                predictor=predictor, program=payload,
                max_steps=max_steps))
    return specs


def test_serial_results_in_input_order(programs):
    specs = _specs(programs)
    payloads = run_cells(specs, jobs=1, programs=programs)
    assert [(p["benchmark"], p["scheme"]) for p in payloads] == \
        [(s.benchmark, s.scheme) for s in specs]
    assert all(p["failure"] is None for p in payloads)


def test_parallel_byte_identical_to_serial(programs):
    specs = _specs(programs)
    serial = run_cells(specs, jobs=1, programs=programs)
    parallel = run_cells(specs, jobs=2)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


def test_fail_cells_propagate_from_workers(programs):
    # A 10-step budget cannot run any benchmark: every cell must come
    # back as a contained FAIL payload, not an exception.
    specs = _specs(programs, max_steps=10)
    payloads = run_cells(specs, jobs=2)
    assert len(payloads) == len(specs)
    for p in payloads:
        assert p["failure"] is not None
        assert p["stats"] is None
    # The functional step budget is the failure the worker actually hit.
    assert any("StepBudgetExceeded" in p["failure"] for p in payloads)


def test_strict_spec_raises_in_serial(programs):
    spec = _specs({"compress": programs["compress"]}, max_steps=10)[0]
    strict_spec = CellSpec(
        benchmark=spec.benchmark, scheme=spec.scheme, kind=spec.kind,
        predictor=spec.predictor, program=spec.program, max_steps=10,
        strict=True)
    with pytest.raises(Exception):
        run_cells([strict_spec], jobs=1)


class TestExecutionMode:
    """The oversubscription guard behind every pool fan-out."""

    def test_jobs_one_is_plain_serial(self):
        from repro.engine import execution_mode

        decision = execution_mode(jobs=1, n_items=8)
        assert decision.mode == "serial"
        assert decision.workers == 1

    def test_single_item_is_plain_serial(self):
        from repro.engine import execution_mode

        decision = execution_mode(jobs=4, n_items=1)
        assert decision.mode == "serial"
        assert decision.workers == 1

    def test_oversubscribed_host_falls_back_to_serial(self, monkeypatch):
        import os

        from repro.engine import execution_mode

        monkeypatch.delenv("REPRO_POOL_FORCE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        decision = execution_mode(jobs=4, n_items=8)
        assert decision.mode == "serial-oversubscribed"
        assert decision.workers == 1
        assert decision.cpus == 1

    def test_workers_capped_by_cpus_and_items(self, monkeypatch):
        import os

        from repro.engine import execution_mode

        monkeypatch.delenv("REPRO_POOL_FORCE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        decision = execution_mode(jobs=16, n_items=3)
        assert decision.mode == "parallel"
        assert decision.workers == 3  # min(jobs, n_items, cpus)

    def test_force_overrides_the_cpu_cap(self, monkeypatch):
        import os

        from repro.engine import execution_mode

        monkeypatch.setenv("REPRO_POOL_FORCE", "1")
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        decision = execution_mode(jobs=2, n_items=8)
        assert decision.mode == "parallel"
        assert decision.workers == 2

    def test_last_decision_recorded_for_bench(self, monkeypatch):
        from repro.engine import execution_mode
        from repro.engine import pool

        decision = execution_mode(jobs=1, n_items=5)
        assert pool.LAST_DECISION is decision
        d = decision.to_dict()
        assert d["mode"] == "serial"
        assert set(d) == {"mode", "workers", "jobs", "n_items", "cpus"}

    def test_oversubscribed_fallback_counted_when_metrics_on(
            self, monkeypatch):
        import os

        from repro.engine import execution_mode
        from repro.obs.metrics import REGISTRY

        monkeypatch.delenv("REPRO_POOL_FORCE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        REGISTRY.reset()
        REGISTRY.enable()
        try:
            execution_mode(jobs=4, n_items=8)
            snap = REGISTRY.snapshot()["counters"]
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert snap["engine.pool.serial-oversubscribed"] == 1
