"""Property-based tests for engine keys and cache eviction (hypothesis).

The cache key invariants (stability under dict ordering, sensitivity to
every field) and the LRU eviction order are exactly the kind of claims a
handful of examples under-tests — hypothesis searches the input space.
"""

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.engine.cache import ArtifactCache
from repro.engine.keys import canonical_json, digest

# JSON-ish scalars that canonical() accepts (NaN breaks JSON equality,
# so floats are bounded and finite).
scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**40, max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20))
keys_st = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=0x7F),
    min_size=1, max_size=8)
values = st.recursive(
    scalars,
    lambda child: st.one_of(st.lists(child, max_size=4),
                            st.dictionaries(keys_st, child, max_size=4)),
    max_leaves=12)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(keys_st, values, min_size=1, max_size=6))
def test_canonical_json_ignores_insertion_order(d):
    shuffled = dict(reversed(list(d.items())))
    assert canonical_json(d) == canonical_json(shuffled)
    assert digest(d) == digest(shuffled)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(keys_st, st.integers(min_value=0, max_value=1000),
                       min_size=1, max_size=6),
       st.data())
def test_digest_sensitive_to_every_field(d, data):
    """Changing any single value, or dropping any single key, re-keys."""
    base = digest(d)
    victim = data.draw(st.sampled_from(sorted(d)))
    changed = {**d, victim: d[victim] + 1}
    assert digest(changed) != base
    dropped = {k: v for k, v in d.items() if k != victim}
    assert digest(dropped) != base


@settings(max_examples=50, deadline=None)
@given(values)
def test_digest_is_stable(v):
    assert digest(v) == digest(v)
    assert len(digest(v)) == 64


@settings(max_examples=25, deadline=None)
@given(st.permutations(list(range(6))))
def test_lru_eviction_drops_least_recent_first(order):
    """Whatever order entries were touched, eviction removes the coldest.

    Timestamps are assigned explicitly with os.utime — the property must
    not depend on filesystem clock granularity.  (tempfile instead of the
    tmp_path fixture: function-scoped fixtures break hypothesis's
    per-example isolation.)
    """
    with tempfile.TemporaryDirectory() as root:
        cache = ArtifactCache(root, max_bytes=10**9)  # no eviction yet
        ks = [digest({"lru-entry": i}) for i in range(6)]
        for k in ks:
            cache.put(k, {"v": k})
        entry_size = cache._path(ks[0]).stat().st_size
        # Touch entries in the drawn order: later touch = hotter.
        for age, i in enumerate(order):
            os.utime(cache._path(ks[i]), (age, age))
        # Now cap the store so only 3 old entries + the new one fit.
        cache.max_bytes = 4 * entry_size
        newest = digest({"lru-entry": "trigger"})
        cache.put(newest, {"v": "trigger"})
        os.utime(cache._path(newest), (100, 100))
        cache._evict()

        survivors = {k for k in ks if cache._path(k).exists()}
        hottest = {ks[i] for i in order[-3:]}
        assert survivors == hottest
        assert cache._path(newest).exists()
        assert cache.counters.evictions == 3
