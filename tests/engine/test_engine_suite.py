"""Engine suite runner: the PR's acceptance criteria as tests."""

import json

import pytest

from repro.engine import ArtifactCache, COUNTERS, SCHEME_PLAN, run_suite
from repro.eval.runner import suite_to_dict
from repro.workloads import benchmark_programs

SCALE = 0.01
MAX_STEPS = 2_000_000


@pytest.fixture(scope="module")
def programs():
    """The full (tiny-scale) benchmark set, parsed once."""
    return benchmark_programs(SCALE)


def test_warm_cache_does_zero_compile_or_simulate(tmp_path, programs):
    """Acceptance: a warm-cache suite run must not compile or simulate."""
    cache = ArtifactCache(tmp_path)
    run_suite(benchmarks=programs, max_steps=MAX_STEPS, cache=cache)
    COUNTERS.reset()
    cache.counters.reset()
    runs = run_suite(benchmarks=programs, max_steps=MAX_STEPS, cache=cache)
    assert COUNTERS.compiles == 0
    assert COUNTERS.simulates == 0
    assert cache.counters.hits == len(programs) * len(SCHEME_PLAN)
    assert cache.counters.misses == 0
    assert all(run.ok for run in runs.values())


def test_warm_results_identical_to_cold(tmp_path, programs):
    cache = ArtifactCache(tmp_path)
    cold = run_suite(benchmarks=programs, max_steps=MAX_STEPS, cache=cache)
    warm = run_suite(benchmarks=programs, max_steps=MAX_STEPS, cache=cache)
    assert json.dumps(suite_to_dict(cold), sort_keys=True) == \
        json.dumps(suite_to_dict(warm), sort_keys=True)


def test_parallel_identical_to_serial(programs):
    """Acceptance: --jobs 2 must reproduce the serial results exactly."""
    serial = run_suite(benchmarks=programs, max_steps=MAX_STEPS)
    parallel = run_suite(benchmarks=programs, max_steps=MAX_STEPS, jobs=2)
    assert json.dumps(suite_to_dict(serial), sort_keys=True) == \
        json.dumps(suite_to_dict(parallel), sort_keys=True)


def test_corrupted_cache_entry_recomputes(tmp_path, programs):
    one = {"compress": programs["compress"]}
    cache = ArtifactCache(tmp_path)
    cold = run_suite(benchmarks=one, max_steps=MAX_STEPS, cache=cache)
    for entry in list(cache._entry_files()):
        entry.write_text("garbage{")
    warm = run_suite(benchmarks=one, max_steps=MAX_STEPS, cache=cache)
    assert cache.counters.corrupt >= 1
    assert warm["compress"].ok
    assert json.dumps(suite_to_dict(cold), sort_keys=True) == \
        json.dumps(suite_to_dict(warm), sort_keys=True)


def test_failed_cells_are_not_cached(tmp_path, programs):
    cache = ArtifactCache(tmp_path)
    runs = run_suite(benchmarks={"xlisp": programs["xlisp"]}, max_steps=10,
                     cache=cache)
    assert not runs["xlisp"].ok
    assert cache.stats()["entries"] == 0


def test_parallel_fail_cells_reach_the_tables(programs):
    runs = run_suite(benchmarks={"xlisp": programs["xlisp"]}, max_steps=10,
                     jobs=2)
    run = runs["xlisp"]
    assert not run.ok
    assert all(cell.failure for cell in run.results.values())


def test_strict_propagates_from_parallel_workers(programs):
    with pytest.raises(RuntimeError):
        run_suite(benchmarks={"xlisp": programs["xlisp"]}, max_steps=10,
                  jobs=2, strict=True)


def test_seed_changes_cache_keys(tmp_path):
    cache = ArtifactCache(tmp_path)
    run_suite(scale=SCALE, max_steps=MAX_STEPS, cache=cache, seed=1)
    first = cache.stats()["entries"]
    run_suite(scale=SCALE, max_steps=MAX_STEPS, cache=cache, seed=2)
    assert cache.stats()["entries"] > first  # different inputs, new cells
    hits_before = cache.counters.hits
    run_suite(scale=SCALE, max_steps=MAX_STEPS, cache=cache, seed=1)
    assert cache.counters.hits > hits_before  # same seed hits again
