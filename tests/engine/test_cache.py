"""Artifact-cache behavior: round-trips, corruption recovery, eviction."""

import json
import os

from repro.engine import ArtifactCache, default_cache_dir
from repro.engine.keys import digest


def _key(i=0):
    return digest({"test-entry": i})


def test_miss_then_hit_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    payload = {"stats": {"cycles": 123}, "nested": [1, 2, {"a": None}]}
    assert cache.get(_key()) is None
    cache.put(_key(), payload)
    assert cache.get(_key()) == payload
    assert cache.counters.misses == 1
    assert cache.counters.hits == 1
    assert cache.counters.puts == 1


def test_entries_survive_reopen(tmp_path):
    ArtifactCache(tmp_path).put(_key(), {"v": 1})
    assert ArtifactCache(tmp_path).get(_key()) == {"v": 1}


def test_corrupted_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_key(), {"v": 1})
    path = cache._path(_key())
    path.write_text("{ not json at all")
    assert cache.get(_key()) is None
    assert cache.counters.corrupt == 1
    assert not path.exists()  # bad entry deleted


def test_wrong_shape_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    path = cache._path(_key())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([1, 2, 3]))  # valid JSON, wrong shape
    assert cache.get(_key()) is None
    assert cache.counters.corrupt == 1


def test_key_mismatch_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_key(0), {"v": 1})
    # Simulate a hash-prefix collision/rename: entry stored under the
    # wrong name must not be served.
    target = cache._path(_key(1))
    target.parent.mkdir(parents=True, exist_ok=True)
    os.replace(cache._path(_key(0)), target)
    assert cache.get(_key(1)) is None


def test_lru_eviction_keeps_newest(tmp_path):
    small = ArtifactCache(tmp_path, max_bytes=400)
    for i in range(10):
        small.put(_key(i), {"v": "x" * 50, "i": i})
    assert small.counters.evictions > 0
    assert small.stats()["total_bytes"] <= 400
    # The most recent entry always survives its own put.
    assert small.get(_key(9)) == {"v": "x" * 50, "i": 9}


def test_clear(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(3):
        cache.put(_key(i), {"i": i})
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0
    assert cache.get(_key(0)) is None


def test_default_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    assert default_cache_dir() == tmp_path / "envcache"
    cache = ArtifactCache()
    cache.put(_key(), {"v": 1})
    assert (tmp_path / "envcache").is_dir()


def test_stats_shape(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_key(), {"v": 1})
    s = cache.stats()
    for field in ("root", "entries", "total_bytes", "max_bytes", "hits",
                  "misses", "puts", "evictions", "corrupt", "hit_rate"):
        assert field in s
    assert s["entries"] == 1
