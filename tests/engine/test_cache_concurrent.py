"""Concurrent multi-process mutation of one ArtifactCache root.

Writes are already atomic (temp file + ``os.replace``); the historical
gap was the index/LRU path: a process could ``stat``/``unlink`` an entry
another process had just evicted and crash on ``ENOENT``.  These tests
hammer one store from several processes with an eviction-tight size cap
and assert every operation degrades to a miss/skip, never an exception.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine.cache import ArtifactCache


def _hammer(args: tuple) -> int:
    """One worker: interleaved put/get/clear cycles against a shared root.

    Returns the number of successful operations; any unexpected exception
    propagates and fails the test in the parent.
    """
    root, worker, rounds = args
    # Tight cap (a few KB) so almost every put triggers the LRU scan and
    # eviction path while the sibling process mutates the same files.
    store = ArtifactCache(root, max_bytes=4096)
    done = 0
    payload = {"blob": "x" * 512}
    for i in range(rounds):
        key = f"{i % 7:02x}{worker}{i:04d}".ljust(64, "0")
        store.put(key, payload)
        store.get(key)
        store.get(f"{i % 7:02x}".ljust(64, "f"))  # guaranteed miss path
        if i % 25 == 24:
            store.clear()
        done += 1
    return done


@pytest.mark.parametrize("procs", [2])
def test_two_processes_hammering_one_store(tmp_path, procs):
    """Two processes put/get/evict/clear the same root without crashing."""
    rounds = 120
    with ProcessPoolExecutor(max_workers=procs) as ex:
        results = list(ex.map(
            _hammer, [(str(tmp_path), w, rounds) for w in range(procs)]))
    assert results == [rounds] * procs

    # Whatever survived must still be a readable, schema-valid store.
    store = ArtifactCache(tmp_path, max_bytes=4096)
    for p in store._entry_files():
        entry = json.loads(p.read_text())
        assert set(entry) == {"schema", "key", "payload"}


def test_evict_tolerates_entries_vanishing(tmp_path, monkeypatch):
    """The LRU scan skips entries another process deleted mid-scan."""
    store = ArtifactCache(tmp_path, max_bytes=1)
    store.put("aa" + "0" * 62, {"v": 1})
    store.put("ab" + "0" * 62, {"v": 2})

    real_files = store._entry_files()
    assert real_files

    def racing_entry_files():
        # Simulate the race: the files were listed, then a concurrent
        # process evicted them before this process could stat them.
        for p in real_files:
            p.unlink(missing_ok=True)
        return real_files

    monkeypatch.setattr(store, "_entry_files", racing_entry_files)
    store.counters.reset()
    store._evict()  # must not raise
    assert store.counters.evictions == 0


def test_get_tolerates_entry_vanishing_between_read_and_utime(tmp_path):
    """A hit whose file vanishes before the LRU touch stays a hit."""
    store = ArtifactCache(tmp_path)
    key = "cc" + "0" * 62
    store.put(key, {"v": 3})

    path = store._path(key)
    body = path.read_text()

    # Re-create then delete during get: easiest deterministic stand-in is
    # deleting right before get touches it — os.utime must not raise.
    path.unlink()
    assert store.get(key) is None  # ENOENT on read = miss, not crash
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(body)
    assert store.get(key) == {"v": 3}
