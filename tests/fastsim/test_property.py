"""Property-based conformance: random programs, instruction-for-instruction.

Hypothesis draws (strategy, seed) points from the full fuzz lattice of
:mod:`repro.qa.strategies` — including ``gadgets`` (Spectre-shaped
double-load diamonds) and the guarded families that exercise annulment —
and asserts the fast backend's execution equals the reference
*per dynamic instruction*, not just in aggregate:

* the committed pc stream (one entry per step, annulled steps included),
* the taken flag of every non-annulled branch, in order,
* the effective address of every non-annulled memory op, in order,
* which absolute step indices were annulled,
* the full ``ExecStats`` payload and final architectural state.

The reference trace is the source of truth: the fast backend's batched
trace stream (:meth:`FastFunctionalSim.batches`) is flattened and must
reproduce it exactly.  Failure behavior must match too — if the
reference raises (step budget, divergence), the fast path must raise the
same exception type with the same message.

``derandomize=True`` keeps the tier-1 run deterministic; the example
count is deliberately modest because the exhaustive corpus lives in
``test_conformance.py`` — this test exists to search the space *between*
the checked-in reproducers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fastsim.functional import FastFunctionalSim
from repro.qa.strategies import BY_NAME
from repro.sim.functional import FunctionalSim

STEP_BUDGET = 200_000
LATTICE = sorted(BY_NAME)


def _reference_trace(sim):
    """(idxs, brs, mems, anns, failure) from a reference run."""
    idxs, brs, mems, anns = [], [], [], []
    failure = None
    try:
        for step, e in enumerate(sim.trace()):
            idxs.append(e.index)
            if e.annulled:
                anns.append(step)
                continue
            if e.taken is not None:
                brs.append(e.taken)
            if e.addr is not None:
                mems.append(e.addr)
    except Exception as exc:  # noqa: BLE001 - compared, not swallowed
        failure = f"{type(exc).__name__}: {exc}"
    return idxs, brs, mems, anns, failure


def _fast_trace(sim):
    idxs, brs, mems, anns = [], [], [], []
    failure = None
    try:
        for bi, bb, bm, ba in sim.batches():
            idxs.extend(bi)
            brs.extend(bb)
            mems.extend(bm)
            anns.extend(ba)
    except Exception as exc:  # noqa: BLE001
        failure = f"{type(exc).__name__}: {exc}"
    return list(idxs), list(brs), list(mems), list(anns), failure


@settings(max_examples=40, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(LATTICE), seed=st.integers(0, 4095))
def test_random_program_trace_equality(name, seed):
    prog = BY_NAME[name].program(seed)
    ref = FunctionalSim(prog, max_steps=STEP_BUDGET, record_outcomes=True)
    fast = FastFunctionalSim(prog, max_steps=STEP_BUDGET,
                             record_outcomes=True)
    r_idxs, r_brs, r_mems, r_anns, r_fail = _reference_trace(ref)
    f_idxs, f_brs, f_mems, f_anns, f_fail = _fast_trace(fast)

    assert r_fail == f_fail, \
        f"{name}-{seed}: failure mismatch {r_fail!r} vs {f_fail!r}"
    if r_idxs != f_idxs:
        first = next((i for i, (a, b) in enumerate(zip(r_idxs, f_idxs))
                      if a != b), min(len(r_idxs), len(f_idxs)))
        raise AssertionError(
            f"{name}-{seed}: pc stream diverged at step {first} "
            f"(lengths {len(r_idxs)} vs {len(f_idxs)})")
    assert r_brs == f_brs, f"{name}-{seed}: branch outcomes diverged"
    assert r_mems == f_mems, f"{name}-{seed}: memory addresses diverged"
    assert r_anns == f_anns, f"{name}-{seed}: annulment steps diverged"
    assert ref.stats.to_dict() == fast.stats.to_dict()
    if r_fail is None:
        assert ref.regs == fast.regs
        assert ref.fregs == fast.fregs
        assert ref.ccregs == fast.ccregs
        assert ref.index_counts == fast.index_counts
