"""Backend identity in cache keys and on the wire (ISSUE 8 fix).

Before the execution-backend layer existed, a cell's cache key and its
serve payload identified only (program, scheme, heuristics, config,
budget).  A fast-backend run would therefore have *shared cache lines*
with reference runs — a fastsim bug could poison reference results, and
a service worker could silently execute a cell on the wrong backend.
These tests pin the fix:

* engine cell keys carry the backend (distinct keys per backend,
  reference unchanged semantics via the default),
* the serve protocol round-trips the backend and decodes legacy
  payloads (no ``backend`` field) as ``"reference"``,
* the three version numbers moved in lockstep (engine key schema 5,
  serde payload schema 4, serve protocol 3 since the melded scheme),
* while the *payloads* under the distinct keys stay byte-identical —
  distinct keys are a safety property, not a result difference.
"""

import json

import pytest

from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.core import serde
from repro.engine.cells import CellSpec
from repro.engine.keys import SCHEMA_VERSION, cell_key
from repro.fastsim.backend import resolve_backend
from repro.serve.protocol import (PROTOCOL_VERSION, cellspec_from_payload,
                                  cellspec_to_payload)
from repro.sim.config import r10k_config
from repro.workloads import benchmark_programs


@pytest.fixture(scope="module")
def prog():
    return benchmark_programs(scale=0.05)["compress"]


def test_cell_keys_distinct_per_backend(prog):
    cfg = r10k_config("twobit")
    ref = cell_key(prog, "Proposed", DEFAULT_HEURISTICS, cfg, 1000)
    fast = cell_key(prog, "Proposed", DEFAULT_HEURISTICS, cfg, 1000,
                    backend="fast")
    explicit_ref = cell_key(prog, "Proposed", DEFAULT_HEURISTICS, cfg,
                            1000, backend="reference")
    assert ref != fast
    assert ref == explicit_ref  # default is spelled "reference"


def test_version_lockstep():
    # The melded scheme (ISSUE 10) bumped all three in the same change,
    # exactly as the backend layer (ISSUE 8) did before it; a future bump
    # of one without the others reopens the poisoning hole.
    assert SCHEMA_VERSION == 5      # engine cell-key/envelope schema
    assert serde.SCHEMA_VERSION == 4  # result payload schema
    assert PROTOCOL_VERSION == 3    # serve wire protocol


def test_legacy_heuristics_payload_still_decodes():
    # A pre-melding client never sent the meld knobs; the codec must
    # decode such payloads with the defaults (meld off) instead of
    # rejecting them — only *unknown* fields are protocol errors.
    from repro.serve.protocol import heur_from_payload, heur_to_payload

    payload = heur_to_payload(DEFAULT_HEURISTICS)
    del payload["enable_meld"]
    del payload["meld_max_arm_ops"]
    decoded = heur_from_payload(payload)
    assert decoded.enable_meld is False
    assert decoded.meld_max_arm_ops == \
        DEFAULT_HEURISTICS.meld_max_arm_ops
    assert decoded == DEFAULT_HEURISTICS


def test_meld_knobs_change_cell_keys(prog):
    # enable_meld is a compile-changing knob: it must key distinctly so
    # melded cells can never alias Proposed cells.
    from dataclasses import replace

    cfg = r10k_config("twobit")
    base = cell_key(prog, "Proposed", DEFAULT_HEURISTICS, cfg, 1000)
    meld = cell_key(prog, "Proposed",
                    replace(DEFAULT_HEURISTICS, enable_meld=True),
                    cfg, 1000)
    assert base != meld


def test_protocol_round_trips_backend(prog):
    spec = CellSpec(benchmark="compress", scheme="2bitBP", kind="base",
                    predictor="twobit", program=prog.to_dict(),
                    backend="fast")
    payload = cellspec_to_payload(spec)
    assert payload["backend"] == "fast"
    assert json.loads(json.dumps(payload)) == payload
    back = cellspec_from_payload(json.loads(json.dumps(payload)))
    assert back.backend == "fast"
    assert back == spec


def test_protocol_decodes_legacy_payload_as_reference(prog):
    spec = CellSpec(benchmark="compress", scheme="2bitBP", kind="base",
                    predictor="twobit", program=prog.to_dict())
    payload = cellspec_to_payload(spec)
    del payload["backend"]  # a v1 client never sent the field
    assert cellspec_from_payload(payload).backend == "reference"


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) == "reference"
    assert resolve_backend("fast") == "fast"
    monkeypatch.setenv("REPRO_BACKEND", "fast")
    assert resolve_backend(None) == "fast"
    assert resolve_backend("reference") == "reference"  # arg beats env
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("warp")
    monkeypatch.setenv("REPRO_BACKEND", "warp")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend(None)
