"""Cross-backend conformance: the fast backend equals the reference, byte
for byte, over the entire corpus the project already trusts.

Coverage matrix:

* every workload-zoo program (``repro.workloads``, 0.05 scale — the same
  programs at reduced iteration counts, every opcode and control shape
  intact), and
* every checked-in fuzz reproducer (``tests/qa/corpus/*.s`` — programs
  that historically broke a compiler pass, i.e. the nastiest control
  flow we know of),

each compiled under **all five** fuzz schemes
(:data:`repro.qa.cells.FUZZ_SCHEMES`) and simulated on both backends.
Equality is asserted on serde *payload dicts* (``SimStats.to_dict()`` /
``ExecStats.to_dict()`` / ``DiffReport.to_dict()``), not on summary
numbers: one flipped counter anywhere is a failure.
"""

import json
from pathlib import Path

import pytest

from repro.engine.cells import SCHEME_PLAN, CellSpec, execute_cell, overrides_as_items
from repro.fastsim import crosscheck, crosscheck_cell
from repro.profilefb.profiledb import ProfileDB
from repro.qa.cells import FUZZ_SCHEMES, compile_scheme
from repro.qa.corpus import load_reproducer
from repro.sim.config import r10k_config
from repro.workloads import benchmark_programs

MAX_STEPS = 5_000_000
SCALE = 0.05
CORPUS_DIR = Path(__file__).resolve().parent.parent / "qa" / "corpus"
CORPUS = sorted(p.name for p in CORPUS_DIR.glob("*.s"))
SCHEMES = [name for name, _ in FUZZ_SCHEMES]

# Programs and profiles are cached per module: the matrix below reuses
# one parse/profile per program across its five scheme cells.
_programs: dict = {}
_profiles: dict = {}


def _zoo_names():
    return sorted(benchmark_programs(scale=SCALE))


def _program(name):
    if name not in _programs:
        if name.endswith(".s"):
            _programs[name] = load_reproducer(CORPUS_DIR / name)
        else:
            _programs[name] = benchmark_programs(scale=SCALE)[name]
    return _programs[name]


def _profile(name):
    if name not in _profiles:
        try:
            _profiles[name] = ProfileDB.from_run(_program(name),
                                                 max_steps=MAX_STEPS)
        except Exception:  # noqa: BLE001 - corpus programs may trap
            _profiles[name] = None
    return _profiles[name]


def _assert_conformant(name, scheme):
    prog = _program(name)
    result = compile_scheme(prog, scheme, profile=_profile(name),
                            max_steps=MAX_STEPS)
    report = crosscheck_cell(result.program, r10k_config("twobit"),
                             max_steps=MAX_STEPS)
    payload = report.to_dict()
    assert report.equivalent, (
        f"{prog.name} under {scheme}: {report.reason}; "
        f"first mismatches: {report.mismatches[:3]}")
    # The report itself must be a stable serde payload (round-trips as
    # JSON) — it is what diffcheck harnesses archive.
    assert json.loads(json.dumps(payload)) == payload


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("name", _zoo_names())
def test_zoo_cell_conformance(name, scheme):
    _assert_conformant(name, scheme)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("name", CORPUS)
def test_corpus_cell_conformance(name, scheme):
    assert CORPUS, "qa corpus missing"
    _assert_conformant(name, scheme)


@pytest.mark.parametrize("name", _zoo_names() + CORPUS)
def test_functional_crosscheck_with_outcomes(name):
    # record_outcomes=True exercises the branch-outcome vectors and
    # branch_pc maps of ExecStats — the payload the profiler consumes.
    report = crosscheck(_program(name), max_steps=MAX_STEPS,
                        record_outcomes=True)
    assert report.equivalent, (report.reason, report.mismatches[:3])


@pytest.mark.parametrize("name", _zoo_names())
def test_profile_payloads_identical(name):
    # Profiling on the fast backend must produce the same feedback the
    # compiler sees from the reference run — otherwise "identical
    # compiles" silently stops being true under backend="fast".
    prog = _program(name)
    ref = ProfileDB.from_run(prog, max_steps=MAX_STEPS)
    fast = ProfileDB.from_run(prog, max_steps=MAX_STEPS, backend="fast")
    assert ref.to_json() == fast.to_json()


@pytest.mark.parametrize("scheme,kind,predictor", SCHEME_PLAN)
def test_engine_cell_payloads_byte_identical(scheme, kind, predictor):
    # The engine-level contract: the exact payload dict the artifact
    # cache stores (stats + exec_stats + compile_result + failure) is
    # byte-identical across backends for every scheme in the plan.
    prog = _program("grep")
    spec = CellSpec(benchmark="grep", scheme=scheme, kind=kind,
                    predictor=predictor, program=prog.to_dict(),
                    config_overrides=overrides_as_items(None),
                    max_steps=MAX_STEPS, strict=True)
    ref = execute_cell(spec, program=prog)
    fast = execute_cell(
        CellSpec(**{**spec.__dict__, "backend": "fast"}), program=prog)
    assert json.dumps(ref, sort_keys=True) == \
        json.dumps(fast, sort_keys=True)
