"""Cross-backend conformance suite for :mod:`repro.fastsim` (ISSUE 8)."""
