"""Hypothesis property: the melded scheme is semantics-preserving and
backend-identical across the whole qa strategy lattice (ISSUE 10).

For every (strategy, seed) program the fuzz lattice can generate:

1. the melded compile (proposed pipeline with ``enable_meld``) verifies
   against the robust IR checker,
2. the melded program's architectural outcome equals the original's
   (:func:`check_equivalence` — memory image + halt state, the same
   oracle the differential fuzzer uses), and
3. the fast backend executes the melded program identically to the
   reference simulator — final registers, condition codes, and the full
   ``ExecStats`` payload.

Melding renames arm defs onto scratch registers and reconverges through
``cmovt``/``cmovf`` selects, so register checks are restricted to what
:func:`check_equivalence` certifies (architectural memory + halt) for
(2), while (3) compares the *same* program across backends and therefore
demands exact state equality.

``derandomize=True`` keeps tier-1 deterministic; the exhaustive per-zoo
corpus coverage of the melded scheme lives in ``test_conformance.py``
(which parametrizes over ``FUZZ_SCHEMES`` and picked up the sixth row
automatically).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.core.pipeline import compile_proposed
from repro.fastsim.functional import FastFunctionalSim
from repro.qa.strategies import BY_NAME
from repro.robust import check_equivalence, verify_program
from repro.sim.functional import FunctionalSim

STEP_BUDGET = 200_000
LATTICE = sorted(BY_NAME)
MELD_HEUR = replace(DEFAULT_HEURISTICS, enable_meld=True)


@settings(max_examples=40, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(LATTICE), seed=st.integers(0, 4095))
def test_melded_scheme_conforms_on_both_backends(name, seed):
    prog = BY_NAME[name].program(seed)
    melded = compile_proposed(prog, heur=MELD_HEUR,
                              max_steps=STEP_BUDGET).program

    violations = verify_program(melded)
    assert violations == [], f"{name}-{seed}: {violations[:3]}"

    diff = check_equivalence(prog, melded, max_steps=STEP_BUDGET)
    assert diff, f"{name}-{seed}: {diff.reason}"

    ref = FunctionalSim(melded, max_steps=STEP_BUDGET * 8,
                        record_outcomes=True)
    fast = FastFunctionalSim(melded, max_steps=STEP_BUDGET * 8,
                             record_outcomes=True)
    r_fail = f_fail = None
    try:
        ref.run()
    except Exception as exc:  # noqa: BLE001 - compared, not swallowed
        r_fail = f"{type(exc).__name__}: {exc}"
    try:
        fast.run()
    except Exception as exc:  # noqa: BLE001
        f_fail = f"{type(exc).__name__}: {exc}"
    assert r_fail == f_fail, \
        f"{name}-{seed}: failure mismatch {r_fail!r} vs {f_fail!r}"
    assert ref.stats.to_dict() == fast.stats.to_dict(), \
        f"{name}-{seed}: melded ExecStats diverged across backends"
    if r_fail is None:
        assert ref.regs == fast.regs, f"{name}-{seed}: registers diverged"
        assert ref.ccregs == fast.ccregs, f"{name}-{seed}: ccs diverged"


@settings(max_examples=20, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(LATTICE), seed=st.integers(0, 4095))
def test_meld_knob_roundtrip_matches_direct_compile(name, seed):
    # The engine's "meld" cell kind is just enable_meld on the default
    # heuristics: compiling twice must be deterministic, so cached melded
    # cells replay to the same program bytes.
    prog = BY_NAME[name].program(seed)
    a = compile_proposed(prog, heur=MELD_HEUR, max_steps=STEP_BUDGET)
    b = compile_proposed(prog, heur=MELD_HEUR, max_steps=STEP_BUDGET)
    assert a.program.to_dict() == b.program.to_dict()
    assert a.melds_applied == b.melds_applied
