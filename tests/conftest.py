"""Suite-wide fixtures.

Tests must never touch the developer's real artifact cache (or litter the
repository with ``.repro-cache/``), so every test sees a throwaway
``REPRO_CACHE_DIR`` unless it overrides the location itself.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the default artifact-cache root at a per-test temp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
