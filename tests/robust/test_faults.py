"""Every fault class in the taxonomy is caught by its containment layer.

One parametrized test per injected fault class:

* program faults expected at the **verifier** must be flagged statically
  on every candidate;
* program faults expected at **diffcheck** must diverge on at least one
  candidate (a candidate diffcheck proves equivalent changed nothing
  observable);
* **profile** faults must be tolerated: the compile still emits verified,
  architecturally equivalent code;
* **pass** faults must be contained by the sandbox, and the rolled-back
  CFG must still linearize to a runnable program equivalent to the
  original.
"""

import random

import pytest

from repro.cfg.graph import build_cfg
from repro.core import compile_proposed
from repro.isa import parse
from repro.profilefb import ProfileDB
from repro.robust import (
    PASS_FAULTS, PROFILE_FAULTS, PROGRAM_FAULTS, PassSandbox, buggy_pass,
    check_equivalence, corrupt_profile, inject_program_fault, verify_program,
)
from repro.sim import FunctionalSim

# Deterministic victim with an injection site for every program fault
# class: a taken branch, a non-commutative op on distinct executed
# registers, stores that make corruption observable, and a trailing halt.
VICTIM = """.text
main:
    li   r1, 10
    li   r2, 3
    li   r10, 0x50000
    sub  r3, r1, r2
    beq  r2, r2, skip
    sub  r4, r2, r1
    j    done
skip:
    add  r4, r1, r2
done:
    sw   r3, 0(r10)
    sw   r4, 4(r10)
    halt
"""


@pytest.fixture(scope="module")
def victim():
    return parse(VICTIM, name="victim")


@pytest.fixture(scope="module")
def counts(victim):
    sim = FunctionalSim(victim, record_outcomes=False)
    sim.run()
    return sim.index_counts


@pytest.mark.parametrize(
    "name", [n for n, (fc, _) in PROGRAM_FAULTS.items()
             if fc.detector == "verifier"])
def test_verifier_fault_caught_statically(name, victim, counts):
    candidates = list(inject_program_fault(name, victim, random.Random(0),
                                           counts))
    assert candidates, f"{name}: no injection site in the victim program"
    for bad in candidates:
        assert verify_program(bad), \
            f"{name}: corrupted program passed the verifier"


@pytest.mark.parametrize(
    "name", [n for n, (fc, _) in PROGRAM_FAULTS.items()
             if fc.detector == "diffcheck"])
def test_semantic_fault_caught_by_diffcheck(name, victim, counts):
    candidates = list(inject_program_fault(name, victim, random.Random(0),
                                           counts))
    assert candidates, f"{name}: no injection site in the victim program"
    flagged = sum(
        bool(verify_program(bad))
        or not check_equivalence(victim, bad, max_steps=100_000)
        for bad in candidates)
    assert flagged, f"{name}: no corrupted candidate was detected"


@pytest.mark.parametrize("name", list(PROFILE_FAULTS))
def test_profile_fault_tolerated(name, victim):
    db = corrupt_profile(name, ProfileDB.from_run(victim))
    result = compile_proposed(victim, profile=db)
    # Bad feedback may cost performance, never correctness.
    assert verify_program(result.program) == []
    assert check_equivalence(victim, result.program)


@pytest.mark.parametrize("name", list(PASS_FAULTS))
def test_pass_fault_contained_with_runnable_fallback(name, victim):
    cfg = build_cfg(victim)
    box = PassSandbox(cfg)
    fn = buggy_pass(name)
    box.run(name, lambda: fn(cfg))
    assert box.contained, f"{name}: sandbox recorded no failure"
    assert box.failures[0].rolled_back
    restored = cfg.to_program(victim.name + ".restored")
    assert verify_program(restored) == []
    assert check_equivalence(victim, restored)
