"""CLI robustness: ``verify`` command and FAIL-cell table rendering."""

import pytest

from repro.__main__ import main
from repro.eval import runner as runner_mod
from repro.isa import parse

TINY = """.text
main:
    li   r1, 0
    li   r2, 5
    li   r10, 0x50000
loop:
    addi r1, r1, 1
    bne  r1, r2, loop
    sw   r1, 0(r10)
    halt
"""


def test_verify_benchmark(capsys):
    assert main(["verify", "compress", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "proposed" in out
    assert "all clean" in out


def test_verify_file(tmp_path, capsys):
    f = tmp_path / "tiny.s"
    f.write_text(TINY)
    assert main(["verify", str(f)]) == 0
    out = capsys.readouterr().out
    assert "equivalence=proved" in out


def test_verify_unknown_program():
    with pytest.raises(SystemExit):
        main(["verify", "no-such-benchmark"])


@pytest.fixture
def _tiny_suite(monkeypatch):
    """Shrink the table suite to one tiny benchmark with a broken Proposed
    compile, so CLI isolation tests run in milliseconds."""
    monkeypatch.setattr(
        runner_mod, "benchmark_programs",
        lambda scale=1.0: {"tiny": parse(TINY, name="tiny")})

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic mid-pass crash")

    monkeypatch.setattr(runner_mod, "compile_proposed", boom)


def test_tables_with_failed_cell_exits_zero(_tiny_suite, capsys):
    assert main(["tables"]) == 0
    captured = capsys.readouterr()
    assert "FAIL(" in captured.out
    assert "warning: tiny/Proposed failed" in captured.err


def test_tables_strict_exits_nonzero(_tiny_suite, capsys):
    assert main(["tables", "--strict"]) == 2
    assert "FATAL" in capsys.readouterr().err
