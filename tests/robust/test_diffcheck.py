"""Differential checker: equivalence proofs, divergence and the watchdog."""

import pytest

from repro.core import compile_baseline, compile_proposed
from repro.isa import parse
from repro.isa.instruction import make
from repro.isa.randprog import random_program
from repro.robust import EquivalenceError, certify, check_equivalence

STORES = """.text
main:
    li   r1, 10
    li   r2, 3
    li   r10, 0x50000
    sub  r3, r1, r2
    sw   r3, 0(r10)
    sw   r1, 4(r10)
    halt
"""


def _stores():
    return parse(STORES, name="stores")


def test_program_equivalent_to_its_copy():
    prog = _stores()
    report = check_equivalence(prog, prog.copy())
    assert report
    assert report.original_steps == report.transformed_steps


@pytest.mark.parametrize("seed", range(3))
def test_pipelines_preserve_semantics(seed):
    prog = random_program(seed)
    for result in (compile_baseline(prog), compile_proposed(prog)):
        assert check_equivalence(prog, result.program)


def test_detects_memory_divergence():
    prog = _stores()
    bad = prog.copy()
    bad.instructions[3].srcs = (bad.instructions[3].srcs[1],
                                bad.instructions[3].srcs[0])
    report = check_equivalence(prog, bad)
    assert not report
    assert any("mem[" in m for m in report.mismatches)


def test_detects_halt_divergence():
    prog = _stores()
    bad = prog.copy()
    bad.instructions.pop()  # drop halt: falls off the end instead
    bad.labels = {k: min(v, len(bad.instructions))
                  for k, v in bad.labels.items()}
    report = check_equivalence(prog, bad)
    assert not report


def test_watchdog_bounds_infinite_transformed_run():
    prog = _stores()
    looping = prog.copy()
    # Replace halt with a self-jump: the transformed run can never finish.
    looping.labels["spin"] = len(looping.instructions) - 1
    looping.instructions[-1] = make("j", "spin")
    report = check_equivalence(prog, looping, max_steps=200_000)
    assert not report
    assert "transformed" in report.reason
    assert "StepBudgetExceeded" in report.reason


def test_untrusted_original_is_inconclusive():
    prog = _stores()
    looping = prog.copy()
    looping.labels["spin"] = len(looping.instructions) - 1
    looping.instructions[-1] = make("j", "spin")
    report = check_equivalence(looping, prog, max_steps=50_000)
    assert not report
    assert report.reason.startswith("original")


def test_registers_are_opt_in():
    prog = _stores()
    bad = prog.copy()
    # r7 is dead: memory image matches, register state does not.
    bad.instructions.insert(3, make("li", "r7", 123))
    bad.labels = {k: (v if v <= 3 else v + 1) for k, v in bad.labels.items()}
    assert check_equivalence(prog, bad)
    assert not check_equivalence(prog, bad, registers=["r7"])


def test_certify_raises_with_report():
    prog = _stores()
    bad = prog.copy()
    bad.instructions[3].srcs = (bad.instructions[3].srcs[1],
                                bad.instructions[3].srcs[0])
    with pytest.raises(EquivalenceError, match="NOT equivalent"):
        certify(prog, bad)
