"""Speculative-safety analysis: gadget corpus, taint, serde, safe scheme.

The handcrafted corpus under ``tests/robust/gadgets/`` pins the analysis:
every ``positive/*.s`` must flag, every ``negative/*.s`` must stay clean,
and ``window-exceeded.s`` flips to positive once the window is widened.
"""

from pathlib import Path

import pytest

from repro.cfg.graph import build_cfg
from repro.core import compile_variant
from repro.isa import parse
from repro.isa.instruction import make
from repro.robust import check_equivalence, verify_program
from repro.robust.spectre import (
    FINDING_KINDS, SpectreConfig, SpectreFinding, SpectreHoistGuard,
    TAINT_SECRET, TAINT_UNTRUSTED, analyze_program, taint_fixpoint,
)

GADGETS = Path(__file__).parent / "gadgets"
POSITIVES = sorted((GADGETS / "positive").glob("*.s"))
NEGATIVES = sorted((GADGETS / "negative").glob("*.s"))


def _load(path):
    return parse(path.read_text(), name=path.stem)


def test_corpus_is_present():
    assert len(POSITIVES) >= 4
    assert len(NEGATIVES) >= 3


@pytest.mark.parametrize("path", POSITIVES, ids=lambda p: p.stem)
def test_known_positives_flag(path):
    findings = analyze_program(_load(path))
    assert findings, f"{path.stem} should contain a gadget"
    for f in findings:
        assert f.kind in FINDING_KINDS
        assert f.distance <= f.sew
        assert f.tainted_condition


@pytest.mark.parametrize("path", NEGATIVES, ids=lambda p: p.stem)
def test_known_negatives_stay_clean(path):
    assert analyze_program(_load(path)) == []


def test_store_transmitter_classified_as_load_store():
    prog = _load(GADGETS / "positive" / "load-store.s")
    kinds = {f.kind for f in analyze_program(prog)}
    assert "gadget-load-store" in kinds


def test_window_exceeded_flags_with_wider_sew():
    prog = _load(GADGETS / "negative" / "window-exceeded.s")
    assert analyze_program(prog, SpectreConfig(sew=16)) == []
    wide = analyze_program(prog, SpectreConfig(sew=32))
    assert wide and all(f.distance <= 32 for f in wide)


def test_sew_truncation_is_monotone():
    # Shrinking the window can only drop findings, never add them.
    prog = _load(GADGETS / "positive" / "load-load.s")
    by_sew = {s: analyze_program(prog, SpectreConfig(sew=s))
              for s in (2, 8, 16, 64)}
    keys = {s: {(f.branch_uid, f.transmit_uid) for f in fs}
            for s, fs in by_sew.items()}
    assert keys[2] <= keys[8] <= keys[16] <= keys[64]
    assert keys[16]  # the gadget fits the default window


def test_taint_survives_renaming():
    # movs between access and transmit (positive/renamed.s) must not
    # launder the secret.
    findings = analyze_program(_load(GADGETS / "positive" / "renamed.s"))
    assert findings
    assert all(f.kind == "gadget-load-load" for f in findings)


def test_taint_fixpoint_levels():
    prog = _load(GADGETS / "positive" / "load-load.s")
    cfg = build_cfg(prog)
    state = taint_fixpoint(cfg, SpectreConfig())
    entry = state[cfg.entry.bid]
    assert all(entry[r] == TAINT_UNTRUSTED for r in ("r4", "r5", "r6", "r7"))
    # Some block downstream of the first load sees a level-2 secret.
    assert any(TAINT_SECRET in taints.values() for taints in state.values())


def test_untrusted_set_is_configurable():
    prog = _load(GADGETS / "positive" / "load-load.s")
    # With no untrusted inputs at all there is nothing to find.
    assert analyze_program(prog, SpectreConfig(untrusted=("r20",))) == []


def test_config_validation():
    with pytest.raises(ValueError):
        SpectreConfig(mode="warn")
    with pytest.raises(ValueError):
        SpectreConfig(sew=0)


def test_stock_workloads_are_clean():
    from repro.workloads import benchmark_programs

    for name, prog in benchmark_programs(scale=0.1).items():
        assert analyze_program(prog) == [], f"{name} flagged unexpectedly"


def test_finding_serde_round_trip():
    prog = _load(GADGETS / "positive" / "load-load.s")
    f = analyze_program(prog)[0]
    d = f.to_dict()
    assert d["kind"] == f.kind
    back = SpectreFinding.from_dict(d)
    assert back == f


def test_finding_serde_rejects_stale_schema():
    from repro.core.serde import SchemaMismatch

    prog = _load(GADGETS / "positive" / "load-load.s")
    d = analyze_program(prog)[0].to_dict()
    d["schema_version"] = 1
    with pytest.raises(SchemaMismatch):
        SpectreFinding.from_dict(d)


# -- hoist guard and the safe-speculative scheme ------------------------------


def _guard_fixture():
    # Entry branches on untrusted r4; the then-arm loads through an
    # r4-derived address — the access the guard must not let float up.
    src = """.text
main:
    andi r2, r4, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    bgtz r4, then_l
    j    done
then_l:
    lw   r3, 0(r16)
done:
    halt
"""
    cfg = build_cfg(parse(src, name="guard-fixture"))
    return cfg, cfg.entry.bid


def test_hoist_guard_fence_and_suppress_modes():
    cfg, bid = _guard_fixture()
    tainted_load = make("lw", "r3", 0, "r16")
    for mode, verdict in (("fence", "fence"), ("suppress", "suppress")):
        guard = SpectreHoistGuard(SpectreConfig(mode=mode))
        assert guard(cfg, bid, tainted_load) == verdict
        assert guard.flagged == 1


def test_hoist_guard_allows_safe_hoists():
    cfg, bid = _guard_fixture()
    guard = SpectreHoistGuard(SpectreConfig())
    # Non-load, and load through a clean address: both fine.
    assert guard(cfg, bid, make("add", "r9", "r1", "r2")) == "allow"
    clean = build_cfg(parse(
        ".text\nmain:\n    li r16, 0x50000\n    bgtz r1, t\n    j d\n"
        "t:\n    lw r3, 0(r16)\nd:\n    halt\n", name="clean"))
    assert guard(clean, clean.entry.bid,
                 make("lw", "r3", 0, "r16")) == "allow"


# A hot gadget: the branch condition mixes the loop counter with
# untrusted r4 (taint) and sends 3/4 of iterations through the
# double-load arm — biased and mispredicted enough for the region
# scheduler's profitability gate, so the plain speculative scheme
# really does hoist the tainted load.
GADGET_LOOP = """.text
main:
    li   r17, 0
    li   r18, 32
loop:
    andi r2, r4, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    andi r22, r17, 3
    add  r22, r22, r4
    bgtz r22, then_l
    j    join
then_l:
    lw   r3, 0(r16)
    andi r9, r3, 0xFC
    li   r23, 0x50000
    add  r23, r23, r9
    lw   r10, 0(r23)
    add  r1, r1, r10
join:
    addi r17, r17, 1
    sub  r24, r17, r18
    bltz r24, loop
    li   r20, 0x50100
    sw   r1, 0(r20)
    halt
"""


def test_plain_speculation_does_hoist_the_gadget_load():
    # Sanity for the pair below: without the guard the flagged hoist
    # happens (that is the exposure the safe scheme exists to close).
    prog = parse(GADGET_LOOP, name="gadget-loop")
    res = compile_variant(prog, ifconvert=False)
    assert res.region_report.speculated > 0
    assert res.region_report.fenced == res.region_report.suppressed == 0


def test_safe_speculative_fences_flagged_hoists_and_stays_equivalent():
    prog = parse(GADGET_LOOP, name="gadget-loop")
    res = compile_variant(prog, spectre=True, ifconvert=False)
    assert res.fallback is None
    assert res.region_report.fenced > 0
    assert [i.op for i in res.program.instructions].count("fence") \
        == res.region_report.fenced
    assert not verify_program(res.program)
    assert check_equivalence(prog, res.program).equivalent


def test_safe_speculative_suppress_mode_stays_equivalent():
    from dataclasses import replace

    from repro.core.heuristics import DEFAULT_HEURISTICS

    prog = parse(GADGET_LOOP, name="gadget-loop")
    heur = replace(DEFAULT_HEURISTICS, spectre_fence=False)
    res = compile_variant(prog, spectre=True, ifconvert=False, heur=heur)
    assert res.fallback is None
    assert res.region_report.suppressed > 0
    assert "fence" not in [i.op for i in res.program.instructions]
    assert check_equivalence(prog, res.program).equivalent


def test_safe_speculative_certifies_on_generated_gadget_programs():
    from repro.isa.randprog import RandProgConfig, random_program

    cfg = RandProgConfig(untrusted_inputs=True, gadget_density=0.8,
                         num_blocks=4, with_memory=True)
    flagged = 0
    for seed in range(4):
        from dataclasses import replace as _rep

        prog = random_program(cfg=_rep(cfg, seed=seed))
        flagged += bool(analyze_program(prog))
        res = compile_variant(prog, spectre=True)
        assert res.fallback is None
        assert check_equivalence(prog, res.program).equivalent, \
            f"seed {seed} diverged"
    assert flagged >= 1  # the generator does seed real gadgets
