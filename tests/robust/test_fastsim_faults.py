"""Fastsim containment: internal faults fall back, semantic faults agree.

The fast backend's contract has two halves (``docs/FASTSIM.md``):

1. An *internal* fastsim failure (broken codegen, stale decode tables, a
   non-semantic crash inside generated code) must never change results —
   the run transparently restarts on the reference interpreter, the
   decision lands on the fallback trail with the stage that contained
   it, and the payload is byte-identical to a pure reference run.
2. A *program-semantic* failure (``UnmodeledOpcode``, step budgets,
   alignment traps) must NOT be repaired — both backends raise the same
   exception and the engine records the same ``FAIL(...)`` cell.

Injection uses :mod:`repro.fastsim.faults` — the same fault classes
``tools/inject_faults.py --fastsim`` sweeps from the command line.
"""

import json

import pytest

from repro.engine.cells import CellSpec, execute_cell
from repro.fastsim import backend as fb
from repro.fastsim.faults import FASTSIM_FAULTS, inject_fastsim_fault
from repro.obs.metrics import REGISTRY
from repro.sim.config import r10k_config
from repro.sim.functional import FunctionalSim, UnmodeledOpcode
from repro.sim.pipeline import TimingSim
from repro.workloads import benchmark_programs

MAX_STEPS = 5_000_000

#: fault name -> stage that must appear on the fallback trail
EXPECTED_STAGE = {
    "fastsim-bad-codegen": "codegen",
    "fastsim-stale-decode": "codegen",
    "fastsim-runtime-crash": "execute",
}


@pytest.fixture(scope="module")
def prog():
    return benchmark_programs(scale=0.05)["grep"]


@pytest.fixture(scope="module")
def reference(prog):
    fsim = FunctionalSim(prog, max_steps=MAX_STEPS, record_outcomes=False)
    stats = TimingSim(r10k_config("twobit")).run(fsim.trace())
    return stats.to_dict(), fsim.stats.to_dict()


@pytest.fixture(autouse=True)
def _clean_trail():
    fb.clear_fallback_trail()
    yield
    fb.clear_fallback_trail()


def _count(name):
    return REGISTRY.snapshot()["counters"].get(name, 0)


def test_fault_table_matches_expected_stages():
    assert sorted(FASTSIM_FAULTS) == sorted(EXPECTED_STAGE)


@pytest.mark.parametrize("fault", sorted(FASTSIM_FAULTS))
def test_internal_fault_contained_with_trail(fault, prog, reference):
    with inject_fastsim_fault(fault):
        stats, exec_stats = fb.simulate(prog, r10k_config("twobit"),
                                        max_steps=MAX_STEPS)
    # Result repaired: byte-identical to the reference interpreter.
    assert (stats.to_dict(), exec_stats.to_dict()) == reference
    # Decision recorded: right stage, classified reason.
    trail = fb.fallback_trail()
    assert trail, f"{fault}: no fallback recorded"
    rec = trail[-1]
    assert rec.stage == EXPECTED_STAGE[fault]
    assert rec.reason  # one-line classification, never empty


def test_observer_runs_fall_back_and_are_counted(prog, reference):
    # Metrics on => pipeline observer active => the fast path must yield
    # to the reference pipeline (the observer hooks its cycle loop), and
    # with the registry enabled the fallback metric actually counts.
    REGISTRY.enable()
    try:
        before = _count("fastsim.fallbacks")
        stats, exec_stats = fb.simulate(prog, r10k_config("twobit"),
                                        max_steps=MAX_STEPS)
        assert exec_stats.to_dict() == reference[1]
        rec = fb.fallback_trail()[-1]
        assert rec.stage == "observer"
        assert _count("fastsim.fallbacks") == before + 1
        assert _count("fastsim.fallbacks.observer") >= 1
    finally:
        REGISTRY.disable()


def test_clean_run_leaves_no_trail(prog, reference):
    stats, exec_stats = fb.simulate(prog, r10k_config("twobit"),
                                    max_steps=MAX_STEPS)
    assert (stats.to_dict(), exec_stats.to_dict()) == reference
    assert fb.fallback_trail() == ()


def test_injection_restores_pristine_fast_path(prog, reference):
    with inject_fastsim_fault("fastsim-bad-codegen"):
        pass
    stats, exec_stats = fb.simulate(prog, r10k_config("twobit"),
                                    max_steps=MAX_STEPS)
    assert (stats.to_dict(), exec_stats.to_dict()) == reference
    assert fb.fallback_trail() == ()


@pytest.mark.parametrize("fault", sorted(FASTSIM_FAULTS))
def test_engine_cell_survives_injected_fault(fault, prog):
    # Containment must hold one layer up too: a fast-backend cell under
    # an injected fastsim fault produces the same SUCCESS payload as a
    # reference cell — not a FAIL(...) record.
    spec = CellSpec(benchmark="grep", scheme="2bitBP", kind="base",
                    predictor="twobit", program=prog.to_dict(),
                    max_steps=MAX_STEPS, strict=True)
    ref = execute_cell(spec, program=prog)
    with inject_fastsim_fault(fault):
        fast = execute_cell(
            CellSpec(**{**spec.__dict__, "backend": "fast"}), program=prog)
    assert json.dumps(ref, sort_keys=True) == \
        json.dumps(fast, sort_keys=True)
    assert fast["failure"] is None
    assert fb.fallback_trail()


def test_unmodeled_opcode_fails_identically(prog):
    # The other half of the contract: semantic faults are NOT repaired.
    bad = prog.copy()
    idx = next(i for i, ins in enumerate(bad.instructions)
               if not ins.is_control and not ins.info.is_call)
    bad.instructions[idx].op = "__undocumented_op__"

    with pytest.raises(UnmodeledOpcode):
        fb.simulate(bad, r10k_config("twobit"), max_steps=MAX_STEPS)
    assert fb.fallback_trail() == ()  # a raise is not a fallback

    spec = dict(benchmark="grep", scheme="2bitBP", kind="base",
                predictor="twobit", program=bad.to_dict(),
                max_steps=MAX_STEPS)
    ref = execute_cell(CellSpec(**spec), program=bad)
    fast = execute_cell(CellSpec(**spec, backend="fast"), program=bad)
    assert ref["failure"] == fast["failure"]
    assert ref["failure"].startswith("UnmodeledOpcode")
    assert ref["stats"] is None and fast["stats"] is None
    # Tracebacks differ in the outermost frame (different call paths by
    # construction); the classified failure and the payload proper agree.
    a = {k: v for k, v in ref.items() if k != "failure_detail"}
    b = {k: v for k, v in fast.items() if k != "failure_detail"}
    assert a == b
    last = ref["failure_detail"].strip().splitlines()[-1]
    assert last == fast["failure_detail"].strip().splitlines()[-1]
