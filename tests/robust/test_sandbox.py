"""Pass sandbox: containment, bit-for-bit rollback, skip recording."""

import pytest

from repro.cfg.graph import build_cfg
from repro.isa import format_program, parse
from repro.isa.instruction import make
from repro.robust import PassSandbox, restore_cfg, snapshot_cfg

PROG = """.text
main:
    li   r1, 5
    li   r2, 7
    beq  r1, r2, skip
    add  r3, r1, r2
skip:
    sub  r4, r2, r1
    halt
"""


class _NotApplicable(Exception):
    """Stand-in for a pass's legitimate declines (SplitNotApplicable)."""


@pytest.fixture
def cfg():
    return build_cfg(parse(PROG, name="sandboxed"))


def test_success_returns_value_and_records_nothing(cfg):
    box = PassSandbox(cfg)
    assert box.run("noop", lambda: 42) == 42
    assert box.last_ok
    assert box.failures == []
    assert not box.contained


def test_crash_mid_pass_rolls_back(cfg):
    before = format_program(cfg.to_program("snap"))
    bids = [bb.bid for bb in cfg.blocks]
    box = PassSandbox(cfg)

    def bad_pass():
        cfg.blocks[0].instructions.insert(0, make("li", "r9", 0xDEAD))
        raise RuntimeError("pass died after mutating")

    assert box.run("boom", bad_pass) is None
    assert not box.last_ok
    assert [f.kind for f in box.failures] == ["exception"]
    assert "pass died" in box.failures[0].reason
    assert box.failures[0].detail  # traceback tail captured
    # Rollback is in place: same block ids, same linearization.
    assert [bb.bid for bb in cfg.blocks] == bids
    assert format_program(cfg.to_program("snap")) == before


def test_invariant_break_rolls_back(cfg):
    before = format_program(cfg.to_program("snap"))
    box = PassSandbox(cfg)

    def drops_taken_edge():
        for bb in cfg.blocks:
            if bb.terminator is not None and bb.terminator.is_branch:
                for e in list(cfg.succ_edges[bb.bid]):
                    if e.kind == "taken":
                        cfg.succ_edges[bb.bid].remove(e)
                        cfg.pred_edges[e.dst].remove(e)

    box.run("edge-dropper", drops_taken_edge)
    assert [f.kind for f in box.failures] == ["verify"]
    assert format_program(cfg.to_program("snap")) == before


def test_skip_recorded_with_reason(cfg):
    box = PassSandbox(cfg)

    def declines():
        raise _NotApplicable("loop body too small to split")

    assert box.run("split@bb1", declines,
                   skip_exceptions=(_NotApplicable,)) is None
    assert not box.last_ok
    assert [f.kind for f in box.failures] == ["skip"]
    assert "too small" in box.failures[0].reason
    assert not box.contained  # a recorded skip is not a contained crash


def test_snapshot_restore_roundtrip(cfg):
    snap = snapshot_cfg(cfg)
    before = format_program(cfg.to_program("snap"))
    cfg.blocks[0].instructions.insert(0, make("li", "r9", 1))
    cfg.blocks[-1].instructions.insert(0, make("li", "r9", 2))
    restore_cfg(cfg, snap)
    assert format_program(cfg.to_program("snap")) == before


def test_later_passes_continue_after_containment(cfg):
    box = PassSandbox(cfg)
    box.run("boom", lambda: (_ for _ in ()).throw(RuntimeError("x")))
    assert box.run("works", lambda: "ok") == "ok"
    assert box.last_ok
    assert len(box.failures) == 1
