# Known-positive: taint survives register copies (software renaming) —
# the untrusted value and the loaded secret both flow through movs
# before reaching the dependent addresses.
.text
main:
    mov  r8, r6                # rename the untrusted input
    blez r8, done
    andi r2, r8, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)            # access through the renamed index
    mov  r11, r3               # rename the secret
    andi r9, r11, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)           # transmit
done:
    halt
