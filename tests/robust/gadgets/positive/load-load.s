# Known-positive: the classic bounds-check-bypass shape.
# r4 is attacker-controlled; the branch guards a load whose address
# depends on r4, and a second load's address depends on the loaded value.
.text
main:
    li   r1, 10
    bgtz r4, gadget
    j    done
gadget:
    andi r2, r4, 0xFC          # mask the untrusted index (aligned)
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)            # access: secret = table[untrusted]
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)           # transmit: table2[secret]
done:
    li   r16, 0x51000
    sw   r10, 0(r16)
    halt
