# Known-positive: the transmitter is a store through a secret-derived
# address (gadget-load-store finding kind).
.text
main:
    li   r1, 7
    bnez r5, gadget
    j    done
gadget:
    andi r2, r5, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)            # access
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    sw   r1, 0(r16)            # transmit via store address
done:
    halt
