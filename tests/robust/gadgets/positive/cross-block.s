# Known-positive: access and transmitter live in different blocks; the
# window walk must follow the fallthrough edge to connect them.
.text
main:
    li   r1, 3
    bgtz r7, access
    j    done
access:
    andi r2, r7, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)            # access
    beqz r1, done
transmit:
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)           # transmit, one block later
done:
    halt
