# Known-negative: the same double-load chain, but the branch condition
# is a trusted constant — no attacker steers the speculation.
.text
main:
    li   r1, 10
    li   r2, 40
    bgtz r1, chase
    j    done
chase:
    andi r2, r2, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)
done:
    halt
