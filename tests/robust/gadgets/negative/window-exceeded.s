# Known-negative at the default window: 18 filler instructions separate
# the access from the transmitter, so with sew=16 the branch resolves
# before the transmitter could run speculatively.  (Flagged again when
# analyzed with --sew 32.)
.text
main:
    li   r1, 10
    bgtz r4, gadget
    j    done
gadget:
    andi r2, r4, 0xFC
    li   r16, 0x50000
    add  r16, r16, r2
    lw   r3, 0(r16)            # access at distance 4
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)           # transmit at distance 22 > sew 16
done:
    halt
