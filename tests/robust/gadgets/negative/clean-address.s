# Known-negative: the branch is on untrusted data, but the first load
# goes through a constant address — its result is not a secret, so the
# second load transmits nothing.
.text
main:
    li   r1, 10
    bgtz r4, chase
    j    done
chase:
    li   r16, 0x50000
    lw   r3, 0(r16)            # load through a trusted constant address
    andi r9, r3, 0xFC
    li   r16, 0x50000
    add  r16, r16, r9
    lw   r10, 0(r16)
done:
    halt
