"""Suite isolation: failing cells become FAIL table entries, not crashes."""

import math

import pytest

from repro.eval import (
    SCHEMES, format_improvements, format_table1, format_table3,
    format_table4, render_report, run_suite, suite_failures,
)
from repro.eval import runner as runner_mod
from repro.eval.paper_data import shape_verdicts
from repro.eval.runner import SchemeResult, _run_cell
from repro.isa import parse

TINY = """.text
main:
    li   r1, 0
    li   r2, 5
    li   r10, 0x50000
loop:
    addi r1, r1, 1
    bne  r1, r2, loop
    sw   r1, 0(r10)
    halt
"""


def _bench():
    return {"tiny": parse(TINY, name="tiny")}


def _boom(*args, **kwargs):
    raise RuntimeError("synthetic mid-pass crash")


def test_proposed_cell_failure_is_contained(monkeypatch):
    monkeypatch.setattr(runner_mod, "compile_proposed", _boom)
    runs = run_suite(benchmarks=_bench())
    run = runs["tiny"]
    assert run["2bitBP"].ok and run["PerfectBP"].ok
    assert not run["Proposed"].ok
    assert "RuntimeError" in run["Proposed"].failure
    assert run["Proposed"].failure_detail  # traceback tail kept
    assert math.isnan(run.improvement)
    # safe-speculative and melded share the proposed compiler, so they
    # fail too.
    assert [c.scheme for c in suite_failures(runs)] \
        == ["Proposed", "safe-speculative", "melded"]


def test_tables_render_fail_cells(monkeypatch):
    monkeypatch.setattr(runner_mod, "compile_proposed", _boom)
    runs = run_suite(benchmarks=_bench())
    for text in (format_table3(runs), format_table4(runs),
                 format_improvements(runs)):
        assert "FAIL(" in text
    # Table 1 only needs the 2bitBP cell, which is fine here.
    assert "FAIL(" not in format_table1(runs)
    # The markdown report and paper comparison must also survive.
    assert "FAIL(" in render_report(runs)
    assert shape_verdicts(runs) == []


def test_strict_mode_fails_fast(monkeypatch):
    monkeypatch.setattr(runner_mod, "compile_proposed", _boom)
    with pytest.raises(RuntimeError, match="synthetic mid-pass crash"):
        run_suite(benchmarks=_bench(), strict=True)


def test_cell_retry_once_absorbs_transient_failure():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return SchemeResult("b", "s", stats=object())

    result = _run_cell("b", "s", flaky, strict=False)
    assert result.ok
    assert calls["n"] == 2


def test_benchmark_construction_failure_fails_all_cells(monkeypatch):
    monkeypatch.setattr(runner_mod, "run_benchmark", _boom)
    runs = run_suite(benchmarks=_bench())
    assert {c.scheme for c in runs["tiny"].failures} == set(SCHEMES)
    assert all("RuntimeError" in c.failure for c in runs["tiny"].failures)


def test_clean_suite_has_no_failures():
    runs = run_suite(benchmarks=_bench())
    assert suite_failures(runs) == []
    assert runs["tiny"].ok
    assert runs["tiny"].improvement > 0
