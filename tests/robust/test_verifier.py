"""IR verifier: clean pipelines verify clean; every violation class fires."""

import pytest

from repro.core import compile_baseline, compile_proposed
from repro.isa import parse
from repro.isa.instruction import Guard
from repro.isa.randprog import random_program
from repro.robust import VerificationError, assert_valid, verify_program

TINY = """.text
main:
    li   r1, 5
    li   r2, 7
    beq  r1, r2, skip
    add  r3, r1, r2
skip:
    halt
"""


def _tiny():
    return parse(TINY, name="tiny")


def test_clean_program_verifies():
    assert verify_program(_tiny()) == []


@pytest.mark.parametrize("seed", range(3))
def test_pipelines_emit_verified_ir(seed):
    prog = random_program(seed)
    for result in (compile_baseline(prog), compile_proposed(prog)):
        assert verify_program(result.program) == []


def test_dangling_target_flagged():
    prog = _tiny()
    prog.instructions[2].target = ".nowhere"
    assert any(v.check == "targets" for v in verify_program(prog))


def test_label_out_of_range_flagged():
    prog = _tiny()
    prog.labels["skip"] = len(prog.instructions) + 7
    assert any(v.check in ("labels", "targets")
               for v in verify_program(prog))


def test_wrong_register_class_flagged():
    prog = _tiny()
    # Mutate behind the Instruction constructor's back, the way a buggy
    # in-place pass would.
    prog.instructions[3].srcs = ("r1", "cc0")
    assert any(v.check == "registers" for v in verify_program(prog))


def test_bogus_register_name_flagged():
    prog = _tiny()
    prog.instructions[3].srcs = ("r1", "q7")
    assert any(v.check == "registers" for v in verify_program(prog))


def test_stale_guard_flagged():
    prog = _tiny()
    prog.instructions[3].guard = Guard("cc3", sense=True)
    vs = verify_program(prog)
    assert any(v.check == "guards" for v in vs)


def test_defined_guard_accepted():
    prog = parse(""".text
main:
    li     r1, 5
    li     r2, 7
    cmplt  cc0, r1, r2
    (cc0) add r3, r1, r2
    halt
""", name="guarded")
    assert verify_program(prog) == []


def test_fall_off_end_flagged():
    prog = parse(".text\nmain:\n    li r1, 1\n    add r2, r1, r1\n    halt\n",
                 name="no-halt")
    prog.instructions.pop()  # a buggy pass dropped the terminator
    assert any(v.check == "structure" for v in verify_program(prog))


def test_assert_valid_raises_with_diagnosis():
    prog = _tiny()
    prog.instructions[2].target = ".nowhere"
    with pytest.raises(VerificationError, match="dangling target"):
        assert_valid(prog)
