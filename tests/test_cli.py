"""Command-line interface tests (in-process: fast, no subprocess)."""

import pytest

from repro.__main__ import main


def test_run_benchmark(capsys):
    assert main(["run", "espresso", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "espresso" in out


def test_run_proposed(capsys):
    assert main(["run", "espresso", "--scale", "0.1", "--proposed"]) == 0
    assert "proposed" in capsys.readouterr().out


def test_run_predictor_choice(capsys):
    assert main(["run", "grep", "--scale", "0.1",
                 "--predictor", "perfect"]) == 0
    out = capsys.readouterr().out
    assert "perfect" in out
    assert "100.00%" in out  # perfect accuracy


def test_profile(capsys):
    assert main(["profile", "compress", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "freq=" in out
    assert "toggle=" in out


def test_compile(capsys):
    assert main(["compile", "xlisp", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "branch-likelies" in out


def test_compile_emit(capsys):
    assert main(["compile", "grep", "--scale", "0.1", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "halt" in out  # assembly was printed


def test_run_file(tmp_path, capsys):
    f = tmp_path / "tiny.s"
    f.write_text(".text\nli r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n")
    assert main(["run", str(f)]) == 0
    assert "IPC" in capsys.readouterr().out


def test_unknown_program():
    with pytest.raises(SystemExit):
        main(["run", "no-such-benchmark"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_tables_json_output(tmp_path, capsys):
    import json

    out = tmp_path / "suite.json"
    assert main(["tables", "--scale", "0.01", "--no-cache",
                 "--json", str(out)]) == 0
    assert "Table 4" in capsys.readouterr().out
    data = json.loads(out.read_text())
    assert set(data) == {"compress", "espresso", "xlisp", "grep"}
    assert data["compress"]["results"]["2bitBP"]["stats"]["cycles"] > 0


def test_tables_cache_warm_run(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["tables", "--scale", "0.01", "--cache-dir", cache]) == 0
    cold = capsys.readouterr()
    assert "cache: hits=0" in cold.err
    assert main(["tables", "--scale", "0.01", "--cache-dir", cache]) == 0
    warm = capsys.readouterr()
    assert "cache: hits=20 misses=0" in warm.err  # 4 benchmarks x 5 schemes
    assert warm.out == cold.out


def test_cache_stats_and_clear(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["tables", "--scale", "0.01", "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "entries    : 20" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    assert "cleared 20 entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_sweep(tmp_path, capsys):
    import json

    out = tmp_path / "sweep.json"
    assert main(["sweep", "--scales", "0.01", "--no-cache",
                 "--config", "fetch_width=2,4",
                 "--benchmarks", "compress",
                 "--out", str(out)]) == 0
    records = json.loads(out.read_text())
    assert len(records) == 10  # 2 widths x 1 benchmark x 5 schemes
    assert {r["config"]["fetch_width"] for r in records} == {2, 4}
    assert all(r["ok"] for r in records)
    assert all(r["ipc"] > 0 for r in records)


def test_sweep_rejects_unknown_axis():
    with pytest.raises(SystemExit):
        main(["sweep", "--scales", "0.01", "--no-cache",
              "--config", "no_such_field=1,2"])


def test_trace_run_and_summarize(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    assert main(["trace", "run", "--scale", "0.01",
                 "--out", str(out), "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "spans written to" in captured.err
    from repro.obs import read_trace

    names = {r["name"] for r in read_trace(out)}
    assert "suite.run" in names
    assert "cell.Proposed" in names
    assert "pass.decide" in names

    assert main(["trace", "summarize", str(out)]) == 0
    table = capsys.readouterr().out
    assert "distinct names" in table
    assert "suite.run" in table


def test_trace_run_inline_summary_and_metrics(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    assert main(["trace", "run", "--scale", "0.01", "--out", str(out),
                 "--no-cache", "--summarize", "--metrics"]) == 0
    stdout = capsys.readouterr().out
    assert "distinct names" in stdout
    import json

    # stdout is the metrics JSON followed by the span table; the JSON is
    # everything before the table's "N spans, M distinct names" header.
    snap = json.loads(stdout[:stdout.index("distinct names")]
                      .rsplit("\n", 1)[0])
    assert snap["counters"]["compiler.compiles_proposed"] > 0
    assert snap["counters"]["pipeline.cycles"] > 0


def test_trace_summarize_missing_file(capsys):
    assert main(["trace", "summarize", "no-such-trace.jsonl"]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_tables_trace_flag(tmp_path, capsys):
    out = tmp_path / "tables-trace.jsonl"
    assert main(["tables", "--scale", "0.01", "--no-cache",
                 "--trace", str(out)]) == 0
    from repro.obs import read_trace

    assert any(r["name"] == "suite.run" for r in read_trace(out))


def test_run_sample_heat_report(capsys):
    assert main(["run", "compress", "--scale", "0.01",
                 "--sample", "7"]) == 0
    out = capsys.readouterr().out
    assert "heat report" in out
    assert "samples" in out
