"""Command-line interface tests (in-process: fast, no subprocess)."""

import pytest

from repro.__main__ import main


def test_run_benchmark(capsys):
    assert main(["run", "espresso", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "espresso" in out


def test_run_proposed(capsys):
    assert main(["run", "espresso", "--scale", "0.1", "--proposed"]) == 0
    assert "proposed" in capsys.readouterr().out


def test_run_predictor_choice(capsys):
    assert main(["run", "grep", "--scale", "0.1",
                 "--predictor", "perfect"]) == 0
    out = capsys.readouterr().out
    assert "perfect" in out
    assert "100.00%" in out  # perfect accuracy


def test_profile(capsys):
    assert main(["profile", "compress", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "freq=" in out
    assert "toggle=" in out


def test_compile(capsys):
    assert main(["compile", "xlisp", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "branch-likelies" in out


def test_compile_emit(capsys):
    assert main(["compile", "grep", "--scale", "0.1", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "halt" in out  # assembly was printed


def test_run_file(tmp_path, capsys):
    f = tmp_path / "tiny.s"
    f.write_text(".text\nli r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n")
    assert main(["run", str(f)]) == 0
    assert "IPC" in capsys.readouterr().out


def test_unknown_program():
    with pytest.raises(SystemExit):
        main(["run", "no-such-benchmark"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
