"""Shared schema-version discipline for every serializable result type."""

import pytest

from repro.core import serde
from repro.core.serde import (
    SCHEMA_VERSION, SchemaMismatch, VERSION_KEY, check, dump_fields,
    load_fields, stamp,
)


def test_stamp_adds_version_and_chains():
    payload = {"a": 1}
    assert stamp(payload) is payload
    assert payload[VERSION_KEY] == SCHEMA_VERSION


def test_check_round_trip():
    payload = stamp({"a": 1})
    assert check(payload, "Thing") is payload


def test_check_rejects_missing_version():
    with pytest.raises(SchemaMismatch, match="Thing payload"):
        check({"a": 1}, "Thing")


def test_check_rejects_other_generation():
    payload = stamp({}, version=SCHEMA_VERSION + 1)
    with pytest.raises(SchemaMismatch, match="stale artifact"):
        check(payload, "Thing")


def test_schema_mismatch_is_a_value_error():
    assert issubclass(SchemaMismatch, ValueError)


def test_dump_and_load_fields():
    class Obj:
        x = 1
        y = "two"

    payload = dump_fields(Obj(), ["x", "y"])
    assert payload == {"x": 1, "y": "two"}
    assert load_fields(stamp(payload), ["x", "y"]) == {"x": 1, "y": "two"}


def test_load_fields_missing_key_raises():
    with pytest.raises(KeyError):
        load_fields({"x": 1}, ["x", "missing"])


def test_sim_stats_round_trip_carries_version():
    from repro.sim import SimStats

    payload = SimStats().to_dict()
    assert payload[VERSION_KEY] == SCHEMA_VERSION
    assert SimStats.from_dict(payload).to_dict() == payload


def test_from_dict_rejects_pre_versioned_payload():
    from repro.sim import SimStats

    payload = SimStats().to_dict()
    del payload[VERSION_KEY]
    with pytest.raises(SchemaMismatch):
        SimStats.from_dict(payload)


def test_engine_cache_envelope_bumped_with_serde():
    # The artifact-cache envelope version must roll whenever the payload
    # schema does, so stale cached payloads die as misses (see serde doc).
    # The envelope was born at 2 when the payload schema was at 1; every
    # payload bump since must have carried the envelope with it.
    from repro.engine.keys import SCHEMA_VERSION as ENVELOPE_VERSION

    assert serde.SCHEMA_VERSION == 4
    assert ENVELOPE_VERSION >= serde.SCHEMA_VERSION + 1
