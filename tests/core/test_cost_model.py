"""Cost model: exact reproduction of the paper's Figure 2/3/4 arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    PAPER_FIG2, PAPER_FIG4_PLAN, DiamondRegion, SegmentPlan,
    diamond_from_cfg, paper_fig4_cost, split_cost, weighted_schedule_cost,
)


# ---- the paper's exact numbers ---------------------------------------------------

def test_fig2_baseline_3100():
    assert PAPER_FIG2.baseline_cost() == 3100.0


def test_fig2_guarded_3600():
    assert PAPER_FIG2.guarded_cost() == 3600.0


def test_fig2_speculation_2900():
    assert PAPER_FIG2.speculate_balanced(2) == 2900.0


def test_fig4_split_2756():
    assert paper_fig4_cost() == pytest.approx(2756.0)


def test_fig4_segment_terms():
    # 100 * (9.44 + 5.8 + 12.32) per the paper's Figure 4 caption.
    seg1 = split_cost(PAPER_FIG2, (
        SegmentPlan(1.0, 0.05, "favor_b3", 4),))
    assert seg1 == pytest.approx(2360.0)  # 100 * 23.6 (= 9.44/0.4 * 100)
    seg2 = split_cost(PAPER_FIG2, (SegmentPlan(1.0, 0.5, "balanced", 2),))
    assert seg2 == pytest.approx(2900.0)
    seg3 = split_cost(PAPER_FIG2, (SegmentPlan(1.0, 0.95, "favor_b2", 4),))
    assert seg3 == pytest.approx(3080.0)  # 100 * 30.8
    assert 0.4 * seg1 + 0.2 * seg2 + 0.4 * seg3 == pytest.approx(2756.0)


def test_split_beats_one_time_metric():
    """The paper's headline claim for this example: the split schedule
    (2756) improves on the best any one-time decision can make (2900)."""
    best_one_time = PAPER_FIG2.best_one_time_cost(k=2)
    assert best_one_time == 2900.0
    assert paper_fig4_cost() < best_one_time


def test_guarded_worse_when_arms_skewed():
    """Figure 2's lesson: guarded execution should not be employed when
    schedule-length disparity between arms is high and probabilities don't
    compensate."""
    assert PAPER_FIG2.guarded_cost() > PAPER_FIG2.baseline_cost()


def test_guarded_can_win_when_arms_balanced():
    # Short, equal arms + branch removal: guarded wins when arms overlap
    # entirely in the predecessor's vacant slots.
    d = DiamondRegion(b1=10, b2=2, b3=2, b4=10, p_b2=0.5, vacant_b1=4,
                      iterations=100)
    assert d.guarded_cost() <= d.baseline_cost()


# ---- model validation ------------------------------------------------------------

def test_vacant_slot_limit_enforced():
    with pytest.raises(ValueError):
        PAPER_FIG2.speculate_balanced(3)  # needs 6 slots, only 4
    with pytest.raises(ValueError):
        PAPER_FIG2.per_iter_biased(True, 5)


def test_bad_probability_rejected():
    with pytest.raises(ValueError):
        DiamondRegion(1, 1, 1, 1, p_b2=1.5, vacant_b1=0, iterations=1)


def test_split_fractions_must_sum_to_one():
    with pytest.raises(ValueError):
        split_cost(PAPER_FIG2, (SegmentPlan(0.5, 0.5, "baseline"),))


def test_split_unknown_strategy():
    with pytest.raises(ValueError):
        split_cost(PAPER_FIG2, (SegmentPlan(1.0, 0.5, "warp"),))


def test_split_overhead_term():
    base = split_cost(PAPER_FIG2, PAPER_FIG4_PLAN)
    with_oh = split_cost(PAPER_FIG2, PAPER_FIG4_PLAN, overhead_per_iter=1.0)
    assert with_oh == pytest.approx(base + 100.0)


@given(st.floats(min_value=0, max_value=1),
       st.integers(min_value=0, max_value=2))
@settings(max_examples=50)
def test_balanced_speculation_never_hurts(p, k):
    d = DiamondRegion(b1=10, b2=13, b3=5, b4=12, p_b2=p, vacant_b1=4,
                      iterations=100)
    assert d.speculate_balanced(k) <= d.baseline_cost()


@given(st.floats(min_value=0, max_value=1))
@settings(max_examples=50)
def test_biased_toward_likely_arm_wins_at_extremes(p):
    d = DiamondRegion(b1=10, b2=13, b3=5, b4=12, p_b2=p, vacant_b1=4,
                      iterations=100)
    fav_b2 = d.speculate_biased(True, 4)
    fav_b3 = d.speculate_biased(False, 4)
    if p > 0.9:
        assert fav_b2 <= fav_b3
    elif p < 0.1:
        assert fav_b3 <= fav_b2


# ---- real-CFG estimation ------------------------------------------------------------

DIAMOND_SRC = """
.text
entry:
    li   r1, 0
    li   r2, 100
B1:
    and  r5, r5, r5
    beq  r3, r4, B3
B2:
    add  r6, r6, r7
    mul  r6, r6, r6
    j    B4
B3:
    sub  r6, r6, r7
B4:
    addi r1, r1, 1
    bne  r1, r2, B1
exit:
    halt
"""


def _annotated_cfg():
    from repro.cfg import build_cfg

    cfg = build_cfg(DIAMOND_SRC)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    freqs = {labels["entry"].bid: 1, labels["B1"].bid: 100,
             labels["B2"].bid: 50, labels["B3"].bid: 50,
             labels["B4"].bid: 100, labels["exit"].bid: 1}
    edges = {(labels["B1"].bid, labels["B2"].bid): 50,
             (labels["B1"].bid, labels["B3"].bid): 50}
    cfg.scale_frequencies(freqs, edges)
    return cfg, labels


def test_weighted_schedule_cost():
    cfg, labels = _annotated_cfg()
    cost = weighted_schedule_cost(cfg)
    assert cost > 0
    region = weighted_schedule_cost(
        cfg, blocks=[labels["B1"].bid, labels["B2"].bid])
    assert region < cost


def test_diamond_from_cfg():
    cfg, labels = _annotated_cfg()
    d = diamond_from_cfg(cfg, labels["B1"].bid)
    assert d is not None
    assert d.iterations == 100
    assert d.p_b2 == pytest.approx(0.5)
    assert d.b2 >= d.b3  # B2 has the longer arm (mul chain)


def test_diamond_from_cfg_rejects_non_diamond():
    cfg, labels = _annotated_cfg()
    assert diamond_from_cfg(cfg, labels["B4"].bid) is None
