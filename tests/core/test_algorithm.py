"""The Figure 6 decision algorithm and feedback heuristics."""

import pytest

from repro.cfg import LoopForest, build_cfg
from repro.core import DEFAULT_HEURISTICS, FeedbackHeuristics, decide
from repro.core.heuristics import split_benefit_estimate
from repro.profilefb import BranchHistory, ProfileDB, Segment
from repro.workloads import biased_loop_program, phased_loop_program


def plan_for(prog, heur=DEFAULT_HEURISTICS):
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    forest = LoopForest(cfg)
    return decide(cfg, forest, db, heur), db, cfg


def actions(plan):
    return {d.action for d in plan.decisions}


def test_backward_hot_branch_gets_likely():
    prog = biased_loop_program(iterations=200, period=1000)  # ~always taken
    plan, _, _ = plan_for(prog)
    backward = [d for d in plan.decisions if d.direction == "backward"]
    assert any(d.action == "likely" for d in backward)


def test_forward_biased_branch_gets_likely():
    prog = biased_loop_program(iterations=400, period=32)  # ~97% taken
    plan, _, _ = plan_for(prog)
    forward_likely = [d for d in plan.decisions
                      if d.direction == "forward" and d.action == "likely"]
    assert forward_likely


def test_alternating_branch_offered_to_ifconvert():
    # A strictly alternating branch: periodic pattern -> guard candidate.
    prog = phased_loop_program([(200, "alternate")], body_ops=1)
    plan, _, _ = plan_for(prog)
    target = [d for d in plan.decisions
              if d.action in ("ifconvert", "none") and "guard" in d.reason
              or d.action == "ifconvert"]
    assert any(d.action == "ifconvert" for d in plan.decisions), \
        plan.summary()


def test_phased_branch_considered_for_split():
    prog = phased_loop_program([(80, "taken"), (40, "alternate"),
                                (80, "nottaken")], body_ops=2)
    plan, _, _ = plan_for(prog)
    reasons = " | ".join(d.reason for d in plan.decisions)
    assert "phased" in reasons or "split" in reasons


def test_min_executions_gate():
    prog = biased_loop_program(iterations=8, period=4)
    heur = FeedbackHeuristics(min_executions=1000)
    plan, _, _ = plan_for(prog, heur)
    assert all(d.action == "none" for d in plan.decisions)


def test_feature_toggles():
    prog = biased_loop_program(iterations=200, period=32)
    heur = FeedbackHeuristics(enable_likely=False, enable_ifconvert=False,
                              enable_split=False)
    plan, _, _ = plan_for(prog, heur)
    assert actions(plan) == {"none"}


def test_decisions_cover_all_loop_branches():
    prog = phased_loop_program([(50, "taken"), (50, "nottaken")])
    plan, db, cfg = plan_for(prog)
    forest = LoopForest(cfg)
    n_branches = sum(len(forest.branches(l)) for l in forest.loops)
    # Each branch block decided at most once (shared blocks deduplicated).
    assert 0 < len(plan.decisions) <= n_branches


def test_plan_summary_renders():
    prog = biased_loop_program(iterations=100, period=8)
    plan, _, _ = plan_for(prog)
    text = plan.summary()
    assert "->" in text


def test_by_action():
    prog = biased_loop_program(iterations=200, period=1000)
    plan, _, _ = plan_for(prog)
    for d in plan.by_action("likely"):
        assert d.action == "likely"


# ---- split benefit estimator --------------------------------------------------------

def test_split_benefit_positive_for_short_phases():
    # Many short alternating-bias phases defeat a 2-bit counter; splitting
    # specializes each -> strongly positive estimate.
    h = BranchHistory.from_string(("T" * 6 + "F" * 6) * 30)
    segs = tuple(Segment(i * 6, (i + 1) * 6,
                         "taken" if i % 2 == 0 else "nottaken",
                         1.0 if i % 2 == 0 else 0.0)
                 for i in range(60))
    gain = split_benefit_estimate(h, segs)
    assert gain > 0


def test_split_benefit_negative_for_two_clean_phases():
    # One transition: the 2-bit counter already handles it; instrumentation
    # overhead dominates.
    h = BranchHistory.from_string("T" * 200 + "F" * 200)
    segs = (Segment(0, 200, "taken", 1.0), Segment(200, 400, "nottaken", 0.0))
    gain = split_benefit_estimate(h, segs)
    assert gain < 0


def test_split_benefit_empty_history():
    assert split_benefit_estimate(BranchHistory([]), ()) == 0.0
