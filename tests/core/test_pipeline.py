"""End-to-end compilation pipelines: semantics and performance direction."""

import pytest

from repro import compile_baseline, compile_proposed, compile_variant, simulate, r10k_config
from repro.sim import final_state
from repro.workloads import (
    AUX_BASE, benchmark_programs, biased_loop_program, phased_loop_program,
)


def aux_words(prog, k=6):
    s = final_state(prog)
    return [s.mem.read_word(AUX_BASE + 4 * i) for i in range(k)]


SMALL = benchmark_programs(scale=0.15)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_baseline_preserves_semantics(name):
    prog = SMALL[name]
    base = compile_baseline(prog)
    assert aux_words(base.program) == aux_words(prog)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_proposed_preserves_semantics(name):
    prog = SMALL[name]
    prop = compile_proposed(prog)
    assert aux_words(prop.program) == aux_words(prog)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_proposed_never_slower_than_baseline_much(name):
    """The decision gates must prevent regressions: allow at most 5%
    cycle increase on any benchmark (transforms are profit-gated)."""
    prog = SMALL[name]
    base = simulate(compile_baseline(prog).program, r10k_config("twobit"))
    prop = simulate(compile_proposed(prog).program, r10k_config("twobit"))
    assert prop.cycles <= base.cycles * 1.05


def test_proposed_improves_espresso():
    prog = benchmark_programs(scale=0.3)["espresso"]
    base = simulate(compile_baseline(prog).program, r10k_config("twobit"))
    prop = simulate(compile_proposed(prog).program, r10k_config("twobit"))
    assert prop.ipc > base.ipc * 1.2


def test_variant_toggles_off_everything_is_baselineish():
    prog = biased_loop_program(iterations=300, period=8)
    cr = compile_variant(prog, likely=False, split=False, ifconvert=False,
                         speculation=False)
    # No transform applied: same instruction count modulo scheduling.
    assert aux_words(cr.program) == aux_words(prog)
    assert cr.splits_applied == 0
    assert cr.ifconverts_applied == 0


def test_variant_likely_only():
    prog = biased_loop_program(iterations=300, period=1000)
    cr = compile_variant(prog, likely=True, split=False, ifconvert=False,
                         speculation=False)
    ops = [i.op for i in cr.program]
    assert any(op.endswith("l") and op != "halt" for op in ops
               if op in ("bnel", "beql", "bnezl", "beqzl", "bctl"))


def test_proposed_on_phased_synthetic():
    prog = phased_loop_program([(80, "taken"), (80, "nottaken")], body_ops=3)
    prop = compile_proposed(prog)
    assert aux_words(prop.program, 2) == aux_words(prog, 2)


def test_compile_result_summary():
    prog = biased_loop_program(iterations=100, period=8)
    cr = compile_proposed(prog)
    text = cr.summary()
    assert "branch-likelies" in text
    assert "splits applied" in text


def test_reuse_profile():
    from repro.profilefb import ProfileDB

    prog = biased_loop_program(iterations=200, period=8)
    db = ProfileDB.from_run(prog)
    cr = compile_proposed(prog, profile=db)
    assert cr.profile is db
    assert aux_words(cr.program) == aux_words(prog)


def test_proposed_program_validates_and_is_renamed():
    prog = SMALL["compress"]
    cr = compile_proposed(prog)
    cr.program.validate()
    assert cr.program.name.endswith(".proposed")
