"""BranchHistory statistics, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profilefb import BranchHistory

outcome_lists = st.lists(st.booleans(), min_size=0, max_size=200)


def H(s):
    return BranchHistory.from_string(s)


def test_from_string():
    h = H("TTFFT")
    assert len(h) == 5
    assert h.taken_count == 3
    assert h.as_string() == "TTFFT"


def test_from_string_accepts_digits():
    assert H("1100").as_string() == "TTFF"


def test_from_string_rejects_garbage():
    with pytest.raises(ValueError):
        H("TXF")


def test_frequency():
    assert H("TTFF").frequency == 0.5
    assert H("TTTT").frequency == 1.0
    assert H("").frequency == 0.0


def test_transitions_and_toggle():
    assert H("TTTT").transitions == 0
    assert H("TTTT").toggle_factor == 0.0
    assert H("TFTF").transitions == 3
    assert H("TFTF").toggle_factor == 1.0
    assert H("TTFF").transitions == 1
    assert H("T").toggle_factor == 0.0


def test_runs():
    assert H("TTTFFT").runs() == [(True, 3), (False, 2), (True, 1)]
    assert H("").runs() == []
    assert H("F").runs() == [(False, 1)]


def test_windowed_frequency():
    h = H("TTTT" + "FFFF")
    wf = h.windowed_frequency(4)
    assert list(wf) == [1.0, 0.0]
    wf2 = h.windowed_frequency(3)
    assert len(wf2) == 3  # includes partial window


def test_windowed_rejects_bad_window():
    with pytest.raises(ValueError):
        H("TT").windowed_frequency(0)


def test_slicing():
    h = H("TTFFT")
    assert h[0] is True
    assert h[2] is False
    assert h[1:3].as_string() == "TF"


def test_concat():
    assert H("TT").concat(H("FF")).as_string() == "TTFF"


def test_equality():
    assert H("TF") == H("TF")
    assert H("TF") != H("FT")


def test_2bit_accuracy_biased():
    # Always-taken: mispredicts only while warming from weakly-not-taken.
    acc = H("T" * 100).prediction_accuracy_2bit()
    assert acc >= 0.98


def test_2bit_accuracy_alternating():
    # TFTF defeats the counter: accuracy collapses.
    acc = H("TF" * 50).prediction_accuracy_2bit()
    assert acc <= 0.55


def test_2bit_accuracy_phased():
    # TTTT...FFFF: two phases, one mispredict burst at the transition.
    acc = H("T" * 50 + "F" * 50).prediction_accuracy_2bit()
    assert acc > 0.9


@given(outcome_lists)
@settings(max_examples=100)
def test_frequency_bounds(outcomes):
    h = BranchHistory(outcomes)
    assert 0.0 <= h.frequency <= 1.0
    assert 0.0 <= h.toggle_factor <= 1.0


@given(outcome_lists)
@settings(max_examples=100)
def test_runs_partition(outcomes):
    h = BranchHistory(outcomes)
    runs = h.runs()
    assert sum(n for _, n in runs) == len(h)
    # Adjacent runs alternate values.
    for (a, _), (b, _) in zip(runs, runs[1:]):
        assert a != b


@given(outcome_lists)
@settings(max_examples=100)
def test_string_roundtrip(outcomes):
    h = BranchHistory(outcomes)
    assert BranchHistory.from_string(h.as_string()) == h


@given(outcome_lists)
@settings(max_examples=100)
def test_transitions_consistent_with_runs(outcomes):
    h = BranchHistory(outcomes)
    assert h.transitions == max(0, len(h.runs()) - 1)
