"""ProfileDB: end-to-end profiling of real programs."""

from repro.cfg import build_cfg
from repro.isa import parse
from repro.profilefb import BranchClass, ProfileDB

# Loop of 100 iterations whose inner branch follows the paper's pattern:
# taken for i<40, alternating for 40<=i<60, not-taken for i>=60.
PAPER_LOOP = """
.text
main:
    li   r1, 0          # i
    li   r2, 100        # N
loop:
    slti r3, r1, 40
    bnez r3, take       # i < 40 -> taken region
    li   r4, 60
    slt  r5, r1, r4
    beqz r5, skip       # i >= 60 -> not-taken region
    andi r6, r1, 1
    bnez r6, take       # 40<=i<60: alternate on parity
    j    skip
take:
    addi r7, r7, 1
skip:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""

SIMPLE_LOOP = """
.text
    li r1, 0
    li r2, 50
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""


def test_profile_simple_loop():
    prog = parse(SIMPLE_LOOP)
    db = ProfileDB.from_run(prog)
    assert len(db.branches) == 1
    (bp,) = db.branches.values()
    assert bp.executions == 50
    assert bp.taken == 49
    assert bp.classification.branch_class == BranchClass.HIGHLY_TAKEN


def test_block_and_edge_freqs():
    prog = parse(SIMPLE_LOOP)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    bf = db.block_freqs(cfg)
    labels = {bb.label: bb.bid for bb in cfg.blocks if bb.label}
    assert bf[labels["L"]] == 50
    ef = db.edge_freqs(cfg)
    loop_edge = (labels["L"], labels["L"])
    assert ef[loop_edge] == 49


def test_annotate_cfg():
    prog = parse(SIMPLE_LOOP)
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    labels = {bb.label: bb for bb in cfg.blocks if bb.label}
    assert labels["L"].freq == 50
    assert cfg.edge(labels["L"].bid, labels["L"].bid).freq == 49


def test_paper_loop_branch_classes():
    prog = parse(PAPER_LOOP)
    db = ProfileDB.from_run(prog)
    # Find the parity branch: executes 20 times, alternating.
    by_op_pc = sorted(db.branches.values(), key=lambda b: b.pc)
    parity = [b for b in by_op_pc if b.executions == 20]
    assert len(parity) == 1
    assert parity[0].history.toggle_factor > 0.9
    # The i<40 test branch executes 100 times: T*40 then F*60 -> phased.
    region = [b for b in by_op_pc if b.executions == 100
              and b.instr.op == "bnez"]
    assert len(region) == 1
    assert region[0].classification.branch_class == BranchClass.SPLITTABLE
    segs = region[0].classification.pattern.segments
    assert [s.kind for s in segs] == ["taken", "nottaken"]


def test_loop_back_branch_highly_taken():
    prog = parse(PAPER_LOOP)
    db = ProfileDB.from_run(prog)
    back = [b for b in db.branches.values() if b.instr.op == "bne"]
    assert len(back) == 1
    assert back[0].classification.branch_class == BranchClass.HIGHLY_TAKEN


def test_summary_renders():
    db = ProfileDB.from_run(parse(SIMPLE_LOOP))
    text = db.summary()
    assert "dynamic instructions" in text
    assert "freq=" in text


def test_branch_at_and_of():
    prog = parse(SIMPLE_LOOP)
    db = ProfileDB.from_run(prog)
    (bp,) = db.branches.values()
    assert db.branch_at(bp.pc) is bp
    assert db.branch_of(bp.instr) is bp
    assert db.branch_at(0) is None
