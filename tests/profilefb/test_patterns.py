"""Segmentation, pattern detection, classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profilefb import (
    BranchClass, BranchHistory, ClassifyConfig, analyze_pattern,
    boundaries_stable, classify, detect_period, is_instrumentable,
    is_monotonic, segment_boundaries, segment_history, segmentation_quality,
)


def H(s):
    return BranchHistory.from_string(s)


#: The paper's Figure 3/4 iteration-space shape: 40% taken, 20% toggling,
#: 40% not-taken (loop executed 100 times).
PAPER_PATTERN = H("T" * 40 + "TF" * 10 + "F" * 40)


# ---- segmentation --------------------------------------------------------------

def test_paper_pattern_segments():
    segs = segment_history(PAPER_PATTERN, window=5)
    assert [s.kind for s in segs] == ["taken", "mixed", "nottaken"]
    assert segment_boundaries(segs) == [40, 60]
    assert segs[0].freq == 1.0
    assert abs(segs[1].freq - 0.5) < 1e-12
    assert segs[2].freq == 0.0


def test_constant_single_segment():
    segs = segment_history(H("T" * 50), window=8)
    assert len(segs) == 1
    assert segs[0].kind == "taken"
    assert (segs[0].start, segs[0].end) == (0, 50)


def test_two_phase():
    segs = segment_history(H("T" * 32 + "F" * 32), window=8)
    assert [s.kind for s in segs] == ["taken", "nottaken"]
    assert segment_boundaries(segs) == [32]


def test_small_sections_absorbed():
    # One stray F in a sea of Ts must not create its own section.
    segs = segment_history(H("T" * 30 + "F" + "T" * 33), window=8,
                           min_fraction=0.1)
    assert len(segs) == 1
    assert segs[0].kind == "taken"


def test_segments_partition_everything():
    for s in ("TTFFTTFF" * 10, "T" * 7, "F" * 100, "TF" * 33):
        segs = segment_history(H(s), window=8)
        assert segs[0].start == 0
        assert segs[-1].end == len(s)
        for a, b in zip(segs, segs[1:]):
            assert a.end == b.start


@given(st.lists(st.booleans(), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=60)
def test_segment_partition_property(outcomes, window):
    h = BranchHistory(outcomes)
    segs = segment_history(h, window=window)
    assert segs[0].start == 0
    assert segs[-1].end == len(h)
    for a, b in zip(segs, segs[1:]):
        assert a.end == b.start
        assert a.kind != b.kind  # coalesced


def test_segmentation_quality():
    # Perfectly phased: per-segment prediction is (almost) perfect.
    q = segmentation_quality(PAPER_PATTERN,
                             segment_history(PAPER_PATTERN, window=5))
    assert q >= 0.89  # 0.4*1 + 0.2*0.5 + 0.4*1 = 0.9
    # One whole-run segment: only max(p, 1-p) = 0.5.
    whole = segment_history(PAPER_PATTERN, window=len(PAPER_PATTERN))
    assert segmentation_quality(PAPER_PATTERN, whole) <= 0.6


# ---- period detection ----------------------------------------------------------

def test_detect_period_exact():
    p, match = detect_period(H("TTF" * 30))
    assert p == 3
    assert match == 1.0


def test_detect_period_alternating():
    p, _ = detect_period(H("TF" * 40))
    assert p == 2


def test_detect_period_none_for_random_phases():
    assert detect_period(H("T" * 40 + "F" * 40)) is None


def test_detect_period_tolerates_noise():
    s = list("TTF" * 30)
    s[10] = "T"  # one flipped outcome
    result = detect_period(BranchHistory.from_string("".join(s)),
                           min_match=0.95)
    assert result is not None
    assert result[0] == 3


# ---- pattern analysis ------------------------------------------------------------

def test_analyze_constant():
    assert analyze_pattern(H("T" * 100)).kind == "constant"
    assert analyze_pattern(H("F" * 100)).kind == "constant"


def test_analyze_periodic():
    info = analyze_pattern(H("TTF" * 40))
    assert info.kind == "periodic"
    assert info.period == 3
    assert info.is_instrumentable


def test_analyze_phased_paper_pattern():
    info = analyze_pattern(PAPER_PATTERN, window=5)
    assert info.kind == "phased"
    assert info.is_instrumentable
    assert len(info.segments) == 3


def test_analyze_complex_random():
    import random

    rng = random.Random(7)
    s = "".join("T" if rng.random() < 0.5 else "F" for _ in range(400))
    info = analyze_pattern(BranchHistory.from_string(s))
    assert info.kind == "complex"
    assert not info.is_instrumentable


def test_is_instrumentable_shortcut():
    assert is_instrumentable(PAPER_PATTERN, window=5)
    assert not is_instrumentable(H("T" * 100))  # constant: use likely instead


def test_boundaries_stable():
    a = H("T" * 40 + "TF" * 10 + "F" * 40)
    b = H("T" * 42 + "TF" * 9 + "F" * 40)
    assert boundaries_stable([a, b], tolerance=0.1, window=5)


def test_boundaries_unstable():
    a = H("T" * 20 + "F" * 80)
    b = H("T" * 80 + "F" * 20)
    assert not boundaries_stable([a, b], tolerance=0.1, window=5)


# ---- classification -----------------------------------------------------------------

def test_classify_highly_taken():
    c = classify(H("T" * 99 + "F"))
    assert c.branch_class == BranchClass.HIGHLY_TAKEN
    assert c.wants_likely


def test_classify_highly_nottaken():
    c = classify(H("F" * 99 + "T"))
    assert c.branch_class == BranchClass.HIGHLY_NOTTAKEN
    assert c.wants_likely


def test_classify_splittable():
    c = classify(PAPER_PATTERN)
    assert c.branch_class == BranchClass.SPLITTABLE
    assert c.wants_split


def test_classify_biased_monotonic():
    # 70% taken, i.i.d.-ish mix without phase structure.
    import random

    rng = random.Random(3)
    s = "".join("T" if rng.random() < 0.72 else "F" for _ in range(400))
    c = classify(BranchHistory.from_string(s))
    assert c.branch_class == BranchClass.BIASED_MONOTONIC
    assert c.wants_ifconvert


def test_classify_irregular():
    import random

    rng = random.Random(11)
    s = "".join("T" if rng.random() < 0.5 else "F" for _ in range(400))
    c = classify(BranchHistory.from_string(s))
    assert c.branch_class == BranchClass.IRREGULAR


def test_is_monotonic():
    assert is_monotonic(H("T" * 100))
    assert not is_monotonic(H("T" * 50 + "F" * 50))  # phased
    assert not is_monotonic(H("TF" * 50))             # alternating


def test_custom_thresholds():
    cfg = ClassifyConfig(likely_threshold=0.8)
    c = classify(H("T" * 85 + "F" * 15), cfg)
    assert c.branch_class == BranchClass.HIGHLY_TAKEN
