"""ProfileDB save/load: the paper's multi-run feedback-file workflow."""

import pytest

from repro.core import compile_proposed
from repro.isa import parse
from repro.profilefb import ProfileDB, boundaries_stable
from repro.workloads import compress_program, phased_loop_program

LOOP = """
.text
    li r1, 0
    li r2, 50
L:
    addi r1, r1, 1
    bne r1, r2, L
    halt
"""


def test_roundtrip_identical_classification():
    prog = parse(LOOP)
    db = ProfileDB.from_run(prog)
    db2 = ProfileDB.from_json(db.to_json(), prog)
    assert set(db2.branches) == set(db.branches)
    for uid, bp in db.branches.items():
        bp2 = db2.branches[uid]
        assert bp2.pc == bp.pc
        assert bp2.history == bp.history
        assert bp2.classification.branch_class == bp.classification.branch_class
    assert db2.index_counts == db.index_counts


def test_roundtrip_on_real_workload():
    prog = compress_program(800)
    db = ProfileDB.from_run(prog)
    db2 = ProfileDB.from_json(db.to_json(), prog)
    assert len(db2.branches) == len(db.branches)


def test_loaded_profile_drives_compilation():
    prog = compress_program(800)
    db = ProfileDB.from_run(prog)
    reloaded = ProfileDB.from_json(db.to_json(), prog)
    a = compile_proposed(prog, profile=db)
    b = compile_proposed(prog, profile=reloaded)
    assert [i.op for i in a.program] == [i.op for i in b.program]


def test_rejects_wrong_program():
    prog = parse(LOOP)
    other = parse(".text\nli r1, 1\nhalt\n")
    db = ProfileDB.from_run(prog)
    with pytest.raises(ValueError):
        ProfileDB.from_json(db.to_json(), other)


def test_rejects_non_branch_pc():
    prog = parse(LOOP)
    db = ProfileDB.from_run(prog)
    import json

    data = json.loads(db.to_json())
    data["branches"][0]["pc"] = 0  # li, not a branch
    with pytest.raises(ValueError):
        ProfileDB.from_json(json.dumps(data), prog)


def test_multi_run_boundary_stability():
    """Two runs with slightly different phase lengths agree on boundaries
    (the precondition the paper's splitter needs across inputs)."""
    a = phased_loop_program([(40, "taken"), (60, "nottaken")])
    b = phased_loop_program([(42, "taken"), (58, "nottaken")])
    hists = []
    for prog in (a, b):
        db = ProfileDB.from_run(prog)
        # The phased branch is the only mid-frequency one that executes
        # once per iteration.
        target = next(bp for bp in db.branches.values()
                      if 0.3 < bp.classification.frequency < 0.7
                      and bp.executions == 100)
        hists.append(target.history)
    assert boundaries_stable(hists, tolerance=0.1)
