"""Per-segment profile annotation of split-section clones (Figure 3)."""

import pytest

from repro.cfg import LoopForest, build_cfg
from repro.profilefb import ProfileDB, Segment
from repro.transform import split_branch_sectioned

TWO_PHASE = """
.text
main:
    li   r1, 0
    li   r2, 100
loop:
    slti r3, r1, 40
    bnez r3, hot
    addi r11, r11, 1
    j    latch
hot:
    addi r10, r10, 1
latch:
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""

SEGS = (Segment(0, 40, "taken", 1.0), Segment(40, 100, "nottaken", 0.0))


@pytest.fixture
def split_cfg():
    prog = build_cfg(TWO_PHASE).to_program()
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    forest = LoopForest(cfg)
    block = next(bb.bid for bb in cfg.blocks if bb.label == "loop")
    split_branch_sectioned(cfg, forest, block, SEGS)
    db.annotate(cfg)
    return cfg, db


def test_clone_blocks_scaled_by_fraction(split_cfg):
    cfg, db = split_cfg
    # Section-1 clone of the branch block runs 40% of iterations; the
    # original (section 2) runs the other 60%.
    fractions = sorted(
        round(bb.freq) for bb in cfg.blocks
        if bb.instructions and bb.instructions[0].ann.get("split_fraction"))
    assert 40 in fractions


def test_section_edges_reflect_segment_bias(split_cfg):
    cfg, db = split_cfg
    # Find each section's specialized branch and check its taken bias.
    for bb in cfg.blocks:
        term = bb.terminator
        if term is None or "split_segment" not in term.ann:
            continue
        te, fe = cfg.taken_edge(bb.bid), cfg.fall_edge(bb.bid)
        total = te.freq + fe.freq
        if total == 0:
            continue
        p_taken = te.freq / total
        # Both sections were specialized so their likely branch is taken
        # with (near-)certainty within the section.
        assert p_taken > 0.95, (bb.bid, term.op, p_taken)


def test_semantics_still_preserved(split_cfg):
    from repro.sim import final_state

    cfg, _ = split_cfg
    s = final_state(cfg.to_program())
    assert s.regs["r10"] == 40
    assert s.regs["r11"] == 60
