# Regression corpus: 'calls' strategy shape (seed 0);
# replayed through every fuzz scheme on each test run.
main:
    li r1, 48
    li r2, 57
    li r3, -40
    li r4, 16
    li r5, 80
    li r6, 74
    li r7, 53
    li r8, 27
    li r17, 0
    li r18, 6
loop_head:
    beqz r9, then_0
    addi r13, r2, -4
    j join_0
then_0:
    sll r2, r12, 3
    andi r9, r2, 252
    li r16, 327680
    add r16, r16, r9
    lw r9, 0(r16)
join_0:
    jal helper_0
    addi r8, r14, -7
    li r13, -77
    addi r17, r17, 1
    bne r17, r18, loop_head
    li r16, 331776
    sw r1, 0(r16)
    sw r2, 4(r16)
    sw r3, 8(r16)
    sw r4, 12(r16)
    sw r5, 16(r16)
    sw r6, 20(r16)
    sw r7, 24(r16)
    sw r8, 28(r16)
    sw r9, 32(r16)
    sw r10, 36(r16)
    halt
helper_0:
    li r12, 56
    sll r8, r14, 1
    jr r31
