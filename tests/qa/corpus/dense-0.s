# Regression corpus: 'dense' strategy shape (seed 0);
# replayed through every fuzz scheme on each test run.
main:
    li r1, 48
    li r2, 57
    li r3, -40
    li r4, 16
    li r5, 80
    li r6, 74
    li r7, 53
    li r8, 27
    li r17, 0
    li r18, 6
loop_head:
    beqz r9, then_0
    sub r13, r2, r10
    j join_0
then_0:
    sll r2, r12, 3
    mul r9, r2, r6
join_0:
    jal helper_0
    cmplt cc0, r9, r5
    (!cc0) addi r14, r14, 4
    andi r14, r13, 252
    li r16, 327680
    add r16, r16, r14
    sw r11, 0(r16)
    addi r17, r17, 1
    bne r17, r18, loop_head
    li r16, 331776
    sw r1, 0(r16)
    sw r2, 4(r16)
    sw r3, 8(r16)
    sw r4, 12(r16)
    sw r5, 16(r16)
    sw r6, 20(r16)
    sw r7, 24(r16)
    sw r8, 28(r16)
    sw r9, 32(r16)
    sw r10, 36(r16)
    halt
helper_0:
    add r4, r12, r6
    sub r4, r15, r10
    jr r31
