# Regression corpus: 'loops' strategy shape (seed 0);
# replayed through every fuzz scheme on each test run.
main:
    li r1, 48
    li r2, 57
    li r3, -40
    li r4, 16
    li r5, 80
    li r6, 74
    li r7, 53
    li r8, 27
    li r17, 0
    li r18, 6
loop_head:
    bne r10, r15, then_0
    li r5, 58
    j join_0
then_0:
    addi r15, r9, -4
    li r5, 75
join_0:
    sub r8, r9, r2
    sll r7, r6, 1
    addi r17, r17, 1
    bne r17, r18, loop_head
    li r16, 331776
    sw r1, 0(r16)
    sw r2, 4(r16)
    sw r3, 8(r16)
    sw r4, 12(r16)
    sw r5, 16(r16)
    sw r6, 20(r16)
    sw r7, 24(r16)
    sw r8, 28(r16)
    sw r9, 32(r16)
    sw r10, 36(r16)
    halt
