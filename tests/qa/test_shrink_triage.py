"""Shrinking and triage: minimization, bucket keys, structured reports."""

import random

import pytest

from repro.isa.printer import format_program
from repro.isa.randprog import random_program
from repro.qa.shrink import ShrinkResult, shrink_program
from repro.qa.triage import (
    bucket_id, triage_cell_error, triage_divergence,
)
from repro.robust.diffcheck import (
    DIVERGENCE_KINDS, DiffReport, check_equivalence,
)
from repro.robust.faults import inject_program_fault

MAX_STEPS = 200_000


def _fault_oracle(fault, kind=None):
    """Does injecting *fault* into a candidate make it diverge?"""
    def oracle(candidate):
        for bad in inject_program_fault(fault, candidate, random.Random(0)):
            report = check_equivalence(candidate, bad, max_steps=MAX_STEPS)
            if not report.equivalent:
                return kind is None or report.kind == kind
        return False
    return oracle


def test_shrink_clobbered_register_to_minimal():
    prog = random_program(5)
    oracle = _fault_oracle("clobbered-register", kind="mem-mismatch")
    assert oracle(prog)
    result = shrink_program(prog, oracle)
    assert result.shrunk_len <= 25
    assert result.shrunk_len < result.original_len
    assert oracle(result.program), "shrunk program no longer reproduces"
    assert 0 < result.ratio < 1


def test_shrink_noop_when_oracle_never_fails():
    prog = random_program(1)
    result = shrink_program(prog, lambda p: False)
    assert result.shrunk_len == result.original_len
    assert format_program(result.program) == format_program(prog)


def test_shrink_contains_crashing_oracle():
    prog = random_program(2)
    calls = {"n": 0}

    def oracle(candidate):
        calls["n"] += 1
        if len(candidate) < len(prog):
            raise RuntimeError("oracle crash on candidates")
        return True

    result = shrink_program(prog, oracle)
    assert result.shrunk_len == result.original_len
    assert calls["n"] >= 1


def test_shrink_respects_oracle_budget():
    prog = random_program(3)
    oracle = _fault_oracle("clobbered-register")
    result = shrink_program(prog, oracle, oracle_budget=5)
    assert result.oracle_calls <= 5


def test_shrink_result_to_dict():
    d = ShrinkResult(random_program(0), 40, 10, 55, 2).to_dict()
    assert d == {"original_len": 40, "shrunk_len": 10, "oracle_calls": 55,
                 "rounds": 2, "ratio": 0.25}


# -- triage -----------------------------------------------------------------


def test_bucket_id_sanitizes_and_masks_addresses():
    b = bucket_id("speculate", "mem-mismatch", "mem[0x00051A34]")
    assert b == "speculate--mem-mismatch--mem-0x51xxx"
    # Same page, different offset: same bucket.
    assert b == bucket_id("speculate", "mem-mismatch", "mem[0x00051FF0]")
    assert b != bucket_id("speculate", "mem-mismatch", "mem[0x00052000]")
    assert "/" not in bucket_id("a/b", "k ind", "lo:c")


def test_triage_divergence_from_payload():
    payload = {
        "strategy": "loops", "seed": 9,
        "schemes": {"combined": {
            "report": {"equivalent": False, "reason": "x",
                       "original_steps": 100, "transformed_steps": 90,
                       "mismatches": ["mem[0x00051000]: 0x01 != 0x02"],
                       "kind": "mem-mismatch",
                       "first_diff": "mem[0x00051000]"},
            "fallback": None, "degraded": False, "failing_stage": None,
        }},
        "divergent": ["combined"], "error": None,
    }
    entry = triage_divergence(payload, "combined")
    assert entry.bucket == "combined--mem-mismatch--mem-0x51xxx"
    assert entry.failing_pass == "combined"  # silent miscompile: no stage
    assert entry.name == "loops-9-combined"
    meta = entry.to_dict()
    assert meta["bucket"] == entry.bucket
    assert meta["report"]["kind"] == "mem-mismatch"


def test_triage_cell_error():
    entry = triage_cell_error({"strategy": "dense", "seed": 1,
                               "error": "KeyError: 'boom'"})
    assert entry.kind == "cell-error"
    assert entry.bucket.startswith("harness--cell-error--")


# -- DiffReport structured form ---------------------------------------------


def test_diffreport_roundtrip():
    report = DiffReport(False, reason="3 architectural mismatch(es)",
                        original_steps=10, transformed_steps=12,
                        mismatches=["mem[0x00051000]: 0x01 != 0x02"])
    d = report.to_dict()
    assert d["kind"] == "mem-mismatch"
    assert d["first_diff"] == "mem[0x00051000]"
    back = DiffReport.from_dict(d)
    assert back.to_dict() == d


@pytest.mark.parametrize("report,expected", [
    (DiffReport(True), "equivalent"),
    (DiffReport(False, reason="original: StepBudgetExceeded at pc=4 ..."),
     "original-failed"),
    (DiffReport(False, reason="transformed failed to load: boom"),
     "load-failure"),
    (DiffReport(False, reason="transformed: StepBudgetExceeded at pc=2 "
                              "after 80000 steps"), "timeout"),
    (DiffReport(False, reason="transformed: AlignmentError at pc=7 "
                              "after 12 steps"), "crash"),
    (DiffReport(False, reason="r", mismatches=["halted: True != False"]),
     "halt-mismatch"),
    (DiffReport(False, reason="r", mismatches=["mem[0x1]: 0x0 != 0x1"]),
     "mem-mismatch"),
    (DiffReport(False, reason="r", mismatches=["r5: 1 != 2"]),
     "reg-mismatch"),
])
def test_diffreport_kinds(report, expected):
    assert report.kind == expected
    assert expected in DIVERGENCE_KINDS


def test_diffreport_first_diff_from_crash_reason():
    report = DiffReport(False, reason="transformed: SimulationError at "
                                      "pc=13 after 9 steps: boom")
    assert report.first_diff == "pc=13"
