"""`python -m repro fuzz` CLI: error paths and smoke runs (in-process)."""

import pytest

from repro.__main__ import main


def test_unknown_subcommand_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["fuzzz"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_fuzz_rejects_zero_jobs(capsys):
    assert main(["fuzz", "--jobs", "0", "--budget", "1"]) == 2
    assert "--jobs must be >= 1" in capsys.readouterr().err


def test_fuzz_rejects_zero_budget(capsys):
    assert main(["fuzz", "--budget", "0"]) == 2
    assert "--budget must be >= 1" in capsys.readouterr().err


def test_fuzz_rejects_file_as_cache_dir(tmp_path, capsys):
    f = tmp_path / "not-a-dir"
    f.write_text("occupied\n")
    assert main(["fuzz", "--budget", "1", "--cache-dir", str(f)]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_fuzz_rejects_missing_replay_dir(tmp_path, capsys):
    missing = tmp_path / "no-corpus-here"
    assert main(["fuzz", "--replay", str(missing)]) == 2
    assert "no such corpus directory" in capsys.readouterr().err


def test_fuzz_rejects_unknown_strategy(capsys):
    assert main(["fuzz", "--budget", "1", "--no-cache",
                 "--strategies", "bogus-strategy"]) == 2
    assert "bogus-strategy" in capsys.readouterr().err


def test_fuzz_smoke_is_clean_and_deterministic(tmp_path, capsys):
    argv = ["fuzz", "--budget", "3", "--seed", "1", "--no-cache",
            "--no-shrink", "--strategies", "diamonds",
            "--max-steps", "400000", "--corpus", str(tmp_path / "corpus")]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "CLEAN" in first
    assert "programs tried : 3" in first
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_fuzz_replay_empty_corpus(tmp_path, capsys):
    (tmp_path / "corpus").mkdir()
    assert main(["fuzz", "--replay", str(tmp_path / "corpus")]) == 0
    assert "replayed 0 reproducer(s)" in capsys.readouterr().out
