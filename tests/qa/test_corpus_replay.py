"""Replay the checked-in regression corpus through every scheme.

Each ``.s`` file under ``tests/qa/corpus/`` is a named, minimized program
that once exercised a risky transformation pattern.  A fixed bug staying
fixed means every program still compiles equivalently under all schemes.
"""

from pathlib import Path

import pytest

from repro.qa.cells import FUZZ_SCHEMES
from repro.qa.corpus import iter_corpus, load_reproducer, replay_corpus

CORPUS = Path(__file__).parent / "corpus"
NAMES = sorted(p.stem for p, _ in iter_corpus(CORPUS))


def test_corpus_is_populated():
    assert len(NAMES) >= 10


@pytest.mark.parametrize("name", NAMES)
def test_reproducer_parses_and_validates(name):
    prog = load_reproducer(CORPUS / f"{name}.s")
    prog.validate()
    assert len(prog) <= 40, "regression corpus entries stay minimal"


def test_replay_corpus_all_schemes_clean():
    records = replay_corpus(CORPUS, max_steps=400_000)
    assert sorted(r["name"] for r in records) == NAMES
    for r in records:
        assert r["error"] is None, (r["name"], r["error"])
        assert r["divergent"] == [], (r["name"], r["divergent"])
        assert set(r["schemes"]) == {name for name, _ in FUZZ_SCHEMES}
