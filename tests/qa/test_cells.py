"""Fuzz cells: keys, execution, and crash containment."""

import dataclasses

from repro.qa.cells import (
    FUZZ_SCHEMES, FuzzCellSpec, check_program, execute_fuzz_cell,
    fuzz_cell_key,
)
from repro.qa.strategies import BY_NAME


def test_fuzz_cell_key_stable_and_sensitive():
    spec = FuzzCellSpec("loops", 42)
    assert fuzz_cell_key(spec) == fuzz_cell_key(FuzzCellSpec("loops", 42))
    assert fuzz_cell_key(spec) != fuzz_cell_key(FuzzCellSpec("loops", 43))
    assert fuzz_cell_key(spec) != fuzz_cell_key(FuzzCellSpec("memory", 42))
    assert fuzz_cell_key(spec) != fuzz_cell_key(
        dataclasses.replace(spec, max_steps=spec.max_steps + 1))


def test_execute_fuzz_cell_clean_payload():
    payload = execute_fuzz_cell(FuzzCellSpec("diamonds", 7))
    assert payload["error"] is None
    assert payload["divergent"] == []
    assert set(payload["schemes"]) == {name for name, _ in FUZZ_SCHEMES}
    for verdict in payload["schemes"].values():
        assert verdict["report"]["equivalent"] is True
        assert verdict["report"]["kind"] == "equivalent"


def test_execute_fuzz_cell_contains_crashes():
    payload = execute_fuzz_cell(FuzzCellSpec("no-such-strategy", 0))
    assert payload["error"] is not None
    assert payload["schemes"] == {}
    assert "KeyError" in payload["error"]


def test_check_program_runs_all_schemes():
    prog = BY_NAME["guarded"].program(3)
    verdicts = check_program(prog)
    assert verdicts["divergent"] == []
    assert len(verdicts["schemes"]) == len(FUZZ_SCHEMES)


def test_payload_is_json_serializable():
    import json

    payload = execute_fuzz_cell(FuzzCellSpec("calls", 5))
    assert json.loads(json.dumps(payload)) == payload
