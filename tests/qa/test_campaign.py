"""Campaign runner: determinism, caching, and miscompile detection."""

import random

import pytest

from repro.qa import cells
from repro.qa.campaign import CampaignConfig, run_campaign
from repro.qa.corpus import load_reproducer, replay_corpus
from repro.robust.faults import inject_program_fault

FAST_STEPS = 400_000


def _cfg(**kw):
    base = dict(budget=3, seed=0, jobs=1, shrink=False,
                strategies=["diamonds"], max_steps=FAST_STEPS, cache=None)
    base.update(kw)
    return CampaignConfig(**base)


def test_clean_campaign_is_deterministic():
    a = run_campaign(_cfg())
    b = run_campaign(_cfg())
    assert a.summary.clean
    assert a.summary.to_dict() == b.summary.to_dict()
    assert a.summary.programs == 3
    assert "CLEAN" in a.summary.format()
    assert a.entries == []


def test_warm_cache_skips_execution(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    cold = run_campaign(_cfg(cache=str(cache_dir)))

    def boom(spec):
        raise AssertionError("cell executed despite warm cache")

    monkeypatch.setattr(cells, "execute_fuzz_cell", boom)
    warm = run_campaign(_cfg(cache=str(cache_dir)))
    assert warm.summary.to_dict() == cold.summary.to_dict()


def _corrupting_compile(real):
    """Wrap compile_scheme so the 'combined' scheme silently miscompiles."""
    def wrapper(prog, scheme, *, profile=None, max_steps=cells.FUZZ_MAX_STEPS):
        result = real(prog, scheme, profile=profile, max_steps=max_steps)
        if scheme == "combined":
            for bad in inject_program_fault(
                    "clobbered-register", result.program, random.Random(0)):
                result.program = bad
                break
        return result
    return wrapper


def test_campaign_catches_injected_miscompile(tmp_path, monkeypatch):
    monkeypatch.setattr(cells, "compile_scheme",
                        _corrupting_compile(cells.compile_scheme))
    corpus = tmp_path / "corpus"
    result = run_campaign(_cfg(budget=3, shrink=True, oracle_budget=80,
                               corpus_dir=str(corpus)))
    summary = result.summary

    assert not summary.clean
    assert summary.divergences >= 1
    assert summary.cell_errors == 0
    # Only the corrupted scheme diverges; triage attributes it correctly.
    for entry in result.entries:
        assert entry.scheme == "combined"
        assert entry.kind in ("mem-mismatch", "reg-mismatch",
                              "halt-mismatch", "timeout", "crash")
        assert entry.bucket in summary.buckets
        assert entry.program_text
        assert entry.shrink is not None
        assert entry.shrink["shrunk_len"] <= entry.shrink["original_len"]
    assert "DIVERGENT" in summary.format()

    # Reproducers landed in bucketed directories and still parse.
    files = sorted(corpus.rglob("*.s"))
    assert len(files) == summary.divergences
    for f in files:
        prog = load_reproducer(f)
        prog.validate()
        assert f.with_suffix(".json").is_file()

    # Replay (against the still-corrupted compiler) reproduces the bug.
    records = replay_corpus(corpus, max_steps=FAST_STEPS)
    assert len(records) == len(files)
    assert any(r["divergent"] for r in records)


def test_campaign_buckets_cell_errors(monkeypatch):
    def broken(spec):
        raise KeyError("generator exploded")

    # execute_fuzz_cell contains its own crashes, so break one level in.
    monkeypatch.setattr(cells, "check_program", broken)
    result = run_campaign(_cfg(budget=2))
    assert result.summary.cell_errors == 2
    assert not result.summary.clean
    assert all(e.kind == "cell-error" for e in result.entries)
    assert any(b.startswith("harness--cell-error")
               for b in result.summary.buckets)


def test_campaign_progress_messages():
    seen = []
    run_campaign(_cfg(budget=2), progress=seen.append)
    assert any("2 cells" in m for m in seen)


def test_replay_missing_corpus_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        replay_corpus(tmp_path / "nope")
