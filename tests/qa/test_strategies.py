"""Strategy lattice: determinism, coverage, and knob behavior."""

import pytest

from repro.isa.randprog import RandProgConfig, random_program
from repro.profilefb import ProfileDB
from repro.qa.strategies import (
    BY_NAME, LATTICE, campaign_plan, select_strategies,
)
from repro.sim.functional import FunctionalSim


def test_lattice_names_unique():
    assert len({s.name for s in LATTICE}) == len(LATTICE)
    assert BY_NAME["guarded"].config.guard_density > 0


def test_select_strategies_default_and_subset():
    assert select_strategies(None) == LATTICE
    subset = select_strategies(["loops", "phased"])
    assert [s.name for s in subset] == ["loops", "phased"]


def test_select_strategies_unknown_raises():
    with pytest.raises(ValueError, match="no-such-strategy"):
        select_strategies(["loops", "no-such-strategy"])


def test_campaign_plan_deterministic_and_round_robin():
    a = list(campaign_plan(25, seed=3))
    b = list(campaign_plan(25, seed=3))
    assert [(s.name, seed) for s, seed in a] \
        == [(s.name, seed) for s, seed in b]
    assert [s.name for s, _ in a[:len(LATTICE)]] \
        == [s.name for s in LATTICE]
    # Different master seeds must not share per-program seeds.
    c = list(campaign_plan(25, seed=4))
    assert not {seed for _, seed in a} & {seed for _, seed in c}


@pytest.mark.parametrize("strategy", [s.name for s in LATTICE])
def test_every_strategy_generates_terminating_programs(strategy):
    for seed in range(3):
        prog = BY_NAME[strategy].program(seed)
        prog.validate()
        sim = FunctionalSim(prog, max_steps=5_000_000,
                            record_outcomes=False)
        sim.run()
        assert sim.stats.halted


def test_calls_strategy_always_emits_calls():
    """The with_calls knob is live: every generated program performs at
    least one dynamic jal/jr round trip and still terminates."""
    for seed in range(10):
        prog = BY_NAME["calls"].program(seed)
        assert any(ins.op == "jal" for ins in prog), seed
        sim = FunctionalSim(prog, max_steps=5_000_000,
                            record_outcomes=False)
        sim.run()
        assert sim.stats.halted


def test_guard_density_emits_guarded_ops():
    prog = random_program(1, RandProgConfig(guard_density=1.0))
    assert any(ins.guard is not None for ins in prog)


def test_alternating_pattern_has_high_toggle_branch():
    prog = random_program(2, RandProgConfig(branch_pattern="alternating"))
    db = ProfileDB.from_run(prog)
    toggles = [bp.classification.toggle_factor
               for bp in db.branches.values()]
    assert toggles and max(toggles) > 0.8


def test_monotonic_pattern_has_stable_branch():
    prog = random_program(2, RandProgConfig(branch_pattern="monotonic"))
    db = ProfileDB.from_run(prog)
    stable = [bp for bp in db.branches.values()
              if bp.classification.toggle_factor == 0.0]
    assert stable


def test_phased_pattern_toggles_once():
    prog = random_program(2, RandProgConfig(branch_pattern="phased",
                                            loop_iterations=(16, 17)))
    db = ProfileDB.from_run(prog)
    # A phased branch flips exactly once: near-zero toggle factor but a
    # balanced taken frequency — the classifier's hardest case.
    phased = [bp.classification for bp in db.branches.values()
              if 0.0 < bp.classification.toggle_factor < 0.2
              and 0.2 < bp.classification.frequency < 0.8]
    assert phased


def test_unknown_branch_pattern_raises():
    with pytest.raises(ValueError, match="branch_pattern"):
        random_program(0, RandProgConfig(branch_pattern="bogus"))
