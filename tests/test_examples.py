"""Every example script must stay runnable (smoke tests, small scales)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv, capsys):
    old = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", ["0.15"], capsys)
    assert "timing simulation" in out
    assert "IPC ratio" in out


def test_branch_splitting(capsys):
    out = run_example("branch_splitting.py", [], capsys)
    assert "3100" in out and "2756" in out
    assert "observable registers identical: True" in out


def test_guarded_vs_speculative(capsys):
    out = run_example("guarded_vs_speculative.py", [], capsys)
    assert "guarding WINS" in out
    assert "guarding LOSES" in out


def test_simulator_tour(capsys):
    out = run_example("simulator_tour.py", [], capsys)
    assert "Branch outcome bit vectors" in out
    assert "twobit" in out and "perfect" in out


def test_feedback_workflow(tmp_path, capsys):
    out = run_example("feedback_workflow.py", [str(tmp_path)], capsys)
    assert "feedback file" in out
    assert "Proposed" in out
