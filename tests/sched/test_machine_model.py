"""Static machine model tests."""

import pytest

from repro.isa import make
from repro.sched import DEFAULT_MODEL, MachineModel
from repro.sim import r10k_config


def test_default_matches_paper():
    m = DEFAULT_MODEL
    assert m.issue_width == 4
    assert m.slots == {"alu": 2, "sft": 1, "mem": 1, "br": 1,
                       "fpadd": 1, "fpmul": 1, "fpdiv": 1}


def test_from_config_roundtrip():
    cfg = r10k_config("twobit", num_alus=3, dispatch_width=8)
    m = MachineModel.from_config(cfg)
    assert m.issue_width == 8
    assert m.slots["alu"] == 3
    assert m.latencies is cfg.latencies


@pytest.mark.parametrize("op,expected_unit,expected_lat", [
    (("add", "r1", "r2", "r3"), "alu", 1),
    (("sll", "r1", "r2", 2), "sft", 1),
    (("lw", "r1", 0, "r2"), "mem", 2),
    (("sw", "r1", 0, "r2"), "mem", 2),
    (("beq", "r1", "r2", "L"), "br", 1),
    (("fadd", "f1", "f2", "f3"), "fpadd", 3),
    (("fmul", "f1", "f2", "f3"), "fpmul", 3),
    (("fdiv", "f1", "f2", "f3"), "fpdiv", 3),
])
def test_unit_and_latency(op, expected_unit, expected_lat):
    ins = make(*op)
    assert DEFAULT_MODEL.unit_key(ins) == expected_unit
    assert DEFAULT_MODEL.latency(ins) == expected_lat


def test_total_slots_bounded_by_width():
    assert DEFAULT_MODEL.total_slots_per_cycle() <= DEFAULT_MODEL.issue_width


def test_slots_for_unknown_class_defaults():
    assert DEFAULT_MODEL.slots_for("mystery") == 1
