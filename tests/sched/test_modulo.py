"""Modulo scheduling (software pipelining) tests."""

import pytest

from repro.cfg import LoopForest, build_cfg
from repro.isa import parse
from repro.sched import (
    NotPipelinable, cross_iteration_edges, loop_pipeline_report,
    modulo_schedule, rec_mii, res_mii,
)
from repro.sched.machine_model import DEFAULT_MODEL
from repro.transform import form_hyperblocks


def body(src):
    """Parse a straight-line loop body (no terminator)."""
    return list(parse(".text\n" + src + "\nhalt\n"))[:-1]


# ---- bounds -----------------------------------------------------------------

def test_res_mii_alu_bound():
    # 5 ALU ops on 2 ALUs -> ceil(5/2) = 3.
    seq = body("\n".join(f"add r{i}, r10, r11" for i in range(1, 6)))
    assert res_mii(seq) == 3


def test_res_mii_mem_bound():
    # 3 loads on 1 mem unit -> 3.
    seq = body("lw r1, 0(r9)\nlw r2, 4(r9)\nlw r3, 8(r9)")
    assert res_mii(seq) == 3


def test_res_mii_width_bound():
    # 9 ops mixing units, width 4 -> at least ceil(9/4) = 3.
    seq = body("\n".join(f"add r{1 + i % 6}, r10, r11" for i in range(5))
               + "\nsll r7, r10, 1\nlw r8, 0(r9)\nsw r8, 4(r9)\nsll r9, r9, 0")
    assert res_mii(seq) >= 3


def test_rec_mii_accumulator():
    # r1 = r1 + r2: a 1-cycle recurrence at distance 1 -> RecMII 1.
    seq = body("add r1, r1, r2")
    cross = cross_iteration_edges(seq)
    assert rec_mii(seq, cross) == 1


def test_rec_mii_long_chain():
    # Three dependent adds all feeding r1 across iterations: the cycle
    # contains 3 unit-latency ops -> RecMII 3.
    seq = body("add r1, r1, r2\nadd r1, r1, r3\nadd r1, r1, r4")
    cross = cross_iteration_edges(seq)
    assert rec_mii(seq, cross) == 3


def test_cross_edges_store_load():
    seq = body("lw r1, 0(r9)\nsw r1, 4(r9)")
    cross = cross_iteration_edges(seq)
    assert any(c.src == 1 and c.dst == 0 for c in cross)  # store -> load


# ---- full schedule --------------------------------------------------------------

def test_independent_ops_reach_res_mii():
    seq = body("\n".join(f"add r{i}, r10, r11" for i in range(1, 7)))
    s = modulo_schedule(seq)
    assert s.ii == s.res_mii == 3
    # Kernel slots respect resources: <= 2 ALU ops per slot.
    for slot_ops in s.kernel():
        assert len(slot_ops) <= 4


def test_schedule_respects_intra_deps():
    seq = body("lw r1, 0(r9)\nadd r2, r1, r1\nsw r2, 4(r9)")
    s = modulo_schedule(seq)
    assert s.start[1] >= s.start[0] + 2   # load latency
    assert s.start[2] >= s.start[1] + 1


def test_schedule_respects_recurrence():
    seq = body("add r1, r1, r2\nmul r3, r1, r1\nadd r4, r3, r3")
    s = modulo_schedule(seq)
    assert s.ii >= s.rec_mii


def test_pipelining_overlaps_iterations():
    """The point of software pipelining: II < single-iteration length."""
    seq = body("lw r1, 0(r9)\nadd r2, r1, r1\nmul r3, r2, r2\nadd r4, r3, r3")
    from repro.sched import schedule_length

    s = modulo_schedule(seq)
    assert s.ii < schedule_length(seq)
    assert s.stages >= 2  # iterations genuinely overlap


def test_branchy_body_not_pipelinable():
    seq = body("beq r1, r2, X\nX:\nadd r3, r4, r5")
    with pytest.raises(NotPipelinable):
        modulo_schedule(seq)


def test_empty_body():
    s = modulo_schedule([])
    assert s.ii == 1
    assert s.stages == 0


# ---- the paper's claim: if-conversion enables pipelining --------------------------

BRANCHY_LOOP = """
.text
main:
    li   r1, 0
    li   r2, 64
    li   r9, 0x1000
loop:
    lw   r3, 0(r9)
    bltz r3, negate
    add  r4, r4, r3
    j    next
negate:
    sub  r4, r4, r3
next:
    addi r9, r9, 4
    addi r1, r1, 1
    bne  r1, r2, loop
    halt
"""


def test_ifconvert_enables_pipelining():
    cfg = build_cfg(BRANCHY_LOOP)
    forest = LoopForest(cfg)
    loop = forest.loops[0]
    # Before: multi-block body -> not pipelinable.
    with pytest.raises(NotPipelinable):
        loop_pipeline_report(cfg, loop)
    # If-convert the diamond inside the loop (hyperblock formation).
    rep = form_hyperblocks(cfg)
    assert rep.conversions >= 1
    forest2 = LoopForest(cfg)
    loop2 = forest2.loops[0]
    sched = loop_pipeline_report(cfg, loop2)
    assert sched.ii >= 1
    # The pipelined II beats the loop body's acyclic schedule length.
    from repro.sched import schedule_length

    bb = cfg.block(loop2.header)
    assert sched.ii < schedule_length(bb.instructions[:-1])
