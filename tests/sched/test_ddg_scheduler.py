"""Dependence graph + list scheduler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import make, parse
from repro.sched.ddg import build_ddg
from repro.sched.list_scheduler import (
    list_schedule, reorder_block, schedule_length,
)
from repro.sched.machine_model import DEFAULT_MODEL, MachineModel
from repro.cfg import build_cfg
from repro.sim import final_state


def instrs(src):
    return list(parse(".text\n" + src + "\nhalt\n"))[:-1]


# ---- DDG ---------------------------------------------------------------------

def test_true_dependence():
    seq = instrs("li r1, 1\nadd r2, r1, r1")
    ddg = build_ddg(seq)
    kinds = {(e.src, e.dst): e.kind for e in ddg.edges}
    assert kinds[(0, 1)] == "true"


def test_anti_dependence():
    seq = instrs("add r2, r1, r1\nli r1, 5")
    ddg = build_ddg(seq)
    kinds = {(e.src, e.dst): e.kind for e in ddg.edges}
    assert kinds[(0, 1)] == "anti"


def test_output_dependence():
    seq = instrs("li r1, 1\nli r1, 2")
    ddg = build_ddg(seq)
    kinds = {(e.src, e.dst): e.kind for e in ddg.edges}
    assert kinds[(0, 1)] == "output"


def test_independent_ops_have_no_edge():
    seq = instrs("li r1, 1\nli r2, 2")
    ddg = build_ddg(seq)
    assert not ddg.edges


def test_memory_ordering():
    seq = instrs("sw r1, 0(r2)\nlw r3, 0(r2)\nsw r4, 4(r2)")
    ddg = build_ddg(seq)
    pairs = {(e.src, e.dst) for e in ddg.edges if e.kind == "mem"}
    assert (0, 1) in pairs  # store -> load
    assert (0, 2) in pairs  # store -> store
    assert (1, 2) in pairs  # load -> store


def test_loads_reorder_freely():
    seq = instrs("lw r1, 0(r4)\nlw r2, 4(r4)")
    ddg = build_ddg(seq)
    assert not [e for e in ddg.edges if e.kind == "mem"]


def test_guard_is_dependence():
    seq = list(parse(
        ".text\ncmpeq cc0, r1, r2\n(cc0) add r3, r4, r5\nhalt\n"))[:-1]
    ddg = build_ddg(seq)
    kinds = {(e.src, e.dst): e.kind for e in ddg.edges}
    assert kinds[(0, 1)] == "true"


def test_heights():
    # li -> add -> add chain: heights 3, 2, 1 with unit latencies.
    seq = instrs("li r1, 1\nadd r2, r1, r1\nadd r3, r2, r2")
    ddg = build_ddg(seq)
    assert ddg.critical_path_heights(DEFAULT_MODEL) == [3, 2, 1]


def test_topological_order():
    seq = instrs("li r1, 1\nadd r2, r1, r1\nli r3, 9")
    ddg = build_ddg(seq)
    order = ddg.topological_order()
    assert order.index(0) < order.index(1)


# ---- list scheduler ---------------------------------------------------------------

def test_chain_schedules_serially():
    seq = instrs("li r1, 1\nadd r2, r1, r1\nadd r3, r2, r2")
    s = list_schedule(seq)
    assert s.start[0] < s.start[1] < s.start[2]
    assert s.length == 3


def test_parallel_ops_share_cycle():
    seq = instrs("li r1, 1\nli r2, 2")
    s = list_schedule(seq)
    assert s.start[0] == s.start[1] == 0
    assert s.length == 1


def test_issue_width_respected():
    seq = instrs("\n".join(f"li r{i}, {i}" for i in range(1, 9)))
    s = list_schedule(seq)
    for ops in s.cycles:
        assert len(ops) <= DEFAULT_MODEL.issue_width


def test_unit_slots_respected():
    # Three independent loads, one mem unit: three separate cycles.
    seq = instrs("lw r1, 0(r9)\nlw r2, 4(r9)\nlw r3, 8(r9)")
    s = list_schedule(seq)
    starts = sorted(s.start.values())
    assert starts == [0, 1, 2]


def test_latency_respected():
    # Load (latency 2) feeding an add: add starts at cycle 2.
    seq = instrs("lw r1, 0(r9)\nadd r2, r1, r1")
    s = list_schedule(seq)
    assert s.start[1] - s.start[0] >= 2


def test_terminator_scheduled_last():
    seq = list(parse(".text\nL:\nli r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\n"
                     "li r5, 5\nbne r1, r2, L\nhalt\n"))[:-1]
    s = list_schedule(seq)
    br = len(seq) - 1
    assert all(s.start[i] <= s.start[br] for i in range(br))
    # Branch cannot issue before the last body cycle.
    assert s.start[br] == max(s.start.values())


def test_vacant_slots():
    seq = instrs("lw r1, 0(r9)\nadd r2, r1, r1")
    s = list_schedule(seq)
    # 3 issue cycles x width 4 - 2 ops = 10.
    assert s.vacant_slots() == len(s.cycles) * 4 - 2


def test_schedule_length_helper():
    assert schedule_length(instrs("li r1, 1")) == 1


def test_reorder_block_preserves_semantics():
    src = """
.text
    li r1, 3
    li r2, 4
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, r2
    halt
"""
    prog = parse(src)
    before = final_state(prog)
    cfg = build_cfg(prog)
    for bb in cfg.blocks:
        reorder_block(bb)
    prog2 = cfg.to_program()
    after = final_state(prog2)
    assert before.regs == after.regs


def test_reorder_keeps_terminator_last():
    src = """
.text
L:
    lw r1, 0(r9)
    add r2, r1, r1
    addi r9, r9, 4
    bne r2, r3, L
    halt
"""
    cfg = build_cfg(src)
    bb = next(b for b in cfg.blocks if b.label == "L")
    reorder_block(bb)
    assert bb.instructions[-1].op == "bne"


@given(st.lists(st.sampled_from([
    ("li", "r1", 1), ("li", "r2", 2), ("add", "r3", "r1", "r2"),
    ("add", "r1", "r2", "r3"), ("mul", "r4", "r1", "r1"),
    ("lw", "r5", 0, "r6"), ("sw", "r5", 0, "r6"), ("sll", "r7", "r1", 2),
]), min_size=1, max_size=24))
@settings(max_examples=60)
def test_schedule_respects_all_deps_property(ops):
    seq = [make(*o) for o in ops]
    ddg = build_ddg(seq)
    s = list_schedule(seq)
    for e in ddg.edges:
        assert s.start[e.src] + e.weight <= s.start[e.dst], \
            f"violated {e.kind} edge {e.src}->{e.dst}"
    # Every op scheduled exactly once.
    assert sorted(s.start) == list(range(len(seq)))
