"""Region scheduler policy tests."""

import pytest

from repro.cfg import build_cfg
from repro.profilefb import ProfileDB
from repro.sched import schedule_region
from repro.sim import final_state
from repro.workloads import AUX_BASE, biased_loop_program

# A diamond inside a hot loop whose branch is biased AND poorly predicted
# (period-3 pattern: TTF TTF ... defeats the 2-bit counter often enough).
HOT_DIAMOND = """
.text
main:
    li   r1, 0
    li   r2, 300
loop:
    li   r6, 3
    rem  r5, r1, r6
    bnez r5, hot          # taken 2/3, pattern TTF: mispredicted often
    addi r11, r11, 1
    addi r12, r12, 2
    j    latch
hot:
    mul  r13, r1, r1      # fresh temporary: dead on the other path
    add  r10, r10, r13
latch:
    addi r1, r1, 1
    bne  r1, r2, loop
    sw   r10, 0(r29)
    sw   r11, 4(r29)
    halt
"""


def annotated(src_or_prog):
    from repro.isa import parse

    prog = parse(src_or_prog) if isinstance(src_or_prog, str) else src_or_prog
    db = ProfileDB.from_run(prog)
    cfg = build_cfg(prog)
    db.annotate(cfg)
    return cfg, db, prog


def run_regs(prog, regs=("r10", "r11", "r12", "r13")):
    s = final_state(prog)
    return {r: s.regs[r] for r in regs}


def test_region_schedule_preserves_semantics():
    cfg, db, prog = annotated(HOT_DIAMOND)
    schedule_region(cfg, profile=db)
    assert run_regs(cfg.to_program()) == run_regs(prog)


def test_speculates_from_unpredictable_biased_branch():
    cfg, db, prog = annotated(HOT_DIAMOND)
    rep = schedule_region(cfg, profile=db)
    # TTF pattern: 2-bit accuracy ~2/3, p_hot = 2/3 -> profitable gate
    # passes (1/3 * 3.0 > 1/3).
    assert rep.speculated >= 1


def test_no_speculation_from_predictable_branch():
    # ~Always-taken branch: 2-bit predicts it, nothing to hide.
    prog = biased_loop_program(iterations=300, period=64)
    cfg, db, _ = annotated(prog)
    rep = schedule_region(cfg, profile=db)
    assert rep.speculated == 0


def test_report_fields():
    cfg, db, _ = annotated(HOT_DIAMOND)
    rep = schedule_region(cfg, profile=db)
    assert rep.blocks_touched >= (1 if rep.speculated else 0)
    for bid, (moved, dup) in rep.per_block.items():
        assert moved >= 0 and dup >= 0


def test_blocks_locally_scheduled_after():
    cfg, db, _ = annotated(HOT_DIAMOND)
    schedule_region(cfg, profile=db)
    for bb in cfg.blocks:
        if bb.instructions:
            term = bb.terminator
            for k, ins in enumerate(bb.instructions):
                if ins.is_control and not ins.info.is_call:
                    assert k == len(bb.instructions) - 1


def test_without_profile_uses_static_estimate():
    cfg, _, prog = annotated(HOT_DIAMOND)
    rep = schedule_region(cfg, profile=None)
    assert run_regs(cfg.to_program()) == run_regs(prog)
