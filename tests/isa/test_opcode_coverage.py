"""Exhaustive opcode coverage: every opcode constructs, prints, re-parses
and (where side-effect-free) executes."""

import pytest

from repro.isa import (
    Fmt, Guard, OPCODES, format_instruction, make, opinfo, parse,
)

#: Sample operands per format (label targets resolved in a tiny program).
_SAMPLE = {
    Fmt.RRR: ("r1", "r2", "r3"),
    Fmt.RRI: ("r1", "r2", 4),
    Fmt.RI: ("r1", 7),
    Fmt.RR: ("r1", "r2"),
    Fmt.LOAD: ("r1", 8, "r2"),
    Fmt.STORE: ("r1", 8, "r2"),
    Fmt.BRANCH2: ("r1", "r2", "LBL"),
    Fmt.BRANCH1: ("r1", "LBL"),
    Fmt.JUMP: ("LBL",),
    Fmt.JR: ("r1",),
    Fmt.JALR: ("r1", "r2"),
    Fmt.CMP: ("cc0", "r1", "r2"),
    Fmt.CCLOGIC2: ("cc0", "cc1", "cc2"),
    Fmt.CCLOGIC1: ("cc0", "cc1"),
    Fmt.CMOVCC: ("r1", "r2", "cc0"),
    Fmt.CMOVR: ("r1", "r2", "r3"),
    Fmt.NONE: (),
}


def _operands(name):
    fmt = opinfo(name).fmt
    ops = _SAMPLE[fmt]
    if name in ("bct", "bcf", "bctl", "bcfl"):
        return ("cc1", "LBL")
    if name == "cmpi":
        return ("cc0", "r1", 5)
    if name.startswith("f") or name in ("cvtif", "cvtfi", "lwf", "swf"):
        # FP register operands where the format implies them.
        sub = {"r1": "f1", "r2": "f2", "r3": "f3"}
        if name == "cvtif":
            return ("f1", "r2")
        if name == "cvtfi":
            return ("r1", "f2")
        if name in ("lwf",):
            return ("f1", 8, "r2")
        if name in ("swf",):
            return ("f1", 8, "r2")
        if fmt == Fmt.CMP:
            return ("cc0", "f1", "f2")
        return tuple(sub.get(o, o) for o in ops)
    return ops


@pytest.mark.parametrize("name", sorted(OPCODES))
def test_make_and_roundtrip(name):
    ins = make(name, *_operands(name))
    text = format_instruction(ins)
    src = f".text\nLBL:\nnop\n    {text}\nhalt\n"
    prog = parse(src)
    back = prog.instructions[1]
    assert back.op == ins.op
    assert back.dest == ins.dest
    assert back.srcs == ins.srcs
    assert back.imm == ins.imm
    assert back.target == ins.target


@pytest.mark.parametrize("name", sorted(OPCODES))
def test_guarded_roundtrip(name):
    if name == "halt":
        pytest.skip("guarded halt is not meaningful")
    ins = make(name, *_operands(name), guard=Guard("cc3", False))
    text = format_instruction(ins)
    assert text.startswith("(!cc3)")
    prog = parse(f".text\nLBL:\nnop\n    {text}\nhalt\n")
    assert prog.instructions[1].guard == Guard("cc3", False)


@pytest.mark.parametrize("name", sorted(OPCODES))
def test_defs_uses_well_formed(name):
    ins = make(name, *_operands(name))
    for r in ins.defs():
        assert r[0] in "rfc"
    for r in ins.uses():
        assert r[0] in "rfc"
    info = opinfo(name)
    if info.is_store:
        assert ins.defs() == ()
    if info.is_branch:
        assert ins.target is not None


@pytest.mark.parametrize("name", sorted(OPCODES))
def test_every_opcode_executes(name):
    """Each opcode runs in the functional simulator without error."""
    from repro.sim import FunctionalSim

    ins = make(name, *_operands(name))
    # Build a context: define the label, give registers benign values.
    body = format_instruction(ins)
    src = (".text\n"
           "    li r1, 8\n    li r2, 4\n    li r3, 2\n"
           "    j GO\nLBL:\n    halt\nGO:\n"
           f"    {body}\n"
           "LAST:\n    halt\n")
    if name in ("jr", "jalr"):
        src = src.replace("li r1, 8", "li r1, 4")  # jump to LBL's halt
    prog = parse(src)
    sim = FunctionalSim(prog, max_steps=100)
    sim.run()
    assert sim.stats.halted
