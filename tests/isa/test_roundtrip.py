"""Parser/printer round-trip and basic ISA behavior."""

import pytest

from repro.isa import (
    Guard, Instruction, ParseError, format_program, make, parse,
)

SAMPLE = """
.data
buf:    .word 1, 2, 3
msg:    .asciiz "hi"
.text
main:
    li   r1, 0
    la   r2, buf
    lw   r3, 0(r2)
loop:
    addi r1, r1, 1
    bne  r1, r3, loop
    (cc1) add r4, r5, r6
    (!cc2) mov r7, r8
    sw   r1, 4(r2)
    halt
"""


def test_parse_sample():
    prog = parse(SAMPLE)
    assert len(prog) == 9
    assert prog.labels["main"] == 0
    assert prog.labels["loop"] == 3
    assert prog.data_symbols["buf"] % 4 == 0
    assert prog.data_symbols["msg"] == prog.data_symbols["buf"] + 12


def test_la_resolves_to_li():
    prog = parse(SAMPLE)
    la = prog[1]
    assert la.op == "li"
    assert la.imm == prog.data_symbols["buf"]


def test_guards_parse():
    prog = parse(SAMPLE)
    g1 = prog[5]
    assert g1.guard == Guard("cc1", True)
    g2 = prog[6]
    assert g2.guard == Guard("cc2", False)


def test_roundtrip_preserves_semantics():
    prog = parse(SAMPLE)
    text = format_program(prog)
    prog2 = parse(text)
    assert len(prog2) == len(prog)
    for a, b in zip(prog, prog2):
        assert a.op == b.op
        assert a.dest == b.dest
        assert a.srcs == b.srcs
        assert a.imm == b.imm
        assert a.target == b.target
        assert a.guard == b.guard
    assert {k: v for k, v in prog2.labels.items() if not k.startswith(".")} \
        == {k: v for k, v in prog.labels.items() if not k.startswith(".")}


def test_data_word_image_little_endian():
    prog = parse(".data\nw: .word 0x11223344\n.text\nhalt\n")
    a = prog.data_symbols["w"]
    assert [prog.data_image[a + i] for i in range(4)] == [0x44, 0x33, 0x22, 0x11]


def test_asciiz_nul_terminated():
    prog = parse('.data\ns: .asciiz "ab"\n.text\nhalt\n')
    a = prog.data_symbols["s"]
    assert [prog.data_image[a + i] for i in range(3)] == [0x61, 0x62, 0]


def test_undefined_label_rejected():
    with pytest.raises(ValueError):
        parse(".text\nbeq r1, r2, nowhere\nhalt\n")


def test_unknown_opcode_rejected():
    with pytest.raises(ParseError):
        parse(".text\nfrobnicate r1\nhalt\n")


def test_program_must_terminate():
    with pytest.raises(ValueError):
        parse(".text\nadd r1, r2, r3\n")


def test_duplicate_label_rejected():
    with pytest.raises(ValueError):
        parse(".text\nx:\nnop\nx:\nhalt\n")


def test_comments_and_semicolons():
    prog = parse(".text\nnop  # c1\nnop  ; c2\nhalt\n")
    assert len(prog) == 3


def test_char_immediate():
    prog = parse(".text\nli r1, 'a'\nhalt\n")
    assert prog[0].imm == ord("a")


def test_negative_and_hex_immediates():
    prog = parse(".text\naddi r1, r2, -5\nli r3, 0x10\nhalt\n")
    assert prog[0].imm == -5
    assert prog[1].imm == 16


def test_defs_uses():
    ins = make("add", "r1", "r2", "r3")
    assert ins.defs() == ("r1",)
    assert ins.uses() == ("r2", "r3")


def test_r0_write_is_no_def():
    ins = make("add", "r0", "r2", "r3")
    assert ins.defs() == ()


def test_cmov_uses_dest():
    ins = make("cmovt", "r1", "r2", "cc0")
    assert "r1" in ins.uses()
    assert "cc0" in ins.uses()


def test_guard_register_is_a_use():
    ins = make("add", "r1", "r2", "r3", guard=Guard("cc1"))
    assert "cc1" in ins.uses()


def test_store_has_no_defs():
    ins = make("sw", "r1", 0, "r2")
    assert ins.defs() == ()
    assert ins.uses() == ("r1", "r2")


def test_jal_defines_ra():
    prog = parse(".text\nf:\njal f\nhalt\n")
    assert prog[0].defs() == ("r31",)


def test_clone_fresh_uid():
    ins = make("add", "r1", "r2", "r3")
    c = ins.clone(fresh_uid=True)
    assert c.uid != ins.uid
    assert c.op == ins.op


def test_with_substituted_uses():
    ins = make("add", "r1", "r2", "r3")
    sub = ins.with_substituted_uses({"r2": "r9"})
    assert sub.srcs == ("r9", "r3")
    assert ins.srcs == ("r2", "r3")


def test_make_rejects_arity_errors():
    with pytest.raises(ValueError):
        make("add", "r1", "r2")


def test_make_rejects_bad_register():
    with pytest.raises(ValueError):
        make("add", "r99", "r2", "r3")
