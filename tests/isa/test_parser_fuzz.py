"""Parser robustness: arbitrary input either parses or raises ParseError /
ValueError — never any other exception."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ParseError, format_program, parse

# Token soup built from plausible assembly fragments.
_tokens = st.sampled_from([
    "add", "lw", "sw", "beq", "bne", "halt", "nop", "j", "jal", "li",
    "r1", "r2", "r31", "r99", "f1", "cc0", "cc9", "label", "label:",
    ".text", ".data", ".word", ".byte", ".asciiz", '"str"', "0x10", "-5",
    "(cc1)", "(!cc0)", ",", "4(r2)", "(", ")", "#comment", "&label", "'a'",
])


@given(st.lists(st.lists(_tokens, min_size=0, max_size=6), max_size=12))
@settings(max_examples=200, deadline=None)
def test_token_soup_never_crashes(lines):
    text = "\n".join(" ".join(line) for line in lines)
    try:
        parse(text)
    except (ParseError, ValueError, KeyError):
        pass  # rejection is fine; any other exception is a bug


@given(st.text(max_size=200))
@settings(max_examples=150, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse(text)
    except (ParseError, ValueError, KeyError):
        pass


@given(st.lists(st.sampled_from([
    "li r1, 1", "li r2, 2", "add r3, r1, r2", "sub r4, r3, r1",
    "mul r5, r4, r4", "sll r6, r5, 2", "nop",
]), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_valid_programs_roundtrip(ops):
    text = ".text\n" + "\n".join(ops) + "\nhalt\n"
    prog = parse(text)
    again = parse(format_program(prog))
    assert [i.op for i in again] == [i.op for i in prog]
