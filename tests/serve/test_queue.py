"""Job-queue lifecycle, fleet-wide dedup, and the requeue budget."""

import pytest

from repro.serve.queue import MAX_CELL_ATTEMPTS, JobQueue

KEY_A = "a" * 64
KEY_B = "b" * 64


def test_submit_claim_complete_lifecycle():
    q = JobQueue()
    job = q.submit("alice", "cells", [(KEY_A, {"spec": 1})])
    assert job.state == "queued" and not job.done
    key, kind, spec = q.claim(timeout=0.1)
    assert (key, kind, spec) == (KEY_A, "cells", {"spec": 1})
    q.complete(KEY_A, {"result": 9})
    assert job.done and job.state == "done"
    assert job.ordered_results() == [{"result": 9}]


def test_overlapping_jobs_share_one_execution():
    q = JobQueue()
    job1 = q.submit("alice", "cells", [(KEY_A, {}), (KEY_B, {})])
    job2 = q.submit("bob", "cells", [(KEY_A, {})])    # overlaps on A
    assert job2.n_deduped == 1
    assert q.depth() == 2                             # A and B, once each
    claimed = {q.claim(timeout=0.1)[0] for _ in range(2)}
    assert claimed == {KEY_A, KEY_B}
    assert q.claim(timeout=0.05) is None              # nothing else queued
    q.complete(KEY_A, {"r": "a"})
    q.complete(KEY_B, {"r": "b"})
    assert job1.done and job2.done
    assert job2.results[KEY_A] == job1.results[KEY_A]


def test_precomputed_cells_never_enqueue():
    q = JobQueue()
    job = q.submit("alice", "cells", [(KEY_A, {})],
                   precomputed={KEY_A: {"warm": True}})
    assert job.done and job.n_cache_hits == 1
    assert q.depth() == 0


def test_results_keep_submission_order():
    q = JobQueue()
    job = q.submit("alice", "cells", [(KEY_B, {}), (KEY_A, {})])
    q.claim(timeout=0.1), q.claim(timeout=0.1)
    q.complete(KEY_A, {"k": "a"})
    q.complete(KEY_B, {"k": "b"})
    assert job.ordered_results() == [{"k": "b"}, {"k": "a"}]


def test_requeue_bounded_by_attempt_budget():
    q = JobQueue()
    q.submit("alice", "cells", [(KEY_A, {})])
    for _ in range(MAX_CELL_ATTEMPTS - 1):
        assert q.claim(timeout=0.1)[0] == KEY_A
        assert q.requeue(KEY_A)                       # budget remains
    assert q.claim(timeout=0.1)[0] == KEY_A
    assert not q.requeue(KEY_A)                       # budget exhausted


def test_wait_job_blocks_until_done():
    q = JobQueue()
    job = q.submit("alice", "cells", [(KEY_A, {})])
    assert not q.wait_job(job.job_id, timeout=0.05)   # times out
    q.claim(timeout=0.1)
    q.complete(KEY_A, {})
    assert q.wait_job(job.job_id, timeout=0.05)
    assert not q.wait_job("job-404", timeout=0.05)


def test_closed_queue_rejects_submissions():
    q = JobQueue()
    q.close()
    with pytest.raises(RuntimeError):
        q.submit("alice", "cells", [(KEY_A, {})])
    assert q.claim(timeout=0.05) is None


def test_stats_shape():
    q = JobQueue()
    q.submit("alice", "cells", [(KEY_A, {})])
    q.claim(timeout=0.1)
    s = q.stats()
    assert s == {"depth": 0, "in_flight": 1, "unique_cells": 1,
                 "jobs": 1, "jobs_done": 0}
