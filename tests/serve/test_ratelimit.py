"""Token-bucket rate limiting under an injectable clock."""

from repro.serve.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def test_burst_then_reject_with_retry_hint():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert all(bucket.try_acquire()[0] for _ in range(3))
    ok, retry = bucket.try_acquire()
    assert not ok
    # One token refills in 1/rate seconds.
    assert 0.0 < retry <= 0.5


def test_refill_restores_admission():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    assert bucket.try_acquire()[0] and bucket.try_acquire()[0]
    assert not bucket.try_acquire()[0]
    clock.advance(0.5)              # exactly one token at 2/s
    assert bucket.try_acquire()[0]
    assert not bucket.try_acquire()[0]


def test_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
    clock.advance(1000.0)
    assert bucket.tokens <= 2.0


def test_limiter_isolates_tenants():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
    assert limiter.check("alice")[0]
    ok, retry = limiter.check("alice")
    assert not ok and retry > 0
    # Bob's bucket is untouched by Alice's exhaustion.
    assert limiter.check("bob")[0]


def test_limiter_snapshot_lists_known_tenants():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=5, clock=clock)
    limiter.check("alice")
    snap = limiter.snapshot()
    assert set(snap) == {"alice"}
    assert 0.0 <= snap["alice"] <= 5.0
