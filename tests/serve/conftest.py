"""Shared fixtures: an in-process service on an ephemeral port.

The server's worker fleet runs on threads inside the test process, so
the engine's process-local :data:`repro.engine.cells.COUNTERS` measure
exactly the compiles/simulates the fleet performed — which is how the
acceptance tests assert "executed exactly once fleet-wide" and "warm
replay does zero work" directly instead of inferring them from logs.
"""

from __future__ import annotations

import pytest

from repro.engine.cells import COUNTERS
from repro.serve import EvalServer, ServeClient, ServeConfig


@pytest.fixture()
def server(tmp_path):
    """A live :class:`EvalServer` on port 0 with a temp cache root."""
    config = ServeConfig(port=0, workers=2, cache_dir=tmp_path / "cache",
                        rate=1000.0, burst=1000)
    with EvalServer(config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    """A ``tenant-a`` client bound to the :func:`server` fixture."""
    return ServeClient(server.url, tenant="tenant-a", timeout=60.0)


@pytest.fixture(autouse=True)
def _reset_counters():
    """Zero the engine counters around every test in this package."""
    COUNTERS.reset()
    yield
    COUNTERS.reset()
