"""End-to-end acceptance of the evaluation service (the ISSUE contract).

* Two tenants submit overlapping suites → each unique cell executes
  exactly once fleet-wide (asserted with the engine's process-local
  execution counters: the fleet runs on threads in this process).
* A warm replay is served entirely from the tenant's cache namespace —
  zero compiles, zero simulations, nothing enqueued.
* A rate-limited tenant receives structured backpressure (code,
  retry_after_s) rather than prose.
* ``Session(remote=...)`` results are byte-identical to a local run.
* Results stream back as JSONL in submission order.
"""

import json

import pytest

from repro.api import Session
from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.engine.cells import COUNTERS
from repro.serve import (
    Backpressure, EvalServer, ServeClient, ServeConfig,
)
from repro.serve import worker as worker_mod
from repro.serve.client import suite_cells
from repro.workloads import benchmark_programs

MAX_STEPS = 100_000


def _grid(seed=11):
    programs = {"grep": benchmark_programs(0.02, seed=seed)["grep"]}
    return suite_cells(programs, DEFAULT_HEURISTICS, None, MAX_STEPS)


def _cells(grid):
    return [(key, payload) for _, _, key, _, payload in grid]


def test_two_tenants_execute_each_unique_cell_once(server, monkeypatch):
    # Hold the fleet at the gate until both tenants have submitted, so
    # the overlap is guaranteed rather than won by racing the workers.
    import threading

    gate = threading.Event()
    real = worker_mod.execute_payload

    def gated(kind, spec):
        gate.wait(timeout=60.0)
        return real(kind, spec)

    monkeypatch.setattr(worker_mod, "execute_payload", gated)

    grid = _grid()
    alice = ServeClient(server.url, tenant="alice", timeout=120.0)
    bob = ServeClient(server.url, tenant="bob", timeout=120.0)
    job_a = alice.submit_cells(_cells(grid))
    job_b = bob.submit_cells(_cells(grid))

    # Bob's whole batch rode Alice's in-flight cells.
    assert job_b["n_deduped"] == len(grid)
    assert job_b["n_cache_hits"] == 0

    gate.set()
    results_a = dict(alice.results(job_a["job_id"]))
    results_b = dict(bob.results(job_b["job_id"]))

    # Exactly one execution per unique cell, fleet-wide.
    assert COUNTERS.compiles == len(grid)
    assert COUNTERS.simulates == len(grid)
    # Both tenants hold the same artifacts, byte for byte.
    assert json.dumps(results_a, sort_keys=True) == \
        json.dumps(results_b, sort_keys=True)
    assert all(r["failure"] is None for r in results_a.values())


def test_warm_replay_does_zero_work(server):
    grid = _grid(seed=12)
    client = ServeClient(server.url, tenant="alice", timeout=120.0)
    client.run_cells(_cells(grid))               # cold fill

    COUNTERS.reset()
    job = client.submit_cells(_cells(grid))
    # Every cell answered from the tenant's namespace at submission
    # time: the job arrives already done, nothing was enqueued.
    assert job["state"] == "done"
    assert job["n_cache_hits"] == len(grid)
    assert client.results(job["job_id"])         # results still stream
    assert COUNTERS.compiles == 0
    assert COUNTERS.simulates == 0
    assert server.queue.depth() == 0


def test_tenant_namespaces_stay_isolated(server):
    # Bob submitting *after* Alice finished gets no cross-tenant cache
    # hit (his namespace is cold) — isolation is per-tenant by design.
    grid = _grid(seed=13)
    alice = ServeClient(server.url, tenant="alice", timeout=120.0)
    alice.run_cells(_cells(grid))
    bob = ServeClient(server.url, tenant="bob", timeout=120.0)
    job = bob.submit_cells(_cells(grid))
    assert job["n_cache_hits"] == 0
    bob.results(job["job_id"])


def test_rate_limited_tenant_gets_structured_backpressure(tmp_path):
    config = ServeConfig(port=0, workers=1, cache_dir=tmp_path / "c",
                        rate=0.001, burst=2)
    with EvalServer(config) as server:
        sleeps = []
        client = ServeClient(server.url, tenant="greedy", timeout=30.0,
                             sleep=sleeps.append)
        cells = [("d" * 64, {"strategy": "diamonds", "seed": 1,
                             "max_steps": 1000})]
        client.submit_cells(cells, kind="fuzz")
        client.submit_cells(cells, kind="fuzz")  # burst spent
        with pytest.raises(Backpressure) as exc_info:
            client.submit_cells(cells, kind="fuzz")
        err = exc_info.value
        assert err.code == "rate_limited"
        assert err.details["tenant"] == "greedy"
        assert err.details["retry_after_s"] > 0
        # The client honored the advertised (capped) retry delay.
        assert sleeps and all(s > 0 for s in sleeps)


def test_session_remote_results_byte_identical_to_local(server, tmp_path):
    programs = {"grep": benchmark_programs(0.02, seed=14)["grep"]}
    with Session(remote=server.url, tenant="alice",
                 max_steps=MAX_STEPS) as remote_session:
        remote_runs = remote_session.run_suite(benchmarks=programs)
    with Session(cache=tmp_path / "local-cache",
                 max_steps=MAX_STEPS) as local_session:
        local_runs = local_session.run_suite(benchmarks=programs)

    def as_dict(runs):
        return {name: {s: r.to_dict() for s, r in run.results.items()}
                for name, run in runs.items()}

    assert json.dumps(as_dict(remote_runs), sort_keys=True) == \
        json.dumps(as_dict(local_runs), sort_keys=True)


def test_results_stream_as_jsonl_in_submission_order(server):
    grid = _grid(seed=15)
    client = ServeClient(server.url, tenant="alice", timeout=120.0)
    job = client.submit_cells(_cells(grid))
    client.results(job["job_id"])                # wait for completion
    status, raw = client._request(
        "GET", f"/v1/jobs/{job['job_id']}/results")
    assert status == 200
    lines = [json.loads(line)
             for line in raw.decode("utf-8").splitlines() if line.strip()]
    assert [rec["key"] for rec in lines] == [k for k, _ in _cells(grid)]


def test_stats_expose_queue_fleet_cache_and_limits(server, client):
    grid = _grid(seed=16)
    client.run_cells(_cells(grid))
    stats = client.stats()
    assert stats["fleet"]["workers"] == 2
    assert stats["fleet"]["cells_executed"] >= len(grid)
    assert stats["queue"]["jobs_done"] >= 1
    assert stats["cache"]["namespaces"]["tenant-a"]["entries"] == len(grid)
    assert "tenant-a" in stats["ratelimit"]["tokens"]


def test_cli_jobs_command_against_live_server(server, client, capsys):
    from repro.__main__ import main

    grid = _grid(seed=17)
    client.run_cells(_cells(grid))
    assert main(["jobs", "--remote", server.url]) == 0
    out = capsys.readouterr().out
    assert "job-" in out and "done" in out and "queue:" in out
