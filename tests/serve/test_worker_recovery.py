"""Worker-death recovery and the retry path, through the service loop.

These tests drive a real :class:`JobQueue` + :class:`WorkerFleet` with a
monkeypatched ``execute_payload`` so the failure modes are deterministic:
an escaped exception (the only way a cell can hurt a worker — contained
failures come back as payloads), an outright worker death (``SystemExit``
kills the thread), and a cell so poisoned it exhausts the attempt budget.
"""

import threading
import time

import pytest

from repro.serve import LocalBackend
from repro.serve.queue import MAX_CELL_ATTEMPTS, JobQueue
from repro.serve.worker import WorkerFleet
from repro.serve import worker as worker_mod

KEY = "c" * 64


def _wait(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _fleet(tmp_path, workers=2):
    queue = JobQueue()
    fleet = WorkerFleet(queue, LocalBackend(tmp_path), workers=workers)
    return queue, fleet


def test_escaped_exception_requeues_and_recovers(tmp_path, monkeypatch):
    calls = []

    def flaky(kind, spec):
        calls.append(kind)
        if len(calls) == 1:
            raise RuntimeError("interpreter-level fault")
        return {"ok": True}

    monkeypatch.setattr(worker_mod, "execute_payload", flaky)
    queue, fleet = _fleet(tmp_path)
    fleet.subscribe(KEY, "alice")
    job = queue.submit("alice", "fuzz", [(KEY, {})])
    fleet.start()
    try:
        assert _wait(lambda: job.done)
        assert job.results[KEY] == {"ok": True}
        assert len(calls) == 2                      # failed once, retried
        # The artifact reached the subscriber's namespace too.
        assert fleet.store.get("alice", KEY) == {"ok": True}
    finally:
        queue.close()
        fleet.stop()


# The worker re-raises SystemExit after requeueing (that IS the death);
# pytest flags the escaped thread exception, which is the point here.
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_worker_death_leaves_fleet_serving(tmp_path, monkeypatch):
    first = threading.Event()

    def lethal_once(kind, spec):
        if not first.is_set():
            first.set()
            raise SystemExit("worker killed mid-cell")
        return {"survived": True}

    monkeypatch.setattr(worker_mod, "execute_payload", lethal_once)
    queue, fleet = _fleet(tmp_path, workers=2)
    job = queue.submit("alice", "fuzz", [(KEY, {})])
    fleet.start()
    try:
        assert _wait(lambda: job.done)
        assert job.results[KEY] == {"survived": True}
        # Exactly one worker died; the fleet kept serving on the other.
        assert _wait(lambda: fleet.stats()["alive"] == 1)
    finally:
        queue.close()
        fleet.stop()


def test_poisoned_cell_fails_after_attempt_budget(tmp_path, monkeypatch):
    calls = []

    def poisoned(kind, spec):
        calls.append(kind)
        raise RuntimeError("always fatal")

    monkeypatch.setattr(worker_mod, "execute_payload", poisoned)
    queue, fleet = _fleet(tmp_path)
    job = queue.submit("alice", "fuzz", [(KEY, {})])
    fleet.start()
    try:
        # The job still completes — with a contained failure payload —
        # instead of wedging the queue forever.
        assert _wait(lambda: job.done)
        assert len(calls) == MAX_CELL_ATTEMPTS
        payload = job.results[KEY]
        assert "always fatal" in payload["error"]
    finally:
        queue.close()
        fleet.stop()


def test_engine_retry_runs_inside_the_service_loop(tmp_path, monkeypatch):
    # The engine's own cell retry (CELL_RETRIES) must fire when the cell
    # runs on a fleet thread: fail counted_compile once, succeed on the
    # retry, and the worker sees a clean payload — no requeue involved.
    from repro.engine import cells as engine_cells
    from repro.serve.client import suite_cells
    from repro.workloads import benchmark_programs

    real_compile = engine_cells.counted_compile
    failures = []

    def compile_flaky_once(kind, prog, heur, max_steps):
        if not failures:
            failures.append(kind)
            raise RuntimeError("transient compile fault")
        return real_compile(kind, prog, heur, max_steps)

    monkeypatch.setattr(engine_cells, "counted_compile",
                        compile_flaky_once)
    programs = {"grep": benchmark_programs(0.02, seed=1)["grep"]}
    from repro.core.heuristics import DEFAULT_HEURISTICS

    name, scheme, key, spec, payload = suite_cells(
        programs, DEFAULT_HEURISTICS, None, 100_000)[0]
    queue, fleet = _fleet(tmp_path)
    job = queue.submit("alice", "cells", [(key, payload)])
    fleet.start()
    try:
        assert _wait(lambda: job.done, timeout=60.0)
        result = job.results[key]
        assert failures == ["base"]                 # the fault did fire
        assert result.get("failure") is None        # ...and was retried
        assert result["stats"] is not None
    finally:
        queue.close()
        fleet.stop()
