"""Namespaced local store, remote backend, and the tiered composition."""

import json

import pytest

from repro.engine.keys import SCHEMA_VERSION
from repro.serve import (
    LocalBackend, RemoteBackend, ServeClient, TieredStore, check_namespace,
    namespace_stats,
)

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.mark.parametrize("bad", ["", "..", ".", "a/b", "x" * 65, "a b",
                                 "../../etc"])
def test_check_namespace_rejects_hostile_names(bad):
    with pytest.raises(ValueError):
        check_namespace(bad)


def test_check_namespace_accepts_sane_names():
    for name in ("default", "alice", "team-7", "a.b_c"):
        assert check_namespace(name) == name


def test_local_namespaces_are_isolated(tmp_path):
    backend = LocalBackend(tmp_path)
    backend.put("alice", KEY_A, {"who": "alice"})
    backend.put("bob", KEY_A, {"who": "bob"})
    assert backend.get("alice", KEY_A) == {"who": "alice"}
    assert backend.get("bob", KEY_A) == {"who": "bob"}
    assert backend.get("carol", KEY_A) is None


def test_default_namespace_is_the_plain_root(tmp_path):
    # A pre-service .repro-cache/ root keeps working verbatim as the
    # "default" namespace.
    backend = LocalBackend(tmp_path)
    backend.put("default", KEY_A, {"x": 1})
    shard = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
    assert shard.is_file()
    assert backend.get("default", KEY_A) == {"x": 1}


def test_stats_break_down_per_namespace(tmp_path):
    backend = LocalBackend(tmp_path)
    backend.put("alice", KEY_A, {"x": 1})
    backend.put("alice", KEY_B, {"x": 2})
    backend.put("bob", KEY_A, {"x": 3})
    stats = backend.stats()
    assert stats["namespaces"]["alice"]["entries"] == 2
    assert stats["namespaces"]["bob"]["entries"] == 1
    assert stats["entries"] == 3
    assert stats["total_bytes"] > 0
    # The module-level helper the CLI uses sees the same breakdown.
    assert namespace_stats(tmp_path)["entries"] == 3


def test_remote_backend_round_trip_against_live_server(server):
    remote = RemoteBackend(server.url)
    assert remote.get("alice", KEY_A) is None          # cold: miss
    remote.put("alice", KEY_A, {"answer": 42})
    assert remote.get("alice", KEY_A) == {"answer": 42}
    assert remote.get("bob", KEY_A) is None            # isolation holds


def test_remote_backend_all_failures_are_misses(tmp_path):
    # Nothing listens on this port: network failure == miss, put == drop.
    remote = RemoteBackend("http://127.0.0.1:9", timeout=0.2)
    assert remote.get("alice", KEY_A) is None
    remote.put("alice", KEY_A, {"x": 1})               # must not raise


def test_remote_backend_rejects_wrong_schema(server):
    # A peer serving a stale schema generation must read as a miss, not
    # as a wrong-generation payload.
    remote = RemoteBackend(server.url)
    client = ServeClient(server.url)
    status, _ = client._request(
        "PUT", f"/v1/cache/alice/{KEY_A}",
        {"schema": SCHEMA_VERSION + 1, "key": KEY_A, "payload": {}})
    assert status == 400                               # server refuses it
    assert remote.get("alice", KEY_A) is None


def test_tiered_store_read_through_replicates_locally(tmp_path, server):
    upstream = RemoteBackend(server.url)
    upstream.put("alice", KEY_A, {"from": "upstream"})
    local = LocalBackend(tmp_path)
    store = TieredStore(local, upstream)
    assert local.get("alice", KEY_A) is None
    assert store.get("alice", KEY_A) == {"from": "upstream"}
    # The hit was written through: now served locally.
    assert local.get("alice", KEY_A) == {"from": "upstream"}


def test_tiered_store_write_through_reaches_both(tmp_path, server):
    upstream = RemoteBackend(server.url)
    store = TieredStore(LocalBackend(tmp_path), upstream)
    store.put("alice", KEY_B, {"v": 7})
    assert store.local.get("alice", KEY_B) == {"v": 7}
    assert upstream.get("alice", KEY_B) == {"v": 7}


def test_corrupted_namespace_entry_reads_as_miss(tmp_path):
    backend = LocalBackend(tmp_path)
    backend.put("alice", KEY_A, {"x": 1})
    path = backend.namespace_root("alice") / KEY_A[:2] / f"{KEY_A}.json"
    path.write_text(json.dumps({"schema": -1, "key": KEY_A,
                                "payload": {}}))
    assert backend.get("alice", KEY_A) is None
