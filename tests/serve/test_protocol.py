"""Wire-protocol codecs: exact round-trips and shape validation."""

from dataclasses import replace

import pytest

from repro.core.heuristics import DEFAULT_HEURISTICS
from repro.engine.cells import CellSpec, overrides_as_items
from repro.engine.keys import cell_key
from repro.profilefb.classify import ClassifyConfig
from repro.serve import protocol
from repro.workloads import benchmark_programs


def test_heur_round_trip_is_exact():
    heur = replace(DEFAULT_HEURISTICS,
                   speculation_bias=0.71,
                   spectre_untrusted=("r4", "r9"),
                   classify=ClassifyConfig(likely_threshold=0.93))
    back = protocol.heur_from_payload(protocol.heur_to_payload(heur))
    assert back == heur
    assert isinstance(back.spectre_untrusted, tuple)
    assert isinstance(back.classify, ClassifyConfig)


def test_heur_unknown_field_rejected():
    payload = protocol.heur_to_payload(DEFAULT_HEURISTICS)
    payload["from_the_future"] = 1
    with pytest.raises(protocol.ProtocolError):
        protocol.heur_from_payload(payload)


def test_cellspec_round_trip_preserves_cell_key():
    prog = benchmark_programs(0.02, seed=5)["compress"]
    spec = CellSpec(
        benchmark="compress", scheme="Proposed", kind="prop",
        predictor="twobit", program=prog.to_dict(),
        heur=DEFAULT_HEURISTICS,
        config_overrides=overrides_as_items({"fetch_width": 8}),
        max_steps=100_000)
    decoded = protocol.cellspec_from_payload(
        protocol.cellspec_to_payload(spec))
    assert decoded == spec
    # The dedup invariant: a key computed from the decoded spec equals
    # the submitter's key.
    key = cell_key(prog, "Proposed", DEFAULT_HEURISTICS,
                   spec.resolve_config(), 100_000)
    assert cell_key(prog, "Proposed", decoded.heur,
                    decoded.resolve_config(), 100_000) == key


def test_cellspec_malformed_payload_raises():
    with pytest.raises(protocol.ProtocolError):
        protocol.cellspec_from_payload({"benchmark": "x"})


def test_validate_submission_happy_path():
    body = {"protocol": protocol.PROTOCOL_VERSION, "tenant": "alice",
            "kind": "fuzz", "cells": [{"key": "a" * 64, "spec": {}}]}
    assert protocol.validate_submission(body) == \
        ("alice", "fuzz", [{"key": "a" * 64, "spec": {}}])


@pytest.mark.parametrize("mutate", [
    lambda b: b.update(protocol=99),
    lambda b: b.pop("tenant"),
    lambda b: b.update(kind="nope"),
    lambda b: b.update(cells=[]),
    lambda b: b.update(cells=[{"key": "short", "spec": {}}]),
    lambda b: b.update(cells=[{"spec": {}}]),
])
def test_validate_submission_rejects_bad_shapes(mutate):
    body = {"protocol": protocol.PROTOCOL_VERSION, "tenant": "alice",
            "kind": "cells", "cells": [{"key": "a" * 64, "spec": {}}]}
    mutate(body)
    with pytest.raises(protocol.ProtocolError):
        protocol.validate_submission(body)


def test_error_body_is_structured():
    body = protocol.error_body("rate_limited", "slow down",
                               retry_after_s=1.5, tenant="alice")
    assert body["protocol"] == protocol.PROTOCOL_VERSION
    assert body["error"]["code"] == "rate_limited"
    assert body["error"]["retry_after_s"] == 1.5
    with pytest.raises(ValueError):
        protocol.error_body("made_up_code", "x")


def test_check_protocol_rejects_mismatch():
    with pytest.raises(protocol.ProtocolError):
        protocol.check_protocol({"protocol": 0}, "test")
