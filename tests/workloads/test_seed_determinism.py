"""Workload determinism: identical invocations must hash identically.

Cache keys are content digests of the program text, so any unseeded RNG
in the workload generators would silently defeat the artifact cache.
These are the regression tests for the seed audit: every benchmark
factory is deterministic by default, `benchmark_programs(seed=N)` is a
pure function of (scale, N), and distinct seeds produce distinct inputs
for the stochastic benchmarks.
"""

from repro.engine import program_digest
from repro.isa.randprog import random_program
from repro.workloads import benchmark_programs
from repro.workloads.synth import biased_loop_program, phased_loop_program


def _digests(scale=0.01, seed=None):
    return {name: program_digest(prog)
            for name, prog in benchmark_programs(scale, seed=seed).items()}


def test_default_invocations_are_bit_identical():
    assert _digests() == _digests()


def test_seeded_invocations_are_bit_identical():
    assert _digests(seed=1234) == _digests(seed=1234)


def test_distinct_seeds_vary_stochastic_benchmarks():
    a, b = _digests(seed=1), _digests(seed=2)
    for name in ("compress", "espresso", "grep"):
        assert a[name] != b[name], f"{name} ignored the seed"


def test_xlisp_is_seed_independent():
    # xlisp's workload is structurally deterministic; the seed must not
    # perturb it (and the cache may share its cells across seeds).
    assert _digests(seed=1)["xlisp"] == _digests(seed=2)["xlisp"]


def test_seeded_differs_from_default():
    a, b = _digests(), _digests(seed=1)
    for name in ("compress", "espresso", "grep"):
        assert a[name] != b[name]


def test_randprog_fully_seeded():
    p1 = random_program(seed=7)
    p2 = random_program(seed=7)
    assert program_digest(p1) == program_digest(p2)
    assert program_digest(p1) != program_digest(random_program(seed=8))


def test_synth_programs_deterministic():
    phases = ((40, "taken"), (40, "alternate"))
    assert program_digest(biased_loop_program()) == \
        program_digest(biased_loop_program())
    assert program_digest(phased_loop_program(phases)) == \
        program_digest(phased_loop_program(phases))
