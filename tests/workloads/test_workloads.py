"""Workload kernels: correctness against their Python references, and the
branch-behavior properties the evaluation relies on."""

import pytest

from repro.profilefb import BranchClass, ProfileDB
from repro.sim import final_state
from repro.workloads import (
    benchmark_programs, biased_loop_program, compress_program,
    compress_reference, espresso_program, espresso_reference, grep_program,
    grep_reference, phased_loop_program, xlisp_program, xlisp_reference,
)


# ---- bit-exact correctness -------------------------------------------------------

@pytest.mark.parametrize("n,seed", [(500, 12345), (1500, 999), (4000, 12345)])
def test_compress_matches_reference(n, seed):
    s = final_state(compress_program(n, seed))
    checksum, length, max_run = compress_reference(n, seed)
    assert s.regs["r17"] == checksum
    assert s.regs["r11"] == length
    assert s.regs["r16"] == max_run
    assert s.stats.halted


@pytest.mark.parametrize("m,seed", [(40, 99991), (120, 99991), (80, 5)])
def test_espresso_matches_reference(m, seed):
    s = final_state(espresso_program(m, seed))
    checksum, survivors, literals, odd, even = espresso_reference(m, seed)
    assert s.regs["r17"] == checksum
    assert s.regs["r15"] == survivors
    assert s.regs["r16"] == literals
    assert s.regs["r18"] == odd
    assert s.regs["r19"] == even


@pytest.mark.parametrize("k", [10, 100, 600])
def test_xlisp_matches_reference(k):
    from repro.workloads.xlisp import xlisp_opcode_counts

    s = final_state(xlisp_program(k))
    assert s.regs["r17"] == xlisp_reference(k)
    arith, other = xlisp_opcode_counts(k)
    assert s.regs["r18"] == arith
    assert s.regs["r19"] == other


@pytest.mark.parametrize("n,inj,seed", [(1000, 10, 777777), (6000, 40, 777777),
                                        (3000, 25, 31337)])
def test_grep_matches_reference(n, inj, seed):
    s = final_state(grep_program(n, inj, seed))
    matches, checksum, low, high, clo, chi = grep_reference(n, inj, seed)
    assert s.regs["r17"] == matches
    assert s.regs["r16"] == checksum
    assert s.regs["r12"] == low
    assert s.regs["r13"] == high
    assert s.regs["r18"] == clo
    assert s.regs["r19"] == chi
    assert matches > 0  # the workload must actually find something


# ---- dynamic characteristics (Table 1 plausibility) -------------------------------

def test_branch_ratios_in_paper_range():
    """Control-transfer fraction of the dynamic stream should be in the
    ballpark of the paper's 19-23%."""
    for name, prog in benchmark_programs(scale=0.5).items():
        s = final_state(prog)
        ratio = (s.stats.branches + s.stats.jumps) / s.stats.steps
        assert 0.08 <= ratio <= 0.40, f"{name}: {ratio:.3f}"


def test_workloads_have_biased_loop_branches():
    for name, prog in benchmark_programs(scale=0.5).items():
        db = ProfileDB.from_run(prog)
        classes = {bp.classification.branch_class
                   for bp in db.branches.values()}
        assert BranchClass.HIGHLY_TAKEN in classes \
            or BranchClass.HIGHLY_NOTTAKEN in classes, name


def test_compress_and_grep_have_phased_branches():
    for prog in (compress_program(2000), grep_program(3000)):
        db = ProfileDB.from_run(prog)
        phased = [bp for bp in db.branches.values()
                  if bp.classification.pattern.kind == "phased"]
        assert phased, prog.name


def test_xlisp_is_indirect_jump_heavy():
    s = final_state(xlisp_program(100))
    assert s.stats.jumps > s.stats.branches


def test_scaling():
    small = final_state(compress_program(500)).stats.steps
    large = final_state(compress_program(2000)).stats.steps
    assert large > 2 * small


# ---- synthetic kernels --------------------------------------------------------------

def test_phased_loop_program():
    prog = phased_loop_program([(40, "taken"), (20, "alternate"),
                                (40, "nottaken")])
    s = final_state(prog)
    # taken arm executed 40 + 10 times; body increments 1+2 each visit.
    assert s.regs["r10"] == 3 * 50
    assert s.regs["r11"] == 3 * 50
    db = ProfileDB.from_run(prog)
    # The branch under study is the only one at 50% overall frequency
    # (40 taken + 10 alternating-taken of 100).
    target = [bp for bp in db.branches.values()
              if bp.executions == 100
              and abs(bp.classification.frequency - 0.5) < 1e-9]
    assert target
    assert target[0].classification.pattern.kind == "phased"
    kinds = [s.kind for s in target[0].classification.pattern.segments]
    assert kinds[0] == "taken" and kinds[-1] == "nottaken"


def test_phased_loop_rejects_bad_kind():
    with pytest.raises(ValueError):
        phased_loop_program([(10, "sometimes")])


def test_biased_loop_program():
    prog = biased_loop_program(iterations=160, period=8)
    s = final_state(prog)
    db = ProfileDB.from_run(prog)
    target = [bp for bp in db.branches.values() if bp.executions == 160]
    assert target
    freq = target[0].classification.frequency
    assert abs(freq - 7 / 8) < 0.01
