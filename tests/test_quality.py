"""Repository-quality checks: public API documentation and exports."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.isa", "repro.cfg", "repro.sim", "repro.profilefb",
    "repro.sched", "repro.transform", "repro.core", "repro.workloads",
    "repro.eval", "repro.robust", "repro.engine", "repro.qa",
    "repro.obs", "repro.api", "repro.serve", "repro.tune",
]


def _public_members(mod):
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [n for n in dir(mod) if not n.startswith("_")]
    for n in names:
        yield n, getattr(mod, n)


@pytest.mark.parametrize("pkg", PACKAGES)
def test_module_docstrings(pkg):
    mod = importlib.import_module(pkg)
    assert mod.__doc__ and mod.__doc__.strip(), f"{pkg} lacks a docstring"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    mod = importlib.import_module(pkg)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_public_callables_documented(pkg):
    mod = importlib.import_module(pkg)
    undocumented = []
    for name, obj in _public_members(mod):
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__ is not None and \
                    not obj.__module__.startswith("repro"):
                continue  # re-exported stdlib/third-party
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{pkg}: undocumented public API: {undocumented}"


def test_all_submodules_importable():
    count = 0
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)
        count += 1
    assert count >= 30  # the repository is not a stub


def test_version():
    assert repro.__version__
