"""Paper-data tables and shape verdicts."""

import pytest

from repro.eval import (
    PAPER_TABLE1, PAPER_TABLE3_BR, PAPER_TABLE4_IPC, format_shape_verdicts,
    run_suite, shape_verdicts,
)


def test_paper_tables_complete():
    benches = {"compress", "espresso", "xlisp", "grep"}
    assert set(PAPER_TABLE1) == benches
    assert set(PAPER_TABLE3_BR) == benches
    assert set(PAPER_TABLE4_IPC) == benches


def test_paper_ipc_ordering_internally_consistent():
    # The paper's own numbers satisfy the ordering we assert on ours.
    for name, row in PAPER_TABLE4_IPC.items():
        assert row["2bitBP"] < row["Proposed"] <= row["PerfectBP"], name


def test_paper_br_ordering():
    for name, row in PAPER_TABLE3_BR.items():
        assert row["2bitBP"] < row["Proposed"] < row["PerfectBP"], name


@pytest.fixture(scope="module")
def runs():
    return run_suite(scale=0.15)


def test_shape_verdicts(runs):
    verdicts = shape_verdicts(runs)
    assert len(verdicts) == 4
    for v in verdicts:
        assert v["ipc_ordering_matches"], v["benchmark"]
        assert v["paper_ipc_ordering"]
        assert v["improvement_measured"] > 0.99
        assert 1.5 <= v["improvement_paper"] <= 2.1


def test_format_shape_verdicts(runs):
    text = format_shape_verdicts(runs)
    assert "MISMATCH" not in text
    assert "compress" in text
