"""Markdown report generation."""

import pytest

from repro.eval import render_report, run_suite, write_report


@pytest.fixture(scope="module")
def runs():
    return run_suite(scale=0.15)


def test_render_contains_all_sections(runs):
    text = render_report(runs)
    for section in ("Machine configuration", "Table 1", "Table 2", "Table 3",
                    "Table 4", "Headline", "Compilation trails"):
        assert section in text


def test_render_contains_benchmarks(runs):
    text = render_report(runs)
    for name in ("compress", "espresso", "xlisp", "grep"):
        assert name in text


def test_write_report(tmp_path, runs):
    path = write_report(runs, tmp_path / "report.md", title="Test run")
    content = path.read_text()
    assert content.startswith("# Test run")
    # Valid markdown tables: every table row has balanced pipes.
    for line in content.splitlines():
        if line.startswith("|"):
            assert line.endswith("|")


def test_cli_report(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "r.md"
    assert main(["tables", "--scale", "0.1", "--report", str(out)]) == 0
    assert out.exists()
    assert "Table 4" in out.read_text()
