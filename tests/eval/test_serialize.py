"""to_dict/from_dict round-trips for every artifact the engine caches."""

import json

import pytest

from repro.core.pipeline import CompileResult, compile_proposed
from repro.eval.runner import (
    BenchmarkRun, SchemeResult, run_benchmark, suite_from_dict,
    suite_to_dict,
)
from repro.sim import FunctionalSim, TimingSim, r10k_config
from repro.workloads import benchmark_programs


@pytest.fixture(scope="module")
def run():
    """One real benchmark run to serialize (module-scoped: expensive)."""
    prog = benchmark_programs(0.01)["compress"]
    return run_benchmark("compress", prog, max_steps=2_000_000)


def _json_round_trip(d):
    return json.loads(json.dumps(d))


def test_simstats_round_trip():
    prog = benchmark_programs(0.01)["xlisp"]
    fsim = FunctionalSim(prog, max_steps=2_000_000, record_outcomes=False)
    stats = TimingSim(r10k_config("twobit")).run(fsim.trace())
    d = _json_round_trip(stats.to_dict())
    restored = type(stats).from_dict(d)
    assert restored.cycles == stats.cycles
    assert restored.ipc == stats.ipc
    assert restored.predictor.accuracy == stats.predictor.accuracy
    assert restored.to_dict() == stats.to_dict()


def test_execstats_round_trip():
    prog = benchmark_programs(0.01)["xlisp"]
    fsim = FunctionalSim(prog, max_steps=2_000_000)
    exec_stats = fsim.run()
    d = _json_round_trip(exec_stats.to_dict())
    restored = type(exec_stats).from_dict(d)
    assert restored.steps == exec_stats.steps
    assert restored.branch_outcomes == exec_stats.branch_outcomes
    assert restored.to_dict() == exec_stats.to_dict()


def test_compile_result_round_trip():
    prog = benchmark_programs(0.01)["compress"]
    result = compile_proposed(prog, max_steps=2_000_000)
    d = _json_round_trip(result.to_dict())
    restored = CompileResult.from_dict(d)
    assert restored.profile is None  # documented: profiles don't travel
    assert restored.splits_applied == result.splits_applied
    assert restored.fallback == result.fallback
    assert len(restored.program) == len(result.program)
    assert restored.to_dict() == result.to_dict()


def test_scheme_result_round_trip(run):
    for cell in run.results.values():
        restored = SchemeResult.from_dict(_json_round_trip(cell.to_dict()))
        assert restored.ok == cell.ok
        assert restored.to_dict() == cell.to_dict()


def test_benchmark_run_round_trip(run):
    restored = BenchmarkRun.from_dict(_json_round_trip(run.to_dict()))
    assert restored.ok == run.ok
    assert restored.improvement == pytest.approx(run.improvement)
    assert restored.to_dict() == run.to_dict()


def test_failed_cell_round_trip():
    cell = SchemeResult("b", "2bitBP", failure="RuntimeError: boom",
                        failure_detail="trace...")
    restored = SchemeResult.from_dict(_json_round_trip(cell.to_dict()))
    assert not restored.ok
    assert restored.failure == cell.failure
    assert restored.failure_detail == cell.failure_detail


def test_failed_run_improvement_is_null(run):
    broken = BenchmarkRun(name="b", results={
        "2bitBP": SchemeResult("b", "2bitBP", failure="X"),
        "Proposed": run.results["Proposed"],
        "PerfectBP": run.results["PerfectBP"],
    })
    d = broken.to_dict()
    assert d["improvement"] is None  # NaN must not leak into JSON
    json.dumps(d)  # and the whole record must be serializable


def test_suite_round_trip(run):
    suite = {"compress": run}
    restored = suite_from_dict(_json_round_trip(suite_to_dict(suite)))
    assert suite_to_dict(restored) == suite_to_dict(suite)


def test_tables_render_from_restored_suite(run):
    from repro.eval import format_table4

    suite = {"compress": run}
    restored = suite_from_dict(_json_round_trip(suite_to_dict(suite)))
    assert format_table4(restored) == format_table4(suite)
