"""Evaluation harness: scheme runner and table generation.

Runs the suite at a reduced scale once (module-scoped fixture) and checks
both the plumbing and the paper's qualitative claims on the output.
"""

import pytest

from repro.eval import (
    SCHEMES, format_improvements, format_table1, format_table2,
    format_table3, format_table4, run_benchmark, run_suite, table1, table2,
    table3, table4,
)
from repro.workloads import biased_loop_program


@pytest.fixture(scope="module")
def runs():
    return run_suite(scale=0.25)


def test_all_schemes_present(runs):
    for name, run in runs.items():
        assert set(run.results) == set(SCHEMES)


def test_all_benchmarks_present(runs):
    assert set(runs) == {"compress", "espresso", "xlisp", "grep"}


def test_table1_columns(runs):
    rows = table1(runs)
    assert len(rows) == 4
    for row in rows:
        assert row["dynamic_instructions"] > 1000
        assert 5.0 < row["branch_pct"] < 45.0
        assert 50.0 < row["predicted_pct"] <= 100.0


def test_table2_matches_paper():
    rows = {r["instruction"]: r["latency"] for r in table2()}
    assert rows == {"alu": 1, "ld/st": 2, "sft": 1, "fp add": 3,
                    "fp mul": 3, "fp div": 3, "cache miss penalty": 6}


def test_table3_shape(runs):
    """Paper Table 3's qualitative shape: BR-buffer occupancy is (much)
    higher under better prediction — 2bitBP <= Proposed <= PerfectBP,
    summed across benchmarks."""
    rows = table3(runs)
    totals = {s: 0.0 for s in SCHEMES}
    for row in rows:
        for s in SCHEMES:
            totals[s] += row[s]["BR"]
    assert totals["2bitBP"] <= totals["Proposed"] + 1e-9
    assert totals["Proposed"] <= totals["PerfectBP"] + 1e-9


def test_table4_ipc_ordering(runs):
    """Paper Table 4's headline: IPC ordering 2bitBP < Proposed <= Perfect
    per benchmark (Proposed may tie the baseline on a benchmark where no
    transform fires, but must never lose)."""
    for name, run in runs.items():
        ipc = {s: run[s].stats.ipc for s in SCHEMES}
        assert ipc["Proposed"] >= ipc["2bitBP"] * 0.99, name
        assert ipc["PerfectBP"] >= ipc["Proposed"] * 0.95, name


def test_improvement_band(runs):
    """At least one benchmark lands in the paper's 0.3-0.6-fold band and
    the geometric mean shows a real improvement."""
    ratios = [run.improvement for run in runs.values()]
    assert any(r >= 1.3 for r in ratios)
    geomean = 1.0
    for r in ratios:
        geomean *= r
    geomean **= 1.0 / len(ratios)
    assert geomean > 1.05


def test_formatters_render(runs):
    for text in (format_table1(runs), format_table2(), format_table3(runs),
                 format_table4(runs), format_improvements(runs)):
        assert isinstance(text, str) and len(text.splitlines()) >= 3


def test_run_benchmark_single():
    prog = biased_loop_program(iterations=200, period=8)
    run = run_benchmark("synth", prog)
    assert run.name == "synth"
    assert run["2bitBP"].stats.cycles > 0
    assert run.improvement > 0


def test_config_overrides():
    prog = biased_loop_program(iterations=200, period=8)
    small = run_benchmark("synth", prog,
                          config_overrides={"bht_entries": 4})
    big = run_benchmark("synth", prog)
    # Tiny BHT can only hurt (or tie) the 2-bit baseline.
    assert small["2bitBP"].stats.ipc <= big["2bitBP"].stats.ipc + 1e-9
