"""Session facade: delegation equivalence, lifecycle, cache plumbing."""

import json
import warnings

import pytest

from repro.api import Session
from repro.engine import ArtifactCache, SweepSpec
from repro.eval import suite_to_dict
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.workloads import benchmark_programs

SCALE = 0.01


def _legacy(fn, *args, **kw):
    """Call a deprecated free function with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kw)


def test_run_suite_matches_legacy_byte_for_byte():
    from repro.eval import run_suite as legacy_run_suite

    with Session() as s:
        via_session = s.run_suite(scale=SCALE)
    legacy = _legacy(legacy_run_suite, scale=SCALE)
    assert json.dumps(suite_to_dict(via_session), sort_keys=True) \
        == json.dumps(suite_to_dict(legacy), sort_keys=True)


def test_run_benchmark_matches_legacy():
    from repro.eval import run_benchmark as legacy_run_benchmark

    prog = benchmark_programs(SCALE)["compress"]
    with Session() as s:
        via_session = s.run_benchmark("compress", prog)
    legacy = _legacy(legacy_run_benchmark, "compress", prog)
    assert json.dumps(via_session.to_dict(), sort_keys=True) \
        == json.dumps(legacy.to_dict(), sort_keys=True)


def test_sweep_matches_legacy():
    from repro.engine import run_sweep as legacy_run_sweep

    spec = SweepSpec(scales=(SCALE,), benchmarks=("compress",))
    with Session() as s:
        via_session = s.sweep(spec)
    legacy = _legacy(legacy_run_sweep, spec)
    assert json.dumps(via_session, sort_keys=True, default=str) \
        == json.dumps(legacy, sort_keys=True, default=str)


def test_fuzz_matches_legacy():
    from repro.qa import CampaignConfig, run_campaign as legacy_run_campaign

    cfg = CampaignConfig(budget=3, seed=0, shrink=False)
    with Session() as s:
        via_session = s.fuzz(cfg)
    legacy = _legacy(legacy_run_campaign, cfg)
    assert json.dumps(via_session.summary.to_dict(), sort_keys=True) \
        == json.dumps(legacy.summary.to_dict(), sort_keys=True)


def test_fuzz_accepts_keyword_config():
    with Session(jobs=1) as s:
        result = s.fuzz(budget=2, seed=1, shrink=False)
    assert result.summary.budget == 2
    assert result.summary.seed == 1


def test_session_methods_do_not_warn():
    prog = benchmark_programs(SCALE)["compress"]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session() as s:
            s.run_benchmark("compress", prog)
            s.run_suite(scale=SCALE, benchmarks={"compress": prog})


def test_tracer_lifecycle(tmp_path):
    path = tmp_path / "t.jsonl"
    session = Session(trace_path=path)
    assert _trace.active_tracer() is None
    with session:
        assert _trace.active_tracer() is session._tracer
        with _trace.span("unit-test"):
            pass
    assert _trace.active_tracer() is None
    records = _trace.read_trace(path)
    assert [r["name"] for r in records] == ["unit-test"]


def test_metrics_lifecycle():
    assert not _metrics.metrics_enabled()
    with Session(metrics=True):
        assert _metrics.metrics_enabled()
    assert not _metrics.metrics_enabled()


def test_start_close_idempotent(tmp_path):
    session = Session(trace_path=tmp_path / "t.jsonl")
    session.start()
    session.start()
    session.close()
    session.close()
    assert _trace.active_tracer() is None


def test_traced_suite_covers_passes_and_cells(tmp_path):
    path = tmp_path / "suite.jsonl"
    with Session(trace_path=path) as s:
        s.run_suite(scale=SCALE)
    names = {r["name"] for r in _trace.read_trace(path)}
    for required in ("suite.run", "compile.baseline", "compile.proposed",
                     "pass.profile", "pass.decide",
                     "cell.2bitBP", "cell.Proposed", "cell.PerfectBP",
                     "cell.safe-speculative"):
        assert required in names, f"missing span {required}"


def test_cache_plumbing(tmp_path):
    assert Session().cache is None
    assert Session().cache_stats() is None
    s = Session(cache=tmp_path / "store")
    assert isinstance(s.cache, ArtifactCache)
    assert s.cache_stats() is not None
    existing = ArtifactCache(tmp_path / "other")
    assert Session(cache=existing).cache is existing


def test_repr_mentions_knobs():
    text = repr(Session(jobs=3, metrics=True))
    assert "jobs=3" in text and "metrics=True" in text
