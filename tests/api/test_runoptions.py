"""RunOptions: precedence chain, legacy-kwarg mapping, CLI translation."""

import argparse
import warnings
from dataclasses import replace

import pytest

from repro.api import RunOptions, Session, options_from_args
from repro.engine import ArtifactCache


# -- construction and legacy mapping ----------------------------------------

def test_session_defaults_match_runoptions_defaults():
    s = Session()
    assert s.jobs == 1
    assert s.cache is None
    assert s.max_steps == RunOptions.max_steps
    assert s.strict is False
    assert s.backend == "reference"


def test_legacy_kwargs_map_onto_options():
    s = Session(jobs=3, max_steps=123, strict=True, metrics=True,
                trace_path="t.jsonl", tenant="alice")
    assert s.options.jobs == 3
    assert s.options.max_steps == 123
    assert s.options.strict is True
    assert s.options.metrics is True
    assert s.options.trace == "t.jsonl"
    assert s.options.tenant == "alice"
    # legacy read surface resolves through the options
    assert (s.jobs, s.max_steps, s.strict) == (3, 123, True)
    assert s.trace_path == "t.jsonl"


def test_options_object_configures_session():
    opts = RunOptions(jobs=4, max_steps=77, strict=True)
    s = Session(options=opts)
    assert (s.jobs, s.max_steps, s.strict) == (4, 77, True)


def test_explicit_legacy_kwarg_overrides_options():
    opts = RunOptions(jobs=4, strict=True)
    s = Session(options=opts, jobs=2)
    assert s.jobs == 2           # explicit kwarg wins
    assert s.strict is True      # untouched field survives


def test_explicit_false_overrides_options_true():
    # _UNSET (not False/None) is the "not passed" sentinel: an explicit
    # falsy value must still override the options object.
    opts = RunOptions(strict=True, metrics=True)
    s = Session(options=opts, strict=False, metrics=False)
    assert s.strict is False
    assert s.metrics is False


def test_cache_instance_identity_preserved():
    store = ArtifactCache()
    assert Session(cache=store).cache is store
    assert Session(options=RunOptions(cache=store)).cache is store


def test_cache_true_with_cache_dir(tmp_path):
    s = Session(options=RunOptions(cache=True, cache_dir=tmp_path / "c"))
    assert s.cache is not None
    assert str(s.cache.root).startswith(str(tmp_path))


def test_runoptions_is_frozen_and_replaceable():
    opts = RunOptions(jobs=2)
    with pytest.raises(Exception):
        opts.jobs = 3
    assert replace(opts, jobs=3).jobs == 3
    assert opts.jobs == 2


# -- per-call precedence ----------------------------------------------------

def test_per_call_options_override_session_default():
    s = Session(max_steps=100)
    eff = s._resolve(RunOptions(max_steps=200))
    assert eff.max_steps == 200


def test_explicit_kwarg_overrides_per_call_options():
    s = Session(max_steps=100)
    eff = s._resolve(RunOptions(max_steps=200), max_steps=300)
    assert eff.max_steps == 300


def test_session_default_used_when_nothing_passed():
    s = Session(max_steps=100)
    eff = s._resolve(None)
    assert eff.max_steps == 100


def test_per_call_options_route_to_run_suite(monkeypatch):
    """run_suite forwards the per-call options' knobs to the engine."""
    from repro.engine import suite as _suite

    seen = {}

    def fake_run_suite(**kw):
        seen.update(kw)
        return {}

    monkeypatch.setattr(_suite, "run_suite", fake_run_suite)
    s = Session(jobs=1, max_steps=111)
    s.run_suite(scale=0.01, options=RunOptions(jobs=5, max_steps=222))
    assert seen["jobs"] == 5
    assert seen["max_steps"] == 222


def test_per_call_explicit_kwarg_beats_per_call_options(monkeypatch):
    from repro.engine import suite as _suite

    seen = {}

    def fake_run_suite(**kw):
        seen.update(kw)
        return {}

    monkeypatch.setattr(_suite, "run_suite", fake_run_suite)
    Session().run_suite(scale=0.01, options=RunOptions(max_steps=222),
                        max_steps=333)
    assert seen["max_steps"] == 333


def test_per_call_cache_override_uses_fresh_store(tmp_path):
    """Overriding the cache knobs resolves a fresh store; leaving them
    untouched reuses the session's coerced instance (counters intact)."""
    s = Session(cache=True)
    same = s._cache_of(s._resolve(None))
    assert same is s.cache
    fresh = s._cache_of(s._resolve(
        replace(s.options, cache=str(tmp_path / "x"))))
    assert fresh is not s.cache


def test_byte_identical_results_via_options_vs_legacy():
    import json

    from repro.eval import suite_to_dict

    with Session(jobs=1) as a:
        legacy = a.run_suite(scale=0.01)
    with Session(options=RunOptions(jobs=1)) as b:
        modern = b.run_suite(scale=0.01)
    assert json.dumps(suite_to_dict(legacy), sort_keys=True) \
        == json.dumps(suite_to_dict(modern), sort_keys=True)


# -- deprecation-shim passthrough under the new resolution path -------------

def test_session_resolution_never_warns():
    from repro.workloads import benchmark_programs

    prog = benchmark_programs(0.01)["compress"]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session(options=RunOptions(jobs=1)) as s:
            s.run_benchmark("compress", prog,
                            options=RunOptions(max_steps=1_000_000))


def test_monkeypatched_legacy_impl_still_reached(monkeypatch):
    """Session.run_benchmark resolves the runner impl at call time, so
    monkeypatching the legacy free function still takes effect."""
    from repro.eval import runner as _runner

    calls = {}

    def fake(name, prog, **kw):
        calls["name"] = name
        calls.update(kw)
        return "sentinel"

    monkeypatch.setattr(_runner, "run_benchmark", fake)
    out = Session().run_benchmark("x", object(),
                                  options=RunOptions(max_steps=42))
    assert out == "sentinel"
    assert calls["name"] == "x"
    assert calls["max_steps"] == 42


# -- options_from_args (the one shared CLI translation) ---------------------

def _ns(**kw):
    return argparse.Namespace(**kw)


def test_options_from_args_full_namespace():
    opts = options_from_args(_ns(
        jobs=7, no_cache=False, cache_dir="/tmp/c", backend="fast",
        trace="t.jsonl", metrics=True, remote="http://h:1", tenant="bob",
        max_steps=99, strict=True, timeout=1.5))
    assert opts == RunOptions(
        jobs=7, cache=True, cache_dir="/tmp/c", backend="fast",
        trace="t.jsonl", metrics=True, remote="http://h:1", tenant="bob",
        max_steps=99, strict=True, timeout=1.5)


def test_options_from_args_no_cache_flag():
    assert options_from_args(_ns(no_cache=True)).cache is False
    assert options_from_args(_ns(no_cache=False)).cache is True


def test_options_from_args_missing_flags_fall_back():
    opts = options_from_args(_ns())
    assert opts.jobs == 1
    assert opts.cache is True   # CLI-wide default: caching on
    assert opts.backend is None
    assert opts.tenant == "default"
    assert opts.max_steps == RunOptions.max_steps
