"""Legacy entry points still work but warn toward the Session facade."""

import pytest

from repro._deprecation import deprecated, resolve_impl
from repro.workloads import benchmark_programs


def test_run_benchmark_warns():
    from repro.eval import run_benchmark

    prog = benchmark_programs(0.01)["compress"]
    with pytest.warns(DeprecationWarning, match="Session.run_benchmark"):
        run = run_benchmark("compress", prog)
    assert run.ok


def test_run_suite_warns():
    from repro.eval import run_suite

    with pytest.warns(DeprecationWarning, match="Session.run_suite"):
        runs = run_suite(scale=0.01,
                         benchmarks={"compress":
                                     benchmark_programs(0.01)["compress"]})
    assert runs["compress"].ok


def test_run_sweep_warns():
    from repro.engine import SweepSpec, run_sweep

    spec = SweepSpec(scales=(0.01,), benchmarks=("compress",))
    with pytest.warns(DeprecationWarning, match="Session.sweep"):
        records = run_sweep(spec)
    from repro.engine import SCHEME_PLAN
    assert len(records) == len(SCHEME_PLAN)  # one flat record per cell


def test_run_campaign_warns():
    from repro.qa import CampaignConfig, run_campaign

    with pytest.warns(DeprecationWarning, match="Session.fuzz"):
        result = run_campaign(CampaignConfig(budget=1, seed=0, shrink=False))
    assert result.summary.programs == 1


def test_decorator_preserves_metadata_and_impl():
    def work_impl(x):
        """Docs survive."""
        return x * 2

    shim = deprecated("new.thing")(work_impl)
    assert shim.__name__ == "work"
    assert shim.__doc__ == "Docs survive."
    assert shim._deprecated_impl is work_impl
    with pytest.warns(DeprecationWarning, match="use new.thing instead"):
        assert shim(3) == 6


def test_resolve_impl_skips_the_warning(recwarn):
    def work_impl():
        return "ran"

    shim = deprecated("new.thing")(work_impl)
    assert resolve_impl(shim) is work_impl
    assert resolve_impl(shim)() == "ran"
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]


def test_resolve_impl_passes_plain_functions_through():
    def monkeypatched():
        pass

    assert resolve_impl(monkeypatched) is monkeypatched
