"""Session facade tests."""
