"""Branch outcome bit vectors (paper Section 5).

"Each loop is instrumented with additional feedback metrics ... The previous
branch outcomes are recorded using bit vectors.  The patterns are studied and
then encoded ..."

:class:`BranchHistory` wraps one branch's ordered outcome sequence and
provides the statistics the feedback heuristics consume: taken frequency,
toggle factor, run-length encoding, and windowed frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


class BranchHistory:
    """Ordered outcomes of one static branch across a run."""

    def __init__(self, outcomes: Sequence[bool] | Iterable[bool]):
        self._v = np.asarray(list(outcomes), dtype=bool)

    @classmethod
    def from_string(cls, s: str) -> "BranchHistory":
        """Build from a 'TTFF' style string (case-insensitive; 1/0 allowed).

        >>> BranchHistory.from_string("TTF").taken_count
        2
        """
        mapping = {"t": True, "1": True, "f": False, "0": False}
        try:
            return cls([mapping[c] for c in s.lower() if not c.isspace()])
        except KeyError as exc:
            raise ValueError(f"bad outcome character {exc.args[0]!r}") from None

    # -- basics ----------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._v.size)

    def __iter__(self) -> Iterator[bool]:
        return iter(bool(x) for x in self._v)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return BranchHistory(self._v[i])
        return bool(self._v[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BranchHistory):
            return NotImplemented
        return len(self) == len(other) and bool(np.all(self._v == other._v))

    def __hash__(self):  # pragma: no cover - unhashable by design
        raise TypeError("BranchHistory is mutable-adjacent; not hashable")

    def as_array(self) -> np.ndarray:
        return self._v.copy()

    def as_string(self) -> str:
        return "".join("T" if x else "F" for x in self._v)

    # -- statistics -------------------------------------------------------------

    @property
    def taken_count(self) -> int:
        return int(self._v.sum())

    @property
    def frequency(self) -> float:
        """Taken frequency in [0, 1] (the paper's branch frequency)."""
        return float(self._v.mean()) if self._v.size else 0.0

    @property
    def transitions(self) -> int:
        """Number of adjacent outcome changes (T->F or F->T)."""
        if self._v.size < 2:
            return 0
        return int(np.count_nonzero(self._v[1:] != self._v[:-1]))

    @property
    def toggle_factor(self) -> float:
        """Transitions normalized to [0, 1]: 0 = constant, 1 = alternating.

        The paper classifies branches as monotonic when this "toggle factor
        (gathered from previous runs) is below ... a threshold limit".
        """
        if self._v.size < 2:
            return 0.0
        return self.transitions / (self._v.size - 1)

    def runs(self) -> list[tuple[bool, int]]:
        """Run-length encoding: [(value, length), ...].

        >>> BranchHistory.from_string("TTTFFT").runs()
        [(True, 3), (False, 2), (True, 1)]
        """
        v = self._v
        if v.size == 0:
            return []
        change = np.flatnonzero(v[1:] != v[:-1]) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [v.size]))
        return [(bool(v[s]), int(e - s)) for s, e in zip(starts, ends)]

    def windowed_frequency(self, window: int) -> np.ndarray:
        """Taken frequency over consecutive non-overlapping windows.

        The final partial window (if any) is included.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        v = self._v.astype(np.float64)
        n = v.size
        out = []
        for start in range(0, n, window):
            out.append(v[start:start + window].mean())
        return np.asarray(out)

    def prediction_accuracy_2bit(self, initial_state: int = 1) -> float:
        """Accuracy a dedicated 2-bit counter would achieve on this history.

        Used by heuristics to estimate how much hardware speculation already
        captures (paper: "the amount of hardware speculation will be as per
        the current prediction accuracy for that branch").
        """
        state = initial_state
        correct = 0
        for taken in self._v:
            if (state >= 2) == bool(taken):
                correct += 1
            state = min(3, state + 1) if taken else max(0, state - 1)
        return correct / self._v.size if self._v.size else 1.0

    def concat(self, other: "BranchHistory") -> "BranchHistory":
        return BranchHistory(np.concatenate((self._v, other._v)))

    def __repr__(self) -> str:
        s = self.as_string()
        if len(s) > 32:
            s = s[:29] + "..."
        return (f"<BranchHistory n={len(self)} freq={self.frequency:.2f} "
                f"toggle={self.toggle_factor:.2f} {s}>")
