"""Iteration-space segmentation of branch behavior (paper Section 4).

"We take one step closer in refining the behavior of these non monotonic
sections splitting them (if necessary) into several better predicted (or
monotonic) sections."

Given a branch outcome bit vector, :func:`segment_history` partitions the
iteration space into maximal sections classified as ``taken`` (taken
frequency >= bias threshold), ``nottaken`` (<= 1 - threshold) or ``mixed``
(the "anomalous" sections, e.g. the toggling middle 20% of the paper's
Figure 3 example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitvector import BranchHistory


@dataclass(frozen=True)
class Segment:
    """One section of a branch's iteration space.

    ``start``/``end`` index the outcome vector (end exclusive); ``kind`` is
    ``"taken"``, ``"nottaken"`` or ``"mixed"``; ``freq`` is the section's
    taken frequency.
    """

    start: int
    end: int
    kind: str
    freq: float

    @property
    def length(self) -> int:
        return self.end - self.start

    def fraction_of(self, total: int) -> float:
        return self.length / total if total else 0.0

    def __repr__(self) -> str:
        return (f"<Seg [{self.start},{self.end}) {self.kind} "
                f"freq={self.freq:.2f}>")


def _classify_window(freq: float, bias: float) -> str:
    if freq >= bias:
        return "taken"
    if freq <= 1.0 - bias:
        return "nottaken"
    return "mixed"


def segment_history(history: BranchHistory, window: int = 8,
                    bias: float = 0.9,
                    min_fraction: float = 0.05) -> list[Segment]:
    """Partition *history* into homogeneous sections.

    Algorithm: classify consecutive windows of length *window* by bias,
    merge adjacent windows of the same class, then absorb any section
    shorter than ``min_fraction`` of the total into its more-dominant
    neighbor (re-classifying the merged span).  Always returns a partition
    covering [0, len(history)).
    """
    n = len(history)
    if n == 0:
        return []
    if window <= 0:
        raise ValueError("window must be positive")
    wf = history.windowed_frequency(window)
    bounds = [min(n, (i + 1) * window) for i in range(len(wf))]
    starts = [i * window for i in range(len(wf))]

    # Merge adjacent same-class windows.
    raw: list[Segment] = []
    arr = history.as_array()
    for s, e, f in zip(starts, bounds, wf):
        kind = _classify_window(float(f), bias)
        if raw and raw[-1].kind == kind:
            prev = raw.pop()
            span = arr[prev.start:e]
            raw.append(Segment(prev.start, e, kind, float(span.mean())))
        else:
            raw.append(Segment(s, e, kind, float(f)))

    # Absorb sections that are tiny, or whose merge into a biased neighbor
    # preserves that neighbor's classification (a stray outcome inside a
    # long homogeneous phase must not fragment it).
    min_len = max(1, int(min_fraction * n))

    def absorbable(segs: list[Segment], i: int) -> bool:
        seg = segs[i]
        if seg.length < min_len:
            return True
        if seg.kind != "mixed":
            return False
        for j in (i - 1, i + 1):
            if 0 <= j < len(segs) and segs[j].kind != "mixed":
                lo, hi = min(i, j), max(i, j)
                span = arr[segs[lo].start:segs[hi].end]
                if _classify_window(float(span.mean()), bias) == segs[j].kind:
                    return True
        return False

    segs = raw
    changed = True
    while changed and len(segs) > 1:
        changed = False
        for i, seg in enumerate(segs):
            if not absorbable(segs, i):
                continue
            # Merge into a classification-preserving neighbor if one
            # exists, else the longer one.
            candidates = [j for j in (i - 1, i + 1) if 0 <= j < len(segs)]

            def preserves(j: int) -> bool:
                lo, hi = min(i, j), max(i, j)
                span = arr[segs[lo].start:segs[hi].end]
                return (segs[j].kind != "mixed"
                        and _classify_window(float(span.mean()), bias)
                        == segs[j].kind)

            preserving = [j for j in candidates if preserves(j)]
            pool = preserving or candidates
            j = max(pool, key=lambda j: segs[j].length)
            lo, hi = min(i, j), max(i, j)
            a, b = segs[lo], segs[hi]
            span = arr[a.start:b.end]
            f = float(span.mean())
            merged = Segment(a.start, b.end, _classify_window(f, bias), f)
            segs = segs[:lo] + [merged] + segs[hi + 1:]
            changed = True
            break

    # Coalesce equal-kind neighbors created by absorption.
    out: list[Segment] = []
    for seg in segs:
        if out and out[-1].kind == seg.kind:
            prev = out.pop()
            span = arr[prev.start:seg.end]
            out.append(Segment(prev.start, seg.end, seg.kind,
                               float(span.mean())))
        else:
            out.append(seg)
    return out


def segment_boundaries(segments: list[Segment]) -> list[int]:
    """Interior boundary indices of a segmentation.

    >>> from repro.profilefb.bitvector import BranchHistory
    >>> h = BranchHistory.from_string("T"*40 + "TF"*10 + "F"*40)
    >>> segs = segment_history(h, window=5)
    >>> segment_boundaries(segs)
    [40, 60]
    """
    return [s.start for s in segments[1:]]


def segmentation_quality(history: BranchHistory,
                         segments: list[Segment]) -> float:
    """Weighted within-segment predictability in [0.5, 1].

    For each segment, the best static prediction gets max(freq, 1-freq)
    right; the weighted average measures how much better per-segment
    specialization is than whole-run prediction.
    """
    n = len(history)
    if n == 0:
        return 1.0
    total = 0.0
    for s in segments:
        total += s.length * max(s.freq, 1.0 - s.freq)
    return total / n
