"""Pattern detection in branch outcome vectors (paper Section 5).

"The instrumentable routine determines if the toggle patterns of this branch
are periodic enough to be instrumented using algebraic counters ...
Currently, the algorithm detects simple algebraic (or arithmetic)
correlations in the toggle bit vector which can be expressed easily using
unique counters."

Detected pattern kinds:

* ``constant`` — (almost) all outcomes identical;
* ``periodic`` — the vector repeats with a short period (e.g. TTF TTF ...),
  expressible with one modulo counter;
* ``phased``   — a small number of long homogeneous phases (e.g. the paper's
  40 % taken / 20 % toggling / 40 % not-taken), expressible with iteration
  counters ``i < b1``, ``i >= b2``;
* ``complex``  — anything else; not a split candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .bitvector import BranchHistory
from .segments import Segment, segment_history


@dataclass(frozen=True)
class PatternInfo:
    """Result of :func:`analyze_pattern`."""

    kind: str                       # constant | periodic | phased | complex
    period: Optional[int] = None    # for periodic patterns
    segments: tuple[Segment, ...] = ()
    match: float = 1.0              # fraction of outcomes the model explains

    @property
    def is_instrumentable(self) -> bool:
        """Can this branch be split with simple algebraic counters?"""
        return self.kind in ("periodic", "phased")


def detect_period(history: BranchHistory, max_period: int = 16,
                  min_match: float = 0.95) -> Optional[tuple[int, float]]:
    """Find the smallest period p such that ``v[i] == v[i mod p]`` for at
    least *min_match* of positions.  Returns (period, match) or None.

    Period 1 (constant) is excluded — that's the ``constant`` kind.
    """
    v = history.as_array()
    n = v.size
    if n < 4:
        return None
    best: Optional[tuple[int, float]] = None
    for p in range(2, min(max_period, n // 2) + 1):
        template = v[:p]
        reps = -(-n // p)  # ceil
        model = np.tile(template, reps)[:n]
        match = float((model == v).mean())
        if match >= min_match:
            return (p, match)
        if best is None or match > best[1]:
            best = (p, match)
    return None


def analyze_pattern(history: BranchHistory, *, window: int = 8,
                    bias: float = 0.9, max_segments: int = 4,
                    max_period: int = 16,
                    min_match: float = 0.95) -> PatternInfo:
    """Classify the structure of a branch outcome vector.

    Order of tests: constant, then periodic (cheapest hardware encoding:
    one modulo counter), then phased (iteration-counter comparisons), else
    complex.
    """
    n = len(history)
    if n == 0:
        return PatternInfo(kind="constant", match=1.0)
    freq = history.frequency
    if freq >= min_match or freq <= 1.0 - min_match:
        return PatternInfo(kind="constant", match=max(freq, 1.0 - freq))

    periodic = detect_period(history, max_period=max_period,
                             min_match=min_match)
    if periodic is not None:
        p, match = periodic
        return PatternInfo(kind="periodic", period=p, match=match)

    segs = segment_history(history, window=window, bias=bias)
    if 2 <= len(segs) <= max_segments:
        # Phased only if specialization actually buys predictability:
        # the homogeneous phases must cover a majority of iterations.
        biased_cover = sum(s.length for s in segs if s.kind != "mixed") / n
        if biased_cover >= 0.5:
            return PatternInfo(kind="phased", segments=tuple(segs),
                               match=biased_cover)
    return PatternInfo(kind="complex", segments=tuple(segs), match=0.0)


def is_instrumentable(history: BranchHistory, **kw) -> bool:
    """The paper's ``instrumentable(bj)`` predicate (Figure 6)."""
    return analyze_pattern(history, **kw).is_instrumentable


def boundaries_stable(histories: Sequence[BranchHistory],
                      tolerance: float = 0.1, **kw) -> bool:
    """Do multiple runs agree on phase boundaries (within *tolerance*,
    as a fraction of the run length)?

    The paper gathers toggle patterns "from previous runs"; splitting is
    only sound when the phase structure is a property of the program, not
    of one input.
    """
    infos = [analyze_pattern(h, **kw) for h in histories]
    if not infos:
        return False
    if any(not i.is_instrumentable for i in infos):
        return False
    kinds = {i.kind for i in infos}
    if len(kinds) != 1:
        return False
    if infos[0].kind == "periodic":
        return len({i.period for i in infos}) == 1
    # Phased: compare normalized boundary positions.
    norm: list[tuple[float, ...]] = []
    for h, i in zip(histories, infos):
        n = len(h) or 1
        norm.append(tuple(s.start / n for s in i.segments[1:]))
    if len({len(b) for b in norm}) != 1:
        return False
    ref = np.asarray(norm[0])
    for b in norm[1:]:
        if np.any(np.abs(np.asarray(b) - ref) > tolerance):
            return False
    return True
