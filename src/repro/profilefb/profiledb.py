"""Profile database: everything the feedback heuristics know about a run.

Built by functionally executing a program once (the paper's instrumented
profiling run): per-branch outcome bit vectors and classifications, plus
per-instruction execution counts from which CFG block/edge frequencies are
derived for the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG
from ..isa.instruction import Instruction
from ..isa.program import Program
from ..sim.functional import ExecStats, FunctionalSim
from .bitvector import BranchHistory
from .classify import Classification, ClassifyConfig, classify


@dataclass
class BranchProfile:
    """Profile record of one static branch."""

    uid: int
    pc: int
    instr: Instruction
    history: BranchHistory
    classification: Classification

    @property
    def executions(self) -> int:
        return len(self.history)

    @property
    def taken(self) -> int:
        return self.history.taken_count


@dataclass
class ProfileDB:
    """All feedback information from one profiling run."""

    program: Program
    exec_stats: ExecStats
    index_counts: list[int]
    branches: dict[int, BranchProfile] = field(default_factory=dict)
    config: ClassifyConfig = field(default_factory=ClassifyConfig)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_run(cls, prog: Program, max_steps: int = 20_000_000,
                 config: Optional[ClassifyConfig] = None,
                 backend: str = "reference") -> "ProfileDB":
        """Profile *prog* with one functional run.

        ``backend="fast"`` routes the run through the generated-step
        executor of :mod:`repro.fastsim` (byte-identical counters,
        outcome vectors and index counts; transparent reference fallback
        on fastsim-internal failures).
        """
        config = config or ClassifyConfig()
        if backend == "fast":
            from ..fastsim.backend import functional_sim

            sim = functional_sim(prog, max_steps=max_steps,
                                 record_outcomes=True)
        else:
            sim = FunctionalSim(prog, max_steps=max_steps,
                                record_outcomes=True)
        stats = sim.run()
        db = cls(program=prog, exec_stats=stats,
                 index_counts=list(sim.index_counts), config=config)
        for uid, outcomes in stats.branch_outcomes.items():
            history = BranchHistory(outcomes)
            db.branches[uid] = BranchProfile(
                uid=uid, pc=stats.branch_pc[uid],
                instr=prog.instructions[stats.branch_pc[uid]],
                history=history,
                classification=classify(history, config))
        return db

    # -- queries -------------------------------------------------------------------

    def branch_at(self, pc: int) -> Optional[BranchProfile]:
        for bp in self.branches.values():
            if bp.pc == pc:
                return bp
        return None

    def branch_of(self, ins: Instruction) -> Optional[BranchProfile]:
        bp = self.branches.get(ins.uid)
        if bp is None and "cloned_from_uid" in ins.ann:
            bp = self.branches.get(ins.ann["cloned_from_uid"])
        return bp

    def count_at(self, index: int) -> int:
        return self.index_counts[index]

    # -- CFG frequency annotation -----------------------------------------------------

    def block_freqs(self, cfg: CFG) -> dict[int, float]:
        """Execution count of each block (count of its first instruction).

        Block identity is established through instruction uids, so this
        works on a CFG built from the profiled program.
        """
        uid_to_count: dict[int, int] = {}
        for idx, ins in enumerate(self.program.instructions):
            uid_to_count[ins.uid] = self.index_counts[idx]
        out: dict[int, float] = {}
        for bb in cfg.blocks:
            # Use the first instruction whose uid (or clone origin) was
            # profiled; transformed CFGs may lead blocks with new code.
            # Split-section clones carry their share of the iteration
            # space in ann["split_fraction"].
            freq = 0.0
            for ins in bb.instructions:
                key = ins.uid if ins.uid in uid_to_count \
                    else ins.ann.get("cloned_from_uid")
                if key in uid_to_count:
                    freq = float(uid_to_count[key]) \
                        * ins.ann.get("split_fraction", 1.0)
                    break
            out[bb.bid] = freq
        return out

    def edge_freqs(self, cfg: CFG) -> dict[tuple[int, int], float]:
        """Execution count of each CFG edge.

        Branch edges split by the branch's taken count; single-successor
        blocks pass their full count along.
        """
        blockf = self.block_freqs(cfg)
        out: dict[tuple[int, int], float] = {}
        for bb in cfg.blocks:
            edges = cfg.succ_edges[bb.bid]
            if not edges:
                continue
            term = bb.terminator
            if term is not None and term.is_branch:
                bp = self.branch_of(term)
                seg = term.ann.get("split_segment")
                if bp is not None and seg is not None:
                    # A split-section clone: use the segment's slice of the
                    # outcome history (paper Figure 3's per-segment bias).
                    s, e_ = seg
                    sub = bp.history[s:e_]
                    taken = float(sub.taken_count)
                    total = float(len(sub))
                    if term.ann.get("split_segment_negated"):
                        taken = total - taken
                elif bp is not None:
                    taken = float(bp.taken)
                    total = float(bp.executions)
                else:
                    taken, total = 0.0, blockf[bb.bid]
                for e in edges:
                    if e.kind == "taken":
                        out[(e.src, e.dst)] = taken
                    else:
                        out[(e.src, e.dst)] = max(0.0, total - taken)
            else:
                for e in edges:
                    out[(e.src, e.dst)] = blockf[bb.bid]
        return out

    def annotate(self, cfg: CFG) -> None:
        """Write block and edge frequencies into the CFG in place."""
        cfg.scale_frequencies(self.block_freqs(cfg), self.edge_freqs(cfg))

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the profile (feedback file) for a later compilation.

        The paper's workflow is explicitly multi-run: toggle factors are
        "gathered from previous runs" and the "intermediate code is then
        instrumented with feedback information".  The serialized form keys
        branches by *pc* (stable across processes, unlike instruction
        uids) and stores outcome bit vectors as T/F strings.
        """
        import json

        return json.dumps({
            "program": self.program.name,
            "steps": self.exec_stats.steps,
            "index_counts": self.index_counts,
            "branches": [
                {"pc": bp.pc, "outcomes": bp.history.as_string()}
                for bp in sorted(self.branches.values(), key=lambda b: b.pc)
            ],
        })

    @classmethod
    def from_json(cls, text: str, prog: Program,
                  config: Optional[ClassifyConfig] = None) -> "ProfileDB":
        """Rebuild a ProfileDB from :meth:`to_json` output against *prog*.

        *prog* must be the same program the profile was taken from (branch
        pcs are validated against it).
        """
        import json

        config = config or ClassifyConfig()
        data = json.loads(text)
        if len(data["index_counts"]) != len(prog.instructions):
            raise ValueError(
                f"profile is for a {len(data['index_counts'])}-instruction "
                f"program; got {len(prog.instructions)}")
        stats = ExecStats(steps=data["steps"])
        db = cls(program=prog, exec_stats=stats,
                 index_counts=list(data["index_counts"]), config=config)
        for rec in data["branches"]:
            pc = rec["pc"]
            ins = prog.instructions[pc]
            if not ins.is_branch:
                raise ValueError(f"pc {pc} is not a branch in this program")
            history = BranchHistory.from_string(rec["outcomes"])
            stats.branch_outcomes[ins.uid] = list(history)
            stats.branch_pc[ins.uid] = pc
            stats.branches += len(history)
            stats.taken_branches += history.taken_count
            db.branches[ins.uid] = BranchProfile(
                uid=ins.uid, pc=pc, instr=ins, history=history,
                classification=classify(history, config))
        return db

    def summary(self) -> str:
        lines = [f"profile of {self.program.name}: "
                 f"{self.exec_stats.steps} dynamic instructions, "
                 f"{self.exec_stats.branches} branches"]
        for uid, bp in sorted(self.branches.items(), key=lambda kv: kv[1].pc):
            c = bp.classification
            lines.append(
                f"  pc={bp.pc:<5} {bp.instr.op:<6} n={bp.executions:<8} "
                f"freq={c.frequency:.3f} toggle={c.toggle_factor:.3f} "
                f"{c.branch_class.value} pattern={c.pattern.kind}")
        return "\n".join(lines)
