"""Branch classification per the paper's Figure 6 thresholds.

The decision algorithm distinguishes:

* highly probable branches (frequency >= 0.95) -> branch-likely;
* biased monotonic branches (>= 0.65, stable behavior) -> if-conversion
  candidates, subject to the cost model;
* non-monotonic but instrumentable branches -> split candidates;
* everything else -> leave to the hardware's 2-bit predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .bitvector import BranchHistory
from .patterns import PatternInfo, analyze_pattern


class BranchClass(Enum):
    """How the feedback heuristics see one static branch."""

    HIGHLY_TAKEN = "highly-taken"         # freq >= likely threshold
    HIGHLY_NOTTAKEN = "highly-nottaken"   # freq <= 1 - likely threshold
    BIASED_MONOTONIC = "biased-monotonic"  # stable bias >= bias threshold
    SPLITTABLE = "splittable"             # non-monotonic, instrumentable
    IRREGULAR = "irregular"               # leave to hardware prediction


@dataclass(frozen=True)
class ClassifyConfig:
    """Thresholds of the Figure 6 algorithm."""

    likely_threshold: float = 0.95
    bias_threshold: float = 0.65
    #: toggle factor below which a branch counts as monotonic (paper:
    #: "classified as either monotonic (or not) if their corresponding
    #: toggle factor ... is below/above a threshold limit").  A branch with
    #: i.i.d. outcomes at bias p has expected toggle 2p(1-p) <= 0.5, so 0.5
    #: admits every statistically-stationary branch while rejecting
    #: adversarial alternation (toggle -> 1).
    monotonic_toggle: float = 0.5
    #: segmentation parameters forwarded to pattern analysis
    window: int = 8
    segment_bias: float = 0.9
    max_segments: int = 4
    max_period: int = 16
    pattern_match: float = 0.95


@dataclass(frozen=True)
class Classification:
    """Classification result plus the evidence that produced it."""

    branch_class: BranchClass
    frequency: float
    toggle_factor: float
    pattern: PatternInfo

    @property
    def wants_likely(self) -> bool:
        return self.branch_class in (BranchClass.HIGHLY_TAKEN,
                                     BranchClass.HIGHLY_NOTTAKEN)

    @property
    def wants_ifconvert(self) -> bool:
        return self.branch_class == BranchClass.BIASED_MONOTONIC

    @property
    def wants_split(self) -> bool:
        return self.branch_class == BranchClass.SPLITTABLE


def is_monotonic(history: BranchHistory,
                 config: ClassifyConfig = ClassifyConfig()) -> bool:
    """The paper's ``monotonic(bj)``: toggle factor below the threshold AND
    no phase structure (behavior stationary over the iteration space).

    A vector like TTTT...FFFF has a near-zero toggle factor yet two sharply
    different phases; it is *not* monotonic — it is exactly the case the
    paper splits.
    """
    if history.toggle_factor > config.monotonic_toggle:
        return False
    pattern = analyze_pattern(
        history, window=config.window, bias=config.segment_bias,
        max_segments=config.max_segments, max_period=config.max_period,
        min_match=config.pattern_match)
    return pattern.kind == "constant" or len(pattern.segments) <= 1


def classify(history: BranchHistory,
             config: ClassifyConfig = ClassifyConfig()) -> Classification:
    """Classify one branch history."""
    freq = history.frequency
    toggle = history.toggle_factor
    pattern = analyze_pattern(
        history, window=config.window, bias=config.segment_bias,
        max_segments=config.max_segments, max_period=config.max_period,
        min_match=config.pattern_match)

    if freq >= config.likely_threshold:
        cls = BranchClass.HIGHLY_TAKEN
    elif freq <= 1.0 - config.likely_threshold:
        cls = BranchClass.HIGHLY_NOTTAKEN
    elif pattern.is_instrumentable:
        cls = BranchClass.SPLITTABLE
    elif max(freq, 1.0 - freq) >= config.bias_threshold \
            and toggle <= config.monotonic_toggle:
        cls = BranchClass.BIASED_MONOTONIC
    else:
        cls = BranchClass.IRREGULAR
    return Classification(branch_class=cls, frequency=freq,
                          toggle_factor=toggle, pattern=pattern)
