"""Feedback metrics: branch outcome bit vectors, classification, patterns,
iteration-space segmentation, and the profile database (paper Sections 4-5).
"""

from .bitvector import BranchHistory
from .segments import (
    Segment, segment_boundaries, segment_history, segmentation_quality,
)
from .patterns import (
    PatternInfo, analyze_pattern, boundaries_stable, detect_period,
    is_instrumentable,
)
from .classify import (
    BranchClass, Classification, ClassifyConfig, classify, is_monotonic,
)
from .profiledb import BranchProfile, ProfileDB

__all__ = [
    "BranchHistory",
    "Segment", "segment_boundaries", "segment_history", "segmentation_quality",
    "PatternInfo", "analyze_pattern", "boundaries_stable", "detect_period",
    "is_instrumentable",
    "BranchClass", "Classification", "ClassifyConfig", "classify",
    "is_monotonic",
    "BranchProfile", "ProfileDB",
]
