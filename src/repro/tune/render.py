"""Text rendering of tune results for the ``repro tune`` CLI.

Two tables: the Pareto front over the three objectives, and the
per-workload winners next to the paper's global default vector — the
"learned vs. paper thresholds" comparison docs/TUNE.md describes.
"""

from __future__ import annotations

from .search import TuneResult, default_value


def _fmt_value(v) -> str:
    """Compact cell formatting (floats to 4 significant digits)."""
    if isinstance(v, bool) or not isinstance(v, float):
        return str(v)
    return f"{v:.4g}"


def _delta(params: dict) -> str:
    """Only the entries of *params* that differ from the paper default."""
    diffs = [f"{k}={_fmt_value(v)}" for k, v in sorted(params.items())
             if v != default_value(k)]
    return ", ".join(diffs) if diffs else "(paper defaults)"


def format_pareto(result: TuneResult) -> str:
    """The Pareto-front table of one search."""
    top = f"{result.spec.fidelities[-1]:g}"
    by_index = {c["index"]: c for c in result.candidates}
    lines = [f"Pareto front ({len(result.pareto)} of "
             f"{len(result.candidates)} candidates, "
             f"{result.evaluations} evaluations, backend "
             f"{result.backend}):",
             f"{'cand':>5} {'ipc':>7} {'growth':>7} {'cost':>6}  params"]
    for idx in result.pareto:
        cand = by_index[idx]
        agg = cand["rungs"][top]["aggregate"]
        lines.append(
            f"{idx:>5} {agg['ipc']:>7.3f} {agg['code_growth']:>7.3f} "
            f"{agg['compile_cost']:>6d}  {_delta(cand['params'])}")
    return "\n".join(lines)


def format_winners(result: TuneResult) -> str:
    """The per-workload learned-vs-paper-thresholds table."""
    lines = ["Per-workload winners (code growth within 5% of default):",
             f"{'workload':<12} {'tuned ipc':>9} {'default':>9} "
             f"{'gain':>7} {'growth':>7}  winning vector"]
    for bench in sorted(result.per_workload):
        w = result.per_workload[bench]
        lines.append(
            f"{bench:<12} {w['ipc']:>9.3f} {w['default_ipc']:>9.3f} "
            f"{w['ipc_gain_pct']:>6.2f}% {w['code_growth']:>7.3f}  "
            f"{_delta(w['params'])}")
    if not result.per_workload:
        lines.append("(none: no workload finished at full fidelity)")
    return "\n".join(lines)


def format_tune_result(result: TuneResult) -> str:
    """The full CLI report: front + winners + cache traffic."""
    traffic = (f"cells: {result.cells_hit} cache hits, "
               f"{result.cells_executed} executed")
    return "\n\n".join([format_pareto(result), format_winners(result),
                        traffic])
