"""Candidate evaluation: one heuristic vector = ordinary engine cells.

A candidate is scored by compiling and simulating the **Proposed** scheme
over the workload zoo with its heuristic vector (and machine overrides)
applied — exactly the cell the suite runner would build for the same
inputs, keyed by the same content-addressed
:func:`~repro.engine.keys.cell_key`.  That identity is the whole point:
tune shares the artifact cache with ``tables``/``sweep`` runs, repeated
or resumed searches re-execute nothing, and a fleet can absorb the
search through the ordinary serve protocol
(:func:`repro.serve.client.remote_cell_executor`) with fleet-wide
dedup.

Objectives extracted per (candidate, workload) cell:

* ``ipc`` — timing-simulator instructions per cycle (maximize);
* ``code_growth`` — transformed / original static instruction count
  (minimize; the cost axis of the paper's Figure 7 discussion);
* ``compile_cost`` — deterministic transform-count proxy for compile
  time (minimize; see :func:`compile_cost` for why not wall-clock).
"""

from __future__ import annotations

from typing import Optional

from ..engine.cells import COUNTERS, CellSpec, overrides_as_items
from ..engine.keys import cell_key
from ..engine.pool import run_cells
from ..eval.runner import SchemeResult
from ..obs.metrics import REGISTRY

#: The scheme every candidate is scored on: the paper's combined
#: speculative+guarded pipeline — the one whose decisions the heuristic
#: vector actually steers.  (scheme, kind, predictor) as in SCHEME_PLAN.
TUNE_SCHEME = ("Proposed", "prop", "twobit")


def compile_cost(cr) -> int:
    """Deterministic compile-time proxy: total transforms applied.

    Wall-clock compile time would break the tuner's reproducibility
    contract (same seed + budget → identical Pareto front), so the cost
    objective counts the work the pipeline performed instead: splits,
    if-conversions, branch-likelies, speculated and duplicated
    operations, and planted fences.  Monotone in real compile time for a
    fixed input, and bit-stable across hosts and runs.
    """
    cost = cr.splits_applied + cr.ifconverts_applied
    if cr.likely_report is not None:
        cost += cr.likely_report.converted
    if cr.region_report is not None:
        cost += (cr.region_report.speculated + cr.region_report.duplicated
                 + cr.region_report.fenced)
    return cost


def candidate_cells(heur, config_overrides: dict, programs: dict,
                    max_steps: int, timeout: Optional[float],
                    backend: str) -> list[tuple[str, str, CellSpec]]:
    """The (benchmark, key, spec) grid of one candidate vector.

    One Proposed-scheme cell per workload, keyed exactly like the suite
    runner's Proposed cell for the same inputs — a candidate whose
    vector equals the session default therefore costs nothing after any
    ``tables`` run at the same scale.
    """
    scheme, kind, predictor = TUNE_SCHEME
    over_items = overrides_as_items(config_overrides)
    out = []
    for name, prog in programs.items():
        spec = CellSpec(
            benchmark=name, scheme=scheme, kind=kind, predictor=predictor,
            program=prog.to_dict(), heur=heur, config_overrides=over_items,
            max_steps=max_steps, timeout=timeout, backend=backend)
        key = cell_key(prog, scheme, heur, spec.resolve_config(),
                       max_steps, backend=backend)
        out.append((name, key, spec))
    return out


def measure(payload: dict, original_len: int) -> dict:
    """Objective vector of one cell payload (``ok=False`` on failure)."""
    cell = SchemeResult.from_dict(payload)
    if not cell.ok or cell.compile_result is None:
        return {"ok": False, "ipc": 0.0, "code_growth": float("inf"),
                "compile_cost": 0, "failure": cell.failure}
    size = len(cell.compile_result.program)
    return {"ok": True,
            "ipc": cell.stats.ipc,
            "code_growth": (size / original_len if original_len else 1.0),
            "compile_cost": compile_cost(cell.compile_result),
            "failure": None}


def evaluate_batch(cells: list[tuple[str, str, CellSpec]], programs: dict,
                   cache, jobs: int,
                   executor=None) -> tuple[dict, int, int]:
    """Execute one round's cell grid through cache, pool, or fleet.

    *cells* is the concatenated ``candidate_cells`` output of every
    candidate in the round (duplicate keys collapse — two candidates
    whose vectors compile identically share one execution).  Returns
    ``({key: payload}, hits, executed)``; ``hits`` counts artifact-cache
    hits, ``executed`` the unique cells actually run.  *executor* (from
    :func:`repro.serve.client.remote_cell_executor`) replaces the local
    pool with one batched fleet submission.
    """
    payloads: dict[str, dict] = {}
    miss: dict[str, CellSpec] = {}
    for _, key, spec in cells:
        if key in payloads or key in miss:
            continue
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            payloads[key] = cached
            continue
        miss[key] = spec
    hits = len(payloads)
    REGISTRY.inc("tune.cells.hit", hits)
    REGISTRY.inc("tune.cells.miss", len(miss))
    if miss:
        items = list(miss.items())
        if executor is not None:
            fresh = executor([(k, s) for k, s in items])
        else:
            results = run_cells([s for _, s in items], jobs=jobs,
                                programs=programs)
            fresh = {k: payload
                     for (k, _), payload in zip(items, results)}
        for key, payload in fresh.items():
            payloads[key] = payload
            if cache is not None and payload.get("failure") is None:
                cache.put(key, payload)
    return payloads, hits, len(miss)


def reset_counters() -> None:
    """Zero the engine's compile/simulate counters (zero-work asserts)."""
    COUNTERS.reset()
