"""The closed-loop search driver: successive halving + mutation.

:func:`run_tune` turns a :class:`~repro.tune.spec.TuneSpec` into a
:class:`TuneResult` in two stages:

1. **Successive halving** — a seeded initial population (the default
   heuristic vector is always candidate 0) is scored on cheap
   low-fidelity rungs (reduced workload scale) and only the top
   ``keep`` fraction is promoted to the next, more expensive rung; the
   default vector is always promoted, so every search ends with a
   like-for-like comparison against the paper's global thresholds.
2. **Mutation refinement** — while evaluation budget remains, survivors
   of the top rung breed mutated variants (each parameter perturbed
   with probability ``mutation_rate`` inside its registered bound),
   which are scored at full fidelity.

Budget accounting is *structural*: every (candidate, rung) evaluation
costs one unit whether or not its cells hit the artifact cache — so the
search trajectory (and therefore the Pareto front) depends only on
``(spec, backend)``, never on cache state.  A warm cache changes how
long the search takes, not where it goes; that is what makes
``same seed + budget → identical front`` and ``resumed search executes
zero cells`` simultaneously true.

Results additionally land in the artifact cache under a spec-level key
(:func:`tune_result_key`), so re-running an identical search returns the
stored :class:`TuneResult` without touching a single cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core import serde
from ..core.heuristics import DEFAULT_HEURISTICS
from ..engine.keys import SCHEMA_VERSION as KEYS_SCHEMA_VERSION, digest
from ..fastsim.backend import resolve_backend
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from ..sim.config import r10k_config
from ..workloads import benchmark_programs
from .evaluate import candidate_cells, evaluate_batch, measure
from .pareto import pareto_front
from .spec import TuneSpec, apply_params

#: Code-growth slack a per-workload winner may spend over the default
#: vector's growth (the bench gate's "≤5% regression" budget).
GROWTH_SLACK = 1.05


def default_value(name: str):
    """The paper-default value of a tunable parameter (candidate 0)."""
    if name.startswith("classify."):
        return getattr(DEFAULT_HEURISTICS.classify, name[len("classify."):])
    if name.startswith("config."):
        return getattr(r10k_config(), name[len("config."):])
    return getattr(DEFAULT_HEURISTICS, name)


def tune_result_key(spec: TuneSpec, backend: str) -> str:
    """Result-level cache key of one search: ``(spec, backend)`` content.

    Salted with the engine's key schema version so compiler or simulator
    changes invalidate stored searches exactly like they invalidate
    cells.
    """
    return digest({"kind": "tune-result", "schema": KEYS_SCHEMA_VERSION,
                   "spec": spec, "backend": backend})


@dataclass
class TuneResult:
    """Everything one search learned, serializable via core.serde.

    ``candidates`` holds every evaluated vector with its per-rung,
    per-workload objective measurements; ``pareto`` indexes the
    non-dominated finalists; ``per_workload`` maps each benchmark to its
    winning vector under the code-growth slack (always at least as good
    on IPC as the default vector, which competes as candidate 0).
    """

    spec: TuneSpec
    backend: str = "reference"
    candidates: list = field(default_factory=list)
    pareto: list = field(default_factory=list)
    per_workload: dict = field(default_factory=dict)
    evaluations: int = 0
    cells_hit: int = 0
    cells_executed: int = 0

    def to_dict(self) -> dict:
        """Schema-stamped JSON form (CLI ``--out`` and result cache)."""
        return serde.stamp({
            "spec": self.spec.to_dict(), "backend": self.backend,
            "candidates": self.candidates, "pareto": self.pareto,
            "per_workload": self.per_workload,
            "evaluations": self.evaluations,
            "cells_hit": self.cells_hit,
            "cells_executed": self.cells_executed,
        })

    @classmethod
    def from_dict(cls, d: dict) -> "TuneResult":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        serde.check(d, "TuneResult")
        return cls(spec=TuneSpec.from_dict(d["spec"]),
                   backend=d["backend"], candidates=d["candidates"],
                   pareto=d["pareto"], per_workload=d["per_workload"],
                   evaluations=d["evaluations"],
                   cells_hit=d["cells_hit"],
                   cells_executed=d["cells_executed"])


def _sample(spec: TuneSpec, rng: random.Random) -> dict:
    """One random candidate vector inside every axis bound."""
    out = {}
    for p in spec.params:
        b = p.bound()
        if b.kind == "choice":
            out[p.name] = rng.choice(list(b.choices))
        elif b.kind == "int":
            out[p.name] = rng.randint(int(b.lo), int(b.hi))
        else:
            out[p.name] = round(rng.uniform(b.lo, b.hi), 6)
    return out


def _mutate(spec: TuneSpec, parent: dict, rng: random.Random) -> dict:
    """A mutated copy of *parent* (≥1 parameter always changes)."""
    out = dict(parent)
    changed = False
    for p in spec.params:
        if rng.random() >= spec.mutation_rate:
            continue
        b = p.bound()
        if b.kind == "choice":
            out[p.name] = rng.choice(list(b.choices))
        elif b.kind == "int":
            width = max(1, int(round((b.hi - b.lo) * 0.25)))
            out[p.name] = b.clamp(out[p.name] + rng.randint(-width, width))
        else:
            width = (b.hi - b.lo) * 0.25
            out[p.name] = round(
                b.clamp(out[p.name] + rng.uniform(-width, width)), 6)
        changed = changed or out[p.name] != parent[p.name]
    if not changed:  # force one fresh draw so mutants never no-op
        p = spec.params[rng.randrange(len(spec.params))]
        out[p.name] = _sample(spec, rng)[p.name]
    return out


def _vec_key(params: dict) -> str:
    """Canonical identity of a vector (dedup across origins)."""
    return digest({"vec": params})


def _aggregate(per_bench: dict) -> dict:
    """Cross-workload objective summary of one (candidate, rung)."""
    ok = [m for m in per_bench.values() if m["ok"]]
    n = len(per_bench)
    if not ok:
        return {"ipc": 0.0, "code_growth": float("inf"),
                "compile_cost": 0, "ok_frac": 0.0}
    return {"ipc": sum(m["ipc"] for m in ok) / len(ok),
            "code_growth": max(m["code_growth"] for m in ok),
            "compile_cost": sum(m["compile_cost"] for m in ok),
            "ok_frac": len(ok) / n if n else 0.0}


def _rank_key(cand: dict, rung: str):
    """Sort key for halving: sound first, then IPC, growth, cost, index."""
    agg = cand["rungs"][rung]["aggregate"]
    return (-agg["ok_frac"], -agg["ipc"], agg["code_growth"],
            agg["compile_cost"], cand["index"])


def _rung_label(frac: float) -> str:
    """Stable string key of one fidelity rung (JSON dict key)."""
    return f"{frac:g}"


def _initial_population(spec: TuneSpec) -> int:
    """Initial wave size: the halving stage fits in ~half the budget."""
    k, r = spec.keep, len(spec.fidelities)
    wave_cost = (1 - k ** r) / (1 - k)  # sum of k^i for i < r
    n0 = int((spec.budget / 2) / wave_cost)
    return max(2, min(n0, spec.budget))


def _evaluate_round(cands: list, frac: float, spec: TuneSpec, cache, jobs,
                    backend, executor, timeout, round_no: int,
                    progress) -> tuple[int, int]:
    """Score *cands* at rung *frac*; returns (cache hits, executed)."""
    scale = spec.scale if frac == 1.0 else spec.scale * frac
    programs = benchmark_programs(scale)
    if spec.benchmarks is not None:
        programs = {n: p for n, p in programs.items()
                    if n in spec.benchmarks}
    original_len = {name: len(prog) for name, prog in programs.items()}
    label = _rung_label(frac)
    with obs_span("tune.round", round=round_no, rung=frac,
                  candidates=len(cands)) as sp:
        grid = []   # (candidate, [(bench, key, spec)])
        cells = []
        for cand in cands:
            heur, overrides = apply_params(cand["params"])
            cc = candidate_cells(heur, overrides, programs,
                                 spec.max_steps, timeout, backend)
            grid.append((cand, cc))
            cells.extend(cc)
        payloads, hits, executed = evaluate_batch(
            cells, programs, cache, jobs, executor=executor)
        best = 0.0
        for cand, cc in grid:
            per_bench = {name: measure(payloads[key], original_len[name])
                         for name, key, _ in cc}
            agg = _aggregate(per_bench)
            cand["rungs"][label] = {"per_workload": per_bench,
                                    "aggregate": agg}
            best = max(best, agg["ipc"])
        sp.set("best_ipc", best)
        sp.set("cells_hit", hits)
        sp.set("cells_executed", executed)
    REGISTRY.inc("tune.rounds")
    REGISTRY.observe("tune.round.best_ipc", best)
    if progress:
        progress(f"round {round_no}: rung {label} x{len(cands)} "
                 f"candidates, best ipc {best:.3f} "
                 f"({hits} cached, {executed} executed)")
    return hits, executed


def _pick_winners(finalists: list, spec: TuneSpec) -> dict:
    """Per-workload winning vectors under the code-growth slack.

    The default vector (candidate 0) competes, so a workload's winner
    has IPC >= the default's by construction; candidates whose growth
    exceeds ``default_growth * GROWTH_SLACK`` are not eligible — beating
    the paper's thresholds by paying unbounded code size is exactly the
    trade the 1998 hardware could not afford, and the bench gate
    rejects it.
    """
    top = _rung_label(spec.fidelities[-1])
    default = finalists[0]
    assert default["index"] == 0
    winners: dict = {}
    for bench, base in default["rungs"][top]["per_workload"].items():
        if not base["ok"]:
            continue
        allowed = base["code_growth"] * GROWTH_SLACK
        best = None
        for cand in finalists:
            m = cand["rungs"][top]["per_workload"].get(bench)
            if m is None or not m["ok"] or m["code_growth"] > allowed:
                continue
            if best is None or m["ipc"] > best[1]["ipc"] or (
                    m["ipc"] == best[1]["ipc"]
                    and cand["index"] < best[0]["index"]):
                best = (cand, m)
        if best is None:
            best = (default, base)
        cand, m = best
        winners[bench] = {
            "candidate": cand["index"], "params": cand["params"],
            "ipc": m["ipc"], "default_ipc": base["ipc"],
            "ipc_gain_pct": (100.0 * (m["ipc"] / base["ipc"] - 1.0)
                             if base["ipc"] else 0.0),
            "code_growth": m["code_growth"],
            "default_code_growth": base["code_growth"],
        }
    return winners


def run_tune(spec: TuneSpec, cache=None, jobs: int = 1,
             backend: Optional[str] = None, client=None,
             timeout: Optional[float] = None,
             progress: Optional[Callable[[str], None]] = None
             ) -> TuneResult:
    """Run one closed-loop search (the engine behind ``Session.tune``).

    *cache*/*jobs* mirror the suite runner; *client* (a
    :class:`~repro.serve.ServeClient`) reroutes each round's cell batch
    through the evaluation service.  An identical ``(spec, backend)``
    search found in the cache is returned directly — resumption without
    executing anything.
    """
    spec.validate()
    backend = resolve_backend(backend)
    result_key = tune_result_key(spec, backend)
    if cache is not None:
        stored = cache.get(result_key)
        if stored is not None:
            REGISTRY.inc("tune.result.hit")
            if progress:
                progress("identical search found in the artifact cache; "
                         "returning the stored result (0 cells)")
            return TuneResult.from_dict(stored)

    executor = None
    if client is not None:
        from ..serve.client import remote_cell_executor

        executor = remote_cell_executor(client)

    rng = random.Random(spec.seed)
    seen: set[str] = set()
    candidates: list[dict] = []

    def admit(params: dict, origin: str) -> Optional[dict]:
        key = _vec_key(params)
        if key in seen:
            return None
        seen.add(key)
        cand = {"index": len(candidates), "params": params,
                "origin": origin, "rungs": {}}
        candidates.append(cand)
        return cand

    defaults = {p.name: default_value(p.name) for p in spec.params}
    admit(defaults, "default")
    n0 = _initial_population(spec)
    while len(candidates) < n0:
        admit(_sample(spec, rng), "sample")

    with obs_span("tune.search", budget=spec.budget, seed=spec.seed,
                  backend=backend, params=len(spec.params)):
        evaluations = hits = executed = 0
        round_no = 0
        # Stage 1: successive halving up the fidelity rungs.
        wave = list(candidates)
        for frac in spec.fidelities:
            if evaluations >= spec.budget:
                break
            wave = wave[:spec.budget - evaluations]
            if not wave:
                break
            h, x = _evaluate_round(wave, frac, spec, cache, jobs, backend,
                                   executor, timeout, round_no, progress)
            evaluations += len(wave)
            hits += h
            executed += x
            round_no += 1
            label = _rung_label(frac)
            if frac != spec.fidelities[-1]:
                wave.sort(key=lambda c: _rank_key(c, label))
                survivors = max(1, int(len(wave) * spec.keep))
                wave = wave[:survivors]
                if all(c["index"] != 0 for c in wave):
                    wave.append(candidates[0])  # default always promoted
        top_label = _rung_label(spec.fidelities[-1])
        finalists = [c for c in candidates if top_label in c["rungs"]]

        # Stage 2: mutation refinement at full fidelity.
        while evaluations < spec.budget and finalists:
            finalists.sort(key=lambda c: _rank_key(c, top_label))
            parents = finalists[:max(2, len(finalists) // 4)]
            wave = []
            room = spec.budget - evaluations
            target = min(room, max(2, len(parents)))
            attempts = 0
            while len(wave) < target and attempts < target * 10:
                attempts += 1
                child = admit(
                    _mutate(spec, rng.choice(parents)["params"], rng),
                    "mutation")
                if child is not None:
                    wave.append(child)
            if not wave:
                break
            h, x = _evaluate_round(wave, spec.fidelities[-1], spec, cache,
                                   jobs, backend, executor, timeout,
                                   round_no, progress)
            evaluations += len(wave)
            hits += h
            executed += x
            round_no += 1
            finalists.extend(wave)

        finalists.sort(key=lambda c: c["index"])
        objectives = [c["rungs"][top_label]["aggregate"] for c in finalists]
        front = [finalists[i]["index"]
                 for i in pareto_front(objectives)]
        per_workload = (_pick_winners(finalists, spec)
                        if finalists and finalists[0]["index"] == 0 else {})

    result = TuneResult(spec=spec, backend=backend, candidates=candidates,
                        pareto=front, per_workload=per_workload,
                        evaluations=evaluations, cells_hit=hits,
                        cells_executed=executed)
    if cache is not None:
        cache.put(result_key, result.to_dict())
    return result
