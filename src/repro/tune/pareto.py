"""Pareto-front extraction over the tuner's three objectives.

The search scores every candidate on **IPC** (maximize), **code growth**
(minimize — transformed / original static instruction count), and
**compile cost** (minimize — the deterministic transform-count proxy of
:func:`repro.tune.evaluate.compile_cost`).  A candidate is *dominated*
when another candidate is at least as good on every objective and
strictly better on one; the front is the set of non-dominated
candidates.  Wall-clock compile time is deliberately not an objective:
it varies run to run, and the tuner's contract is that the same seed and
budget reproduce the identical front.
"""

from __future__ import annotations

from typing import Sequence

#: Objective names in report order, with their optimization direction.
OBJECTIVES = (("ipc", "max"), ("code_growth", "min"),
              ("compile_cost", "min"))


def dominates(a: dict, b: dict) -> bool:
    """True when objective vector *a* Pareto-dominates *b*.

    Both are ``{"ipc", "code_growth", "compile_cost"}`` dicts; *a*
    dominates when it is no worse on every objective and strictly better
    on at least one.
    """
    no_worse = (a["ipc"] >= b["ipc"]
                and a["code_growth"] <= b["code_growth"]
                and a["compile_cost"] <= b["compile_cost"])
    strictly = (a["ipc"] > b["ipc"]
                or a["code_growth"] < b["code_growth"]
                or a["compile_cost"] < b["compile_cost"])
    return no_worse and strictly


def pareto_front(points: Sequence[dict]) -> list[int]:
    """Indices of the non-dominated *points*, in input order.

    Ties (identical vectors) all stay on the front — dropping one of two
    equal candidates would make the result depend on input order, which
    the determinism contract forbids.
    """
    front = []
    for i, p in enumerate(points):
        if not any(dominates(q, p) for j, q in enumerate(points) if j != i):
            front.append(i)
    return front
