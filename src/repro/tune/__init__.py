"""Closed-loop heuristic autotuning over the evaluation engine.

The paper fixes the Figure 6 decision algorithm's thresholds globally
(0.95/0.65 classification cut-offs, cost-model weights) because in 1998
every extra configuration evaluation was unaffordable.  This package
closes the loop the content-addressed engine, the serve fleet, and the
fastsim backend make cheap: a :class:`TuneSpec` declares a bounded
search space over :class:`~repro.core.heuristics.FeedbackHeuristics`
and :class:`~repro.sim.config.MachineConfig` vectors, and
:func:`run_tune` drives a successive-halving + mutation search whose
candidates are evaluated as *ordinary cached engine cells* — shared
with every ``tables``/``sweep`` run, deduplicated fleet-wide, and free
on resume.  Results are a Pareto front over IPC vs. code growth vs.
compile cost plus per-workload winning vectors (always at least as good
on IPC as the paper's defaults, which compete as candidate 0).

See docs/TUNE.md for the search loop, objectives, and resume semantics;
``python -m repro tune`` is the CLI entry point and
``Session.tune(spec)`` the API one.
"""

from .evaluate import compile_cost
from .pareto import OBJECTIVES, dominates, pareto_front
from .render import format_tune_result
from .search import TuneResult, default_value, run_tune, tune_result_key
from .spec import (
    CONFIG_PARAMS, DEFAULT_PARAM_NAMES, ParamSpec, TuneSpec, apply_params,
    known_bound,
)

__all__ = [
    "CONFIG_PARAMS", "DEFAULT_PARAM_NAMES", "OBJECTIVES", "ParamSpec",
    "TuneResult", "TuneSpec", "apply_params", "compile_cost",
    "default_value", "dominates", "format_tune_result", "known_bound",
    "pareto_front", "run_tune", "tune_result_key",
]
