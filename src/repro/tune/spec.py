"""Search-space declaration for the closed-loop heuristic tuner.

A :class:`TuneSpec` names the parameters to search (each one either a
:class:`~repro.core.heuristics.FeedbackHeuristics` knob — dotted
``classify.<field>`` names reach the nested
:class:`~repro.profilefb.classify.ClassifyConfig` — or a
``config.<field>`` machine parameter), the workloads to score candidates
on, and the search shape (budget, seed, fidelity rungs).  It is frozen,
canonicalizable (it participates in cache keys), and schema-versioned
through :mod:`repro.core.serde` like every other serialized result type.

:func:`apply_params` is the one translation from a flat candidate vector
``{name: value}`` to the ``(FeedbackHeuristics, config_overrides)`` pair
the engine's cells consume — the search driver, the CLI, and the docs
table all route through it, so a vector always means the same compile.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields, replace
from typing import Optional

from ..core import serde
from ..core.heuristics import (
    DEFAULT_HEURISTICS, TUNABLE_PARAMS, FeedbackHeuristics, ParamBound,
)
from ..sim.config import MachineConfig
from ..workloads import BENCHMARKS

#: Bounds of the machine-configuration axes the tuner may sweep
#: (``config.<field>`` names).  Mirrors the fetch-rate / queue-size axes
#: of the design-space sweeps in PAPERS.md; the predictor axis is fixed
#: by the scheme plan, exactly as in :class:`repro.engine.sweep.SweepSpec`.
CONFIG_PARAMS: dict[str, ParamBound] = {
    "config.fetch_width": ParamBound(2, 8, "int"),
    "config.dispatch_width": ParamBound(2, 8, "int"),
    "config.commit_width": ParamBound(2, 8, "int"),
    "config.int_queue_size": ParamBound(8, 64, "int"),
    "config.addr_queue_size": ParamBound(8, 64, "int"),
    "config.rob_size": ParamBound(16, 128, "int"),
    "config.num_alus": ParamBound(1, 4, "int"),
    "config.num_mem_units": ParamBound(1, 4, "int"),
    "config.bht_entries": ParamBound(64, 2048, "int"),
}

#: The default search space of ``repro tune`` when no ``--param`` is
#: given: the four knobs the paper fixes globally and names explicitly
#: (Figure 6 classification cut-offs plus the two cost-model weights).
DEFAULT_PARAM_NAMES = (
    "classify.likely_threshold",
    "classify.bias_threshold",
    "speculation_bias",
    "mispredict_penalty",
)


def known_bound(name: str) -> ParamBound:
    """The registered :class:`ParamBound` of *name* (raises on unknown).

    Heuristic knobs come from
    :data:`~repro.core.heuristics.TUNABLE_PARAMS`; ``config.*`` axes from
    :data:`CONFIG_PARAMS`.
    """
    if name in TUNABLE_PARAMS:
        return TUNABLE_PARAMS[name]
    if name in CONFIG_PARAMS:
        return CONFIG_PARAMS[name]
    known = sorted(TUNABLE_PARAMS) + sorted(CONFIG_PARAMS)
    raise ValueError(
        f"unknown tunable parameter {name!r} (known: {', '.join(known)})")


@dataclass(frozen=True)
class ParamSpec:
    """One search axis: a parameter name plus its (bounded) range.

    ``lo``/``hi``/``choices`` default to the registered bound of the
    parameter; a narrower explicit range is accepted, a wider one is
    rejected at validation time.
    """

    name: str
    lo: Optional[float] = None
    hi: Optional[float] = None
    choices: tuple = ()

    def bound(self) -> ParamBound:
        """The effective :class:`ParamBound` of this axis."""
        base = known_bound(self.name)
        if base.kind == "choice":
            return (replace(base, choices=tuple(self.choices))
                    if self.choices else base)
        return ParamBound(
            lo=base.lo if self.lo is None else self.lo,
            hi=base.hi if self.hi is None else self.hi,
            kind=base.kind)

    def validate(self) -> None:
        """Reject unknown names and ranges outside the registered bound."""
        base = known_bound(self.name)
        if base.kind == "choice":
            bad = [c for c in self.choices if c not in base.choices]
            if bad:
                raise ValueError(
                    f"param {self.name!r}: choices {bad!r} not in "
                    f"{base.choices!r}")
            return
        eff = self.bound()
        if eff.lo > eff.hi:
            raise ValueError(
                f"param {self.name!r}: empty range [{eff.lo}, {eff.hi}]")
        if eff.lo < base.lo or eff.hi > base.hi:
            raise ValueError(
                f"param {self.name!r}: range [{eff.lo}, {eff.hi}] exceeds "
                f"the registered bound [{base.lo}, {base.hi}]")

    def to_dict(self) -> dict:
        """Plain-dict form (no schema stamp; nested inside TuneSpec)."""
        return {"name": self.name, "lo": self.lo, "hi": self.hi,
                "choices": list(self.choices)}

    @classmethod
    def from_dict(cls, d: dict) -> "ParamSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(name=d["name"], lo=d["lo"], hi=d["hi"],
                   choices=tuple(d["choices"]))


@dataclass(frozen=True)
class TuneSpec:
    """A full closed-loop search description.

    ``budget`` caps the number of (candidate, fidelity-rung) evaluations
    the search performs; ``fidelities`` are the successive-halving rungs
    as fractions of ``scale`` (the last rung is always the full scale and
    produces the reported measurements); ``seed`` drives every random
    decision, so identical specs yield identical searches.
    """

    params: tuple[ParamSpec, ...]
    benchmarks: Optional[tuple[str, ...]] = None
    scale: float = 1.0
    budget: int = 32
    seed: int = 0
    fidelities: tuple[float, ...] = (0.25, 1.0)
    max_steps: int = 50_000_000
    #: survivor fraction per successive-halving rung
    keep: float = 0.5
    #: per-parameter mutation probability in the refinement stage
    mutation_rate: float = 0.5

    def validate(self) -> None:
        """Check every axis, workload name, and search-shape knob."""
        if not self.params:
            raise ValueError("TuneSpec.params is empty: nothing to search")
        seen: set[str] = set()
        for p in self.params:
            if p.name in seen:
                raise ValueError(f"duplicate search axis {p.name!r}")
            seen.add(p.name)
            p.validate()
        for b in self.benchmarks or ():
            if b not in BENCHMARKS:
                raise ValueError(
                    f"unknown benchmark {b!r} "
                    f"(known: {', '.join(sorted(BENCHMARKS))})")
        if self.budget < 2:
            raise ValueError("budget must be >= 2 (default + 1 candidate)")
        if not self.fidelities or sorted(self.fidelities) != \
                list(self.fidelities) or self.fidelities[-1] != 1.0:
            raise ValueError(
                "fidelities must be ascending and end at 1.0")
        if not 0.0 < self.keep < 1.0:
            raise ValueError("keep must be in (0, 1)")
        if not 0.0 < self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in (0, 1]")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")

    def to_dict(self) -> dict:
        """Schema-stamped JSON form (see :mod:`repro.core.serde`)."""
        return serde.stamp({
            "params": [p.to_dict() for p in self.params],
            "benchmarks": (list(self.benchmarks)
                           if self.benchmarks is not None else None),
            "scale": self.scale, "budget": self.budget, "seed": self.seed,
            "fidelities": list(self.fidelities),
            "max_steps": self.max_steps, "keep": self.keep,
            "mutation_rate": self.mutation_rate,
        })

    @classmethod
    def from_dict(cls, d: dict) -> "TuneSpec":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        serde.check(d, "TuneSpec")
        return cls(
            params=tuple(ParamSpec.from_dict(p) for p in d["params"]),
            benchmarks=(tuple(d["benchmarks"])
                        if d["benchmarks"] is not None else None),
            scale=d["scale"], budget=d["budget"], seed=d["seed"],
            fidelities=tuple(d["fidelities"]),
            max_steps=d["max_steps"], keep=d["keep"],
            mutation_rate=d["mutation_rate"])


_HEUR_FIELDS = {f.name for f in dc_fields(FeedbackHeuristics)}
_CLASSIFY_PREFIX = "classify."
_CONFIG_PREFIX = "config."


def apply_params(params: dict,
                 base: FeedbackHeuristics = DEFAULT_HEURISTICS,
                 ) -> tuple[FeedbackHeuristics, dict]:
    """Translate a flat candidate vector into engine-cell inputs.

    Returns ``(heur, config_overrides)``: dotted ``classify.*`` entries
    land in the nested :class:`ClassifyConfig`, ``config.*`` entries in
    the machine-override dict, everything else directly on the
    :class:`FeedbackHeuristics`.  Unknown names raise ``ValueError``
    (the spec validates earlier, but the CLI may hand vectors straight
    from JSON).
    """
    classify: dict = {}
    heur_fields: dict = {}
    config: dict = {}
    config_names = {f.name for f in dc_fields(MachineConfig)}
    classify_names = {f.name for f in dc_fields(type(base.classify))}
    for name, value in params.items():
        if name.startswith(_CLASSIFY_PREFIX):
            field = name[len(_CLASSIFY_PREFIX):]
            if field not in classify_names:
                raise ValueError(f"unknown ClassifyConfig field {field!r}")
            classify[field] = value
        elif name.startswith(_CONFIG_PREFIX):
            field = name[len(_CONFIG_PREFIX):]
            if field not in config_names:
                raise ValueError(f"unknown MachineConfig field {field!r}")
            config[field] = value
        elif name in _HEUR_FIELDS:
            heur_fields[name] = value
        else:
            raise ValueError(
                f"unknown FeedbackHeuristics field {name!r}")
    heur = base
    if classify:
        heur = replace(heur, classify=replace(heur.classify, **classify))
    if heur_fields:
        heur = replace(heur, **heur_fields)
    return heur, config
