"""Set-associative cache model (32-KB split I/D caches by default).

The paper charges a flat 6-cycle miss penalty (Table 2).  The model tracks
tags only — data correctness is the functional executor's job — and reports
hit/miss so the timing pipeline can add the penalty.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / self.accesses if self.accesses else 1.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        return {"accesses": self.accesses, "misses": self.misses}

    @classmethod
    def from_dict(cls, d: dict) -> "CacheStats":
        """Inverse of :meth:`to_dict`."""
        return cls(accesses=d["accesses"], misses=d["misses"])


class Cache:
    """Tag-only set-associative cache with LRU replacement."""

    def __init__(self, size: int = 32 * 1024, line: int = 32, assoc: int = 1,
                 name: str = "cache"):
        if size % (line * assoc):
            raise ValueError("size must be a multiple of line*assoc")
        self.name = name
        self.line = line
        self.assoc = assoc
        self.num_sets = size // (line * assoc)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line.bit_length() - 1
        if (1 << self._line_shift) != line:
            raise ValueError("line size must be a power of two")
        # Each set is a list of tags in LRU order (MRU last).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Access *addr*; returns True on hit.  Misses allocate."""
        self.stats.accesses += 1
        block = addr >> self._line_shift
        idx = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        ways = self._sets[idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()
