"""Sparse byte-addressable memory.

Chunked storage: memory is a dict of fixed-size bytearrays keyed by page
number, so large sparse address spaces (data segment at 0x10000000, stack
near the top of the 32-bit space) stay cheap while hot pages get dense
bytearray access.
"""

from __future__ import annotations

from typing import Iterable

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDR_MASK = 0xFFFF_FFFF


class AlignmentError(Exception):
    """Raised on unaligned word/halfword access (MIPS semantics)."""


class Memory:
    """32-bit byte-addressable little-endian memory."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[pno] = page
        return page

    # -- byte ------------------------------------------------------------------

    def read_byte(self, addr: int) -> int:
        addr &= ADDR_MASK
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    # -- halfword ---------------------------------------------------------------

    def read_half(self, addr: int) -> int:
        addr &= ADDR_MASK
        if addr & 1:
            raise AlignmentError(f"unaligned halfword read at 0x{addr:08x}")
        off = addr & PAGE_MASK
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[off] | (page[off + 1] << 8)

    def write_half(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        if addr & 1:
            raise AlignmentError(f"unaligned halfword write at 0x{addr:08x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF

    # -- word ----------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        addr &= ADDR_MASK
        if addr & 3:
            raise AlignmentError(f"unaligned word read at 0x{addr:08x}")
        off = addr & PAGE_MASK
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return int.from_bytes(page[off:off + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        if addr & 3:
            raise AlignmentError(f"unaligned word write at 0x{addr:08x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off:off + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")

    # -- bulk ----------------------------------------------------------------------

    def load_image(self, image: dict[int, int] | Iterable[tuple[int, int]]) -> None:
        """Load a {address: byte} image (e.g. a Program's data segment)."""
        items = image.items() if isinstance(image, dict) else image
        for addr, byte in items:
            self.write_byte(addr, byte)

    def read_bytes(self, addr: int, n: int) -> bytes:
        return bytes(self.read_byte(addr + i) for i in range(n))

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, b in enumerate(data):
            self.write_byte(addr + i, b)

    def read_cstring(self, addr: int, max_len: int = 1 << 16) -> bytes:
        out = bytearray()
        for i in range(max_len):
            b = self.read_byte(addr + i)
            if b == 0:
                break
            out.append(b)
        return bytes(out)

    def touched_pages(self) -> int:
        return len(self._pages)
