"""R10000-like machine: functional executor + cycle-level timing model."""

from .config import Latencies, MachineConfig, R10K, r10k_config
from .memory import AlignmentError, Memory
from .functional import (
    ExecStats, ExecutionLimitExceeded, FunctionalSim, SimulationDiverged,
    SimulationError, StepBudgetExceeded, TraceEntry, UnmodeledOpcode,
    final_state, run_program, to_signed, to_unsigned,
)
from .branch_pred import (
    BranchPredictor, PerfectPredictor, PredictorStats, StaticTakenPredictor,
    TwoBitPredictor, TwoLevelPredictor, make_predictor,
)
from .cache import Cache, CacheStats
from .stats import SimStats
from .pipeline import TimingSim, simulate

__all__ = [
    "Latencies", "MachineConfig", "R10K", "r10k_config",
    "AlignmentError", "Memory",
    "ExecStats", "ExecutionLimitExceeded", "FunctionalSim",
    "SimulationDiverged", "SimulationError", "StepBudgetExceeded",
    "TraceEntry", "UnmodeledOpcode", "final_state", "run_program",
    "to_signed", "to_unsigned",
    "BranchPredictor", "PerfectPredictor", "PredictorStats",
    "StaticTakenPredictor", "TwoBitPredictor", "TwoLevelPredictor",
    "make_predictor",
    "Cache", "CacheStats",
    "SimStats",
    "TimingSim", "simulate",
]
