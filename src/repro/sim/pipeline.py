"""Trace-driven out-of-order timing model of the R10000-like machine.

The committed dynamic instruction stream from
:class:`~repro.sim.functional.FunctionalSim` is replayed through a cycle
model with:

* in-order fetch/dispatch (4-wide) into per-class reservation queues
  (integer, address, FP, branch) and a 32-entry active list (ROB);
* register renaming limits (64 physical / 32 architectural per file);
* out-of-order issue, oldest-first per queue, constrained by functional
  units (2 ALUs, 1 shifter, 1 ld/st, 1 branch, FP add/mul/div);
* in-order commit (4-wide);
* branch prediction consulted at dispatch; a mispredicted branch blocks
  further dispatch until it resolves, plus a recovery cycle — the classic
  trace-driven approximation (wrong-path work becomes fetch bubbles);
* register-target jumps (``jr``/``jalr``) stall fetch until resolution
  except under perfect prediction (paper Section 6: "additional stalls in
  the pipeline whenever a non-absolute branch instruction is encountered");
* split 32-KB I/D caches with a flat 6-cycle miss penalty.

Known simplifications (documented in DESIGN.md): wrong-path instructions do
not occupy queues; memory disambiguation is perfect (loads never wait on
stores).  Both effects are second-order for the occupancy/IPC comparisons
the paper reports.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Unit
from ..isa.program import Program
from .branch_pred import make_predictor
from .cache import Cache
from .config import MachineConfig, R10K
from .functional import FunctionalSim, TraceEntry, UnmodeledOpcode
from .stats import SimStats

#: ``Unit.NONE`` opcodes the cycle model explicitly handles.  Anything else
#: with no functional-unit class reaching dispatch is an unmodeled opcode —
#: it must be rejected, not silently issued as a 1-cycle ALU op.
_MODELED_NONE_OPS = frozenset(("nop", "halt", "fence"))

#: Map opcode unit class -> reservation queue name.
_QUEUE_OF_UNIT = {
    Unit.ALU: "alu",
    Unit.SHIFT: "alu",     # shifter is fed from the integer queue
    Unit.MEM: "ldst",      # address queue
    Unit.BRANCH: "br",
    Unit.FPADD: "fp",
    Unit.FPMUL: "fp",
    Unit.FPDIV: "fp",
    Unit.NONE: "alu",
}

_UNIT_NAME = {
    Unit.ALU: "alu",
    Unit.SHIFT: "sft",
    Unit.MEM: "ldst",
    Unit.BRANCH: "br",
    Unit.FPADD: "fpadd",
    Unit.FPMUL: "fpmul",
    Unit.FPDIV: "fpdiv",
}


class _Entry:
    """One in-flight instruction (ROB slot + reservation-queue slot)."""

    __slots__ = ("ins", "index", "queue", "unit", "deps", "complete",
                 "issued", "annulled", "addr", "rename_class", "phantom")

    def __init__(self, ins: Instruction, index: int, queue: str, unit: str,
                 annulled: bool, addr: Optional[int], phantom: bool = False):
        self.ins = ins
        self.index = index
        self.queue = queue
        self.unit = unit
        self.deps: list[_Entry] = []
        self.complete: Optional[int] = None
        self.issued = False
        self.annulled = annulled
        self.addr = addr
        self.rename_class: Optional[str] = None
        self.phantom = phantom

    def ready(self, cycle: int) -> bool:
        for d in self.deps:
            if d.complete is None or d.complete > cycle:
                return False
        return True


class TimingSim:
    """Cycle-level replay of a dynamic trace.

    With ``model_wrong_path=True`` (and a ``program`` supplied, as
    :meth:`run_program` does), the front end keeps fetching down the
    mispredicted path while a misprediction resolves: those *phantom*
    instructions occupy reservation-queue and active-list slots, issue to
    functional units, and are squashed when the branch resolves — they
    never commit and never touch the register dependence state of the
    correct path.  Default off: the paper's occupancy numbers suggest its
    simulator drained the front end on a misprediction, and the baseline
    Tables 3/4 reproduce better without it; `bench_ablations` quantifies
    the difference.
    """

    def __init__(self, config: MachineConfig = R10K,
                 program: Optional[Program] = None,
                 model_wrong_path: bool = False,
                 observer=None):
        self.cfg = config
        self.program = program
        self.model_wrong_path = model_wrong_path
        #: optional :class:`repro.obs.pipeline_obs.PipelineObserver`; when
        #: set, :meth:`run` lets it rebind the per-cycle stages and wrap
        #: the trace — with the default None, the cycle loop is untouched
        self.observer = observer
        self._wrong_path_feed: list[Instruction] = []
        self._squashed = 0
        self.stats = SimStats()
        self.predictor = make_predictor(
            config.predictor, config.bht_entries, config.btb_entries)
        self.stats.predictor = self.predictor.stats
        self.icache = Cache(config.icache_size, config.cache_line,
                            config.cache_assoc, "icache")
        self.dcache = Cache(config.dcache_size, config.cache_line,
                            config.cache_assoc, "dcache")
        self.stats.icache = self.icache.stats
        self.stats.dcache = self.dcache.stats

        self._queues: dict[str, list[_Entry]] = {
            "alu": [], "ldst": [], "fp": [], "br": []}
        self._qcap = {
            "alu": config.int_queue_size,
            "ldst": config.addr_queue_size,
            "fp": config.fp_queue_size,
            "br": config.branch_buffer_size,
        }
        self._units = {
            "alu": config.num_alus,
            "sft": config.num_shifters,
            "ldst": config.num_mem_units,
            "br": config.num_branch_units,
            "fpadd": config.num_fpadd,
            "fpmul": config.num_fpmul,
            "fpdiv": config.num_fpdiv,
        }
        self._fpdiv_busy_until = 0
        self._rob: list[_Entry] = []
        self._reg_producer: dict[str, _Entry] = {}
        self._free_int = config.phys_int_regs - config.arch_int_regs
        self._free_fp = config.phys_fp_regs - config.arch_fp_regs
        self._redirect: Optional[_Entry] = None   # unresolved mispredict/jr
        self._fence: Optional[_Entry] = None      # unresolved fence barrier
        self._fetch_resume_at = 0                  # icache-stall gate
        self._current_fetch_line = -1
        for q in self._queues:
            self.stats.queue_full_cycles[q] = 0
        for u in self._units:
            self.stats.unit_full_cycles[u] = 0
            self.stats.unit_issues[u] = 0

    # -- public API -------------------------------------------------------------

    def run(self, trace: Iterable[TraceEntry]) -> SimStats:
        """Replay *trace* to completion and return statistics."""
        obs = self.observer
        if obs is not None:
            trace = obs.attach(self, trace)
        it = iter(trace)
        pending: Optional[TraceEntry] = next(it, None)
        cycle = 0
        cfg = self.cfg
        while pending is not None or self._rob:
            # 1. Commit (in order, oldest first).
            ncommit = 0
            while (self._rob and ncommit < cfg.commit_width
                   and not self._rob[0].phantom
                   and self._rob[0].complete is not None
                   and self._rob[0].complete <= cycle):
                e = self._rob.pop(0)
                ncommit += 1
                if e.annulled:
                    self.stats.annulled += 1
                else:
                    self.stats.committed += 1
                if e.rename_class == "int":
                    self._free_int += 1
                elif e.rename_class == "fp":
                    self._free_fp += 1
                if self._reg_producer.get(e.ins.dest) is e:
                    del self._reg_producer[e.ins.dest]

            # 2. Issue (oldest-first per queue, limited by units).
            self._issue(cycle)

            # 3. Dispatch (in-order, up to width, resource/stall gated).
            pending = self._dispatch(cycle, pending, it)

            # 4. Occupancy accounting.
            for name, q in self._queues.items():
                if len(q) >= self._qcap[name]:
                    self.stats.queue_full_cycles[name] += 1
            cycle += 1
            if cycle > 10_000_000_000:  # pragma: no cover
                raise RuntimeError("timing simulation did not converge")

        self.stats.cycles = cycle
        self.stats.dispatched = self.stats.committed + self.stats.annulled
        if obs is not None:
            obs.finalize(self.stats)
        return self.stats

    def run_program(self, prog: Program,
                    max_steps: int = 20_000_000) -> SimStats:
        """Functional-execute *prog* and replay its trace."""
        self.program = prog
        fsim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
        return self.run(fsim.trace())

    # -- wrong-path modeling ----------------------------------------------------

    def _wrong_path_instructions(self, branch_index: int,
                                 actually_taken: bool,
                                 limit: int = 64) -> list[Instruction]:
        """Static walk down the NOT-executed path of a mispredicted branch
        (fall-through if it was taken, the target if it was not), following
        unconditional jumps, stopping at indirect/halt or *limit* ops."""
        prog = self.program
        if prog is None:
            return []
        ins = prog.instructions[branch_index]
        if actually_taken:
            pc = branch_index + 1
        else:
            if ins.target is None:
                return []
            pc = prog.target_index(ins.target)
        out: list[Instruction] = []
        n = len(prog.instructions)
        while len(out) < limit and 0 <= pc < n:
            cur = prog.instructions[pc]
            out.append(cur)
            if cur.is_halt or cur.op in ("jr", "jalr"):
                break
            if cur.is_jump and cur.target is not None and not cur.info.is_call:
                pc = prog.target_index(cur.target)
            elif cur.is_branch:
                pc = pc + 1  # wrong-path branches predicted not-taken
            else:
                pc = pc + 1
        return out

    def _squash_phantoms(self) -> None:
        """Remove every phantom entry from the ROB and the queues."""
        squashed = [e for e in self._rob if e.phantom]
        if not squashed:
            self._wrong_path_feed = []
            return
        self._rob = [e for e in self._rob if not e.phantom]
        for qname in self._queues:
            self._queues[qname] = [e for e in self._queues[qname]
                                   if not e.phantom]
        for e in squashed:
            if e.rename_class == "int":
                self._free_int += 1
            elif e.rename_class == "fp":
                self._free_fp += 1
        self._squashed += len(squashed)
        self.stats.wrong_path_squashed = self._squashed
        self._wrong_path_feed = []

    # -- issue ---------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        lat = self.cfg.latencies
        issued_per_unit: dict[str, int] = {u: 0 for u in self._units}
        for qname, queue in self._queues.items():
            if not queue:
                continue
            remaining: list[_Entry] = []
            for e in queue:
                if e.issued:
                    continue
                unit = e.unit
                cap = self._units[unit]
                if issued_per_unit[unit] >= cap:
                    remaining.append(e)
                    continue
                if unit == "fpdiv" and cycle < self._fpdiv_busy_until:
                    remaining.append(e)
                    continue
                if not e.ready(cycle):
                    remaining.append(e)
                    continue
                # Issue.
                issued_per_unit[unit] += 1
                self.stats.unit_issues[unit] += 1
                latency = lat.of_class(e.ins.info.latency_class)
                if e.annulled:
                    latency = 1  # annulled ops retire without executing
                elif e.ins.is_mem and e.addr is not None:
                    if not self.dcache.access(e.addr):
                        latency += lat.cache_miss_penalty
                if unit == "fpdiv":
                    self._fpdiv_busy_until = cycle + latency
                e.complete = cycle + latency
                e.issued = True
            self._queues[qname] = remaining
        for unit, n in issued_per_unit.items():
            if n >= self._units[unit] and n > 0:
                self.stats.unit_full_cycles[unit] += 1

    # -- dispatch -------------------------------------------------------------------

    def _dispatch(self, cycle: int, pending: Optional[TraceEntry],
                  it: Iterator[TraceEntry]) -> Optional[TraceEntry]:
        cfg = self.cfg

        # Fetch blocked behind an unresolved mispredicted branch / jr?
        if self._redirect is not None:
            r = self._redirect
            if r.complete is None or cycle < r.complete + cfg.misprediction_recovery:
                self.stats.fetch_stall_cycles += 1
                if self.model_wrong_path and self._wrong_path_feed:
                    self._dispatch_phantoms(cycle)
                return pending
            self._redirect = None
            self._squash_phantoms()
            self._current_fetch_line = -1  # refetch from the new path

        # Fetch blocked draining behind a fence?  The barrier completes only
        # once every older instruction has (its deps snapshot the in-flight
        # window), then dispatch waits out the configured drain penalty.
        if self._fence is not None:
            f = self._fence
            if f.complete is None or cycle < f.complete + cfg.fence_stall:
                self.stats.fence_stall_cycles += 1
                self.stats.fetch_stall_cycles += 1
                return pending
            self._fence = None

        if cycle < self._fetch_resume_at:
            self.stats.icache_stall_cycles += 1
            self.stats.fetch_stall_cycles += 1
            return pending

        line_shift = self.icache._line_shift
        for _ in range(cfg.dispatch_width):
            if pending is None:
                break
            ins = pending.ins
            # Instruction-cache access per fetched line (PC = 4 * index).
            line = (pending.index * 4) >> line_shift
            if line != self._current_fetch_line:
                self._current_fetch_line = line
                if not self.icache.access(pending.index * 4):
                    self._fetch_resume_at = cycle + self.cfg.latencies.cache_miss_penalty
                    break

            if ins.info.unit == Unit.NONE and ins.op not in _MODELED_NONE_OPS:
                raise UnmodeledOpcode(
                    f"opcode {ins.op!r} reached the timing simulator but "
                    f"has no modeled functional unit", pc=pending.index)

            # Structural resources.
            if len(self._rob) >= cfg.rob_size:
                break
            queue = _QUEUE_OF_UNIT[ins.info.unit]
            if len(self._queues[queue]) >= self._qcap[queue]:
                break
            rename_class = None
            if ins.dest is not None and ins.dest != "r0":
                if ins.dest[0] == "r":
                    if self._free_int <= 0:
                        break
                    rename_class = "int"
                elif ins.dest[0] == "f":
                    if self._free_fp <= 0:
                        break
                    rename_class = "fp"

            # Allocate.
            unit = _UNIT_NAME[ins.info.unit] if ins.info.unit != Unit.NONE else "alu"
            e = _Entry(ins, pending.index, queue, unit,
                       pending.annulled, pending.addr)
            e.rename_class = rename_class
            if rename_class == "int":
                self._free_int -= 1
            elif rename_class == "fp":
                self._free_fp -= 1
            for r in ins.uses():
                p = self._reg_producer.get(r)
                if p is not None and (p.complete is None or p.complete > cycle):
                    e.deps.append(p)
            if ins.info.is_fence and not pending.annulled:
                # The barrier waits on every older in-flight instruction.
                for x in self._rob:
                    if not x.phantom and (x.complete is None
                                          or x.complete > cycle):
                        e.deps.append(x)
            if not pending.annulled:
                for r in ins.defs():
                    self._reg_producer[r] = e
            self._queues[queue].append(e)
            self._rob.append(e)

            # Control-flow effects on fetch.
            stall = False
            if ins.info.is_fence and not pending.annulled:
                self.stats.fence_events += 1
                self._fence = e
                stall = True
            elif ins.is_branch and not pending.annulled:
                taken = bool(pending.taken)
                target = None
                if taken and ins.target is not None:
                    target = pending.index  # identity only; predictor keys on pc
                ok = self.predictor.access(pending.index, ins, taken,
                                           target=pending.index)
                if not ok:
                    self.stats.mispredict_events += 1
                    self._redirect = e
                    stall = True
                    if self.model_wrong_path:
                        self._wrong_path_feed = \
                            self._wrong_path_instructions(pending.index, taken)
            elif ins.op in ("jr", "jalr"):
                if not self.predictor.indirect_resolves_in_fetch():
                    self.stats.indirect_stall_events += 1
                    self.predictor.stats.indirect_stalls += 1
                    self._redirect = e
                    stall = True

            pending = next(it, None)
            if stall:
                break
        return pending


    def _dispatch_phantoms(self, cycle: int) -> None:
        """Dispatch wrong-path instructions while a misprediction resolves.

        Phantoms consume ROB/queue/rename resources and read the correct
        path's register dependences, but never produce values visible to
        it and never commit."""
        cfg = self.cfg
        for _ in range(cfg.dispatch_width):
            if not self._wrong_path_feed:
                return
            ins = self._wrong_path_feed[0]
            if len(self._rob) >= cfg.rob_size:
                return
            queue = _QUEUE_OF_UNIT[ins.info.unit]
            if len(self._queues[queue]) >= self._qcap[queue]:
                return
            rename_class = None
            if ins.dest is not None and ins.dest != "r0":
                if ins.dest[0] == "r":
                    if self._free_int <= 0:
                        return
                    rename_class = "int"
                elif ins.dest[0] == "f":
                    if self._free_fp <= 0:
                        return
                    rename_class = "fp"
            self._wrong_path_feed.pop(0)
            unit = _UNIT_NAME[ins.info.unit] if ins.info.unit != Unit.NONE \
                else "alu"
            e = _Entry(ins, -1, queue, unit, annulled=False, addr=None,
                       phantom=True)
            e.rename_class = rename_class
            if rename_class == "int":
                self._free_int -= 1
            elif rename_class == "fp":
                self._free_fp -= 1
            for r in ins.uses():
                p = self._reg_producer.get(r)
                if p is not None and (p.complete is None or p.complete > cycle):
                    e.deps.append(p)
            self._queues[queue].append(e)
            self._rob.append(e)


def simulate(prog: Program, config: MachineConfig = R10K,
             max_steps: int = 20_000_000) -> SimStats:
    """One-call timing simulation of a program."""
    return TimingSim(config).run_program(prog, max_steps=max_steps)
