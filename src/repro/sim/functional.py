"""Functional (ISA-level) executor.

Runs a :class:`~repro.isa.program.Program` to completion, producing:

* the committed dynamic instruction trace (consumed by the trace-driven
  timing model in :mod:`repro.sim.pipeline`);
* per-branch outcome bit vectors (consumed by :mod:`repro.profilefb` — the
  paper's Section 5 instrumentation: "The previous branch outcomes are
  recorded using bit vectors");
* dynamic execution statistics (Table 1 columns).

Semantics notes
---------------
* Integer registers hold 32-bit two's-complement values (stored unsigned).
* ``r0`` reads as zero; writes to it are discarded.
* Code addresses are instruction indices; ``jal`` stores the return index.
* Guarded instructions whose predicate is false are *annulled*: they appear
  in the trace (they occupy machine resources) but have no effect, and the
  paper's IPC excludes them (Table 4, note 7).
* Division by zero yields 0 (and is counted), rather than trapping — the
  paper assumes "no inputs would cause any undesirable traps".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, Optional

# repro.core.serde is imported lazily inside to_dict/from_dict: importing
# the core package at module level would close an import cycle
# (core -> sched -> transform -> profilefb -> sim).
from ..isa.instruction import Instruction
from ..isa.program import Program
from .memory import Memory

MASK32 = 0xFFFF_FFFF

#: Flat scalar fields shared by :meth:`ExecStats.to_dict`/``from_dict``.
_EXEC_FIELDS = (
    "steps", "annulled", "branches", "taken_branches", "jumps", "loads",
    "stores", "div_by_zero", "fences", "halted",
)


def to_signed(v: int) -> int:
    """Interpret a 32-bit value as signed."""
    v &= MASK32
    return v - (1 << 32) if v & 0x8000_0000 else v


def to_unsigned(v: int) -> int:
    """Truncate a value to its unsigned 32-bit representation."""
    return v & MASK32


class TraceEntry:
    """One committed (or annulled) dynamic instruction."""

    __slots__ = ("ins", "index", "taken", "annulled", "addr")

    def __init__(self, ins: Instruction, index: int,
                 taken: Optional[bool] = None, annulled: bool = False,
                 addr: Optional[int] = None):
        self.ins = ins
        self.index = index
        self.taken = taken
        self.annulled = annulled
        self.addr = addr

    def __repr__(self) -> str:
        extra = ""
        if self.taken is not None:
            extra = f" taken={self.taken}"
        if self.annulled:
            extra += " annulled"
        return f"<T@{self.index} {self.ins.op}{extra}>"


@dataclass
class ExecStats:
    """Aggregate results of a functional run."""

    steps: int = 0                     # dynamic instructions incl. annulled
    annulled: int = 0
    branches: int = 0                  # conditional branches executed
    taken_branches: int = 0
    jumps: int = 0
    loads: int = 0
    stores: int = 0
    div_by_zero: int = 0
    fences: int = 0                    # architectural no-ops, counted
    halted: bool = False
    #: per-branch outcome bit vectors, keyed by the branch Instruction uid
    branch_outcomes: dict[int, list[bool]] = field(default_factory=dict)
    #: static index (PC) of each traced branch uid
    branch_pc: dict[int, int] = field(default_factory=dict)

    @property
    def dynamic_instructions(self) -> int:
        return self.steps

    @property
    def branch_ratio(self) -> float:
        """Paper Table 1: branches / total dynamic instruction stream."""
        return self.branches / self.steps if self.steps else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form: exact round-trip via :meth:`from_dict`.

        Branch outcome vectors are keyed by instruction uid; JSON object
        keys must be strings, so uids are stringified on the way out and
        restored on the way back in.
        """
        from ..core import serde
        d = serde.dump_fields(self, _EXEC_FIELDS)
        d.update(
            branch_outcomes={str(uid): [bool(b) for b in bits]
                             for uid, bits in self.branch_outcomes.items()},
            branch_pc={str(uid): pc
                       for uid, pc in self.branch_pc.items()},
        )
        return serde.stamp(d)

    @classmethod
    def from_dict(cls, d: dict) -> "ExecStats":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        from ..core import serde
        serde.check(d, "ExecStats")
        return cls(
            branch_outcomes={int(uid): [bool(b) for b in bits]
                             for uid, bits in d["branch_outcomes"].items()},
            branch_pc={int(uid): pc for uid, pc in d["branch_pc"].items()},
            **serde.load_fields(d, _EXEC_FIELDS),
        )


class SimulationError(RuntimeError):
    """Base class for classified functional-simulation failures.

    Carries the program counter and step count at the point of failure so
    the sandbox and differential checker (:mod:`repro.robust`) can report
    *where* a transformed program went wrong, not just that it did.
    """

    def __init__(self, message: str, pc: int = -1, steps: int = 0):
        super().__init__(message)
        self.pc = pc
        self.steps = steps


class ExecutionLimitExceeded(SimulationError):
    """The program did not halt within ``max_steps``."""


class StepBudgetExceeded(ExecutionLimitExceeded):
    """The step-budget watchdog fired: the program ran too long.

    Subclasses :class:`ExecutionLimitExceeded` so existing callers keep
    working; new code should catch this (or :class:`SimulationError`).
    """


class SimulationDiverged(SimulationError):
    """Control flow escaped the program (PC left ``[0, len)``).

    Typically the result of a corrupted branch/jump target or a ``jr``
    through a register holding a non-code value.
    """


class UnmodeledOpcode(SimulationError):
    """An opcode with no interpreter case reached the simulator.

    Raised instead of silently mis-executing: an instruction that the
    opcode table admits but the interpreter does not model would otherwise
    fall through as a no-op and corrupt the differential baseline.  The
    fault taxonomy tracks this class as ``unknown-opcode``
    (:data:`repro.robust.faults.PROGRAM_FAULTS`).
    """


class FunctionalSim:
    """Interpreter for the MIPS-like ISA.

    Use :meth:`run` for statistics only, or :meth:`trace` to stream
    :class:`TraceEntry` objects (statistics accumulate as a side effect and
    are available afterwards in :attr:`stats`).
    """

    def __init__(self, prog: Program, max_steps: int = 20_000_000,
                 record_outcomes: bool = True):
        prog.validate()
        self.prog = prog
        self.max_steps = max_steps
        self.record_outcomes = record_outcomes
        self.mem = Memory()
        self.mem.load_image(prog.data_image)
        # Re-resolve data words holding code addresses (jump tables) against
        # the program's CURRENT label positions — transforms re-linearize.
        for addr, label in prog.code_refs.items():
            self.mem.write_word(addr, prog.target_index(label))
        self.regs: dict[str, int] = {f"r{i}": 0 for i in range(32)}
        self.fregs: dict[str, float] = {f"f{i}": 0.0 for i in range(32)}
        self.ccregs: dict[str, bool] = {f"cc{i}": False for i in range(8)}
        # Stack pointer near top of address space, word aligned.
        self.regs["r29"] = 0x7FFF_FF00
        self.pc = 0
        self.stats = ExecStats()
        #: dynamic execution count per static instruction index
        self.index_counts: list[int] = [0] * len(prog.instructions)
        self._targets = {i: prog.target_index(ins.target)
                         for i, ins in enumerate(prog.instructions)
                         if ins.target is not None}

    # -- public API -----------------------------------------------------------

    def run(self) -> ExecStats:
        """Execute until halt; returns statistics."""
        for _ in self.trace():
            pass
        return self.stats

    def trace(self) -> Iterator[TraceEntry]:
        """Yield one TraceEntry per dynamic instruction until halt."""
        prog = self.prog.instructions
        n = len(prog)
        stats = self.stats
        while True:
            if stats.steps >= self.max_steps:
                raise StepBudgetExceeded(
                    f"exceeded {self.max_steps} steps at pc={self.pc}",
                    pc=self.pc, steps=stats.steps)
            if not 0 <= self.pc < n:
                raise SimulationDiverged(
                    f"pc out of range: {self.pc} (program has {n} "
                    f"instructions, {stats.steps} steps executed)",
                    pc=self.pc, steps=stats.steps)
            ins = prog[self.pc]
            self.index_counts[self.pc] += 1
            entry = self._execute(ins)
            stats.steps += 1
            yield entry
            if ins.is_halt:
                stats.halted = True
                return

    # -- register access helpers ------------------------------------------------

    def read(self, reg: str) -> int:
        if reg[0] == "r":
            return self.regs[reg]
        if reg[0] == "f":
            raise TypeError(f"integer read of fp register {reg}")
        return int(self.ccregs[reg])

    def write(self, reg: str, value: int) -> None:
        if reg == "r0":
            return
        self.regs[reg] = value & MASK32

    # -- the interpreter ---------------------------------------------------------

    def _execute(self, ins: Instruction) -> TraceEntry:
        pc = self.pc
        stats = self.stats

        # Guard check: annulled instructions fall through with no effect.
        if ins.guard is not None:
            if self.ccregs[ins.guard.reg] != ins.guard.sense:
                stats.annulled += 1
                self.pc = pc + 1
                return TraceEntry(ins, pc, annulled=True)

        op = ins.op
        regs = self.regs
        taken: Optional[bool] = None
        addr: Optional[int] = None
        next_pc = pc + 1

        if op == "add":
            self.write(ins.dest, regs[ins.srcs[0]] + regs[ins.srcs[1]])
        elif op == "addi":
            self.write(ins.dest, regs[ins.srcs[0]] + ins.imm)
        elif op == "sub":
            self.write(ins.dest, regs[ins.srcs[0]] - regs[ins.srcs[1]])
        elif op == "subi":
            self.write(ins.dest, regs[ins.srcs[0]] - ins.imm)
        elif op == "mul":
            self.write(ins.dest,
                       to_signed(regs[ins.srcs[0]]) * to_signed(regs[ins.srcs[1]]))
        elif op == "muli":
            self.write(ins.dest, to_signed(regs[ins.srcs[0]]) * ins.imm)
        elif op == "div":
            a, b = to_signed(regs[ins.srcs[0]]), to_signed(regs[ins.srcs[1]])
            if b == 0:
                stats.div_by_zero += 1
                self.write(ins.dest, 0)
            else:
                self.write(ins.dest, int(a / b))  # truncate toward zero
        elif op == "rem":
            a, b = to_signed(regs[ins.srcs[0]]), to_signed(regs[ins.srcs[1]])
            if b == 0:
                stats.div_by_zero += 1
                self.write(ins.dest, 0)
            else:
                self.write(ins.dest, a - int(a / b) * b)
        elif op == "and":
            self.write(ins.dest, regs[ins.srcs[0]] & regs[ins.srcs[1]])
        elif op == "andi":
            self.write(ins.dest, regs[ins.srcs[0]] & (ins.imm & MASK32))
        elif op == "or":
            self.write(ins.dest, regs[ins.srcs[0]] | regs[ins.srcs[1]])
        elif op == "ori":
            self.write(ins.dest, regs[ins.srcs[0]] | (ins.imm & MASK32))
        elif op == "xor":
            self.write(ins.dest, regs[ins.srcs[0]] ^ regs[ins.srcs[1]])
        elif op == "xori":
            self.write(ins.dest, regs[ins.srcs[0]] ^ (ins.imm & MASK32))
        elif op == "nor":
            self.write(ins.dest, ~(regs[ins.srcs[0]] | regs[ins.srcs[1]]))
        elif op == "not":
            self.write(ins.dest, ~regs[ins.srcs[0]])
        elif op == "neg":
            self.write(ins.dest, -regs[ins.srcs[0]])
        elif op == "mov":
            self.write(ins.dest, regs[ins.srcs[0]])
        elif op == "li":
            self.write(ins.dest, ins.imm)
        elif op == "lui":
            self.write(ins.dest, ins.imm << 16)
        elif op in ("slt", "slti", "sltu", "seq", "sne", "sge", "sgt", "sle"):
            a = regs[ins.srcs[0]]
            b = ins.imm if op == "slti" else regs[ins.srcs[1]]
            if op in ("slt", "slti"):
                res = to_signed(a) < (b if op == "slti" else to_signed(b))
            elif op == "sltu":
                res = to_unsigned(a) < to_unsigned(b)
            elif op == "seq":
                res = a == b
            elif op == "sne":
                res = a != b
            elif op == "sge":
                res = to_signed(a) >= to_signed(b)
            elif op == "sgt":
                res = to_signed(a) > to_signed(b)
            else:  # sle
                res = to_signed(a) <= to_signed(b)
            self.write(ins.dest, int(res))
        elif op == "sll":
            self.write(ins.dest, regs[ins.srcs[0]] << (ins.imm & 31))
        elif op == "srl":
            self.write(ins.dest, (regs[ins.srcs[0]] & MASK32) >> (ins.imm & 31))
        elif op == "sra":
            self.write(ins.dest, to_signed(regs[ins.srcs[0]]) >> (ins.imm & 31))
        elif op == "sllv":
            self.write(ins.dest, regs[ins.srcs[0]] << (regs[ins.srcs[1]] & 31))
        elif op == "srlv":
            self.write(ins.dest,
                       (regs[ins.srcs[0]] & MASK32) >> (regs[ins.srcs[1]] & 31))
        elif op == "srav":
            self.write(ins.dest,
                       to_signed(regs[ins.srcs[0]]) >> (regs[ins.srcs[1]] & 31))

        # -- memory -------------------------------------------------------------
        elif op == "lw":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            self.write(ins.dest, self.mem.read_word(addr))
            stats.loads += 1
        elif op == "lb":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            v = self.mem.read_byte(addr)
            self.write(ins.dest, v - 256 if v & 0x80 else v)
            stats.loads += 1
        elif op == "lbu":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            self.write(ins.dest, self.mem.read_byte(addr))
            stats.loads += 1
        elif op == "lh":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            v = self.mem.read_half(addr)
            self.write(ins.dest, v - 65536 if v & 0x8000 else v)
            stats.loads += 1
        elif op == "lhu":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            self.write(ins.dest, self.mem.read_half(addr))
            stats.loads += 1
        elif op == "sw":
            addr = (regs[ins.srcs[1]] + ins.imm) & MASK32
            self.mem.write_word(addr, regs[ins.srcs[0]])
            stats.stores += 1
        elif op == "sb":
            addr = (regs[ins.srcs[1]] + ins.imm) & MASK32
            self.mem.write_byte(addr, regs[ins.srcs[0]])
            stats.stores += 1
        elif op == "sh":
            addr = (regs[ins.srcs[1]] + ins.imm) & MASK32
            self.mem.write_half(addr, regs[ins.srcs[0]])
            stats.stores += 1

        # -- conditional branches --------------------------------------------------
        elif ins.is_branch:
            taken = self._branch_taken(ins)
            stats.branches += 1
            if taken:
                stats.taken_branches += 1
                next_pc = self._targets[pc]
            if self.record_outcomes:
                rec = stats.branch_outcomes.get(ins.uid)
                if rec is None:
                    rec = stats.branch_outcomes[ins.uid] = []
                    stats.branch_pc[ins.uid] = pc
                rec.append(taken)

        # -- jumps ---------------------------------------------------------------------
        elif op == "j":
            next_pc = self._targets[pc]
            stats.jumps += 1
        elif op == "jal":
            self.write("r31", pc + 1)
            next_pc = self._targets[pc]
            stats.jumps += 1
        elif op == "jr":
            next_pc = regs[ins.srcs[0]]
            stats.jumps += 1
        elif op == "jalr":
            t = regs[ins.srcs[0]]
            self.write(ins.dest, pc + 1)
            next_pc = t
            stats.jumps += 1

        # -- condition codes -----------------------------------------------------------
        elif op in ("cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge"):
            a, b = regs[ins.srcs[0]], regs[ins.srcs[1]]
            sa, sb = to_signed(a), to_signed(b)
            self.ccregs[ins.dest] = {
                "cmpeq": a == b, "cmpne": a != b, "cmplt": sa < sb,
                "cmple": sa <= sb, "cmpgt": sa > sb, "cmpge": sa >= sb,
            }[op]
        elif op == "cmpi":
            self.ccregs[ins.dest] = to_signed(regs[ins.srcs[0]]) < ins.imm
        elif op == "cand":
            self.ccregs[ins.dest] = self.ccregs[ins.srcs[0]] and self.ccregs[ins.srcs[1]]
        elif op == "cor":
            self.ccregs[ins.dest] = self.ccregs[ins.srcs[0]] or self.ccregs[ins.srcs[1]]
        elif op == "cxor":
            self.ccregs[ins.dest] = self.ccregs[ins.srcs[0]] != self.ccregs[ins.srcs[1]]
        elif op == "cnot":
            self.ccregs[ins.dest] = not self.ccregs[ins.srcs[0]]
        elif op == "cmov":
            self.ccregs[ins.dest] = self.ccregs[ins.srcs[0]]

        # -- conditional moves --------------------------------------------------------------
        elif op == "cmovt":
            if self.ccregs[ins.srcs[1]]:
                self.write(ins.dest, regs[ins.srcs[0]])
        elif op == "cmovf":
            if not self.ccregs[ins.srcs[1]]:
                self.write(ins.dest, regs[ins.srcs[0]])
        elif op == "movz":
            if regs[ins.srcs[1]] == 0:
                self.write(ins.dest, regs[ins.srcs[0]])
        elif op == "movn":
            if regs[ins.srcs[1]] != 0:
                self.write(ins.dest, regs[ins.srcs[0]])

        # -- floating point ---------------------------------------------------------------------
        elif op == "fadd":
            self.fregs[ins.dest] = self.fregs[ins.srcs[0]] + self.fregs[ins.srcs[1]]
        elif op == "fsub":
            self.fregs[ins.dest] = self.fregs[ins.srcs[0]] - self.fregs[ins.srcs[1]]
        elif op == "fmul":
            self.fregs[ins.dest] = self.fregs[ins.srcs[0]] * self.fregs[ins.srcs[1]]
        elif op == "fdiv":
            b = self.fregs[ins.srcs[1]]
            if b == 0.0:
                stats.div_by_zero += 1
                self.fregs[ins.dest] = 0.0
            else:
                self.fregs[ins.dest] = self.fregs[ins.srcs[0]] / b
        elif op == "fmov":
            self.fregs[ins.dest] = self.fregs[ins.srcs[0]]
        elif op == "fneg":
            self.fregs[ins.dest] = -self.fregs[ins.srcs[0]]
        elif op in ("fcmpeq", "fcmplt", "fcmple"):
            a, b = self.fregs[ins.srcs[0]], self.fregs[ins.srcs[1]]
            self.ccregs[ins.dest] = {
                "fcmpeq": a == b, "fcmplt": a < b, "fcmple": a <= b}[op]
        elif op == "lwf":
            addr = (regs[ins.srcs[0]] + ins.imm) & MASK32
            self.fregs[ins.dest] = struct.unpack(
                "<f", self.mem.read_bytes(addr, 4))[0]
            stats.loads += 1
        elif op == "swf":
            addr = (regs[ins.srcs[1]] + ins.imm) & MASK32
            self.mem.write_bytes(addr, struct.pack("<f", self.fregs[ins.srcs[0]]))
            stats.stores += 1
        elif op == "cvtif":
            self.fregs[ins.dest] = float(to_signed(regs[ins.srcs[0]]))
        elif op == "cvtfi":
            self.write(ins.dest, int(self.fregs[ins.srcs[0]]))

        elif op == "fence":
            # Architecturally a no-op (the barrier only constrains the
            # timing model); counted so safety-cost reports can show how
            # many barriers executed dynamically.
            stats.fences += 1
        elif op == "nop" or op == "halt":
            pass
        else:
            raise UnmodeledOpcode(
                f"opcode {op!r} reached the functional simulator but is "
                f"not modeled", pc=pc, steps=stats.steps)

        self.pc = next_pc
        return TraceEntry(ins, pc, taken=taken, addr=addr)

    def _branch_taken(self, ins: Instruction) -> bool:
        op = ins.op
        base = op[:-1] if ins.is_likely else op
        regs = self.regs
        if base in ("beq", "bne"):
            eq = regs[ins.srcs[0]] == regs[ins.srcs[1]]
            return eq if base == "beq" else not eq
        if base in ("bct", "bcf"):
            v = self.ccregs[ins.srcs[0]]
            return v if base == "bct" else not v
        v = to_signed(regs[ins.srcs[0]])
        if base == "blez":
            return v <= 0
        if base == "bgtz":
            return v > 0
        if base == "bltz":
            return v < 0
        if base == "bgez":
            return v >= 0
        if base == "beqz":
            return v == 0
        if base == "bnez":
            return v != 0
        raise NotImplementedError(f"branch {op}")  # pragma: no cover


def run_program(prog: Program, max_steps: int = 20_000_000) -> ExecStats:
    """Convenience: execute *prog* and return its statistics."""
    return FunctionalSim(prog, max_steps=max_steps).run()


def final_state(prog: Program, max_steps: int = 20_000_000) -> FunctionalSim:
    """Execute *prog* and return the simulator (registers + memory) for
    inspection — used by semantic-equivalence tests of the transforms."""
    sim = FunctionalSim(prog, max_steps=max_steps)
    sim.run()
    return sim
