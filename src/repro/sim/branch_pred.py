"""Branch prediction: 2-bit counter table, BTB, perfect prediction.

The three schemes of the paper's evaluation (Section 6, Tables 3/4):

* ``twobit`` — "the branch prediction table is a 512-entry, 2-bit buffer
  which maintains the four different states (strongly taken, strongly
  not-taken, weakly taken, weakly not-taken) of the previous branch
  outcomes", plus a BTB limited to branches with absolute target addresses.
* ``perfect`` — every branch (including subroutine calls, returns, and
  register-relative jumps, which the BTB cannot hold) is predicted
  correctly.  Used "mainly for theoretical purposes".
* the **proposed approach** is not a predictor change: it is compiled code
  (branch-likelies + guarded execution + split branches) running *on top of*
  the 2-bit scheme.  Branch-likely instructions are always predicted taken
  and consume neither a history counter nor a BTB entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction


@dataclass
class PredictorStats:
    """Prediction accounting (feeds Table 1's "correctly predicted" column)."""

    conditional: int = 0
    correct: int = 0
    mispredicted: int = 0
    likely_branches: int = 0
    likely_correct: int = 0
    btb_misses: int = 0
    indirect_stalls: int = 0

    @property
    def accuracy(self) -> float:
        total = self.conditional + self.likely_branches
        good = self.correct + self.likely_correct
        return good / total if total else 1.0

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "PredictorStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**d)


class BranchPredictor:
    """Interface: :meth:`access` is called once per dynamic branch, in
    program order, with the actual outcome from the trace.  It returns True
    when fetch would have continued down the correct path (i.e. no
    misprediction penalty)."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def access(self, index: int, ins: Instruction, taken: bool,
               target: int | None = None) -> bool:
        raise NotImplementedError

    def indirect_resolves_in_fetch(self) -> bool:
        """Whether register-target jumps (jr/jalr) redirect fetch without a
        stall (only true for the perfect scheme)."""
        return False


class TwoBitPredictor(BranchPredictor):
    """512-entry table of saturating 2-bit counters + a BTB.

    Counter states: 0 strongly not-taken, 1 weakly not-taken, 2 weakly
    taken, 3 strongly taken; predict taken when counter >= 2.  Counters
    initialize weakly not-taken.

    Branch-likely instructions bypass the table entirely: always predicted
    taken, never updating any counter (paper Section 3: "they don't have a
    specific history counter or an entry in the branch target buffer").

    The BTB holds targets for predicted-taken branches; a taken branch that
    misses in the BTB cannot redirect fetch that cycle and is charged as a
    misprediction-equivalent bubble.
    """

    def __init__(self, entries: int = 512, btb_entries: int = 512,
                 initial_state: int = 1):
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self.table = [initial_state] * entries
        self.btb_entries = btb_entries
        self.btb: dict[int, int] = {}  # pc -> target (LRU-ish via dict order)

    def access(self, index: int, ins: Instruction, taken: bool,
               target: int | None = None) -> bool:
        st = self.stats
        if ins.is_likely:
            st.likely_branches += 1
            if taken:
                st.likely_correct += 1
                return True
            st.mispredicted += 1
            return False

        st.conditional += 1
        slot = index & self.mask
        counter = self.table[slot]
        predicted_taken = counter >= 2
        # Saturating update with the actual outcome.
        if taken:
            self.table[slot] = min(3, counter + 1)
        else:
            self.table[slot] = max(0, counter - 1)

        if predicted_taken != taken:
            st.mispredicted += 1
            if taken and ins.info.has_btb_entry and target is not None:
                self._btb_insert(index, target)
            return False

        if taken:
            # Correct direction, but fetch also needs the target address.
            if not ins.info.has_btb_entry or self._btb_lookup(index) is None:
                st.btb_misses += 1
                if ins.info.has_btb_entry and target is not None:
                    self._btb_insert(index, target)
                st.mispredicted += 1
                return False
        st.correct += 1
        return True

    def _btb_lookup(self, pc: int) -> int | None:
        return self.btb.get(pc)

    def _btb_insert(self, pc: int, target: int) -> None:
        if pc in self.btb:
            self.btb[pc] = target
            return
        if len(self.btb) >= self.btb_entries:
            # Evict the oldest entry (insertion order).
            self.btb.pop(next(iter(self.btb)))
        self.btb[pc] = target


class PerfectPredictor(BranchPredictor):
    """Every control transfer predicted correctly (paper's scheme 3)."""

    def access(self, index: int, ins: Instruction, taken: bool,
               target: int | None = None) -> bool:
        st = self.stats
        if ins.is_likely:
            st.likely_branches += 1
            st.likely_correct += 1
        else:
            st.conditional += 1
            st.correct += 1
        return True

    def indirect_resolves_in_fetch(self) -> bool:
        return True


class TwoLevelPredictor(BranchPredictor):
    """Local-history two-level adaptive predictor (PAg-style).

    The paper's future-work direction: "The algorithm can be extended to
    handle more complex correlations".  A per-branch shift register of the
    last ``history_bits`` outcomes indexes a table of 2-bit counters, so
    periodic patterns (TTF TTF ..., the toggle vectors the split transform
    targets) become predictable in hardware.  Provided as an ablation: how
    much of the proposed software scheme's benefit would stronger hardware
    capture on its own?

    Branch-likely handling and the BTB behave as in
    :class:`TwoBitPredictor`.
    """

    def __init__(self, entries: int = 512, btb_entries: int = 512,
                 history_bits: int = 4):
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self.history_bits = history_bits
        self.hmask = (1 << history_bits) - 1
        self.histories = [0] * entries
        self.counters = [[1] * (1 << history_bits) for _ in range(entries)]
        self.btb_entries = btb_entries
        self.btb: dict[int, int] = {}

    def access(self, index: int, ins: Instruction, taken: bool,
               target: int | None = None) -> bool:
        st = self.stats
        if ins.is_likely:
            st.likely_branches += 1
            if taken:
                st.likely_correct += 1
                return True
            st.mispredicted += 1
            return False

        st.conditional += 1
        slot = index & self.mask
        hist = self.histories[slot]
        counter = self.counters[slot][hist]
        predicted_taken = counter >= 2
        # Update counter and history.
        if taken:
            self.counters[slot][hist] = min(3, counter + 1)
        else:
            self.counters[slot][hist] = max(0, counter - 1)
        self.histories[slot] = ((hist << 1) | int(taken)) & self.hmask

        if predicted_taken != taken:
            st.mispredicted += 1
            if taken and ins.info.has_btb_entry and target is not None:
                self._btb_insert(index, target)
            return False
        if taken:
            if not ins.info.has_btb_entry or index not in self.btb:
                st.btb_misses += 1
                if ins.info.has_btb_entry and target is not None:
                    self._btb_insert(index, target)
                st.mispredicted += 1
                return False
        st.correct += 1
        return True

    def _btb_insert(self, pc: int, target: int) -> None:
        if pc in self.btb:
            self.btb[pc] = target
            return
        if len(self.btb) >= self.btb_entries:
            self.btb.pop(next(iter(self.btb)))
        self.btb[pc] = target


class StaticTakenPredictor(BranchPredictor):
    """Predict every conditional branch taken (ablation baseline)."""

    def access(self, index: int, ins: Instruction, taken: bool,
               target: int | None = None) -> bool:
        st = self.stats
        if ins.is_likely:
            st.likely_branches += 1
            if taken:
                st.likely_correct += 1
                return True
            st.mispredicted += 1
            return False
        st.conditional += 1
        if taken:
            st.correct += 1
            return True
        st.mispredicted += 1
        return False


def make_predictor(name: str, bht_entries: int = 512,
                   btb_entries: int = 512) -> BranchPredictor:
    """Factory keyed by :attr:`MachineConfig.predictor`."""
    if name == "twobit":
        return TwoBitPredictor(entries=bht_entries, btb_entries=btb_entries)
    if name == "twolevel":
        return TwoLevelPredictor(entries=bht_entries, btb_entries=btb_entries)
    if name == "perfect":
        return PerfectPredictor()
    if name == "static-taken":
        return StaticTakenPredictor()
    raise ValueError(f"unknown predictor {name!r}")
