"""Timing-simulation statistics: everything Tables 3 and 4 report.

Percentages follow the paper's footnotes: "% times <buffer/unit> is full,
ratio to the final commit cycle"; IPC "excluding annulled" instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# repro.core.serde is imported lazily inside to_dict/from_dict: importing
# the core package at module level would close an import cycle
# (core -> sched -> transform -> profilefb -> sim).
from .branch_pred import PredictorStats
from .cache import CacheStats

#: Flat scalar fields shared by :meth:`SimStats.to_dict`/``from_dict``.
_SCALAR_FIELDS = (
    "cycles", "committed", "annulled", "dispatched",
    "fetch_stall_cycles", "icache_stall_cycles", "mispredict_events",
    "indirect_stall_events", "wrong_path_squashed",
    "fence_stall_cycles", "fence_events",
)


@dataclass
class SimStats:
    """Results of one timing-simulation run."""

    cycles: int = 0
    committed: int = 0            # committed instructions excluding annulled
    annulled: int = 0
    dispatched: int = 0

    #: cycles each reservation buffer was full, keyed "br"/"ldst"/"alu"/"fp"
    queue_full_cycles: dict[str, int] = field(default_factory=dict)
    #: cycles each unit class had every unit busy, keyed "alu"/"ldst"/"sft"/
    #: "fpadd"/"fpmul"/"fpdiv"/"br"
    unit_full_cycles: dict[str, int] = field(default_factory=dict)
    #: total issues per unit class (utilization numerator)
    unit_issues: dict[str, int] = field(default_factory=dict)

    fetch_stall_cycles: int = 0    # cycles fetch was blocked (mispredict/jr)
    icache_stall_cycles: int = 0
    mispredict_events: int = 0
    indirect_stall_events: int = 0
    #: wrong-path instructions dispatched and squashed (only non-zero when
    #: the TimingSim runs with model_wrong_path=True)
    wrong_path_squashed: int = 0
    #: cycles dispatch was blocked draining behind a ``fence`` barrier
    fence_stall_cycles: int = 0
    #: fences dispatched (the safety-cost denominator for the safe scheme)
    fence_events: int = 0

    predictor: PredictorStats = field(default_factory=PredictorStats)
    icache: CacheStats = field(default_factory=CacheStats)
    dcache: CacheStats = field(default_factory=CacheStats)

    @property
    def ipc(self) -> float:
        """Instructions per cycle, excluding annulled (Table 4 note 7)."""
        return self.committed / self.cycles if self.cycles else 0.0

    def queue_full_pct(self, name: str) -> float:
        """Table 3: % of commit cycles the named reservation buffer was full."""
        if not self.cycles:
            return 0.0
        return 100.0 * self.queue_full_cycles.get(name, 0) / self.cycles

    def unit_full_pct(self, name: str) -> float:
        """Table 4: % of commit cycles the named unit class was saturated."""
        if not self.cycles:
            return 0.0
        return 100.0 * self.unit_full_cycles.get(name, 0) / self.cycles

    def unit_utilization(self, name: str, num_units: int) -> float:
        """Fraction of unit-cycles actually used (ablation metric)."""
        if not self.cycles or not num_units:
            return 0.0
        return self.unit_issues.get(name, 0) / (self.cycles * num_units)

    def to_dict(self) -> dict:
        """JSON-serializable form: exact round-trip via :meth:`from_dict`.

        Used by the evaluation engine's artifact cache and the ``tables
        --json`` machine-readable output.
        """
        from ..core import serde
        d = serde.dump_fields(self, _SCALAR_FIELDS)
        d.update(
            queue_full_cycles=dict(self.queue_full_cycles),
            unit_full_cycles=dict(self.unit_full_cycles),
            unit_issues=dict(self.unit_issues),
            predictor=self.predictor.to_dict(),
            icache=self.icache.to_dict(),
            dcache=self.dcache.to_dict(),
        )
        return serde.stamp(d)

    @classmethod
    def from_dict(cls, d: dict) -> "SimStats":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        from ..core import serde
        serde.check(d, "SimStats")
        return cls(
            queue_full_cycles=dict(d["queue_full_cycles"]),
            unit_full_cycles=dict(d["unit_full_cycles"]),
            unit_issues=dict(d["unit_issues"]),
            predictor=PredictorStats.from_dict(d["predictor"]),
            icache=CacheStats.from_dict(d["icache"]),
            dcache=CacheStats.from_dict(d["dcache"]),
            **serde.load_fields(d, _SCALAR_FIELDS),
        )

    def summary(self) -> str:
        lines = [
            f"cycles               {self.cycles}",
            f"committed            {self.committed}",
            f"annulled             {self.annulled}",
            f"IPC                  {self.ipc:.3f}",
            f"branch accuracy      {self.predictor.accuracy * 100:.2f}%",
            f"mispredict events    {self.mispredict_events}",
            f"fetch stall cycles   {self.fetch_stall_cycles}",
            "queue full %         " + "  ".join(
                f"{k}={self.queue_full_pct(k):.2f}"
                for k in ("br", "ldst", "alu", "fp")),
            "unit full %          " + "  ".join(
                f"{k}={self.unit_full_pct(k):.2f}"
                for k in ("alu", "ldst", "sft")),
        ]
        return "\n".join(lines)
