"""Machine configuration for the R10000-like model.

Defaults reproduce the paper's Section 6 description and Table 2 latencies:

* 4-wide in-order fetch/dispatch, out-of-order issue, in-order commit;
* two integer ALUs, a shifter, one address-calculation (load/store) unit,
  three floating-point units (adder, multiplier, divider);
* 16-entry integer, address and FP queues (reservation stations), plus a
  branch reservation buffer;
* 64 physical / 32 architectural registers per file;
* 512-entry 2-bit branch-prediction table, BTB for absolute-target branches;
* 32-KB direct-mapped split I/D caches with a 6-cycle miss penalty;
* latencies: alu 1, ld/st 2, shift 1, fp add/mul/div 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Latencies:
    """Execution latencies in cycles (paper Table 2)."""

    alu: int = 1
    ldst: int = 2
    sft: int = 1
    fpadd: int = 3
    fpmul: int = 3
    fpdiv: int = 3
    cache_miss_penalty: int = 6

    def of_class(self, latency_class: str) -> int:
        return getattr(self, latency_class)


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description consumed by the timing simulator."""

    # Pipeline widths
    fetch_width: int = 4
    dispatch_width: int = 4
    commit_width: int = 4

    # Reservation stations / queues (paper Section 6: 16-entry each)
    int_queue_size: int = 16
    addr_queue_size: int = 16
    fp_queue_size: int = 16
    branch_buffer_size: int = 4

    # Reorder buffer ("active list")
    rob_size: int = 32

    # Functional units
    num_alus: int = 2
    num_shifters: int = 1
    num_mem_units: int = 1
    num_branch_units: int = 1
    num_fpadd: int = 1
    num_fpmul: int = 1
    num_fpdiv: int = 1

    # Register files: 64 physical, 32 architectural (32 free rename regs)
    phys_int_regs: int = 64
    phys_fp_regs: int = 64
    arch_int_regs: int = 32
    arch_fp_regs: int = 32

    # Branch prediction
    bht_entries: int = 512
    bht_counter_bits: int = 2
    btb_entries: int = 512
    predictor: str = "twobit"  # twobit | twolevel | perfect | static-taken
    #: cycles to refill the front end after a misprediction or an indirect
    #: (jr/jalr) stall resolves — models the R10000's fetch/decode depth on
    #: top of branch-resolution time.
    misprediction_recovery: int = 4
    #: extra drain cycles charged after a ``fence`` completes: dispatch
    #: stalls until every older instruction has finished, then waits this
    #: many additional cycles before the front end resumes (models the
    #: store-buffer/speculation-window flush a real serializing barrier
    #: performs).
    fence_stall: int = 3

    # Caches
    icache_size: int = 32 * 1024
    dcache_size: int = 32 * 1024
    cache_line: int = 32
    cache_assoc: int = 1

    latencies: Latencies = field(default_factory=Latencies)

    def with_predictor(self, predictor: str) -> "MachineConfig":
        """Return a copy using a different branch-prediction scheme."""
        if predictor not in ("twobit", "twolevel", "perfect", "static-taken"):
            raise ValueError(f"unknown predictor {predictor!r}")
        return replace(self, predictor=predictor)


#: The configuration used throughout the paper's evaluation.
R10K = MachineConfig()


def r10k_config(predictor: str = "twobit", **overrides) -> MachineConfig:
    """The paper's R10000-like machine, optionally overridden.

    >>> r10k_config("perfect").predictor
    'perfect'
    """
    return replace(R10K, predictor=predictor, **overrides)
