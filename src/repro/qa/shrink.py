"""Delta-debugging shrinker: minimize a failing program.

Given a program and a failure oracle (``is_failing(candidate) -> bool``),
:func:`shrink_program` greedily deletes parts of the program while the
oracle keeps failing, at two granularities:

1. **blocks** — contiguous instruction runs between labels are dropped
   whole (coarse, removes entire diamonds in one oracle call);
2. **instructions** — single lines, then now-unreferenced labels.

Candidates are built at the assembly-text level (print → edit → parse):
a deletion that breaks the program structurally (dangling branch target,
missing terminator) simply fails to parse or validate and is skipped, so
the shrinker never needs transform-specific knowledge.  Each accepted
deletion restarts the pass, guaranteeing a 1-minimal result within the
oracle-call budget.

The oracle is exception-contained: a candidate that makes the oracle
*crash* (rather than report failure) is treated as not failing, which
keeps the shrink anchored to the original bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..isa.program import Program

#: Default cap on oracle invocations per shrink (each is a co-simulation).
DEFAULT_ORACLE_BUDGET = 600


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimized program plus statistics."""

    program: Program
    original_len: int
    shrunk_len: int
    oracle_calls: int
    rounds: int

    @property
    def ratio(self) -> float:
        """Shrunk size over original size (1.0 = no reduction)."""
        return self.shrunk_len / self.original_len if self.original_len else 1.0

    def to_dict(self) -> dict:
        """JSON-serializable summary (program travels as printed text)."""
        return {"original_len": self.original_len,
                "shrunk_len": self.shrunk_len,
                "oracle_calls": self.oracle_calls,
                "rounds": self.rounds,
                "ratio": round(self.ratio, 4)}


def _is_label(line: str) -> bool:
    stripped = line.strip()
    return stripped.endswith(":") and not stripped.startswith(".")


def _reparse(lines: list[str], template: Program) -> Optional[Program]:
    """Parse candidate *lines*; None when structurally invalid.

    Data tables (segment image, symbols, code refs) are carried over from
    *template* — the printer does not emit them, and deleting code never
    invalidates data.
    """
    from ..isa.parser import parse

    try:
        prog = parse("\n".join(lines), name=template.name)
        prog.data_symbols = dict(template.data_symbols)
        prog.data_image = dict(template.data_image)
        prog.code_refs = dict(template.code_refs)
        prog.validate()
        return prog
    except Exception:  # noqa: BLE001 - invalid candidate, skip it
        return None


def _chunks(lines: list[str]) -> list[tuple[int, int]]:
    """Label-delimited [start, end) instruction runs, largest first."""
    out: list[tuple[int, int]] = []
    start = None
    for i, line in enumerate(lines):
        if _is_label(line) or not line.strip():
            if start is not None and i > start:
                out.append((start, i))
            start = None
        elif start is None:
            start = i
    if start is not None and start < len(lines):
        out.append((start, len(lines)))
    return sorted(out, key=lambda c: c[1] - c[0], reverse=True)


class _Budget:
    """Mutable oracle-call counter shared across shrink passes."""

    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0

    def spent(self) -> bool:
        return self.calls >= self.limit


def _try(lines: list[str], keep: Callable[[Program], bool],
         template: Program, budget: _Budget) -> Optional[Program]:
    """Oracle-check one candidate; None when invalid or not failing."""
    prog = _reparse(lines, template)
    if prog is None or budget.spent():
        return None
    budget.calls += 1
    try:
        return prog if keep(prog) else None
    except Exception:  # noqa: BLE001 - crashing oracle = different bug
        return None


def _delete_pass(lines: list[str], spans: list[tuple[int, int]],
                 keep: Callable[[Program], bool], template: Program,
                 budget: _Budget) -> tuple[list[str], bool]:
    """Try deleting each span once; returns (lines, anything_deleted)."""
    changed = False
    for start, end in spans:
        if budget.spent():
            break
        candidate = lines[:start] + lines[end:]
        if _try(candidate, keep, template, budget) is not None:
            return candidate, True
    return lines, changed


def shrink_program(prog: Program, is_failing: Callable[[Program], bool],
                   oracle_budget: int = DEFAULT_ORACLE_BUDGET,
                   ) -> ShrinkResult:
    """Minimize *prog* while ``is_failing`` stays true.

    *is_failing* receives a candidate **source** program and must re-run
    whatever made the original fail (e.g. recompile under the failing
    scheme and diff-check).  The returned program is 1-minimal with
    respect to line deletion, or the best reduction reached when
    *oracle_budget* ran out.
    """
    from ..isa.printer import format_program

    budget = _Budget(oracle_budget)
    lines = format_program(prog).splitlines()
    best = _reparse(lines, prog)
    if best is None:  # cannot even round-trip: nothing safe to do
        return ShrinkResult(prog, len(prog), len(prog), 0, 0)

    rounds = 0
    progressed = True
    while progressed and not budget.spent():
        progressed = False
        rounds += 1
        # 1. Coarse: whole label-delimited runs, largest first.
        while True:
            lines, deleted = _delete_pass(lines, _chunks(lines), is_failing,
                                          prog, budget)
            if not deleted:
                break
            progressed = True
        # 2. Fine: single instruction lines (back to front, so indices
        #    shift under spans we have not tried yet).
        while True:
            spans = [(i, i + 1) for i in range(len(lines) - 1, -1, -1)
                     if lines[i].strip() and not _is_label(lines[i])]
            lines, deleted = _delete_pass(lines, spans, is_failing, prog,
                                          budget)
            if not deleted:
                break
            progressed = True
        # 3. Cleanup: labels whose references went away with their code.
        while True:
            spans = [(i, i + 1) for i in range(len(lines) - 1, -1, -1)
                     if _is_label(lines[i])]
            lines, deleted = _delete_pass(lines, spans, is_failing, prog,
                                          budget)
            if not deleted:
                break
            progressed = True

    shrunk = _reparse(lines, prog) or best
    return ShrinkResult(shrunk, len(prog), len(shrunk), budget.calls, rounds)
