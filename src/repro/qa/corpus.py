"""Corpus management: persist, load, and replay shrunk reproducers.

Layout (one directory per triage bucket)::

    corpus/
      <bucket>/
        <strategy>-<seed>-<scheme>.s      # minimized reproducer (assembly)
        <strategy>-<seed>-<scheme>.json   # TriageEntry metadata

Replay parses every ``*.s`` file under a corpus root (bucketed or flat —
the checked-in regression corpus at ``tests/qa/corpus/`` is flat) and
re-runs the full scheme cross-check on each, so a fixed bug stays fixed
and a still-open bug keeps failing loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from ..isa.parser import parse
from ..isa.program import Program
from .cells import FUZZ_MAX_STEPS, check_program
from .triage import TriageEntry


def save_reproducer(corpus_dir: str | Path, entry: TriageEntry) -> Path:
    """Write *entry* (assembly + metadata) into its bucket directory.

    The assembly written is the shrunk reproducer when available, else
    the original failing program.  Returns the ``.s`` path.
    """
    bucket_dir = Path(corpus_dir) / entry.bucket
    bucket_dir.mkdir(parents=True, exist_ok=True)
    text = entry.shrunk_text or entry.program_text
    s_path = bucket_dir / f"{entry.name}.s"
    s_path.write_text(text.rstrip("\n") + "\n")
    meta_path = bucket_dir / f"{entry.name}.json"
    meta_path.write_text(
        json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n")
    return s_path


def iter_corpus(corpus_dir: str | Path,
                ) -> Iterator[tuple[Path, Optional[dict]]]:
    """Yield every ``(.s path, metadata dict or None)`` under the corpus,
    sorted by path for deterministic replay order."""
    root = Path(corpus_dir)
    for s_path in sorted(root.rglob("*.s")):
        meta_path = s_path.with_suffix(".json")
        meta: Optional[dict] = None
        if meta_path.is_file():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                meta = None
        yield s_path, meta


def load_reproducer(s_path: str | Path) -> Program:
    """Parse one corpus ``.s`` file into a program."""
    path = Path(s_path)
    return parse(path.read_text(), name=path.stem)


def replay_corpus(corpus_dir: str | Path,
                  max_steps: int = FUZZ_MAX_STEPS) -> list[dict]:
    """Re-run every corpus entry through all schemes.

    Returns one record per ``.s`` file: ``{"file", "name", "divergent",
    "schemes", "error"}``.  A file that fails to parse or whose check
    crashes is reported as an ``error`` record (counted as divergent by
    callers), never an exception.  Raises ``FileNotFoundError`` only when
    the corpus directory itself does not exist.
    """
    root = Path(corpus_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"no such corpus directory: {root}")
    records: list[dict] = []
    for s_path, meta in iter_corpus(root):
        record = {"file": str(s_path), "name": s_path.stem,
                  "bucket": (meta or {}).get("bucket"),
                  "divergent": [], "schemes": {}, "error": None}
        try:
            prog = load_reproducer(s_path)
            record.update(check_program(prog, max_steps))
        except Exception as exc:  # noqa: BLE001 - broken entry, not a crash
            record["error"] = f"{type(exc).__name__}: {exc}"
        records.append(record)
    return records
