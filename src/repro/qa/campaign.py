"""The differential fuzzing campaign runner.

:func:`run_campaign` drives the whole loop:

1. expand the strategy lattice into *budget* deterministic fuzz cells;
2. resolve each cell against the :mod:`repro.engine` artifact cache and
   fan the misses out over :func:`repro.engine.pool.run_tasks`;
3. shrink every divergence to a minimal reproducer (delta debugging at
   block then instruction granularity, re-running the failing scheme's
   oracle at each step) and write it into the triage-bucketed corpus;
4. aggregate a deterministic :class:`CampaignSummary` (identical across
   reruns of the same budget/seed — cache traffic and wall time are
   deliberately excluded).

The summary's determinism is what makes ``repro fuzz`` usable as a CI
gate: two runs of ``--budget N --seed S`` must print the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .._deprecation import deprecated
from ..core import serde
from ..engine.cache import ArtifactCache
from ..engine.pool import run_tasks
from ..engine.suite import CacheLike, coerce_cache
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from ..isa.printer import format_program
from ..isa.program import Program
from ..robust.diffcheck import check_equivalence
from . import cells as _cells
from .cells import FUZZ_MAX_STEPS, FuzzCellSpec, fuzz_cell_key
from .shrink import DEFAULT_ORACLE_BUDGET, shrink_program
from .strategies import FuzzStrategy, campaign_plan, select_strategies
from .triage import TriageEntry, triage_cell_error, triage_divergence

#: Hard floor/ceiling applied to a campaign budget by the CLI.
MIN_BUDGET = 1


@dataclass
class CampaignConfig:
    """Everything one campaign run depends on."""

    budget: int = 100
    seed: int = 0
    jobs: int = 1
    shrink: bool = True
    strategies: Optional[Sequence[str]] = None   # lattice names; None = all
    max_steps: int = FUZZ_MAX_STEPS
    corpus_dir: Optional[str] = None             # None = don't persist
    cache: CacheLike = None
    oracle_budget: int = DEFAULT_ORACLE_BUDGET


@dataclass
class CampaignSummary:
    """Deterministic aggregate of one campaign (safe to diff across runs)."""

    budget: int
    seed: int
    strategies: list[str]
    programs: int = 0
    cell_errors: int = 0
    divergences: int = 0
    buckets: dict[str, int] = field(default_factory=dict)
    per_strategy: dict[str, dict] = field(default_factory=dict)
    shrinks: list[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing diverged and no cell crashed."""
        return self.divergences == 0 and self.cell_errors == 0

    def to_dict(self) -> dict:
        """JSON-serializable form of the summary (schema-version stamped)."""
        return serde.stamp({
            "budget": self.budget,
            "seed": self.seed,
            "strategies": list(self.strategies),
            "programs": self.programs,
            "cell_errors": self.cell_errors,
            "divergences": self.divergences,
            "buckets": dict(sorted(self.buckets.items())),
            "per_strategy": {k: dict(v) for k, v in
                             sorted(self.per_strategy.items())},
            "shrinks": list(self.shrinks),
        })

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSummary":
        """Inverse of :meth:`to_dict` (schema-version checked)."""
        serde.check(d, "CampaignSummary")
        return cls(
            budget=d["budget"], seed=d["seed"],
            strategies=list(d["strategies"]), programs=d["programs"],
            cell_errors=d["cell_errors"], divergences=d["divergences"],
            buckets=dict(d["buckets"]),
            per_strategy={k: dict(v)
                          for k, v in d["per_strategy"].items()},
            shrinks=list(d["shrinks"]))

    def format(self) -> str:
        """Human-readable campaign report."""
        lines = [
            f"campaign: budget={self.budget} seed={self.seed}",
            f"  programs tried : {self.programs}",
            f"  divergences    : {self.divergences}",
            f"  cell errors    : {self.cell_errors}",
        ]
        lines.append("  per strategy   :")
        for name in sorted(self.per_strategy):
            s = self.per_strategy[name]
            lines.append(f"    {name:<14} {s['programs']:>4} programs, "
                         f"{s['divergences']} divergent")
        if self.buckets:
            lines.append("  triage buckets :")
            for bucket in sorted(self.buckets):
                lines.append(f"    {self.buckets[bucket]:>3}x {bucket}")
        if self.shrinks:
            lines.append("  shrinks        :")
            for s in self.shrinks:
                lines.append(
                    f"    {s['name']}: {s['original_len']} -> "
                    f"{s['shrunk_len']} instrs "
                    f"(ratio {s['ratio']:.2f}, {s['oracle_calls']} oracle "
                    f"calls)")
        lines.append("  verdict        : "
                     + ("CLEAN" if self.clean else "DIVERGENT"))
        return "\n".join(lines)


@dataclass
class CampaignResult:
    """Summary plus the full triage entries of one campaign."""

    summary: CampaignSummary
    entries: list[TriageEntry] = field(default_factory=list)


def scheme_oracle(scheme: str, kind: str,
                  max_steps: int = FUZZ_MAX_STEPS,
                  ) -> Callable[[Program], bool]:
    """Failure oracle for shrinking: does *scheme* still diverge the same
    way on a candidate?

    Requiring the same divergence *kind* keeps the shrink anchored to the
    original bug instead of sliding onto an unrelated one mid-reduction.
    Pass a *max_steps* scaled to the original failure's dynamic length —
    a deletion that leaves the candidate spinning in an infinite loop
    should cost a bounded (small) simulation, not the full cell budget.
    """
    def _failing(candidate: Program) -> bool:
        # Attribute lookup at call time, so fault-injection tests that
        # monkeypatch ``repro.qa.cells.compile_scheme`` shrink against
        # the same buggy compiler that produced the divergence.
        result = _cells.compile_scheme(candidate, scheme,
                                       max_steps=max_steps)
        report = check_equivalence(candidate, result.program,
                                   max_steps=max_steps)
        return (not report.equivalent) and report.kind == kind
    return _failing


def _shrink_entry(entry: TriageEntry, prog: Program,
                  cfg: CampaignConfig) -> None:
    """Attach the original and (if enabled) shrunk assembly to *entry*."""
    entry.program_text = format_program(prog)
    if not cfg.shrink:
        return
    # "name" is span()'s own first parameter; the entry name goes under
    # a different attr key.
    with obs_span("fuzz.shrink", reproducer=entry.name,
                  scheme=entry.scheme, kind=entry.kind) as sp:
        # Candidates never need to run much longer than the original
        # failure did; the floor keeps very short failures shrinkable.
        orig_steps = int(entry.report.get("original_steps") or 0)
        step_cap = min(cfg.max_steps, max(20_000, orig_steps * 16))
        oracle = scheme_oracle(entry.scheme, entry.kind, step_cap)
        result = shrink_program(prog, oracle,
                                oracle_budget=cfg.oracle_budget)
        entry.shrunk_text = format_program(result.program)
        entry.shrink = result.to_dict()
        sp.set("oracle_calls", entry.shrink.get("oracle_calls"))


def run_campaign_impl(cfg: CampaignConfig,
                      progress: Optional[Callable[[str], None]] = None,
                      executor: Optional[Callable] = None,
                      ) -> CampaignResult:
    """Run one differential fuzzing campaign; see the module docstring.

    *executor*, when given, replaces the local process pool for the
    cache-miss cells: ``executor(specs) -> payloads`` (same order).
    :func:`repro.serve.client.remote_fuzz_executor` plugs a service
    fleet in here; generation, triage, and shrinking stay local either
    way.
    """
    with obs_span("fuzz.campaign", budget=cfg.budget, seed=cfg.seed,
                  jobs=cfg.jobs) as sp:
        result = _run_campaign_inner(cfg, progress, executor)
        sp.set("divergences", result.summary.divergences)
        sp.set("cell_errors", result.summary.cell_errors)
    if REGISTRY.enabled:
        REGISTRY.inc("fuzz.programs", result.summary.programs)
        REGISTRY.inc("fuzz.divergences", result.summary.divergences)
        REGISTRY.inc("fuzz.cell_errors", result.summary.cell_errors)
    return result


run_campaign = deprecated("repro.api.Session.fuzz")(run_campaign_impl)


def _run_campaign_inner(cfg: CampaignConfig,
                        progress: Optional[Callable[[str], None]] = None,
                        executor: Optional[Callable] = None,
                        ) -> CampaignResult:
    """Campaign body (split out so the span wraps it whole)."""
    strategies: tuple[FuzzStrategy, ...] = select_strategies(cfg.strategies)
    plan = list(campaign_plan(cfg.budget, cfg.seed, strategies))
    specs = [FuzzCellSpec(s.name, seed, cfg.max_steps) for s, seed in plan]

    store: Optional[ArtifactCache] = coerce_cache(cfg.cache)
    payloads: list[Optional[dict]] = [None] * len(specs)
    keys: list[Optional[str]] = [None] * len(specs)
    misses: list[int] = []
    for i, spec in enumerate(specs):
        if store is not None:
            keys[i] = fuzz_cell_key(spec)
            payloads[i] = store.get(keys[i])
        if payloads[i] is None:
            misses.append(i)
    if progress:
        progress(f"{len(specs)} cells: {len(specs) - len(misses)} cached, "
                 f"{len(misses)} to run (jobs={cfg.jobs})")

    miss_specs = [specs[i] for i in misses]
    if executor is not None:
        fresh = executor(miss_specs)
    else:
        fresh = run_tasks(_cells.execute_fuzz_cell, miss_specs,
                          jobs=cfg.jobs)
    for i, payload in zip(misses, fresh):
        payloads[i] = payload
        if store is not None and keys[i] is not None:
            store.put(keys[i], payload)

    summary = CampaignSummary(budget=cfg.budget, seed=cfg.seed,
                              strategies=[s.name for s in strategies])
    entries: list[TriageEntry] = []
    for spec, payload in zip(specs, payloads):
        summary.programs += 1
        per = summary.per_strategy.setdefault(
            spec.strategy, {"programs": 0, "divergences": 0})
        per["programs"] += 1
        if payload.get("error"):
            summary.cell_errors += 1
            entry = triage_cell_error(payload)
            entries.append(entry)
            summary.buckets[entry.bucket] = \
                summary.buckets.get(entry.bucket, 0) + 1
            continue
        for scheme in payload["divergent"]:
            summary.divergences += 1
            per["divergences"] += 1
            entry = triage_divergence(payload, scheme)
            if progress:
                progress(f"DIVERGENCE {entry.name}: {entry.bucket}")
            _shrink_entry(entry, spec.program(), cfg)
            entries.append(entry)
            summary.buckets[entry.bucket] = \
                summary.buckets.get(entry.bucket, 0) + 1
            if entry.shrink is not None:
                summary.shrinks.append({"name": entry.name,
                                        **entry.shrink})
            if cfg.corpus_dir:
                from .corpus import save_reproducer

                path = save_reproducer(cfg.corpus_dir, entry)
                if progress:
                    progress(f"reproducer written to {path}")
    return CampaignResult(summary=summary, entries=entries)
