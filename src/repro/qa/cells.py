"""Fuzz cells: the cacheable, picklable unit of campaign work.

One cell = one generated program, compiled under every scheme in
:data:`FUZZ_SCHEMES` and cross-checked against the functional simulator
with :func:`repro.robust.diffcheck.check_equivalence`.  The cell result
is a plain JSON dict, so it rides the :mod:`repro.engine` machinery
unchanged: :func:`fuzz_cell_key` derives a content-addressed cache key
(strategy config + seed + scheme plan + schema version) and
:func:`execute_fuzz_cell` is a module-level callable the process pool
can pickle.

The program itself never travels in the payload — it is regenerated from
``(strategy, seed)`` on demand (shrinking does this in the parent), which
keeps cache entries a few hundred bytes.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Optional

from ..core.pipeline import (
    CompileResult, compile_baseline, compile_variant,
)
from ..engine.keys import SCHEMA_VERSION, digest
from ..isa.program import Program
from ..obs.trace import span as obs_span
from ..profilefb.profiledb import ProfileDB
from ..robust.diffcheck import check_equivalence
from .strategies import BY_NAME, FuzzStrategy

#: The campaign's scheme plan: (name, compile_variant toggles).  The paper's
#: three transformation schemes plus the baseline schedule — a divergence in
#: *any* of them invalidates the corresponding result tables.
FUZZ_SCHEMES: tuple[tuple[str, Optional[dict]], ...] = (
    ("baseline", None),                       # local schedule only
    ("speculative", {"ifconvert": False}),    # splitting + speculation
    ("guarded", {"split": False, "speculation": False}),  # if-conversion
    ("combined", {}),                         # the full proposed pipeline
    # speculation behind the Spectre hoist guard: flagged hoists fenced —
    # the certification that fences never change architectural results
    ("safe-speculative", {"ifconvert": False, "spectre": True}),
    # branch melding in place of guarding: both arms run unconditionally
    # into scratch registers, native cmovt/cmovf select the results —
    # renaming plus selects must preserve architectural state exactly
    ("melded", {"split": False, "speculation": False, "meld": True}),
)

#: Default per-run functional step budget (campaign programs are tiny).
FUZZ_MAX_STEPS = 5_000_000


@dataclass(frozen=True)
class FuzzCellSpec:
    """Picklable description of one fuzz cell."""

    strategy: str                  # lattice name (see repro.qa.strategies)
    seed: int                      # per-program generator seed
    max_steps: int = FUZZ_MAX_STEPS

    def resolve_strategy(self) -> FuzzStrategy:
        """The lattice strategy this cell references."""
        return BY_NAME[self.strategy]

    def program(self) -> Program:
        """Regenerate this cell's program (deterministic)."""
        return self.resolve_strategy().program(self.seed)


def fuzz_cell_key(spec: FuzzCellSpec) -> str:
    """Content-addressed cache key of one fuzz cell.

    Keys on the full generator configuration (not just the strategy name,
    which could be re-pointed at different knobs) plus the scheme plan and
    the engine schema version, so compiler/simulator changes that bump
    :data:`~repro.engine.keys.SCHEMA_VERSION` invalidate fuzz verdicts too.
    """
    return digest({
        "schema": SCHEMA_VERSION,
        "kind": "fuzz-cell",
        "strategy": spec.strategy,
        "config": spec.resolve_strategy().config_dict(),
        "seed": spec.seed,
        "max_steps": spec.max_steps,
        "schemes": [name for name, _ in FUZZ_SCHEMES],
    })


def compile_scheme(prog: Program, scheme: str, *,
                   profile: Optional[ProfileDB] = None,
                   max_steps: int = FUZZ_MAX_STEPS) -> CompileResult:
    """Compile *prog* under one named fuzz scheme."""
    toggles = dict(FUZZ_SCHEMES)[scheme]
    if toggles is None:
        return compile_baseline(prog)
    return compile_variant(prog, profile=profile, max_steps=max_steps,
                           **toggles)


def _failing_stage(result: CompileResult) -> Optional[str]:
    """First contained (non-skip) pass failure, if the compile degraded."""
    for f in result.failures:
        if f.kind != "skip":
            return f.stage
    return "fallback" if result.fallback is not None else None


def check_program(prog: Program, max_steps: int = FUZZ_MAX_STEPS) -> dict:
    """Compile *prog* under every fuzz scheme and diff-check each.

    Returns ``{"schemes": {scheme: verdict}, "divergent": [scheme, ...]}``
    — the shared core of :func:`execute_fuzz_cell` and corpus replay.
    """
    # One profiling run feeds every transforming scheme (identical
    # feedback, and profiling is the slowest part of a cell).
    profile = ProfileDB.from_run(prog, max_steps=max_steps)
    schemes: dict[str, dict] = {}
    divergent: list[str] = []
    for scheme, _ in FUZZ_SCHEMES:
        result = compile_scheme(prog, scheme, profile=profile,
                                max_steps=max_steps)
        report = check_equivalence(prog, result.program,
                                   max_steps=max_steps)
        schemes[scheme] = {
            "report": report.to_dict(),
            "fallback": result.fallback,
            "degraded": result.degraded,
            "failing_stage": _failing_stage(result),
        }
        if not report.equivalent:
            divergent.append(scheme)
    return {"schemes": schemes, "divergent": divergent}


def execute_fuzz_cell(spec: FuzzCellSpec) -> dict:
    """Run one fuzz cell; returns a JSON-serializable verdict payload.

    Never raises: a crash anywhere (generation, profiling, compilation
    machinery itself) is contained into an ``"error"`` payload — the
    campaign counts it as a divergence of kind ``cell-error`` so broken
    tooling cannot masquerade as a clean campaign.
    """
    base = {"strategy": spec.strategy, "seed": spec.seed}
    with obs_span("fuzz.cell", strategy=spec.strategy,
                  seed=spec.seed) as sp:
        try:
            prog = spec.program()
            base["program_len"] = len(prog)
            verdicts = check_program(prog, spec.max_steps)
            if verdicts["divergent"]:
                sp.set("divergent", list(verdicts["divergent"]))
            return {**base, **verdicts, "error": None}
        except Exception as exc:  # noqa: BLE001 - containment is the point
            detail = "".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__)[-4:])
            sp.set("cell_error", f"{type(exc).__name__}: {exc}")
            return {**base, "schemes": {}, "divergent": [],
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_detail": detail}
