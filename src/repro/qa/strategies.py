"""The seeded strategy lattice driving fuzz-program generation.

A :class:`FuzzStrategy` is a named point in :class:`RandProgConfig` space.
The lattice spans the shapes the transforms care about — straight-line
code, diamond chains, counted loops, memory traffic, call-bearing
programs, guarded (predicated) ops, and the adversarial branch patterns
that stress the profile classifier (monotonic / alternating / phased).

A campaign walks the lattice round-robin: program *i* of a campaign with
master seed *S* uses strategy ``LATTICE[i % len]`` and a per-program seed
derived deterministically from ``(S, i)``, so the same ``--budget`` and
``--seed`` always regenerate byte-identical populations (and therefore
hit the artifact cache on re-runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Iterator, Optional, Sequence

from ..isa.program import Program
from ..isa.randprog import RandProgConfig, random_program

#: Multiplier folding the campaign master seed into per-program seeds
#: (a large odd constant so neighboring campaigns do not share programs).
SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class FuzzStrategy:
    """One named region of generator-configuration space."""

    name: str
    description: str
    config: RandProgConfig = field(default_factory=RandProgConfig)

    def program(self, seed: int) -> Program:
        """Generate this strategy's program for *seed*."""
        prog = random_program(seed, replace(self.config))
        prog.name = f"{self.name}-{seed}"
        return prog

    def config_dict(self) -> dict:
        """Public generator knobs as a plain dict (for cache keys)."""
        return {f.name: getattr(self.config, f.name)
                for f in fields(self.config) if not f.name.startswith("_")}


#: The default strategy lattice, in round-robin order.
LATTICE: tuple[FuzzStrategy, ...] = (
    FuzzStrategy("diamonds", "loop-free diamond chains, registers only",
                 RandProgConfig(with_loop=False, with_memory=False,
                                num_blocks=6)),
    FuzzStrategy("loops", "counted loops over diamond chains",
                 RandProgConfig(with_memory=False)),
    FuzzStrategy("memory", "loads/stores into scratch memory inside loops",
                 RandProgConfig()),
    FuzzStrategy("calls", "jal/jr helper calls inside the loop body",
                 RandProgConfig(with_calls=True)),
    FuzzStrategy("guarded", "dense predicated (guarded) ops",
                 RandProgConfig(guard_density=0.35)),
    FuzzStrategy("guarded-calls", "guards and calls in the same region",
                 RandProgConfig(guard_density=0.25, with_calls=True)),
    FuzzStrategy("monotonic", "branches with one outcome every iteration",
                 RandProgConfig(branch_pattern="monotonic")),
    FuzzStrategy("alternating", "branches toggling every iteration "
                                "(maximal toggle factor)",
                 RandProgConfig(branch_pattern="alternating")),
    FuzzStrategy("phased", "branches flipping once mid-loop (balanced "
                           "frequency, near-zero toggle)",
                 RandProgConfig(branch_pattern="phased",
                                loop_iterations=(8, 40))),
    FuzzStrategy("dense", "wide blocks: everything on, big diamonds",
                 RandProgConfig(num_blocks=7, ops_per_block=(3, 9),
                                guard_density=0.15, with_calls=True)),
    FuzzStrategy("gadgets", "Spectre-shaped diamonds: branches on "
                            "untrusted inputs feeding dependent "
                            "double-load chains",
                 RandProgConfig(untrusted_inputs=True, gadget_density=0.6,
                                num_blocks=5)),
)

#: Lattice lookup by name.
BY_NAME: dict[str, FuzzStrategy] = {s.name: s for s in LATTICE}


def select_strategies(names: Optional[Sequence[str]] = None,
                      ) -> tuple[FuzzStrategy, ...]:
    """Resolve a strategy-name list against the lattice (None = all).

    Raises ``ValueError`` naming the unknown entries, so the CLI can turn
    it into a clean usage error.
    """
    if not names:
        return LATTICE
    unknown = [n for n in names if n not in BY_NAME]
    if unknown:
        raise ValueError(
            f"unknown strategies: {', '.join(unknown)} "
            f"(available: {', '.join(s.name for s in LATTICE)})")
    return tuple(BY_NAME[n] for n in names)


def campaign_plan(budget: int, seed: int,
                  strategies: Optional[Sequence[FuzzStrategy]] = None,
                  ) -> Iterator[tuple[FuzzStrategy, int]]:
    """Yield *budget* deterministic (strategy, program_seed) pairs."""
    lattice = tuple(strategies) if strategies else LATTICE
    for i in range(budget):
        yield lattice[i % len(lattice)], seed * SEED_STRIDE + i
