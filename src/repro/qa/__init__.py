"""Differential fuzzing campaigns: the standing correctness net.

The paper's claims only hold if the three schemes (speculative, guarded,
combined) are semantics-preserving transformations — this package turns
that requirement into an executable, scalable campaign:

* :mod:`~repro.qa.strategies` — a seeded strategy lattice expanding
  :class:`~repro.isa.randprog.RandProgConfig` into program populations
  (loops, memory, calls, guarded ops, adversarial branch patterns);
* :mod:`~repro.qa.cells` — picklable fuzz cells (one program × all
  schemes × diff-check) that ride :mod:`repro.engine`'s cache and pool;
* :mod:`~repro.qa.shrink` — delta-debugging minimizer for failing
  programs (blocks, then instructions, then stale labels);
* :mod:`~repro.qa.triage` — bucket keys on (failing pass, divergence
  kind, first-diff location);
* :mod:`~repro.qa.corpus` — bucketed reproducer store plus replay;
* :mod:`~repro.qa.campaign` — the campaign runner behind
  ``python -m repro fuzz`` (see docs/QA.md).
"""

from .campaign import (
    CampaignConfig, CampaignResult, CampaignSummary, run_campaign,
    scheme_oracle,
)
from .cells import (
    FUZZ_MAX_STEPS, FUZZ_SCHEMES, FuzzCellSpec, check_program,
    compile_scheme, execute_fuzz_cell, fuzz_cell_key,
)
from .corpus import (
    iter_corpus, load_reproducer, replay_corpus, save_reproducer,
)
from .shrink import DEFAULT_ORACLE_BUDGET, ShrinkResult, shrink_program
from .strategies import (
    LATTICE, FuzzStrategy, campaign_plan, select_strategies,
)
from .triage import (
    TriageEntry, bucket_id, triage_cell_error, triage_divergence,
)

__all__ = [
    "CampaignConfig", "CampaignResult", "CampaignSummary", "run_campaign",
    "scheme_oracle",
    "FUZZ_MAX_STEPS", "FUZZ_SCHEMES", "FuzzCellSpec", "check_program",
    "compile_scheme", "execute_fuzz_cell", "fuzz_cell_key",
    "iter_corpus", "load_reproducer", "replay_corpus", "save_reproducer",
    "DEFAULT_ORACLE_BUDGET", "ShrinkResult", "shrink_program",
    "LATTICE", "FuzzStrategy", "campaign_plan", "select_strategies",
    "TriageEntry", "bucket_id", "triage_cell_error", "triage_divergence",
]
