"""Triage: turn raw divergences into stable, comparable buckets.

A bucket key is ``(failing pass, divergence kind, first-diff location)``:

* **failing pass** — the first contained pass failure of the scheme's
  compile if it degraded, else the scheme name itself (a silent
  miscompile has no recorded pass failure — the scheme's enabled
  transforms are the suspect set);
* **divergence kind** — :attr:`repro.robust.diffcheck.DiffReport.kind`
  (mem/reg/halt mismatch, crash, timeout, load failure…);
* **first-diff location** — the first mismatch's location token, with hex
  addresses masked to their page so two corpus entries differing only in
  low address bits share a bucket.

Two campaign runs (or a campaign and its replay) that hit the same root
cause therefore land in the same directory under ``corpus/``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

#: Filesystem-safe bucket characters; everything else becomes ``-``.
_SANITIZE = re.compile(r"[^A-Za-z0-9_.@-]+")
#: Hex addresses inside a location token, masked to 4 KiB pages.
_HEX_ADDR = re.compile(r"0x([0-9A-Fa-f]+)")


def _mask_addr(m: re.Match) -> str:
    return f"0x{(int(m.group(1), 16) >> 12):X}xxx"


def bucket_id(failing_pass: str, kind: str, location: str) -> str:
    """The canonical bucket key, safe to use as a directory name."""
    loc = _HEX_ADDR.sub(_mask_addr, location or "none")
    parts = [_SANITIZE.sub("-", p).strip("-") or "none"
             for p in (failing_pass, kind, loc)]
    return "--".join(parts)


@dataclass
class TriageEntry:
    """One bucketed divergence (optionally with its shrunk reproducer)."""

    strategy: str
    seed: int
    scheme: str
    kind: str
    location: str
    failing_pass: str
    report: dict                      # DiffReport.to_dict() payload
    program_text: str = ""            # original failing program (assembly)
    shrunk_text: str = ""             # minimized reproducer, if shrunk
    shrink: Optional[dict] = None     # ShrinkResult.to_dict() payload
    error: Optional[str] = None       # cell-level crash instead of a diff

    @property
    def bucket(self) -> str:
        """This entry's bucket key."""
        return bucket_id(self.failing_pass, self.kind, self.location)

    @property
    def name(self) -> str:
        """Stable per-entry name (strategy + seed identify the program)."""
        return f"{self.strategy}-{self.seed}-{self.scheme}"

    def to_dict(self) -> dict:
        """JSON-serializable form for corpus metadata files."""
        return {
            "bucket": self.bucket,
            "strategy": self.strategy,
            "seed": self.seed,
            "scheme": self.scheme,
            "kind": self.kind,
            "location": self.location,
            "failing_pass": self.failing_pass,
            "report": self.report,
            "shrink": self.shrink,
            "error": self.error,
        }


def triage_divergence(payload: dict, scheme: str) -> TriageEntry:
    """Build a :class:`TriageEntry` from one fuzz-cell payload's scheme.

    *payload* is an :func:`repro.qa.cells.execute_fuzz_cell` result whose
    ``divergent`` list contains *scheme*.
    """
    cell = payload["schemes"][scheme]
    report = cell["report"]
    return TriageEntry(
        strategy=payload["strategy"],
        seed=payload["seed"],
        scheme=scheme,
        kind=report["kind"],
        location=report["first_diff"],
        failing_pass=cell.get("failing_stage") or scheme,
        report=report,
    )


def triage_cell_error(payload: dict) -> TriageEntry:
    """Bucket a cell whose machinery crashed before producing verdicts."""
    error = payload.get("error") or "unknown"
    return TriageEntry(
        strategy=payload["strategy"],
        seed=payload["seed"],
        scheme="cell",
        kind="cell-error",
        location=error.split(":", 1)[0],
        failing_pass="harness",
        report={},
        error=error,
    )
