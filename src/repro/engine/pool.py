"""Process-pool fan-out for independent evaluation cells.

:func:`run_cells` executes a list of :class:`~repro.engine.cells.CellSpec`
and returns one result payload per spec, in input order.  With ``jobs <=
1`` it runs everything in the calling process (sharing compiles across
each benchmark's cells, like the serial runner); with ``jobs > 1`` it
fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Crash containment extends into the worker path: a Python exception inside
a worker is contained by :func:`~repro.engine.cells.execute_cell` itself
(retry once, then a ``FAIL(...)`` payload).  If a worker *process* dies
(OOM kill, interpreter abort), every in-flight and unstarted cell's
future raises — those cells are transparently re-run in the parent
process with the same containment, so one dead worker degrades throughput,
never results.
"""

from __future__ import annotations

from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

from ..isa.program import Program
from .cells import CellSpec, execute_cell


def _run_serial(specs: list[CellSpec],
                programs: Optional[dict[str, Program]] = None) -> list[dict]:
    """In-process fallback: per-benchmark compile sharing, input order."""
    memos: dict[str, dict] = defaultdict(dict)
    out = []
    for spec in specs:
        prog = (programs or {}).get(spec.benchmark)
        out.append(execute_cell(spec, program=prog,
                                compile_memo=memos[spec.benchmark]))
    return out


def run_cells(specs: list[CellSpec], jobs: int = 1,
              programs: Optional[dict[str, Program]] = None) -> list[dict]:
    """Execute all *specs*; returns result payloads in input order.

    *programs* optionally maps benchmark name to an already-built
    :class:`Program`, short-circuiting deserialization on the in-process
    path (worker processes always rebuild from the spec payload).
    """
    if jobs <= 1 or len(specs) <= 1:
        return _run_serial(specs, programs)

    results: list[Optional[dict]] = [None] * len(specs)
    redo: list[int] = []
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as ex:
            futures = [ex.submit(execute_cell, spec) for spec in specs]
            for i, fut in enumerate(futures):
                try:
                    results[i] = fut.result()
                except Exception:  # noqa: BLE001 - worker died; re-run here
                    redo.append(i)
    except Exception:  # noqa: BLE001 - executor setup/teardown failure
        redo.extend(i for i in range(len(specs))
                    if results[i] is None and i not in redo)
    if redo:
        redone = _run_serial([specs[i] for i in redo], programs)
        for i, payload in zip(redo, redone):
            results[i] = payload
    return [r if r is not None else _run_serial([specs[i]], programs)[0]
            for i, r in enumerate(results)]


def run_tasks(fn: Callable, payloads: Sequence, jobs: int = 1) -> list:
    """Generic fan-out: ``[fn(p) for p in payloads]``, optionally parallel.

    The engine-grade sibling of :func:`run_cells` for work units that are
    not (benchmark, scheme) cells — e.g. :mod:`repro.qa` fuzz cells.  *fn*
    must be a module-level picklable callable and each payload picklable;
    containment of Python-level exceptions is *fn*'s own responsibility
    (fuzz cells return failure payloads, mirroring
    :func:`~repro.engine.cells.execute_cell`).  Worker-process death is
    handled here exactly like :func:`run_cells`: the affected payloads are
    transparently re-executed in the calling process, so a dead worker
    degrades throughput, never results.
    """
    if jobs <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]

    results: list = [None] * len(payloads)
    filled = [False] * len(payloads)
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as ex:
            futures = [ex.submit(fn, p) for p in payloads]
            for i, fut in enumerate(futures):
                try:
                    results[i] = fut.result()
                    filled[i] = True
                except Exception:  # noqa: BLE001 - worker died; re-run here
                    pass
    except Exception:  # noqa: BLE001 - executor setup/teardown failure
        pass
    for i, done in enumerate(filled):
        if not done:
            results[i] = fn(payloads[i])
    return results
