"""Process-pool fan-out for independent evaluation cells.

:func:`run_cells` executes a list of :class:`~repro.engine.cells.CellSpec`
and returns one result payload per spec, in input order.  With ``jobs <=
1`` it runs everything in the calling process (sharing compiles across
each benchmark's cells, like the serial runner); with ``jobs > 1`` it
fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Crash containment extends into the worker path: a Python exception inside
a worker is contained by :func:`~repro.engine.cells.execute_cell` itself
(retry once, then a ``FAIL(...)`` payload).  If a worker *process* dies
(OOM kill, interpreter abort), every in-flight and unstarted cell's
future raises — those cells are transparently re-run in the parent
process with the same containment, so one dead worker degrades throughput,
never results.

Oversubscription guard
----------------------
Spawning more workers than the machine has CPUs is a *slowdown*, not a
speedup: process startup plus import cost is paid per worker while the
workers time-slice one another (observed as ``speedup_parallel_over_cold
< 1.0`` in BENCH_engine.json on a 1-CPU box).  :func:`execution_mode`
therefore clamps the worker count to ``min(jobs, n_items, cpu_count)``
and falls back to serial execution when the clamp leaves a single worker.
The decision (mode, workers, and why) is recorded in
:data:`LAST_DECISION` so benchmarks and the CLI can report which path
actually ran.  Set ``REPRO_POOL_FORCE=1`` to bypass the CPU clamp (e.g.
for I/O-bound custom tasks or pool testing on small boxes).
"""

from __future__ import annotations

import os
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..isa.program import Program
from ..obs.metrics import REGISTRY
from .cells import CellSpec, execute_cell


@dataclass(frozen=True)
class PoolDecision:
    """How one fan-out request was actually executed and why."""

    mode: str      # "serial" | "serial-oversubscribed" | "parallel"
    workers: int   # processes actually used (1 for serial modes)
    jobs: int      # what the caller asked for
    n_items: int   # size of the work list
    cpus: int      # os.cpu_count() at decision time

    def to_dict(self) -> dict:
        """JSON-serializable form (bench reports record this)."""
        return {"mode": self.mode, "workers": self.workers,
                "jobs": self.jobs, "n_items": self.n_items,
                "cpus": self.cpus}


#: The most recent :class:`PoolDecision` made in this process, or None.
#: Benchmarks read this right after a run to record which mode executed.
LAST_DECISION: Optional[PoolDecision] = None


def execution_mode(jobs: int, n_items: int) -> PoolDecision:
    """Decide serial vs. parallel for a *jobs* request over *n_items*.

    Workers are clamped to ``min(jobs, n_items, cpu_count)``; a clamp
    down to one worker falls back to serial — reported as mode
    ``"serial-oversubscribed"`` when the caller asked for parallelism
    (``jobs > 1``) but the machine cannot provide it, so the condition is
    visible rather than silently absorbed.  ``REPRO_POOL_FORCE=1``
    disables the CPU clamp (item count still bounds the pool).  The
    decision is stored in :data:`LAST_DECISION` as a side effect.
    """
    global LAST_DECISION
    cpus = os.cpu_count() or 1
    workers = min(jobs, n_items)
    if not os.environ.get("REPRO_POOL_FORCE"):
        workers = min(workers, cpus)
    if workers <= 1:
        mode = ("serial-oversubscribed"
                if jobs > 1 and n_items > 1 else "serial")
        decision = PoolDecision(mode, 1, jobs, n_items, cpus)
    else:
        decision = PoolDecision("parallel", workers, jobs, n_items, cpus)
    LAST_DECISION = decision
    REGISTRY.inc(f"engine.pool.{decision.mode}")
    return decision


def _run_serial(specs: list[CellSpec],
                programs: Optional[dict[str, Program]] = None) -> list[dict]:
    """In-process fallback: compile sharing in input order.

    The memo is keyed by everything that determines a compile —
    benchmark, heuristics, step budget, backend — not just the
    benchmark: the suite's cells are heur-homogeneous per benchmark, but
    :mod:`repro.tune` batches *different* candidate vectors of the same
    benchmark through one call, and those must never share a compile.
    """
    memos: dict[tuple, dict] = defaultdict(dict)
    out = []
    for spec in specs:
        prog = (programs or {}).get(spec.benchmark)
        memo_key = (spec.benchmark, spec.heur, spec.max_steps, spec.backend)
        out.append(execute_cell(spec, program=prog,
                                compile_memo=memos[memo_key]))
    return out


def run_cells(specs: list[CellSpec], jobs: int = 1,
              programs: Optional[dict[str, Program]] = None) -> list[dict]:
    """Execute all *specs*; returns result payloads in input order.

    *programs* optionally maps benchmark name to an already-built
    :class:`Program`, short-circuiting deserialization on the in-process
    path (worker processes always rebuild from the spec payload).

    Worker count follows :func:`execution_mode`: oversubscribed requests
    (more jobs than CPUs can absorb) fall back to serial execution.
    """
    decision = execution_mode(jobs, len(specs))
    if decision.workers <= 1:
        return _run_serial(specs, programs)

    results: list[Optional[dict]] = [None] * len(specs)
    redo: list[int] = []
    try:
        with ProcessPoolExecutor(max_workers=decision.workers) as ex:
            futures = [ex.submit(execute_cell, spec) for spec in specs]
            for i, fut in enumerate(futures):
                try:
                    results[i] = fut.result()
                except Exception:  # noqa: BLE001 - worker died; re-run here
                    redo.append(i)
    except Exception:  # noqa: BLE001 - executor setup/teardown failure
        redo.extend(i for i in range(len(specs))
                    if results[i] is None and i not in redo)
    if redo:
        redone = _run_serial([specs[i] for i in redo], programs)
        for i, payload in zip(redo, redone):
            results[i] = payload
    return [r if r is not None else _run_serial([specs[i]], programs)[0]
            for i, r in enumerate(results)]


def run_tasks(fn: Callable, payloads: Sequence, jobs: int = 1) -> list:
    """Generic fan-out: ``[fn(p) for p in payloads]``, optionally parallel.

    The engine-grade sibling of :func:`run_cells` for work units that are
    not (benchmark, scheme) cells — e.g. :mod:`repro.qa` fuzz cells.  *fn*
    must be a module-level picklable callable and each payload picklable;
    containment of Python-level exceptions is *fn*'s own responsibility
    (fuzz cells return failure payloads, mirroring
    :func:`~repro.engine.cells.execute_cell`).  Worker-process death is
    handled here exactly like :func:`run_cells`: the affected payloads are
    transparently re-executed in the calling process, so a dead worker
    degrades throughput, never results.  Worker count follows
    :func:`execution_mode` (oversubscribed requests run serially).
    """
    decision = execution_mode(jobs, len(payloads))
    if decision.workers <= 1:
        return [fn(p) for p in payloads]

    results: list = [None] * len(payloads)
    filled = [False] * len(payloads)
    try:
        with ProcessPoolExecutor(max_workers=decision.workers) as ex:
            futures = [ex.submit(fn, p) for p in payloads]
            for i, fut in enumerate(futures):
                try:
                    results[i] = fut.result()
                    filled[i] = True
                except Exception:  # noqa: BLE001 - worker died; re-run here
                    pass
    except Exception:  # noqa: BLE001 - executor setup/teardown failure
        pass
    for i, done in enumerate(filled):
        if not done:
            results[i] = fn(payloads[i])
    return results
