"""Canonical cache-key derivation for the evaluation engine.

A cache key must satisfy two properties:

1. **Stability** — the same logical inputs hash to the same key in every
   process, interpreter invocation, and ``PYTHONHASHSEED``.  Everything is
   therefore serialized through :func:`canonical` (dataclasses to plain
   dicts, dict keys stringified and sorted, tuples to lists) and dumped as
   minified sorted-key JSON before hashing.  Programs contribute their
   printed assembly text (uid-free) plus explicit data-segment tables, so
   two structurally identical programs key identically regardless of how
   they were built.
2. **Collision resistance across code changes** — a change to the
   compiler, simulator, or result schema must not resurrect stale
   artifacts.  :data:`SCHEMA_VERSION` is folded into every key as a salt;
   bump it whenever the semantics of cached payloads change.

The full key of one evaluation cell is
``sha256(canonical_json({schema, program, scheme, heur, config,
max_steps, extra}))`` — see :func:`cell_key`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

from ..core.heuristics import FeedbackHeuristics
from ..isa.program import Program
from ..sim.config import MachineConfig

#: Salt folded into every cache key.  Bump on ANY change to the cached
#: payload schema or to code whose output the cache stores (compiler
#: passes, timing model): stale entries then simply stop matching.
#: v2: result payloads carry a ``schema_version`` field (repro.core.serde).
#: v3: fence/spectre counters in result payloads; spectre knobs on
#: FeedbackHeuristics (serde v2).
#: v4: cell keys carry the execution-backend identifier, so a result
#: computed on one backend is never served to a request for the other
#: (serde v3, serve protocol v2 — bumped in lockstep).
#: v5: the melded scheme — meld knobs on FeedbackHeuristics (folded into
#: keys via canonical()), melds_applied in CompileResult payloads
#: (serde v4, serve protocol v3 — bumped in lockstep).
SCHEMA_VERSION = 5


def canonical(obj: Any) -> Any:
    """Reduce *obj* to a canonical JSON-compatible structure.

    Dataclasses become dicts tagged with their class name (so two distinct
    config types with identical fields cannot alias); dict keys are
    stringified (JSON dumps then sorts them); tuples and sets become lists
    (sets sorted).  Raises ``TypeError`` for objects with no canonical
    form — keys must never silently depend on ``repr`` or identity.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            if f.name.startswith("_"):
                continue  # private machinery (e.g. RNG handles), not state
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key")


def canonical_json(obj: Any) -> str:
    """Minified, sorted-key JSON of :func:`canonical` output."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"))


def digest(obj: Any) -> str:
    """sha256 hex digest of *obj*'s canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def program_fingerprint(prog: Program) -> dict:
    """The key-relevant content of a program.

    Delegates to :meth:`Program.to_dict`: printed assembly (uid-free,
    deterministic) plus the data segment, symbols, and code references.
    """
    return prog.to_dict()


def program_digest(prog: Program) -> str:
    """sha256 hex digest of one program's fingerprint."""
    return digest(program_fingerprint(prog))


def cell_key(prog: Program, scheme: str, heur: FeedbackHeuristics,
             config: MachineConfig, max_steps: int,
             schema_version: int = SCHEMA_VERSION,
             extra: Optional[dict] = None,
             backend: str = "reference") -> str:
    """Cache key of one (program, scheme) evaluation cell.

    *config* is the fully resolved :class:`MachineConfig` (predictor and
    overrides applied), so any machine-parameter sweep point keys
    distinctly.  *extra* lets callers fold additional discriminators in
    (it must be canonicalizable).  *backend* names the execution backend
    (``"reference"`` or ``"fast"``); backends are required to produce
    byte-identical payloads, but they key separately so a fastsim bug can
    never poison reference results (and the conformance suite can hold
    both results side by side in one cache).
    """
    return digest({
        "schema": schema_version,
        "program": program_fingerprint(prog),
        "scheme": scheme,
        "heur": heur,
        "config": config,
        "max_steps": max_steps,
        "extra": extra,
        "backend": backend,
    })
