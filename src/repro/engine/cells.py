"""Evaluation cells: the unit of cached / parallel work.

One *cell* is one (benchmark, scheme) table entry: compile the program for
the scheme's pipeline kind, simulate it under the scheme's predictor, and
return statistics.  :class:`CellSpec` is a fully picklable description of
a cell (the program travels as printed assembly + data tables, because
:class:`~repro.isa.program.Program` objects are not picklable), and
:func:`execute_cell` runs one — either in-process or inside a worker
process of :mod:`repro.engine.pool`.

Containment semantics mirror the serial runner exactly (PR 1): a cell
that raises is retried once, then reported as a ``failure`` record the
tables render as ``FAIL(<reason>)``.  When ``timeout`` is set, each
attempt is additionally bounded by a :class:`_watchdog` timer that
raises :class:`CellTimeout` inside the executing thread — it works in
*any* thread (the service workers of :mod:`repro.serve` run cells on
threads, where the former ``SIGALRM`` scheme was a silent no-op), and a
fired watchdog is just another contained failure.

:data:`COUNTERS` counts every *actual* compile and simulation performed
in this process — the engine's warm-cache acceptance test asserts these
stay at zero when every cell hits the artifact cache.
"""

from __future__ import annotations

import ctypes
import threading
import traceback
from dataclasses import dataclass, replace
from typing import Optional

from ..core import serde
from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..core.pipeline import CompileResult, compile_baseline, compile_proposed
from ..isa.program import Program
from ..obs.metrics import REGISTRY
from ..obs.pipeline_obs import maybe_observer
from ..obs.trace import span as obs_span
from ..sim.config import MachineConfig, r10k_config
from ..sim.functional import ExecStats, FunctionalSim
from ..sim.pipeline import TimingSim
from ..sim.stats import SimStats

#: The paper's three schemes — plus the speculative-safety variant of the
#: proposed one (PR 6) and the branch-melding variant (``melded``: arms
#: flattened into native conditional-move selects, repro.transform.meld)
#: — as (scheme, pipeline kind, predictor) rows: the canonical plan the
#: suite, cache keys, and workers all share.
SCHEME_PLAN = (
    ("2bitBP", "base", "twobit"),
    ("Proposed", "prop", "twobit"),
    ("PerfectBP", "base", "perfect"),
    ("safe-speculative", "safe", "twobit"),
    ("melded", "meld", "twobit"),
)

#: Per-cell retry count before a failure is recorded (transient faults).
CELL_RETRIES = 1


@dataclass
class EngineCounters:
    """Process-local count of real compile/simulate executions."""

    compiles: int = 0
    simulates: int = 0

    def reset(self) -> None:
        """Zero both counters (test isolation)."""
        self.compiles = 0
        self.simulates = 0


#: Global execution counters of this process.  Worker processes keep their
#: own instance; the parent's counters therefore measure exactly the work
#: the parent performed (zero on a fully warm cache).
COUNTERS = EngineCounters()


class CellTimeout(RuntimeError):
    """A cell attempt exceeded its wall-clock budget."""


@dataclass(frozen=True)
class CellSpec:
    """Picklable description of one evaluation cell."""

    benchmark: str
    scheme: str
    kind: str                      # "base" | "prop" | "safe" | "meld"
    predictor: str                 # "twobit" | "perfect" | ...
    program: dict                  # Program.to_dict() payload
    heur: FeedbackHeuristics = DEFAULT_HEURISTICS
    config_overrides: tuple = ()   # sorted (field, value) pairs
    max_steps: int = 50_000_000
    timeout: Optional[float] = None
    strict: bool = False
    backend: str = "reference"     # "reference" | "fast" (repro.fastsim)

    def resolve_config(self) -> MachineConfig:
        """The fully resolved machine configuration of this cell."""
        return r10k_config(self.predictor, **dict(self.config_overrides))


def overrides_as_items(config_overrides: Optional[dict]) -> tuple:
    """Normalize a config-override dict into sorted picklable pairs."""
    return tuple(sorted((config_overrides or {}).items()))


def counted_compile(kind: str, prog: Program, heur: FeedbackHeuristics,
                    max_steps: int,
                    backend: str = "reference") -> CompileResult:
    """Compile *prog* for a pipeline *kind*, incrementing the counter.

    Kind ``"safe"`` is the proposed pipeline with the speculative-safety
    guard forced on (the safe-speculative scheme); kind ``"meld"`` forces
    branch melding in place of if-conversion (the melded scheme).  Each
    shares nothing with the ``"prop"`` compile memo because the toggle
    changes the emitted code.  ``backend="fast"`` runs the profiling pass
    of proposed-pipeline compiles on the generated-step executor
    (byte-identical profiles).
    """
    COUNTERS.compiles += 1
    REGISTRY.inc("engine.compiles")
    if kind == "base":
        return compile_baseline(prog)
    if kind == "safe":
        heur = replace(heur, spectre_safe=True)
    elif kind == "meld":
        heur = replace(heur, enable_meld=True)
    return compile_proposed(prog, heur=heur, max_steps=max_steps,
                            backend=backend)


def counted_simulate(prog: Program, config: MachineConfig,
                     max_steps: int,
                     backend: str = "reference") -> tuple[SimStats,
                                                          ExecStats]:
    """Functional + timing simulation, incrementing the counter.

    ``backend="fast"`` routes through :func:`repro.fastsim.backend.simulate`
    (decode-once + generated-step functional + event-bucket timing);
    results are byte-identical and fastsim-internal failures fall back to
    the reference path transparently.
    """
    COUNTERS.simulates += 1
    REGISTRY.inc("engine.simulates")
    if backend == "fast":
        from ..fastsim.backend import simulate as fast_simulate

        return fast_simulate(prog, config, max_steps=max_steps)
    fsim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
    tsim = TimingSim(config, observer=maybe_observer())
    stats = tsim.run(fsim.trace())
    return stats, fsim.stats


def _short_reason(exc: BaseException) -> str:
    """One-line classification of a cell failure for table rendering."""
    text = str(exc).splitlines()[0] if str(exc) else ""
    name = type(exc).__name__
    return f"{name}: {text}"[:80] if text else name


def _failure_payload(benchmark: str, scheme: str,
                     exc: BaseException) -> dict:
    detail = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)[-4:])
    return serde.stamp(
        {"benchmark": benchmark, "scheme": scheme, "stats": None,
         "exec_stats": None, "compile_result": None,
         "failure": _short_reason(exc), "failure_detail": detail})


def _async_raise(thread_id: int, exc_type: type) -> bool:
    """Schedule *exc_type* to be raised inside the thread *thread_id*.

    Uses ``PyThreadState_SetAsyncExc``: the exception surfaces at the
    target thread's next bytecode boundary, which is exactly how the old
    ``SIGALRM`` handler behaved for the main thread — except this works
    for *any* Python thread.  Returns False when the interpreter refused
    (unknown thread id, or a restricted runtime without ``ctypes``
    access), in which case the attempt simply runs unbounded, matching
    the previous no-op fallback semantics.
    """
    try:
        n = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), ctypes.py_object(exc_type))
    except (AttributeError, ValueError):
        return False
    if n > 1:  # somehow hit several states: undo rather than spray
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None)
        return False
    return n == 1


class _watchdog:
    """Context manager bounding one cell attempt in any thread.

    Arms a :class:`threading.Timer` that raises :class:`CellTimeout`
    inside the *executing* thread when the budget elapses.  Unlike the
    former ``SIGALRM`` scheme this works off the main thread (service
    workers, pool shims) and on non-POSIX hosts.  A no-op when *seconds*
    is falsy.

    Disarming takes a lock shared with the timer callback, so once
    ``__exit__`` starts no late timeout can fire.  The one unavoidable
    window — the callback scheduled the exception but the thread has not
    reached a bytecode boundary yet — surfaces inside the caller's
    containment ``try`` (``execute_cell`` retries the cell), never in
    unrelated code.
    """

    def __init__(self, seconds: Optional[float]):
        self.seconds = float(seconds) if seconds else 0.0
        self._timer: Optional[threading.Timer] = None
        self._lock = threading.Lock()
        self._armed = False
        self.fired = False

    def __enter__(self) -> "_watchdog":
        if not self.seconds:
            return self
        thread_id = threading.get_ident()

        def _fire() -> None:
            with self._lock:
                if not self._armed:
                    return
                self.fired = _async_raise(thread_id, CellTimeout)

        self._armed = True
        self._timer = threading.Timer(self.seconds, _fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._armed = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


def execute_cell(spec: CellSpec, program: Optional[Program] = None,
                 compile_memo: Optional[dict] = None) -> dict:
    """Run one cell; returns a plain-dict :class:`SchemeResult` payload.

    *program* short-circuits payload deserialization when the caller
    already holds the Program (in-process fast path).  *compile_memo*
    shares successful compiles across the cells of one benchmark (the
    2bitBP and PerfectBP columns reuse the same baseline compile), exactly
    as the serial runner does; failed compiles are retried per cell.

    With ``spec.strict`` the first exception propagates; otherwise the
    cell is retried once and then recorded as a failure payload.
    """
    with obs_span(f"cell.{spec.scheme}", benchmark=spec.benchmark,
                  scheme=spec.scheme) as sp:
        last: Optional[BaseException] = None
        memo = compile_memo if compile_memo is not None else {}
        for _ in range(CELL_RETRIES + 1):
            try:
                with _watchdog(spec.timeout):
                    prog = program if program is not None \
                        else Program.from_dict(spec.program)
                    # The backend kwarg travels only when non-default, so
                    # tests that monkeypatch counted_compile/counted_simulate
                    # with the original signatures keep working.
                    bk = {"backend": spec.backend} \
                        if spec.backend != "reference" else {}
                    if spec.kind not in memo:
                        memo[spec.kind] = counted_compile(
                            spec.kind, prog, spec.heur, spec.max_steps,
                            **bk)
                    cr = memo[spec.kind]
                    stats, exec_stats = counted_simulate(
                        cr.program, spec.resolve_config(), spec.max_steps,
                        **bk)
                return serde.stamp(
                    {"benchmark": spec.benchmark, "scheme": spec.scheme,
                     "stats": stats.to_dict(),
                     "exec_stats": exec_stats.to_dict(),
                     "compile_result": cr.to_dict(),
                     "failure": None, "failure_detail": ""})
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                if spec.strict:
                    raise
                last = exc
        sp.set("failure", _short_reason(last))
        return _failure_payload(spec.benchmark, spec.scheme, last)
