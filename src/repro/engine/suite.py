"""Cached, parallel three-scheme suite execution.

:func:`run_suite` is the engine behind ``repro.eval.runner.run_suite``:
the same (benchmark, scheme) grid, with two new capabilities layered on
top of the PR 1 containment semantics:

* **artifact caching** — each cell is keyed by a content digest of
  (program, scheme, heuristics, machine config, step budget, schema
  version); a hit deserializes the stored stats and decision trail
  without compiling or simulating anything;
* **parallel fan-out** — cache misses run through the process pool when
  ``jobs > 1``.

Compatibility contract: with ``jobs=1`` and no cache, execution routes
through ``repro.eval.runner.run_benchmark`` — looked up *at call time* on
the runner module — so fault-injection tests (and anyone else) can still
monkeypatch the serial path.  A benchmark with any cache miss recomputes
all three of its cells through that path (compiles are shared within a
benchmark, so a lone miss costs nearly a full benchmark anyway) and
refreshes the cache.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from .._deprecation import resolve_impl
from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..isa.program import Program
from ..obs.trace import span as obs_span
from ..workloads import benchmark_programs
from .cache import ArtifactCache
from .cells import SCHEME_PLAN, CellSpec, overrides_as_items
from .keys import cell_key
from .pool import run_cells

#: Accepted forms of the ``cache`` argument.
CacheLike = Union[None, bool, str, ArtifactCache]


def coerce_cache(cache: CacheLike) -> Optional[ArtifactCache]:
    """Normalize the ``cache`` argument: None/False off, True default dir,
    a path makes a store there, an :class:`ArtifactCache` passes through."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ArtifactCache()
    if isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(cache)


def _all_fail_run(name: str, exc: BaseException):
    """A BenchmarkRun whose three cells all failed (construction crash)."""
    from ..eval.runner import BenchmarkRun, SchemeResult, _short_reason

    reason = _short_reason(exc)
    return BenchmarkRun(name=name, results={
        scheme: SchemeResult(name, scheme, failure=reason)
        for scheme, _, _ in SCHEME_PLAN})


def run_suite(scale: float = 1.0,
              heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
              benchmarks: Optional[dict[str, Program]] = None,
              config_overrides: Optional[dict] = None,
              progress: Optional[Callable[[str], None]] = None,
              max_steps: int = 50_000_000,
              strict: bool = False,
              jobs: int = 1,
              cache: CacheLike = None,
              timeout: Optional[float] = None,
              seed: Optional[int] = None,
              backend: Optional[str] = None):
    """Run the full suite through the cache and (optionally) the pool.

    Returns ``{benchmark: BenchmarkRun}`` in benchmark order, exactly like
    the serial runner.  *jobs* > 1 fans cache misses out over worker
    processes; *cache* enables the artifact store (see
    :func:`coerce_cache`); *timeout* bounds each parallel cell attempt in
    seconds; *seed* re-seeds the synthetic workload generators (identical
    inputs hash identically, so reruns hit the cache).  *backend* selects
    the execution backend (``"reference"`` or ``"fast"``); None defers to
    the ``REPRO_BACKEND`` environment variable, then ``"reference"``.
    Backends produce byte-identical payloads but key separately in the
    artifact cache.
    """
    from ..eval import runner as _runner  # late: avoids an import cycle,
    # and keeps run_benchmark/monkeypatches resolvable at call time.
    from ..fastsim.backend import resolve_backend

    backend = resolve_backend(backend)
    with obs_span("suite.run", scale=scale, jobs=jobs,
                  cached=cache is not None, backend=backend):
        return _run_suite_inner(scale, heur, benchmarks, config_overrides,
                                progress, max_steps, strict, jobs, cache,
                                timeout, seed, backend, _runner)


def _run_suite_inner(scale, heur, benchmarks, config_overrides, progress,
                     max_steps, strict, jobs, cache, timeout, seed, backend,
                     _runner):
    """Body of :func:`run_suite` (split out so the span wraps it whole)."""
    store = coerce_cache(cache)
    if benchmarks is not None:
        programs = benchmarks
    elif seed is not None:
        programs = benchmark_programs(scale, seed=seed)
    else:
        # Attribute lookup on the runner module, so tests that shrink the
        # suite by monkeypatching ``runner.benchmark_programs`` (which may
        # not accept ``seed``) keep working.
        programs = _runner.benchmark_programs(scale)
    overrides = config_overrides or {}
    over_items = overrides_as_items(overrides)

    runs: dict[str, object] = {}
    # (name, scheme) -> SchemeResult recovered from the artifact cache
    hits: dict[tuple[str, str], object] = {}
    # cells to compute, with their cache keys for the write-back
    miss_specs: list[CellSpec] = []
    miss_keys: dict[tuple[str, str], str] = {}
    broken: dict[str, BaseException] = {}

    for name, prog in programs.items():
        if progress:
            progress(name)
        try:
            payload_d = prog.to_dict()
            for scheme, kind, predictor in SCHEME_PLAN:
                spec = CellSpec(
                    benchmark=name, scheme=scheme, kind=kind,
                    predictor=predictor, program=payload_d, heur=heur,
                    config_overrides=over_items, max_steps=max_steps,
                    timeout=timeout, strict=strict, backend=backend)
                key = None
                if store is not None:
                    key = cell_key(prog, scheme, heur,
                                   spec.resolve_config(), max_steps,
                                   backend=backend)
                    cached = store.get(key)
                    if cached is not None:
                        hits[(name, scheme)] = \
                            _runner.SchemeResult.from_dict(cached)
                        continue
                    miss_keys[(name, scheme)] = key
                miss_specs.append(spec)
        except Exception as exc:  # noqa: BLE001 - keying/serialization crash
            if strict:
                raise
            broken[name] = exc
            miss_specs = [s for s in miss_specs if s.benchmark != name]

    if jobs > 1:
        fresh = _parallel_misses(miss_specs, programs, jobs, strict)
    else:
        fresh = _serial_misses(_runner, miss_specs, programs, hits, heur,
                               config_overrides, max_steps, strict, backend)

    for name in programs:
        if name in broken:
            runs[name] = _all_fail_run(name, broken[name])
            continue
        results = {}
        for scheme, _, _ in SCHEME_PLAN:
            cell = fresh.get((name, scheme), hits.get((name, scheme)))
            if cell is None:  # pool returned nothing for it (cannot
                cell = _runner.SchemeResult(  # happen in practice)
                    name, scheme, failure="MissingResult")
            results[scheme] = cell
        runs[name] = _runner.BenchmarkRun(name=name, results=results)
        if store is not None:
            for scheme, _, _ in SCHEME_PLAN:
                cell = results[scheme]
                key = miss_keys.get((name, scheme))
                if key is not None and cell.ok:
                    store.put(key, cell.to_dict())
    return runs


def _serial_misses(_runner, miss_specs, programs, hits, heur,
                   config_overrides, max_steps, strict,
                   backend="reference"):
    """Recompute missing cells via the runner's serial per-benchmark path.

    A benchmark with *any* miss is recomputed whole through
    ``run_benchmark`` (attribute lookup on the runner module, preserving
    monkeypatchability); its cached hits are superseded by the fresh
    results so one benchmark never mixes artifact generations.
    """
    fresh: dict[tuple[str, str], object] = {}
    names = []
    for spec in miss_specs:
        if spec.benchmark not in names:
            names.append(spec.benchmark)
    # The backend kwarg is passed only when non-default, so monkeypatched
    # run_benchmark replacements with the original signature keep working.
    extra = {"backend": backend} if backend != "reference" else {}
    for name in names:
        # Attribute lookup keeps monkeypatched replacements (no shim
        # attribute) in play; resolve_impl skips the deprecation shim on
        # the real function so internal routing never warns.
        fn = resolve_impl(_runner.run_benchmark)
        try:
            run = fn(
                name, programs[name], heur=heur,
                config_overrides=config_overrides,
                max_steps=max_steps, strict=strict, **extra)
        except Exception as exc:  # noqa: BLE001 - construction failure
            if strict:
                raise
            run = _all_fail_run(name, exc)
        for scheme, _, _ in SCHEME_PLAN:
            fresh[(name, scheme)] = run.results[scheme]
            hits.pop((name, scheme), None)  # superseded by fresh result
    return fresh


def _parallel_misses(miss_specs, programs, jobs, strict):
    """Fan cache misses out over the pool; strict re-raises failures."""
    from ..eval.runner import SchemeResult

    payloads = run_cells(miss_specs, jobs=jobs, programs=programs)
    fresh: dict[tuple[str, str], object] = {}
    for spec, payload in zip(miss_specs, payloads):
        cell = SchemeResult.from_dict(payload)
        if strict and not cell.ok:
            raise RuntimeError(
                f"{cell.benchmark}/{cell.scheme} failed: {cell.failure}\n"
                f"{cell.failure_detail}")
        fresh[(spec.benchmark, spec.scheme)] = cell
    return fresh
