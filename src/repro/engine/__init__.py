"""Parallel evaluation engine with a content-addressed artifact cache.

The compile→simulate pipeline behind every ``tables``/``verify``/benchmark
run, turned into a proper execution engine:

* :mod:`~repro.engine.keys` — canonical, process-stable cache keys
  (dataclass → canonical JSON → sha256, salted with a schema version);
* :mod:`~repro.engine.cache` — content-addressed on-disk artifact store
  (``.repro-cache/`` or ``$REPRO_CACHE_DIR``) with atomic writes,
  corrupted-entry recovery, and size-capped LRU eviction;
* :mod:`~repro.engine.cells` — the picklable unit of work (one
  benchmark × scheme cell) with crash containment, retry, and an optional
  per-attempt timeout;
* :mod:`~repro.engine.pool` — process-pool fan-out with an in-process
  fallback at ``jobs=1`` and worker-death recovery;
* :mod:`~repro.engine.suite` — the cached/parallel three-scheme suite
  runner that ``repro.eval.run_suite`` delegates to;
* :mod:`~repro.engine.sweep` — declarative cartesian design-space sweeps
  reusing the same cache and pool.

A warm cache makes ``python -m repro tables`` perform **zero** compiles
and simulations (assert via :data:`~repro.engine.cells.COUNTERS`); a cold
``--jobs N`` run fans cells out over worker processes.  See
docs/ENGINE.md for the cache layout and invalidation rules.
"""

from .cache import ArtifactCache, CacheCounters, default_cache_dir
from .cells import (
    CELL_RETRIES, COUNTERS, SCHEME_PLAN, CellSpec, CellTimeout,
    EngineCounters, execute_cell,
)
from .keys import (
    SCHEMA_VERSION, canonical, canonical_json, cell_key, digest,
    program_digest, program_fingerprint,
)
from .pool import PoolDecision, execution_mode, run_cells, run_tasks
from .suite import coerce_cache, run_suite
from .sweep import SweepSpec, grid_from_dict, run_sweep

__all__ = [
    "ArtifactCache", "CacheCounters", "default_cache_dir",
    "CELL_RETRIES", "COUNTERS", "SCHEME_PLAN", "CellSpec", "CellTimeout",
    "EngineCounters", "execute_cell",
    "SCHEMA_VERSION", "canonical", "canonical_json", "cell_key", "digest",
    "program_digest", "program_fingerprint",
    "PoolDecision", "execution_mode", "run_cells", "run_tasks",
    "coerce_cache", "run_suite",
    "SweepSpec", "grid_from_dict", "run_sweep",
]
