"""Content-addressed on-disk artifact store for evaluation results.

Layout (one JSON file per artifact, sharded on the first two key hex
digits to keep directories small)::

    <root>/
      ab/
        ab3f...e1.json      {"schema": 1, "key": "ab3f...e1",
                             "payload": {...}}

The root defaults to ``.repro-cache/`` in the current directory and can be
redirected with the ``REPRO_CACHE_DIR`` environment variable (or the
``cache_dir`` CLI flags).  Writes are atomic (temp file + ``os.replace``)
so a crashed or parallel writer can never leave a half-written entry a
reader would trust; a corrupted or schema-mismatched entry is deleted and
reported as a miss, never an error.

Eviction is size-capped LRU: whenever a put pushes the store above
``max_bytes`` (default 256 MB, override ``REPRO_CACHE_MAX_MB``), the
oldest entries by access time are deleted until the store fits.  Reads
refresh an entry's timestamp, so hot cells survive.

The store is safe under concurrent multi-process mutation (the
:mod:`repro.serve` worker fleet shares one on-disk root): every
``ENOENT`` raced against another process's eviction or clear — during a
read, a size scan, or the LRU sort — is treated as *already evicted* and
becomes a miss or a skipped accounting row, never an exception.
``tests/engine/test_cache_concurrent.py`` hammers one store from
multiple processes to hold this invariant.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..obs.metrics import REGISTRY
from .keys import SCHEMA_VERSION

#: Default eviction cap (bytes) unless ``REPRO_CACHE_MAX_MB`` is set.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the CWD."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or ".repro-cache")


@dataclass
class CacheCounters:
    """In-process hit/miss accounting of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (1.0 when no lookup happened yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.puts = 0
        self.evictions = self.corrupt = 0


class ArtifactCache:
    """Content-addressed JSON artifact store with LRU size capping.

    Keys are sha256 hex digests (see :mod:`repro.engine.keys`); payloads
    are arbitrary JSON-serializable dicts.  All failure modes of the
    storage layer (corrupt file, permission race, concurrent delete)
    degrade to cache misses.
    """

    def __init__(self, root: Optional[str | Path] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            env = os.environ.get("REPRO_CACHE_MAX_MB")
            max_bytes = (int(float(env) * 1024 * 1024) if env
                         else DEFAULT_MAX_BYTES)
        self.max_bytes = max_bytes
        self.counters = CacheCounters()

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [p for p in self.root.glob("??/*.json") if p.is_file()]

    # -- core API ----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Payload stored under *key*, or None (counted as hit/miss).

        A file that cannot be read, fails to parse, or carries a stale
        schema is deleted and treated as a miss — the engine then simply
        recomputes the cell ("corrupted entry" is a recoverable state,
        never a crash).
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            if (not isinstance(entry, dict)
                    or entry.get("schema") != SCHEMA_VERSION
                    or entry.get("key") != key
                    or "payload" not in entry):
                raise ValueError("schema/key mismatch")
        except FileNotFoundError:
            self.counters.misses += 1
            REGISTRY.inc("engine.cache.misses")
            return None
        except (OSError, ValueError):
            self._discard(path)
            self.counters.corrupt += 1
            self.counters.misses += 1
            REGISTRY.inc("engine.cache.corrupt")
            REGISTRY.inc("engine.cache.misses")
            return None
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass
        self.counters.hits += 1
        REGISTRY.inc("engine.cache.hits")
        return entry["payload"]

    def put(self, key: str, payload: dict) -> None:
        """Atomically store *payload* under *key*, then enforce the cap."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"schema": SCHEMA_VERSION, "key": key,
                           "payload": payload})
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except OSError:
            self._discard(Path(tmp))
            return
        self.counters.puts += 1
        REGISTRY.inc("engine.cache.puts")
        self._evict(keep=path)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for p in self._entry_files():
            self._discard(p)
            removed += 1
        return removed

    # -- maintenance -------------------------------------------------------

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _evict(self, keep: Optional[Path] = None) -> None:
        """LRU-evict until total size fits ``max_bytes``.

        The entry just written (*keep*) is exempt, so a single oversized
        artifact cannot evict itself into a livelock.
        """
        files = self._entry_files()
        sizes: dict[Path, int] = {}
        ages: dict[Path, float] = {}
        for p in files:
            try:
                st = p.stat()
            except OSError:  # deleted by a concurrent process: already
                continue     # evicted, nothing left to account for
            sizes[p] = st.st_size
            ages[p] = st.st_mtime
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return
        by_age = sorted(sizes, key=lambda p: ages[p])
        for p in by_age:
            if total <= self.max_bytes:
                break
            if keep is not None and p == keep:
                continue
            total -= sizes[p]
            self._discard(p)
            self.counters.evictions += 1
            REGISTRY.inc("engine.cache.evictions")

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Snapshot: on-disk state plus this process's counters."""
        files = self._entry_files()
        total = 0
        for p in files:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        c = self.counters
        return {
            "root": str(self.root),
            "entries": len(files),
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "hits": c.hits,
            "misses": c.misses,
            "puts": c.puts,
            "evictions": c.evictions,
            "corrupt": c.corrupt,
            "hit_rate": c.hit_rate,
        }
