"""Declarative design-space sweeps over the evaluation engine.

The paper's reproductions gain value with every configuration evaluated
per unit time (compare the exhaustive design-space sweeps of Mitrevski &
Gušev and the fetch-rate sweeps of Ramachandran & Johnson in PAPERS.md).
:class:`SweepSpec` describes a cartesian product over workload scale
factors, machine-configuration fields (issue widths, queue sizes, ...),
and feedback-heuristic thresholds; :func:`run_sweep` evaluates every
point through the same artifact cache and process pool as the suite
runner and emits one flat JSON-serializable record per (point, benchmark,
scheme) cell.

Example::

    spec = SweepSpec(scales=(0.1, 0.3),
                     config_grid={"fetch_width": (2, 4, 8)},
                     heur_grid={"speculation_bias": (0.5, 0.65, 0.8)})
    records = run_sweep(spec, jobs=4, cache=True)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields as dc_fields, replace
from typing import Callable, Iterator, Optional

from .._deprecation import deprecated
from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..obs.trace import span as obs_span
from ..sim.config import MachineConfig
from ..workloads import benchmark_programs
from .suite import CacheLike, run_suite


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian design-space sweep description.

    ``config_grid`` maps :class:`~repro.sim.config.MachineConfig` field
    names to the values to sweep; ``heur_grid`` does the same for
    :class:`~repro.core.heuristics.FeedbackHeuristics` fields.  Unknown
    field names raise ``ValueError`` at validation time, not deep inside a
    worker.  ``benchmarks`` limits the workload set (None = all four).
    """

    scales: tuple[float, ...] = (1.0,)
    config_grid: tuple[tuple[str, tuple], ...] = ()
    heur_grid: tuple[tuple[str, tuple], ...] = ()
    benchmarks: Optional[tuple[str, ...]] = None
    max_steps: int = 50_000_000
    seed: Optional[int] = None

    def validate(self) -> None:
        """Reject unknown or duplicated axis field names early.

        Every error names the offending grid (``config_grid`` vs
        ``heur_grid``) *and* field.  Duplicate fields — repeated within
        one grid, or appearing in both grids — are rejected instead of
        silently letting the later axis override the earlier one when
        :meth:`points` flattens each combination into a dict.
        """
        config_names = {f.name for f in dc_fields(MachineConfig)}
        heur_names = {f.name for f in dc_fields(FeedbackHeuristics)}
        seen: dict[str, str] = {}  # field -> grid that first claimed it
        for grid_name, grid, known, kind in (
                ("config_grid", self.config_grid, config_names,
                 "MachineConfig"),
                ("heur_grid", self.heur_grid, heur_names,
                 "FeedbackHeuristics")):
            for name, _ in grid:
                if name not in known:
                    raise ValueError(
                        f"{grid_name}: unknown {kind} field {name!r}")
                if grid_name == "config_grid" and name == "predictor":
                    raise ValueError(
                        "config_grid: the predictor axis is fixed by the "
                        "scheme plan; sweep other fields")
                if name in seen:
                    where = ("appears twice in " + grid_name
                             if seen[name] == grid_name else
                             f"appears in both {seen[name]} and {grid_name}")
                    raise ValueError(
                        f"duplicate sweep axis {name!r}: {where} "
                        f"(later values would silently override earlier "
                        f"ones)")
                seen[name] = grid_name

    def points(self) -> Iterator[dict]:
        """Every sweep point: ``{"scale", "config", "heur"}`` dicts."""
        config_axes = [[(name, v) for v in values]
                       for name, values in self.config_grid]
        heur_axes = [[(name, v) for v in values]
                     for name, values in self.heur_grid]
        for scale in self.scales:
            for config_combo in itertools.product(*config_axes):
                for heur_combo in itertools.product(*heur_axes):
                    yield {"scale": scale,
                           "config": dict(config_combo),
                           "heur": dict(heur_combo)}

    @property
    def num_points(self) -> int:
        """Number of sweep points (before the benchmark × scheme fan-out)."""
        n = len(self.scales)
        for _, values in self.config_grid:
            n *= len(values)
        for _, values in self.heur_grid:
            n *= len(values)
        return n


def grid_from_dict(grid: dict) -> tuple[tuple[str, tuple], ...]:
    """Normalize ``{field: iterable}`` into the spec's hashable form."""
    return tuple(sorted((name, tuple(values))
                        for name, values in grid.items()))


def _cell_record(point: dict, name: str, cell) -> dict:
    """One flat JSON record for a (sweep point, benchmark, scheme) cell."""
    rec = {
        "scale": point["scale"],
        "config": dict(point["config"]),
        "heur": dict(point["heur"]),
        "benchmark": name,
        "scheme": cell.scheme,
        "ok": cell.ok,
        "failure": cell.failure,
        "cycles": None, "committed": None, "annulled": None,
        "ipc": None, "branch_accuracy": None,
        "degraded": None, "fallback": None,
    }
    if cell.ok:
        st = cell.stats
        rec.update(cycles=st.cycles, committed=st.committed,
                   annulled=st.annulled, ipc=st.ipc,
                   branch_accuracy=st.predictor.accuracy)
    if cell.compile_result is not None:
        rec.update(degraded=cell.compile_result.degraded,
                   fallback=cell.compile_result.fallback)
    return rec


def run_sweep_impl(spec: SweepSpec, jobs: int = 1, cache: CacheLike = None,
                   progress: Optional[Callable[[str], None]] = None,
                   timeout: Optional[float] = None,
                   backend: Optional[str] = None) -> list[dict]:
    """Evaluate every point of *spec*; returns one record per cell.

    Each point reuses the suite engine, so the artifact cache deduplicates
    across points (e.g. the 2bitBP baseline of a config point is shared by
    every heuristic variation, which only changes the Proposed cells) and
    across repeated sweep invocations.  Each point emits a ``sweep.point``
    tracing span carrying the point's scale/config/heur attributes.
    """
    spec.validate()
    records: list[dict] = []
    for i, point in enumerate(spec.points()):
        if progress:
            progress(f"point {i + 1}/{spec.num_points}: "
                     f"scale={point['scale']} config={point['config']} "
                     f"heur={point['heur']}")
        heur = (replace(DEFAULT_HEURISTICS, **point["heur"])
                if point["heur"] else DEFAULT_HEURISTICS)
        with obs_span("sweep.point", index=i, scale=point["scale"],
                      config=dict(point["config"]),
                      heur=dict(point["heur"])):
            programs = benchmark_programs(point["scale"], seed=spec.seed)
            if spec.benchmarks is not None:
                programs = {n: p for n, p in programs.items()
                            if n in spec.benchmarks}
            runs = run_suite(benchmarks=programs, heur=heur,
                             config_overrides=point["config"],
                             max_steps=spec.max_steps, jobs=jobs,
                             cache=cache, timeout=timeout, backend=backend)
        for name, run in runs.items():
            for cell in run.results.values():
                records.append(_cell_record(point, name, cell))
    return records


run_sweep = deprecated("repro.api.Session.sweep")(run_sweep_impl)
