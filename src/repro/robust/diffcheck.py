"""Differential checker: transformed programs must behave like the original.

Runs the :class:`~repro.sim.functional.FunctionalSim` on the original and
the transformed program and compares the architectural outcome:

* **memory** — the complete final memory image (every page either program
  touched);
* **halt / trap behavior** — both programs must halt the same way; a
  transformed program that diverges (PC out of range), faults (alignment
  trap), or blows the step-budget watchdog is reported with the failing PC
  and step count instead of hanging the caller;
* **registers** — off by default because software renaming legitimately
  retargets destination registers (paper Section 1: speculated destinations
  are renamed "from the pool of free registers"); pass ``registers=`` to
  compare an explicit live-out subset.

The watchdog budget for the transformed run is proportional to the
original's dynamic length (``step_ratio``), so a transformed program stuck
in an infinite loop produces a bounded, classified failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import serde
from ..isa.program import Program
from ..sim.functional import ExecStats, FunctionalSim, SimulationError
from ..sim.memory import Memory

#: Minimum transformed-run step budget, regardless of original length.
MIN_BUDGET = 10_000


#: Divergence-kind labels :meth:`DiffReport.kind` can return, in the order
#: they are tested.  Triage buckets (repro.qa) key on these.
DIVERGENCE_KINDS = (
    "equivalent", "original-failed", "load-failure", "timeout", "crash",
    "halt-mismatch", "mem-mismatch", "reg-mismatch",
)


@dataclass
class DiffReport:
    """Outcome of one differential check."""

    equivalent: bool
    reason: str = ""                   # empty when equivalent
    original_steps: int = 0
    transformed_steps: int = 0
    mismatches: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        if self.equivalent:
            return (f"equivalent ({self.original_steps} vs "
                    f"{self.transformed_steps} steps)")
        lines = [f"NOT equivalent: {self.reason}"]
        lines += [f"  {m}" for m in self.mismatches[:8]]
        return "\n".join(lines)

    @property
    def kind(self) -> str:
        """Coarse divergence class (one of :data:`DIVERGENCE_KINDS`).

        Classifies *how* the check failed — reference run unusable,
        transformed program failed to load / ran away / trapped, or a
        clean run ended in the wrong architectural state — so failures
        with the same root cause bucket together regardless of the exact
        addresses and values in the message.
        """
        if self.equivalent:
            return "equivalent"
        if self.reason.startswith("original"):
            return "original-failed"
        if "failed to load" in self.reason:
            return "load-failure"
        if self.reason.startswith("transformed:"):
            return ("timeout" if "StepBudgetExceeded" in self.reason
                    else "crash")
        first = self.mismatches[0] if self.mismatches else ""
        if first.startswith("halted:"):
            return "halt-mismatch"
        if first.startswith("mem["):
            return "mem-mismatch"
        return "reg-mismatch"

    @property
    def first_diff(self) -> str:
        """Location token of the first mismatch (``mem[0x...]``, a register
        name, or the failing pc for crash/timeout kinds); empty when
        equivalent."""
        if self.equivalent:
            return ""
        if self.mismatches:
            return self.mismatches[0].split(":", 1)[0]
        for token in self.reason.split():
            if token.startswith("pc="):
                return token.rstrip(":,")
        return self.reason[:40]

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`).

        Includes the derived ``kind`` and ``first_diff`` fields so
        downstream triage can bucket without re-parsing message text.
        """
        return serde.stamp({
            "equivalent": self.equivalent,
            "reason": self.reason,
            "original_steps": self.original_steps,
            "transformed_steps": self.transformed_steps,
            "mismatches": list(self.mismatches),
            "kind": self.kind,
            "first_diff": self.first_diff,
        })

    @classmethod
    def from_dict(cls, d: dict) -> "DiffReport":
        """Inverse of :meth:`to_dict` (derived fields are recomputed;
        the schema version is checked)."""
        serde.check(d, "DiffReport")
        return cls(equivalent=d["equivalent"], reason=d["reason"],
                   original_steps=d["original_steps"],
                   transformed_steps=d["transformed_steps"],
                   mismatches=list(d["mismatches"]))


def _nonzero_image(mem: Memory) -> dict[int, bytes]:
    """Final memory as {page_number: content} with all-zero pages dropped
    (untouched memory reads as zero, so zero pages are not observable)."""
    out: dict[int, bytes] = {}
    for pno, page in mem._pages.items():
        if any(page):
            out[pno] = bytes(page)
    return out


def _first_diff(a: bytes, b: bytes, base: int) -> str:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"mem[0x{base + i:08X}]: {x:#04x} != {y:#04x}"
    return f"mem page at 0x{base:08X} differs in length"


def _run(prog: Program, max_steps: int) -> tuple[FunctionalSim,
                                                 Optional[str]]:
    """Execute *prog*; return (sim, failure reason or None)."""
    try:
        sim = FunctionalSim(prog, max_steps=max_steps, record_outcomes=False)
    except Exception as exc:  # noqa: BLE001 - load-time corruption
        raise _LoadError(f"{type(exc).__name__}: {exc}") from exc
    try:
        sim.run()
        return sim, None
    except SimulationError as exc:
        return sim, (f"{type(exc).__name__} at pc={exc.pc} after "
                     f"{exc.steps} steps: {exc}")
    except Exception as exc:  # noqa: BLE001 - e.g. AlignmentError trap
        return sim, (f"{type(exc).__name__} at pc={sim.pc} after "
                     f"{sim.stats.steps} steps: {exc}")


class _LoadError(Exception):
    """Program could not even be loaded into the simulator."""


def check_equivalence(original: Program, transformed: Program, *,
                      max_steps: int = 20_000_000, step_ratio: float = 8.0,
                      registers: Sequence[str] = ()) -> DiffReport:
    """Co-simulate *original* and *transformed*; compare final outcomes.

    The original is trusted: if it fails to halt within *max_steps* the
    check is inconclusive and reported as non-equivalent with an
    ``original:`` reason (callers treat that as "cannot certify").
    """
    try:
        ref, ref_fail = _run(original, max_steps)
    except _LoadError as exc:
        return DiffReport(False, reason=f"original failed to load: {exc}")
    if ref_fail is not None:
        return DiffReport(False, reason=f"original: {ref_fail}",
                          original_steps=ref.stats.steps)

    budget = min(max_steps, max(MIN_BUDGET,
                                int(ref.stats.steps * step_ratio)))
    try:
        out, out_fail = _run(transformed, budget)
    except _LoadError as exc:
        return DiffReport(False, reason=f"transformed failed to load: {exc}",
                          original_steps=ref.stats.steps)
    if out_fail is not None:
        return DiffReport(False, reason=f"transformed: {out_fail}",
                          original_steps=ref.stats.steps,
                          transformed_steps=out.stats.steps)

    report = DiffReport(True, original_steps=ref.stats.steps,
                        transformed_steps=out.stats.steps)
    # Jump-table words (code_refs) hold *code addresses* that the loader
    # re-resolves against each program's own label layout: they differ
    # between layouts by design and are not architectural state.
    skip = {a + k for a in (set(original.code_refs) | set(transformed.code_refs))
            for k in range(4)}
    _compare_outcomes(ref, out, registers, report, skip)
    return report


def _compare_outcomes(ref: FunctionalSim, out: FunctionalSim,
                      registers: Sequence[str], report: DiffReport,
                      skip: frozenset | set = frozenset()) -> None:
    if ref.stats.halted != out.stats.halted:
        report.equivalent = False
        report.mismatches.append(
            f"halted: {ref.stats.halted} != {out.stats.halted}")
    ref_mem = _nonzero_image(ref.mem)
    out_mem = _nonzero_image(out.mem)
    for pno in sorted(set(ref_mem) | set(out_mem)):
        base = pno << 12
        a = bytearray(ref_mem.get(pno, bytes(4096)))
        b = bytearray(out_mem.get(pno, bytes(4096)))
        for addr in skip:
            if base <= addr < base + 4096:
                a[addr - base] = b[addr - base] = 0
        if a != b:
            report.equivalent = False
            report.mismatches.append(_first_diff(bytes(a), bytes(b), base))
    for reg in registers:
        a = ref.regs.get(reg, ref.ccregs.get(reg))
        b = out.regs.get(reg, out.ccregs.get(reg))
        if a != b:
            report.equivalent = False
            report.mismatches.append(f"{reg}: {a!r} != {b!r}")
    if not report.equivalent and not report.reason:
        report.reason = (f"{len(report.mismatches)} architectural "
                         f"mismatch(es); first: {report.mismatches[0]}")


def certify(original: Program, transformed: Program, **kw) -> None:
    """Raise :class:`EquivalenceError` unless the programs match."""
    report = check_equivalence(original, transformed, **kw)
    if not report:
        raise EquivalenceError(report)


class EquivalenceError(AssertionError):
    """A differential check failed; ``.report`` holds the full diagnosis."""

    def __init__(self, report: DiffReport):
        self.report = report
        super().__init__(str(report))
