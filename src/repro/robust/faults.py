"""Fault injection: deliberately corrupt programs, profiles and passes.

The point of a verifier is unprovable until something slips past it.  This
module defines a taxonomy of corruption the pipeline could realistically
emit — each :class:`FaultClass` knows *what* it corrupts and *which* layer
of the containment ladder is expected to catch it:

========== =====================================================
detector   caught by
========== =====================================================
verifier   static IR checks (:mod:`repro.robust.verifier`)
diffcheck  co-simulation (:mod:`repro.robust.diffcheck`)
sandbox    per-pass rollback (:mod:`repro.robust.sandbox`)
tolerate   nothing should fire: the pipeline must absorb the
           corruption (bad *feedback* may cost performance but
           must never cost correctness)
========== =====================================================

``tests/robust/test_faults.py`` parametrizes over every class;
``tools/inject_faults.py`` runs the same taxonomy against the real
benchmark suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..cfg.graph import CFG
from ..isa.instruction import Guard, make
from ..isa.program import Program
from ..isa.registers import CC_REGS, is_cc_reg, is_int_reg
from ..profilefb.profiledb import ProfileDB

#: Marker constant written by the register-clobber fault.
CLOBBER_VALUE = 0xBEE5


@dataclass(frozen=True)
class FaultClass:
    """One kind of corruption and the layer expected to catch it."""

    name: str
    target: str        # "program" | "profile" | "pass"
    detector: str      # "verifier" | "diffcheck" | "sandbox" | "tolerate"
    description: str


# -- program faults --------------------------------------------------------------
#
# Each injector yields independently corrupted *copies* of the input program
# (candidate injection sites in deterministic order); an empty iterator
# means the fault is not applicable to this program.


def _executed(counts: Optional[list[int]], i: int) -> bool:
    return counts is None or (i < len(counts) and counts[i] > 0)


def _dangling_target(prog: Program, rng: random.Random,
                     counts: Optional[list[int]]) -> Iterator[Program]:
    for i, ins in enumerate(prog.instructions):
        if ins.target is not None and not ins.is_store:
            bad = prog.copy()
            bad.instructions[i].target = ".__no_such_label__"
            yield bad
            return


def _target_out_of_range(prog: Program, rng: random.Random,
                         counts: Optional[list[int]]) -> Iterator[Program]:
    for i, ins in enumerate(prog.instructions):
        if ins.target is not None and not ins.is_store:
            bad = prog.copy()
            bad.labels[ins.target] = len(bad.instructions) + 7
            yield bad
            return


def _stale_predicate(prog: Program, rng: random.Random,
                     counts: Optional[list[int]]) -> Iterator[Program]:
    defined = {ins.dest for ins in prog.instructions
               if ins.dest is not None and is_cc_reg(ins.dest)}
    free = [cc for cc in CC_REGS if cc not in defined]
    if not free:
        return
    for i, ins in enumerate(prog.instructions):
        if ins.guard is None and not ins.is_control \
                and not ins.info.is_call and _executed(counts, i):
            bad = prog.copy()
            bad.instructions[i].guard = Guard(free[0], sense=True)
            yield bad
            return


def _wrong_register_class(prog: Program, rng: random.Random,
                          counts: Optional[list[int]]) -> Iterator[Program]:
    for i, ins in enumerate(prog.instructions):
        if ins.op in ("add", "sub", "mul", "and", "or", "xor") \
                and len(ins.srcs) == 2:
            bad = prog.copy()
            # Bypasses Instruction validation on purpose: a buggy pass
            # mutating in place would do exactly this.
            bad.instructions[i].srcs = (ins.srcs[0], "cc0")
            yield bad
            return


def _dropped_terminator(prog: Program, rng: random.Random,
                        counts: Optional[list[int]]) -> Iterator[Program]:
    if not prog.instructions:
        return
    last = prog.instructions[-1]
    if not (last.is_halt or last.is_jump or last.op == "jr"):
        return
    bad = prog.copy()
    bad.instructions.pop()
    n = len(bad.instructions)
    bad.labels = {k: min(v, n) for k, v in bad.labels.items()}
    yield bad


def _swapped_operands(prog: Program, rng: random.Random,
                      counts: Optional[list[int]]) -> Iterator[Program]:
    for i, ins in enumerate(prog.instructions):
        if ins.op in ("sub", "div", "rem", "sra", "srl", "sll") \
                and len(ins.srcs) == 2 and ins.srcs[0] != ins.srcs[1] \
                and _executed(counts, i):
            bad = prog.copy()
            bad.instructions[i].srcs = (ins.srcs[1], ins.srcs[0])
            yield bad


def _clobbered_register(prog: Program, rng: random.Random,
                        counts: Optional[list[int]]) -> Iterator[Program]:
    emitted = 0
    for i, ins in enumerate(prog.instructions):
        if not _executed(counts, i):
            continue
        victims = [r for r in ins.srcs if is_int_reg(r) and r != "r0"]
        if not victims:
            continue
        bad = prog.copy()
        bad.instructions.insert(i, make("li", victims[0], CLOBBER_VALUE))
        bad.labels = {k: (v if v <= i else v + 1)
                      for k, v in bad.labels.items()}
        yield bad
        emitted += 1
        if emitted >= 6:
            return


def _unknown_opcode(prog: Program, rng: random.Random,
                    counts: Optional[list[int]]) -> Iterator[Program]:
    # A buggy pass rewriting ``ins.op`` in place can synthesize a mnemonic
    # no simulator models while the cached OpInfo keeps the instruction
    # structurally plausible.  Both simulators must refuse to execute it
    # (raising UnmodeledOpcode, which diffcheck contains as a crash)
    # rather than silently treat it as a nop.
    emitted = 0
    for i, ins in enumerate(prog.instructions):
        if ins.is_control or ins.info.is_call or not _executed(counts, i):
            continue
        bad = prog.copy()
        bad.instructions[i].op = "__undocumented_op__"
        yield bad
        emitted += 1
        if emitted >= 4:
            return


def _branch_retarget(prog: Program, rng: random.Random,
                     counts: Optional[list[int]]) -> Iterator[Program]:
    emitted = 0
    for i, ins in enumerate(prog.instructions):
        if not ins.is_branch or not _executed(counts, i):
            continue
        for label, idx in sorted(prog.labels.items()):
            if label != ins.target and idx < len(prog.instructions):
                bad = prog.copy()
                bad.instructions[i].target = label
                yield bad
                emitted += 1
                if emitted >= 6:
                    return
                break


PROGRAM_FAULTS: dict[str, tuple[FaultClass, Callable]] = {
    fc.name: (fc, fn) for fc, fn in [
        (FaultClass("dangling-target", "program", "verifier",
                    "a control transfer targets an undefined label"),
         _dangling_target),
        (FaultClass("target-out-of-range", "program", "verifier",
                    "a label used as a branch target points past the end"),
         _target_out_of_range),
        (FaultClass("stale-predicate", "program", "verifier",
                    "a guard reads a cc register no path ever defines"),
         _stale_predicate),
        (FaultClass("wrong-register-class", "program", "verifier",
                    "an ALU source operand names a cc register"),
         _wrong_register_class),
        (FaultClass("dropped-terminator", "program", "verifier",
                    "the final halt/jump is deleted; execution can fall "
                    "off the end"),
         _dropped_terminator),
        (FaultClass("swapped-operands", "program", "diffcheck",
                    "a non-commutative op's sources are swapped "
                    "(structurally valid, semantically wrong)"),
         _swapped_operands),
        (FaultClass("clobbered-register", "program", "diffcheck",
                    "a live register is overwritten mid-stream"),
         _clobbered_register),
        (FaultClass("branch-retarget", "program", "diffcheck",
                    "a conditional branch is retargeted at another "
                    "existing label"),
         _branch_retarget),
        (FaultClass("unknown-opcode", "program", "diffcheck",
                    "an instruction's mnemonic is rewritten in place to "
                    "an opcode no simulator models"),
         _unknown_opcode),
    ]
}


def inject_program_fault(name: str, prog: Program,
                         rng: Optional[random.Random] = None,
                         counts: Optional[list[int]] = None,
                         ) -> Iterator[Program]:
    """Yield corrupted copies of *prog* for fault class *name*.

    *counts* (dynamic execution count per instruction index, e.g. from
    ``FunctionalSim.index_counts``) steers injection toward code that
    actually runs, so semantic faults are observable.
    """
    fc, fn = PROGRAM_FAULTS[name]
    return fn(prog, rng or random.Random(0), counts)


# -- profile faults --------------------------------------------------------------


def _flip_outcomes(db: ProfileDB, rng: random.Random) -> None:
    from ..profilefb.bitvector import BranchHistory
    from ..profilefb.classify import classify

    for bp in db.branches.values():
        bp.history = BranchHistory([not o for o in bp.history])
        bp.classification = classify(bp.history, db.config)


def _scramble_pcs(db: ProfileDB, rng: random.Random) -> None:
    n = max(len(db.program.instructions), 1)
    for bp in db.branches.values():
        bp.pc = (bp.pc * 7 + 13) % n


PROFILE_FAULTS: dict[str, tuple[FaultClass, Callable]] = {
    fc.name: (fc, fn) for fc, fn in [
        (FaultClass("profile-flipped-outcomes", "profile", "tolerate",
                    "every recorded branch outcome is inverted; decisions "
                    "go wrong but semantics must survive"),
         _flip_outcomes),
        (FaultClass("profile-stale-pcs", "profile", "tolerate",
                    "branch records point at the wrong static "
                    "instructions (stale feedback file)"),
         _scramble_pcs),
    ]
}


def corrupt_profile(name: str, db: ProfileDB,
                    rng: Optional[random.Random] = None) -> ProfileDB:
    """Corrupt *db* in place per fault class *name*; returns it."""
    fc, fn = PROFILE_FAULTS[name]
    fn(db, rng or random.Random(0))
    return db


# -- pass faults -----------------------------------------------------------------


def _pass_drops_taken_edge(cfg: CFG) -> None:
    for bb in cfg.blocks:
        term = bb.terminator
        if term is not None and term.is_branch:
            edges = cfg.succ_edges[bb.bid]
            for e in list(edges):
                if e.kind == "taken":
                    edges.remove(e)
                    cfg.pred_edges[e.dst].remove(e)
            return
    raise RuntimeError("no branch block to corrupt")


def _pass_emits_dangling_target(cfg: CFG) -> None:
    # Edges are the CFG's ground truth for branch targets (to_program
    # retargets terminators from the taken edge), so the CFG form of a
    # dangling target is a taken edge at a block id that does not exist.
    for bb in cfg.blocks:
        term = bb.terminator
        if term is not None and term.is_branch:
            e = cfg.taken_edge(bb.bid)
            if e is None:
                continue
            cfg.pred_edges[e.dst].remove(e)
            e.dst = 999_983  # no such block
            return
    raise RuntimeError("no branch block to corrupt")


def _pass_raises_after_mutation(cfg: CFG) -> None:
    # Corrupt first, then die: rollback must restore the pre-pass program.
    for bb in cfg.blocks:
        if bb.instructions:
            bb.instructions.insert(0, make("li", "r1", 0x0BAD))
            break
    raise RuntimeError("synthetic pass crash after partial mutation")


PASS_FAULTS: dict[str, tuple[FaultClass, Callable[[CFG], None]]] = {
    fc.name: (fc, fn) for fc, fn in [
        (FaultClass("pass-drops-taken-edge", "pass", "sandbox",
                    "a pass deletes a branch's taken edge; the CFG can no "
                    "longer be linearized"),
         _pass_drops_taken_edge),
        (FaultClass("pass-emits-dangling-target", "pass", "sandbox",
                    "a pass retargets a branch's taken edge at a block "
                    "that does not exist"),
         _pass_emits_dangling_target),
        (FaultClass("pass-raises-after-mutation", "pass", "sandbox",
                    "a pass crashes midway after mutating the CFG; the "
                    "sandbox must roll back the partial edit"),
         _pass_raises_after_mutation),
    ]
}


def buggy_pass(name: str) -> Callable[[CFG], None]:
    """Return the synthetic buggy pass for fault class *name*."""
    return PASS_FAULTS[name][1]


#: Every fault class across all targets, keyed by name.
ALL_FAULTS: dict[str, FaultClass] = {
    **{k: v[0] for k, v in PROGRAM_FAULTS.items()},
    **{k: v[0] for k, v in PROFILE_FAULTS.items()},
    **{k: v[0] for k, v in PASS_FAULTS.items()},
}
