"""Speculative-safety (Spectre-v1) taint analysis over the CFG.

The compiler's headline optimization hoists loads above the branches that
guard them (:mod:`repro.transform.speculation`, paper Figure 1).  On a
machine with speculative execution that is exactly the code motion behind
the classic *bounds-check-bypass* gadget: a branch on untrusted data, a
load whose address depends on that data, and a second memory access whose
address depends on the loaded value — the last access turns the
speculatively-read secret into a cache-observable signal.

This module provides a deliberately conservative static detector:

* **Taint lattice.**  Two levels per register: :data:`TAINT_UNTRUSTED`
  (level 1 — derived from a configured untrusted-input register) and
  :data:`TAINT_SECRET` (level 2 — loaded through a tainted address).  Any
  instruction whose sources carry taint taints its destination (so taint
  survives software renaming, copy insertion, and forward substitution);
  a load through an *untainted* address clears its destination.
* **Fixpoint.**  Forward dataflow over the CFG, merging per-register taint
  with max at joins; the configured untrusted registers are tainted at
  program entry (the "function arguments from an attacker" model).
* **Gadget walk.**  For every conditional branch whose condition is
  tainted, both successor paths are walked up to ``sew`` instructions (the
  speculative-execution window — how far a mispredicted path can run
  before the branch resolves).  A load through a tainted address inside
  the window becomes the *access*; any later load/store inside the window
  whose address depends on the accessed value is the *transmitter* and
  yields a :class:`SpectreFinding`.

Findings are schema-versioned (:mod:`repro.core.serde`) and classified
via :data:`FINDING_KINDS`, mirroring the
:data:`~repro.robust.diffcheck.DIVERGENCE_KINDS` registry.

The same machinery drives the ``safe-speculative`` compilation scheme:
:class:`SpectreHoistGuard` answers, for each candidate hoist, whether
moving a load above a branch would create a flagged pattern — the
speculation pass then suppresses the hoist or inserts a ``fence``
(:mod:`repro.isa.opcodes`) in front of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.graph import CFG, build_cfg
from ..core import serde
from ..isa.instruction import Instruction
from ..isa.program import Program

#: Registers treated as attacker-controlled at program entry by default —
#: the MIPS argument registers a0-a3.  :mod:`repro.isa.randprog` keeps the
#: same set free for its gadget-seeding mode.
UNTRUSTED_REGS = ("r4", "r5", "r6", "r7")

#: Taint levels: value derived from an untrusted input…
TAINT_UNTRUSTED = 1
#: …and value loaded from memory through a tainted address (a "secret").
TAINT_SECRET = 2

#: Finding-kind labels :meth:`SpectreFinding.kind` can return, mirroring
#: :data:`repro.robust.diffcheck.DIVERGENCE_KINDS`: the transmitter is the
#: second dependent access, and its flavor names the gadget.
FINDING_KINDS = ("gadget-load-load", "gadget-load-store")

#: Flat scalar fields shared by :meth:`SpectreFinding.to_dict`/``from_dict``.
_FINDING_FIELDS = (
    "program", "branch_uid", "branch_op", "branch_block",
    "access_uid", "access_op", "access_block",
    "transmit_uid", "transmit_op", "transmit_block", "transmit_is_store",
    "distance", "sew",
)


@dataclass(frozen=True)
class SpectreConfig:
    """Knobs of the analysis and of the safe-speculative scheme.

    ``sew`` is the speculative-execution window: the number of dynamic
    instructions a mispredicted path is assumed to run before the branch
    resolves and the pipeline squashes (the R10000's ROB depth is the
    natural ceiling).  ``mode`` selects what the safe scheme does with a
    flagged hoist: ``"fence"`` hoists but plants a serializing ``fence``
    in front, ``"suppress"`` refuses the hoist entirely.
    """

    untrusted: tuple[str, ...] = UNTRUSTED_REGS
    sew: int = 16
    mode: str = "fence"  # fence | suppress

    def __post_init__(self):
        if self.mode not in ("fence", "suppress"):
            raise ValueError(f"unknown spectre mode {self.mode!r}")
        if self.sew < 1:
            raise ValueError("sew must be >= 1")


@dataclass
class SpectreFinding:
    """One flagged gadget: branch → dependent access → transmitter."""

    program: str
    branch_uid: int
    branch_op: str
    branch_block: int
    tainted_condition: tuple[str, ...]
    access_uid: int
    access_op: str
    access_block: int
    transmit_uid: int
    transmit_op: str
    transmit_block: int
    transmit_is_store: bool
    distance: int          # instructions from the branch to the transmitter
    sew: int               # window the walk used
    path: tuple[int, ...] = ()   # block ids from branch to transmitter

    @property
    def kind(self) -> str:
        """Gadget class (one of :data:`FINDING_KINDS`)."""
        return ("gadget-load-store" if self.transmit_is_store
                else "gadget-load-load")

    def __str__(self) -> str:
        return (f"{self.kind}: {self.program or '<program>'} "
                f"block {self.branch_block} {self.branch_op} on "
                f"{'/'.join(self.tainted_condition)} -> "
                f"{self.access_op}@b{self.access_block} -> "
                f"{self.transmit_op}@b{self.transmit_block} "
                f"(distance {self.distance} <= sew {self.sew})")

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`).

        Includes the derived ``kind`` so downstream triage can bucket
        without recomputing it.
        """
        d = serde.dump_fields(self, _FINDING_FIELDS)
        d.update(tainted_condition=list(self.tainted_condition),
                 path=list(self.path), kind=self.kind)
        return serde.stamp(d)

    @classmethod
    def from_dict(cls, d: dict) -> "SpectreFinding":
        """Inverse of :meth:`to_dict` (derived ``kind`` is recomputed;
        the schema version is checked)."""
        serde.check(d, "SpectreFinding")
        return cls(tainted_condition=tuple(d["tainted_condition"]),
                   path=tuple(d["path"]),
                   **serde.load_fields(d, _FINDING_FIELDS))


# -- taint transfer -----------------------------------------------------------


def _addr_reg(ins: Instruction) -> Optional[str]:
    """The register a memory op's address is computed from, if any."""
    if ins.is_load:
        return ins.srcs[0] if ins.srcs else None
    if ins.is_store:
        return ins.srcs[1] if len(ins.srcs) > 1 else None
    return None


def _step(ins: Instruction, taint: dict[str, int],
          w2: Optional[dict[str, dict]] = None) -> None:
    """Apply one instruction's taint transfer to *taint* in place.

    *w2*, when given, tracks window provenance for the gadget walk: which
    registers hold a value loaded through a tainted address *within the
    current speculative window*, mapped to the access that produced it.
    """
    defs = ins.defs()
    if not defs:
        return
    if ins.is_load:
        base = _addr_reg(ins)
        secret = base is not None and base in taint
        for d in defs:
            if secret:
                taint[d] = TAINT_SECRET
            else:
                # A load through a clean address yields clean data (we
                # model taint entering only via the configured registers).
                taint.pop(d, None)
                if w2 is not None:
                    w2.pop(d, None)
        return
    lvl = 0
    for r in ins.uses():
        lvl = max(lvl, taint.get(r, 0))
    partial = ins.is_cmov or ins.is_guarded
    for d in defs:
        if lvl:
            taint[d] = max(lvl, taint.get(d, 0)) if partial else lvl
        elif not partial:
            taint.pop(d, None)
    if w2 is not None:
        prov = None
        for r in ins.uses():
            if r in w2:
                prov = w2[r]
                break
        for d in defs:
            if prov is not None:
                w2[d] = prov
            elif not partial:
                w2.pop(d, None)


def _entry_taint(config: SpectreConfig) -> dict[str, int]:
    return {r: TAINT_UNTRUSTED for r in config.untrusted}


def taint_fixpoint(cfg: CFG, config: SpectreConfig) -> dict[int, dict[str, int]]:
    """Forward dataflow: per-block IN taint maps (register → level).

    Merge at joins is per-register max; the configured untrusted registers
    are tainted at the entry block.  Terminates because taint levels only
    grow and the domain is finite.
    """
    ins_state: dict[int, dict[str, int]] = {
        bb.bid: {} for bb in cfg.blocks}
    ins_state[cfg.entry.bid] = _entry_taint(config)
    work = [bb.bid for bb in cfg.blocks]
    while work:
        bid = work.pop(0)
        out = dict(ins_state[bid])
        for ins in cfg.block(bid).instructions:
            _step(ins, out)
        for s in cfg.succs(bid):
            merged = ins_state[s]
            changed = False
            for r, lvl in out.items():
                if merged.get(r, 0) < lvl:
                    merged[r] = lvl
                    changed = True
            if changed and s not in work:
                work.append(s)
    return ins_state


def _taint_at_terminator(cfg: CFG, bid: int,
                         ins_state: dict[int, dict[str, int]]) -> dict[str, int]:
    """Taint state immediately before *bid*'s terminator executes."""
    taint = dict(ins_state[bid])
    block = cfg.block(bid)
    for ins in block.body:
        _step(ins, taint)
    return taint


# -- gadget walk --------------------------------------------------------------


def _walk_window(cfg: CFG, start_bid: int, budget: int,
                 taint: dict[str, int], name: str,
                 branch: Instruction, branch_bid: int,
                 cond: tuple[str, ...], sew: int,
                 findings: dict[tuple[int, int], SpectreFinding]) -> None:
    """DFS the speculative window from *start_bid*, collecting findings.

    Each path carries its own taint copy plus the window-provenance map;
    a block is revisited only with a strictly larger remaining budget
    (deterministic, and bounds the walk on loops).
    """
    best_budget: dict[int, int] = {}
    stack = [(start_bid, budget, dict(taint), {}, (branch_bid,))]
    while stack:
        bid, left, t, w2, path = stack.pop()
        if left <= 0 or best_budget.get(bid, -1) >= left:
            continue
        best_budget[bid] = left
        path = path + (bid,)
        block = cfg.block(bid)
        for ins in block.instructions:
            if left <= 0:
                break
            left -= 1
            addr = _addr_reg(ins)
            if addr is not None and addr in w2:
                acc = w2[addr]
                key = (branch.uid, ins.uid)
                if key not in findings:
                    findings[key] = SpectreFinding(
                        program=name,
                        branch_uid=branch.uid, branch_op=branch.op,
                        branch_block=branch_bid, tainted_condition=cond,
                        access_uid=acc["uid"], access_op=acc["op"],
                        access_block=acc["bid"],
                        transmit_uid=ins.uid, transmit_op=ins.op,
                        transmit_block=bid,
                        transmit_is_store=ins.is_store,
                        distance=budget - left, sew=sew, path=path)
            elif ins.is_load and addr is not None and addr in t:
                # First dependent access: its result is a window secret.
                _step(ins, t, w2)
                for d in ins.defs():
                    w2[d] = {"uid": ins.uid, "op": ins.op, "bid": bid}
                continue
            _step(ins, t, w2)
        if left > 0:
            succs = cfg.succs(bid)
            for s in reversed(succs):
                stack.append((s, left, dict(t), dict(w2), path))


def analyze_cfg(cfg: CFG, config: SpectreConfig = SpectreConfig(),
                name: str = "") -> list[SpectreFinding]:
    """Run the full analysis over *cfg*; returns findings sorted by site."""
    ins_state = taint_fixpoint(cfg, config)
    findings: dict[tuple[int, int], SpectreFinding] = {}
    for bb in cfg.blocks:
        term = bb.terminator
        if term is None or not term.is_branch:
            continue
        taint = _taint_at_terminator(cfg, bb.bid, ins_state)
        cond = tuple(sorted(r for r in term.uses() if r in taint))
        if not cond:
            continue
        # Both successor paths run speculatively: the predictor may choose
        # either arm regardless of the architectural outcome.
        for s in cfg.succs(bb.bid):
            _walk_window(cfg, s, config.sew, taint, name,
                         term, bb.bid, cond, config.sew, findings)
    return sorted(findings.values(),
                  key=lambda f: (f.branch_block, f.branch_uid,
                                 f.transmit_uid))


def analyze_program(prog: Program,
                    config: SpectreConfig = SpectreConfig()
                    ) -> list[SpectreFinding]:
    """Build the CFG of *prog* and run :func:`analyze_cfg` on it."""
    return analyze_cfg(build_cfg(prog), config, name=prog.name)


# -- hoist guard for the safe-speculative scheme ------------------------------


class SpectreHoistGuard:
    """Per-hoist safety oracle consumed by the speculation pass.

    Calling the guard with ``(cfg, pred_bid, ins)`` answers what the
    safe-speculative scheme should do with hoisting *ins* above the
    terminator of block *pred_bid*: ``"allow"``, ``"fence"`` (hoist but
    plant a serializing barrier in front), or ``"suppress"`` (refuse).

    A hoist is flagged when the predecessor ends in a conditional branch
    whose condition is tainted and the candidate is a load whose address
    is tainted — exactly the *access* step of the gadget; holding it back
    (or fencing it) breaks every downstream transmitter.

    The taint fixpoint is memoized on the CFG's shape (block count and
    total instruction count) because the scheduler mutates the graph
    between queries; a stale-by-one-hoist snapshot only ever errs toward
    re-running the (cheap) fixpoint, never toward missing taint sources —
    hoisting moves instructions, it cannot create untrusted inputs.
    """

    def __init__(self, config: SpectreConfig = SpectreConfig()):
        self.config = config
        #: hoists the guard answered with fence / suppress (for reports)
        self.flagged = 0
        self._memo_shape: Optional[tuple[int, int]] = None
        self._memo_state: Optional[dict[int, dict[str, int]]] = None

    def _states(self, cfg: CFG) -> dict[int, dict[str, int]]:
        shape = (len(cfg.blocks),
                 sum(len(bb.instructions) for bb in cfg.blocks))
        if shape != self._memo_shape:
            self._memo_state = taint_fixpoint(cfg, self.config)
            self._memo_shape = shape
        assert self._memo_state is not None
        return self._memo_state

    def __call__(self, cfg: CFG, pred_bid: int, ins: Instruction) -> str:
        """Classify one candidate hoist (see class docstring)."""
        term = cfg.block(pred_bid).terminator
        if term is None or not term.is_branch:
            return "allow"
        states = self._states(cfg)
        if pred_bid not in states:
            # Block created after the snapshot; refresh once.
            self._memo_shape = None
            states = self._states(cfg)
            if pred_bid not in states:  # pragma: no cover - defensive
                return "allow"
        taint = _taint_at_terminator(cfg, pred_bid, states)
        if not any(r in taint for r in term.uses()):
            return "allow"
        addr = _addr_reg(ins)
        if not (ins.is_load and addr is not None and addr in taint):
            return "allow"
        self.flagged += 1
        return "fence" if self.config.mode == "fence" else "suppress"


def config_from_heuristics(heur) -> SpectreConfig:
    """Build a :class:`SpectreConfig` from the pipeline's
    :class:`~repro.core.heuristics.FeedbackHeuristics` spectre knobs."""
    return SpectreConfig(untrusted=tuple(heur.spectre_untrusted),
                         sew=heur.spectre_sew,
                         mode="fence" if heur.spectre_fence else "suppress")
