"""Crash containment for the compile/simulate stack.

Four cooperating layers (see ``docs/ROBUSTNESS.md``):

* :mod:`~repro.robust.verifier` — static IR invariants, checked after
  every pass;
* :mod:`~repro.robust.sandbox` — per-pass snapshot/rollback so a crashing
  or invariant-breaking pass degrades the compile instead of killing it;
* :mod:`~repro.robust.diffcheck` — bounded co-simulation proving the
  transformed program preserves architectural behavior;
* :mod:`~repro.robust.faults` — the fault-injection taxonomy that proves
  the other three layers actually catch what they claim to;
* :mod:`~repro.robust.spectre` — speculative-safety (Spectre-v1) taint
  analysis and the hoist guard behind the safe-speculative scheme.
"""

from .verifier import (
    VerificationError, Violation, assert_valid, verify_cfg, verify_program,
)
from .sandbox import (
    FAILURE_KINDS, PassFailure, PassSandbox, restore_cfg, snapshot_cfg,
)
from .diffcheck import (
    DIVERGENCE_KINDS, DiffReport, EquivalenceError, certify,
    check_equivalence,
)
from .faults import (
    ALL_FAULTS, CLOBBER_VALUE, FaultClass, PASS_FAULTS, PROFILE_FAULTS,
    PROGRAM_FAULTS, buggy_pass, corrupt_profile, inject_program_fault,
)
from .spectre import (
    FINDING_KINDS, SpectreConfig, SpectreFinding, SpectreHoistGuard,
    TAINT_SECRET, TAINT_UNTRUSTED, UNTRUSTED_REGS, analyze_cfg,
    analyze_program, taint_fixpoint,
)

__all__ = [
    "VerificationError", "Violation", "assert_valid", "verify_cfg",
    "verify_program",
    "FAILURE_KINDS", "PassFailure", "PassSandbox", "restore_cfg",
    "snapshot_cfg",
    "DIVERGENCE_KINDS", "DiffReport", "EquivalenceError", "certify",
    "check_equivalence",
    "ALL_FAULTS", "CLOBBER_VALUE", "FaultClass", "PASS_FAULTS",
    "PROFILE_FAULTS", "PROGRAM_FAULTS", "buggy_pass", "corrupt_profile",
    "inject_program_fault",
    "FINDING_KINDS", "SpectreConfig", "SpectreFinding", "SpectreHoistGuard",
    "TAINT_SECRET", "TAINT_UNTRUSTED", "UNTRUSTED_REGS", "analyze_cfg",
    "analyze_program", "taint_fixpoint",
]
