"""IR verifier: structural invariants every compiled program must satisfy.

The paper's pipeline is a chain of aggressive rewrites (branch splitting,
if-conversion, branch-likely rewriting, speculative code motion); a single
pass emitting a dangling target or a guard over a never-computed predicate
silently invalidates every downstream measurement.  The verifier is run by
the :mod:`repro.robust.sandbox` after every pass, and by the ``python -m
repro verify`` command on final outputs.

Invariants checked
------------------
* **labels** — every label index lies in ``[0, len]`` (one-past-the-end is
  an allowed exit label) and labels are unique per index table entry;
* **targets** — every branch/jump target and every data-segment code
  reference (jump table entry) resolves to a defined label;
* **registers** — every operand names a real register of the class its
  opcode expects (integer / floating-point / condition-code);
* **guards** — a guarded instruction's predicate register is a cc register
  that is defined on at least one path from the entry to the use (a guard
  that *no* execution can ever have set is a stale-predicate fault);
* **structure** — control transfers only terminate basic blocks, branches
  carry a taken edge, halt blocks have no successors, and the program ends
  in halt or an unconditional transfer (execution cannot fall off the end);
* **round-trip** — the program survives ``build_cfg`` → ``to_program``
  re-linearization and the result still validates.

The verifier never raises on bad *input* — it returns a list of
:class:`Violation` records (empty means clean).  Use :func:`assert_valid`
to raise :class:`VerificationError` on any violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..cfg.graph import CFG, build_cfg
from ..isa.instruction import Instruction
from ..isa.opcodes import Fmt
from ..isa.program import Program
from ..isa.registers import is_cc_reg, is_fp_reg, is_int_reg, is_register


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which check, where, and what went wrong."""

    check: str    # "labels" | "targets" | "registers" | "guards" | ...
    where: str    # human-readable location ("instr 12 (beq)", "label .L3")
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.where}: {self.detail}"


class VerificationError(Exception):
    """Raised by :func:`assert_valid` when a program breaks an invariant."""

    def __init__(self, violations: list[Violation], name: str = "program"):
        self.violations = violations
        lines = [f"{name}: {len(violations)} invariant violation(s)"]
        lines += [f"  {v}" for v in violations[:10]]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        super().__init__("\n".join(lines))


# -- per-opcode register-class expectations ------------------------------------

#: Opcodes whose destination register is floating point.
_FP_DEST = {"fadd", "fsub", "fmul", "fdiv", "fmov", "fneg", "lwf", "cvtif"}
#: Opcodes whose sources are all floating point.
_FP_SRCS = {"fadd", "fsub", "fmul", "fdiv", "fmov", "fneg",
            "fcmpeq", "fcmplt", "fcmple", "cvtfi"}
#: Branches that read a condition-code register instead of an integer.
_CC_BRANCHES = {"bct", "bcf", "bctl", "bcfl"}


def _expected_classes(ins: Instruction) -> tuple[Optional[str], list[str]]:
    """Return (dest_class, [src_class, ...]) for *ins*, where each class is
    ``"int"``, ``"fp"`` or ``"cc"`` (None when no destination)."""
    op, fmt = ins.op, ins.info.fmt
    n = len(ins.srcs)
    if op in _FP_DEST or op in _FP_SRCS:
        dest = "fp" if op in _FP_DEST else (
            "cc" if op.startswith("fcmp") else "int")
        if op == "lwf":
            srcs = ["int"]
        elif op == "swf":
            srcs = ["fp", "int"]
        elif op in _FP_SRCS:
            srcs = ["fp"] * n
        else:  # cvtif
            srcs = ["int"] * n
        return (dest if ins.dest is not None else None), srcs
    if fmt == Fmt.CMP:
        return "cc", ["int"] * n
    if fmt in (Fmt.CCLOGIC1, Fmt.CCLOGIC2):
        return "cc", ["cc"] * n
    if fmt == Fmt.CMOVCC:
        return "int", ["int", "cc"][:n]
    if fmt in (Fmt.BRANCH1, Fmt.BRANCH2):
        cls = "cc" if op in _CC_BRANCHES else "int"
        return None, [cls] * n
    # Everything else (RRR/RRI/RI/RR/LOAD/STORE/JR/JALR/JUMP/CMOVR/NONE)
    # moves integer values.
    return ("int" if ins.dest is not None else None), ["int"] * n


_CLASS_CHECK = {"int": is_int_reg, "fp": is_fp_reg, "cc": is_cc_reg}


# -- individual checks ----------------------------------------------------------


def _check_labels(prog: Program) -> Iterable[Violation]:
    n = len(prog.instructions)
    for name, idx in prog.labels.items():
        if not isinstance(idx, int) or not 0 <= idx <= n:
            yield Violation("labels", f"label {name!r}",
                            f"index {idx!r} outside [0, {n}]")


def _check_targets(prog: Program) -> Iterable[Violation]:
    n = len(prog.instructions)
    for i, ins in enumerate(prog.instructions):
        if ins.target is None:
            continue
        idx = prog.labels.get(ins.target)
        if idx is None:
            yield Violation("targets", f"instr {i} ({ins.op})",
                            f"dangling target {ins.target!r}")
        elif not 0 <= idx < n and not ins.is_store:
            # A transfer to (or past) one-past-the-end runs off the program.
            yield Violation("targets", f"instr {i} ({ins.op})",
                            f"target {ins.target!r} -> {idx} outside code")
    for addr, label in prog.code_refs.items():
        if label not in prog.labels:
            yield Violation("targets", f"code_ref @0x{addr:X}",
                            f"dangling jump-table label {label!r}")


def _check_registers(prog: Program) -> Iterable[Violation]:
    for i, ins in enumerate(prog.instructions):
        where = f"instr {i} ({ins.op})"
        regs = [("dest", ins.dest)] if ins.dest is not None else []
        regs += [(f"src{k}", s) for k, s in enumerate(ins.srcs)]
        bad_name = False
        for role, reg in regs:
            if not is_register(reg):
                yield Violation("registers", where,
                                f"{role} {reg!r} is not a register")
                bad_name = True
        if bad_name:
            continue
        dest_cls, src_cls = _expected_classes(ins)
        if dest_cls is not None and ins.dest is not None \
                and not _CLASS_CHECK[dest_cls](ins.dest):
            yield Violation("registers", where,
                            f"dest {ins.dest!r} not in class {dest_cls!r}")
        for k, (reg, cls) in enumerate(zip(ins.srcs, src_cls)):
            if not _CLASS_CHECK[cls](reg):
                yield Violation("registers", where,
                                f"src{k} {reg!r} not in class {cls!r}")
        if ins.guard is not None and not is_cc_reg(ins.guard.reg):
            yield Violation("registers", where,
                            f"guard register {ins.guard.reg!r} is not a "
                            f"cc register")


def _check_guards(prog: Program, cfg: CFG) -> Iterable[Violation]:
    """A guarded op whose predicate is defined on *no* path is stale.

    May-defined forward dataflow over cc registers: a guard register absent
    from the may-defined set at its use can never have been computed, so the
    guard reads whatever the machine happened to initialize — a classic
    silent-corruption fault after a broken if-conversion.
    """
    # Block-local: cc defs generated by each block.
    gen: dict[int, set[str]] = {}
    for bb in cfg.blocks:
        g: set[str] = set()
        for ins in bb.instructions:
            if ins.dest is not None and is_cc_reg(ins.dest):
                g.add(ins.dest)
        gen[bb.bid] = g
    # Union-based fixpoint (may-defined at block entry).
    entry_in: dict[int, set[str]] = {bb.bid: set() for bb in cfg.blocks}
    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for bid in order:
            acc: set[str] = set()
            for p in cfg.preds(bid):
                acc |= entry_in[p] | gen[p]
            if acc - entry_in[bid]:
                entry_in[bid] |= acc
                changed = True
    for bb in cfg.blocks:
        defined = set(entry_in[bb.bid])
        for k, ins in enumerate(bb.instructions):
            if ins.guard is not None and is_cc_reg(ins.guard.reg) \
                    and ins.guard.reg not in defined:
                yield Violation(
                    "guards", f"block {bb.bid} op {k} ({ins.op})",
                    f"guard {ins.guard} reads predicate {ins.guard.reg!r} "
                    f"defined on no path from entry")
            if ins.dest is not None and is_cc_reg(ins.dest):
                defined.add(ins.dest)


def _check_structure(prog: Program, cfg: CFG) -> Iterable[Violation]:
    try:
        cfg.check()
    except AssertionError as exc:
        yield Violation("structure", "cfg", str(exc))
    if prog.instructions:
        last = prog.instructions[-1]
        if not (last.is_halt or (last.is_jump and not last.info.is_return)
                or last.op == "jr"):
            yield Violation("structure", f"instr {len(prog) - 1} ({last.op})",
                            "program can fall off the end (no halt or "
                            "unconditional transfer)")
        if last.is_branch or (last.is_jump and last.guard is not None):
            yield Violation("structure", f"instr {len(prog) - 1} ({last.op})",
                            "conditional transfer at end of program")


def _check_roundtrip(prog: Program) -> Iterable[Violation]:
    try:
        rebuilt = build_cfg(prog).to_program(prog.name)
        rebuilt.validate()
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        yield Violation("roundtrip", "build_cfg/to_program",
                        f"{type(exc).__name__}: {exc}")


# -- public API -----------------------------------------------------------------


def verify_program(prog: Program, *, roundtrip: bool = True) -> list[Violation]:
    """Run every check on *prog*; return all violations (empty = clean)."""
    out: list[Violation] = []
    out.extend(_check_labels(prog))
    out.extend(_check_targets(prog))
    out.extend(_check_registers(prog))
    # Structural / dataflow checks need a CFG; skip them (with a violation
    # already recorded above) when the program is too broken to build one.
    if not out:
        try:
            cfg = build_cfg(prog)
        except Exception as exc:  # noqa: BLE001
            out.append(Violation("structure", "build_cfg",
                                 f"{type(exc).__name__}: {exc}"))
            return out
        out.extend(_check_guards(prog, cfg))
        out.extend(_check_structure(prog, cfg))
        if roundtrip:
            out.extend(_check_roundtrip(prog))
    return out


def verify_cfg(cfg: CFG) -> list[Violation]:
    """Verify a CFG by re-linearizing it and checking the result.

    Linearization failures (e.g. a branch block that lost its taken edge)
    are themselves reported as violations rather than raised.
    """
    try:
        prog = cfg.to_program(cfg.name)
    except Exception as exc:  # noqa: BLE001
        return [Violation("structure", "to_program",
                          f"{type(exc).__name__}: {exc}")]
    return verify_program(prog, roundtrip=False)


def assert_valid(prog: Program, name: Optional[str] = None) -> None:
    """Raise :class:`VerificationError` if *prog* breaks any invariant."""
    violations = verify_program(prog)
    if violations:
        raise VerificationError(violations, name=name or prog.name)
