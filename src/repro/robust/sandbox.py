"""Pass sandbox: crash containment + rollback for pipeline stages.

Each stage of the proposed pipeline (branch splitting, if-conversion,
branch-likely rewriting, region scheduling, cleanup) runs inside a
:class:`PassSandbox`.  Before a stage runs, the sandbox snapshots the CFG;
if the stage raises, or its output fails the :mod:`repro.robust.verifier`,
the CFG is restored bit-for-bit (same block ids, so downstream decisions
keyed by block id stay valid), a structured :class:`PassFailure` is
recorded, and compilation continues with the remaining stages.  The program
degrades — proposed → partially-transformed → baseline schedule — instead
of the whole compile (or the whole evaluation suite) aborting.

This is the discipline production compilers apply around unproven passes:
contain, diagnose, fall back.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..cfg.basic_block import BasicBlock
from ..cfg.graph import CFG, Edge
from ..obs.trace import span as obs_span
from .verifier import Violation, verify_cfg

#: Failure kinds, in the order the containment ladder encounters them.
FAILURE_KINDS = ("exception", "verify", "diffcheck", "skip")


@dataclass
class PassFailure:
    """One contained pass failure (or recorded skip) with its diagnosis."""

    stage: str                 # e.g. "split", "ifconvert", "speculate"
    kind: str                  # one of FAILURE_KINDS
    reason: str                # one line: what went wrong
    detail: str = ""           # traceback tail / verifier violations
    rolled_back: bool = True   # False for "skip" records (nothing happened)

    def __str__(self) -> str:
        tag = "skipped" if self.kind == "skip" else "contained"
        return f"[{self.stage}] {tag} ({self.kind}): {self.reason}"

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        return {"stage": self.stage, "kind": self.kind,
                "reason": self.reason, "detail": self.detail,
                "rolled_back": self.rolled_back}

    @classmethod
    def from_dict(cls, d: dict) -> "PassFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(stage=d["stage"], kind=d["kind"], reason=d["reason"],
                   detail=d["detail"], rolled_back=d["rolled_back"])


def snapshot_cfg(cfg: CFG) -> dict[str, Any]:
    """Capture everything a pass may mutate, preserving block ids."""
    return {
        "blocks": [
            (bb.bid, bb.label, [ins.clone() for ins in bb.instructions],
             bb.freq)
            for bb in cfg.blocks
        ],
        "succ": {bid: [(e.src, e.dst, e.kind, e.freq) for e in edges]
                 for bid, edges in cfg.succ_edges.items()},
        "data_symbols": dict(cfg.data_symbols),
        "data_image": dict(cfg.data_image),
        "code_refs": dict(cfg.code_refs),
        "name": cfg.name,
    }


def restore_cfg(cfg: CFG, snap: dict[str, Any]) -> None:
    """Restore *cfg* in place from a :func:`snapshot_cfg` capture.

    In-place so that references held by callers (profiles, loop forests
    rebuilt afterwards, decision plans keyed by block id) stay meaningful.
    """
    cfg.name = snap["name"]
    cfg.blocks = []
    cfg._by_id = {}
    cfg.succ_edges = {}
    cfg.pred_edges = {}
    for bid, label, instrs, freq in snap["blocks"]:
        bb = BasicBlock(bid=bid, label=label,
                        instructions=[ins.clone() for ins in instrs],
                        freq=freq)
        cfg.blocks.append(bb)
        cfg._by_id[bid] = bb
        cfg.succ_edges[bid] = []
        cfg.pred_edges[bid] = []
    for bid, edges in snap["succ"].items():
        for src, dst, kind, freq in edges:
            e = Edge(src, dst, kind, freq)
            cfg.succ_edges[src].append(e)
            cfg.pred_edges[dst].append(e)
    cfg.data_symbols = dict(snap["data_symbols"])
    cfg.data_image = dict(snap["data_image"])
    cfg.code_refs = dict(snap["code_refs"])


class PassSandbox:
    """Run pipeline stages over a CFG with rollback on crash or bad IR.

    Usage::

        box = PassSandbox(cfg)
        ok = box.run("ifconvert", lambda: if_convert_diamond(cfg, bid))
        if not ok:
            ...  # cfg already restored; box.failures has the diagnosis

    ``run`` returns the stage callable's return value on success and
    ``None`` on contained failure; :attr:`last_ok` distinguishes a stage
    that legitimately returned ``None`` from one that was rolled back.
    """

    def __init__(self, cfg: CFG, *, verify: bool = True,
                 max_failures: int = 64):
        self.cfg = cfg
        self.verify = verify
        self.max_failures = max_failures
        self.failures: list[PassFailure] = []
        self.last_ok: bool = True

    # -- recording -------------------------------------------------------------

    def record_skip(self, stage: str, reason: str, detail: str = "") -> None:
        """Record a pass that declined to run (not a rollback)."""
        self._record(PassFailure(stage=stage, kind="skip", reason=reason,
                                 detail=detail, rolled_back=False))

    def _record(self, failure: PassFailure) -> None:
        if len(self.failures) < self.max_failures:
            self.failures.append(failure)

    # -- execution -------------------------------------------------------------

    def run(self, stage: str, fn: Callable[[], Any],
            skip_exceptions: tuple = ()) -> Any:
        """Execute *fn* with snapshot/verify/rollback containment.

        Exception types listed in *skip_exceptions* are "pass declined"
        signals (e.g. ``SplitNotApplicable``), recorded as kind ``"skip"``
        with the pass's own reason — still rolled back, but not counted as
        containment events.

        Each execution emits a ``pass.<name>`` tracing span (the stage's
        ``@bbN`` site suffix travels as the ``stage`` attribute, so all
        sites of one pass aggregate under one span name) whose
        ``outcome`` attribute is ``ok``/``skip``/``exception``/``verify``.
        """
        with obs_span("pass." + stage.split("@", 1)[0], stage=stage) as sp:
            snap = snapshot_cfg(self.cfg)
            try:
                result = fn()
            except skip_exceptions as exc:
                restore_cfg(self.cfg, snap)
                self.last_ok = False
                self._record(PassFailure(
                    stage=stage, kind="skip",
                    reason=f"{exc}" or type(exc).__name__))
                sp.set("outcome", "skip")
                return None
            except Exception as exc:  # noqa: BLE001 - containment is the point
                restore_cfg(self.cfg, snap)
                self.last_ok = False
                self._record(PassFailure(
                    stage=stage, kind="exception",
                    reason=f"{type(exc).__name__}: {exc}",
                    detail=traceback.format_exc(limit=6)))
                sp.set("outcome", "exception")
                return None
            if self.verify:
                violations = verify_cfg(self.cfg)
                if violations:
                    restore_cfg(self.cfg, snap)
                    self.last_ok = False
                    self._record(PassFailure(
                        stage=stage, kind="verify",
                        reason=f"{len(violations)} IR invariant "
                               f"violation(s); first: {violations[0]}",
                        detail="\n".join(str(v) for v in violations[:20])))
                    sp.set("outcome", "verify")
                    return None
            self.last_ok = True
            sp.set("outcome", "ok")
            return result

    # -- reporting -------------------------------------------------------------

    @property
    def contained(self) -> list[PassFailure]:
        """Failures that actually rolled a pass back (skips excluded)."""
        return [f for f in self.failures if f.kind != "skip"]

    def summary(self) -> str:
        """One line per recorded failure/skip (empty string when clean)."""
        return "\n".join(str(f) for f in self.failures)
