"""Split-branch transformation — the paper's central contribution
(Sections 4-5, Figures 5 and 7).

A loop branch whose behavior is *phased* over the iteration space (e.g.
taken for the first 40 % of iterations, toggling for 20 %, not-taken for the
final 40 %) is split so that each well-predicted segment runs a trace
specialized with branch-likely instructions, while anomalous segments keep
the plain branch (and the hardware's 2-bit prediction).

Two codegen styles are provided:

* :func:`split_branch_sectioned` (the default) realizes the paper's
  Figure 5 schematic: the loop body is **cloned once per segment** (boxes
  I/II/III), the split branch is bias-specialized per clone (likely toward
  the frequent direction, or left plain in anomalous segments), and each
  clone's latch carries a branch-likely "stay in this section while
  ``i < boundary`` and the loop continues" test, falling into the next
  section's code when the boundary is crossed.  Every emitted branch-likely
  is overwhelmingly taken when executed, which is what makes the transform
  profitable under the R10000's always-predicted-taken likely semantics.

* :func:`split_branch_inline` is the literal Figure 7(b) encoding: one copy
  of the loop with split predicates ``p2 = i < s1`` / ``p3 = i >= s2`` and
  guarded branch-likelies evaluated **every iteration**.  Reproduction
  note (see EXPERIMENTS.md): under always-predicted-taken semantics this
  form mispredicts each likely branch throughout the segments where its
  predicate is false, so it *degrades* prediction accuracy; we keep it as
  the faithful transcription of the figure, but the compilation pipeline
  uses the sectioned form, whose behavior matches the paper's intent and
  reported direction of improvement.

Both styles instrument the loop with an iteration counter (``i = 0`` in the
preheader, ``i = i + 1`` in every latch) exactly as Figure 7(b) shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..cfg.graph import CFG
from ..cfg.loops import Loop, LoopForest
from ..isa.instruction import Instruction, make
from ..isa.registers import RegisterPool
from ..profilefb.segments import Segment
from .ifconvert import branch_condition_to_cc
from .renaming import free_registers


@dataclass
class SplitReport:
    """What one split did: allocated registers and emitted branches."""

    branch_block: int
    counter: str
    cond_cc: str
    likely_branches: int = 0
    boundaries: list[int] = field(default_factory=list)
    new_blocks: list[int] = field(default_factory=list)


class SplitNotApplicable(Exception):
    """The branch/loop shape or register pressure rules out splitting."""


def ensure_preheader(cfg: CFG, loop: Loop) -> int:
    """Return the id of a preheader block for *loop*, creating one if
    needed (a block whose only successor is the header and which receives
    every loop-entry edge)."""
    header = loop.header
    back_srcs = {src for src, _ in loop.back_edges}
    entry_edges = [e for e in cfg.pred_edges[header] if e.src not in back_srcs]
    if len(entry_edges) == 1:
        src = entry_edges[0].src
        if cfg.succs(src) == [header]:
            term = cfg.block(src).terminator
            if term is None or not term.is_branch:
                return src
    pre = cfg.new_block()
    # Place the preheader immediately before the header in layout.
    cfg.blocks.remove(pre)
    cfg.blocks.insert(cfg.layout_index(header), pre)
    for e in list(entry_edges):
        e.dst = pre.bid
        cfg.pred_edges[header].remove(e)
        cfg.pred_edges[pre.bid].append(e)
    cfg.add_edge(pre.bid, header, "fall")
    pre.freq = sum(e.freq for e in entry_edges)
    return pre.bid


def insert_counter(cfg: CFG, loop: Loop, counter: str) -> None:
    """Initialize *counter* to 0 in the preheader and increment it once per
    iteration in every latch (back-edge source), before the terminator."""
    pre = ensure_preheader(cfg, loop)
    pb = cfg.block(pre)
    at = len(pb.instructions) - (1 if pb.terminator is not None else 0)
    pb.instructions.insert(at, make("li", counter, 0, split_counter=True))
    for latch, _ in loop.back_edges:
        lb = cfg.block(latch)
        at = len(lb.instructions) - (1 if lb.terminator is not None else 0)
        lb.instructions.insert(
            at, make("addi", counter, counter, 1, split_counter=True))


def split_branch_inline(cfg: CFG, forest: LoopForest, branch_bid: int,
                        segments: Sequence[Segment],
                        int_pool: Optional[RegisterPool] = None,
                        cc_pool: Optional[RegisterPool] = None) -> SplitReport:
    """The literal Figure 7(b) inline encoding (see module docstring for
    why the sectioned form is preferred in practice).

    Supports 2- or 3-segment phasings where the first and/or last segment
    is biased (``taken``/``nottaken``); other shapes raise
    :class:`SplitNotApplicable`.  The CFG is modified in place.
    """
    if not 2 <= len(segments) <= 3:
        raise SplitNotApplicable(f"{len(segments)} segments (need 2 or 3)")
    first, last = segments[0], segments[-1]
    if first.kind == "mixed" and last.kind == "mixed":
        raise SplitNotApplicable("no biased outer segment to specialize")
    middles = list(segments[1:-1])
    if any(False for _ in middles):  # pragma: no cover - clarity only
        pass

    bb = cfg.block(branch_bid)
    term = bb.terminator
    if term is None or not term.is_branch:
        raise SplitNotApplicable("block does not end in a conditional branch")
    loop = forest.loop_of_block(branch_bid)
    if loop is None:
        raise SplitNotApplicable("branch is not inside a loop")
    te, fe = cfg.taken_edge(branch_bid), cfg.fall_edge(branch_bid)
    if te is None or fe is None:
        raise SplitNotApplicable("branch lacks taken/fall successors")
    taken_dst, fall_dst = te.dst, fe.dst

    int_pool = int_pool or free_registers(cfg, "int")
    cc_pool = cc_pool or free_registers(cfg, "cc")
    # p_cond plus two registers for at least one specialized segment; with
    # fewer free cc registers the split cannot emit any likely branch.
    if len(int_pool) < 1 or len(cc_pool) < 3:
        raise SplitNotApplicable("not enough free registers")

    counter = int_pool.take()
    p_cond = cc_pool.take()
    try:
        cond_instrs = branch_condition_to_cc(term, p_cond)
    except ValueError as exc:
        raise SplitNotApplicable(str(exc)) from None

    insert_counter(cfg, loop, counter)

    report = SplitReport(branch_block=branch_bid, counter=counter,
                         cond_cc=p_cond,
                         boundaries=[s.start for s in segments[1:]])

    # Rebuild the branch block's tail: condition into p_cond, then a chain
    # of (likely-)branch blocks.
    for i in cond_instrs:
        i.ann["split_cond"] = True
    bb.instructions = bb.instructions[:-1] + cond_instrs
    cfg.remove_edges_from(branch_bid)

    current = bb
    freq_total = bb.freq

    def end_block_with(branch: Instruction, target_bid: int) -> None:
        """Terminate *current* with a branch to target and chain a new
        fall-through block."""
        nonlocal current
        branch.ann["split_branch"] = True
        current.instructions.append(branch)
        nxt = cfg.new_block(after=current.bid)
        nxt.freq = current.freq
        report.new_blocks.append(nxt.bid)
        cfg.add_edge(current.bid, target_bid, "taken")
        cfg.add_edge(current.bid, nxt.bid, "fall")
        # Loop bookkeeping: the chained block belongs to the same loop.
        loop.body.add(nxt.bid)
        current = nxt

    # Segment 1: counter < s1 (uses two cc registers: range + selector).
    if first.kind != "mixed" and len(cc_pool) >= 2:
        s1 = segments[1].start
        p_lo = cc_pool.take()
        p_sel = cc_pool.take()
        current.instructions.append(
            make("cmpi", p_lo, counter, s1, split_pred=True))
        if first.kind == "taken":
            current.instructions.append(
                make("cand", p_sel, p_cond, p_lo, split_pred=True))
            end_block_with(make("bctl", p_sel, "_"), taken_dst)
        else:  # nottaken-biased: likely-branch to the fall-through path
            current.instructions.append(
                make("cnot", p_sel, p_cond, split_pred=True))
            current.instructions.append(
                make("cand", p_sel, p_sel, p_lo, split_pred=True))
            end_block_with(make("bctl", p_sel, "_"), fall_dst)
        report.likely_branches += 1

    # Last segment: counter >= s_last (two more cc registers).
    if len(segments) >= 2 and last.kind != "mixed" and len(cc_pool) >= 2:
        s_last = last.start
        p_hi = cc_pool.take()
        p_sel2 = cc_pool.take()
        current.instructions.append(
            make("cmpi", p_hi, counter, s_last, split_pred=True))
        current.instructions.append(
            make("cnot", p_hi, p_hi, split_pred=True))  # counter >= s_last
        if last.kind == "taken":
            current.instructions.append(
                make("cand", p_sel2, p_cond, p_hi, split_pred=True))
            end_block_with(make("bctl", p_sel2, "_"), taken_dst)
        else:
            current.instructions.append(
                make("cnot", p_sel2, p_cond, split_pred=True))
            current.instructions.append(
                make("cand", p_sel2, p_sel2, p_hi, split_pred=True))
            end_block_with(make("bctl", p_sel2, "_"), fall_dst)
        report.likely_branches += 1

    if report.likely_branches == 0:
        raise SplitNotApplicable("could not specialize any segment")

    # Fallback: the plain branch on the original condition.
    final = make("bct", p_cond, "_")
    final.ann["split_branch"] = True
    current.instructions.append(final)
    cfg.add_edge(current.bid, taken_dst, "taken")
    cfg.add_edge(current.bid, fall_dst, "fall")
    return report


# ---------------------------------------------------------------------------
# Sectioned splitting (the Figure 5 schematic) — the default style
# ---------------------------------------------------------------------------


def _clone_region(cfg: CFG, block_ids: list[int],
                  place_before: int) -> dict[int, int]:
    """Clone the blocks in *block_ids* (with fresh uids and auto labels),
    inserting the clones in layout order just before block *place_before*.

    Edges between cloned blocks are duplicated onto the clones; edges
    leaving the region keep their original destinations.  Returns the
    old-id -> new-id mapping.
    """
    layout = {bb.bid: i for i, bb in enumerate(cfg.blocks)}
    ordered = sorted(block_ids, key=layout.get)
    mapping: dict[int, int] = {}
    insert_at = cfg.layout_index(place_before)
    for old in ordered:
        nb = cfg.new_block()
        cfg.blocks.remove(nb)
        cfg.blocks.insert(insert_at, nb)
        insert_at += 1
        nb.freq = cfg.block(old).freq
        clones = []
        for ins in cfg.block(old).instructions:
            c = ins.clone(fresh_uid=True)
            # Keep the profile linkage: a clone answers for its original in
            # ProfileDB lookups (branch-likely conversion after sectioning).
            c.ann.setdefault("cloned_from_uid",
                             ins.ann.get("cloned_from_uid", ins.uid))
            clones.append(c)
        nb.instructions = clones
        mapping[old] = nb.bid
    for old in ordered:
        for e in cfg.succ_edges[old]:
            dst = mapping.get(e.dst, e.dst)
            cfg.add_edge(mapping[old], dst, e.kind, e.freq)
    return mapping


def _specialize_branch(cfg: CFG, bid: int, kind: str) -> bool:
    """Rewrite the conditional branch ending *bid* for a segment of the
    given kind: likely toward the frequent direction.  Returns True if a
    likely branch was emitted."""
    from ..isa.opcodes import LIKELY_OF
    from .branch_likely import negate_branch

    bb = cfg.block(bid)
    term = bb.terminator
    assert term is not None and term.is_branch
    origin = term.ann.get("cloned_from_uid", term.uid)
    if kind == "taken":
        likely = LIKELY_OF.get(term.op)
        if likely is None:
            return False
        bb.instructions[-1] = term.clone(op=likely, fresh_uid=True)
        bb.instructions[-1].ann["split_branch"] = True
        bb.instructions[-1].ann["cloned_from_uid"] = origin
        return True
    if kind == "nottaken":
        if not negate_branch(cfg, bid):
            return False
        new_term = bb.instructions[-1]
        likely = LIKELY_OF.get(new_term.op)
        if likely is None:
            return False
        bb.instructions[-1] = new_term.clone(op=likely, fresh_uid=True)
        bb.instructions[-1].ann["split_branch"] = True
        bb.instructions[-1].ann["cloned_from_uid"] = origin
        return True
    return False  # mixed: keep the plain branch


def split_branch_sectioned(cfg: CFG, forest: LoopForest, branch_bid: int,
                           segments: Sequence[Segment],
                           int_pool: Optional[RegisterPool] = None,
                           cc_pool: Optional[RegisterPool] = None,
                           ) -> SplitReport:
    """Split via loop sectioning (paper Figure 5): one body clone per
    segment, bias-specialized branch per clone, branch-likely section-stay
    tests in the latches.

    Requirements: the branch is a forward conditional inside a natural loop
    with a single back edge whose latch ends in a conditional branch taken
    back to the header.  2-4 segments supported.  Raises
    :class:`SplitNotApplicable` when the shape or register pressure rules
    it out; the CFG is only modified when the transform succeeds.
    """
    if not 2 <= len(segments) <= 4:
        raise SplitNotApplicable(f"{len(segments)} segments (need 2-4)")
    if all(s.kind == "mixed" for s in segments):
        raise SplitNotApplicable("no biased segment to specialize")
    bb = cfg.block(branch_bid)
    term = bb.terminator
    if term is None or not term.is_branch:
        raise SplitNotApplicable("block does not end in a conditional branch")
    loop = forest.loop_of_block(branch_bid)
    if loop is None:
        raise SplitNotApplicable("branch is not inside a loop")
    if len(loop.back_edges) != 1:
        raise SplitNotApplicable("loop has multiple back edges")
    latch, header = loop.back_edges[0]
    if latch == branch_bid:
        raise SplitNotApplicable("cannot section on the loop-closing branch")
    latch_bb = cfg.block(latch)
    latch_term = latch_bb.terminator
    if latch_term is None or not latch_term.is_branch:
        raise SplitNotApplicable("latch does not end in a conditional branch")
    lte = cfg.taken_edge(latch)
    lfe = cfg.fall_edge(latch)
    if lte is None or lfe is None or lte.dst != header:
        raise SplitNotApplicable("latch taken edge does not close the loop")
    exit_dst = lfe.dst

    int_pool = int_pool or free_registers(cfg, "int")
    cc_pool = cc_pool or free_registers(cfg, "cc")
    if len(int_pool) < 1 or len(cc_pool) < 3:
        raise SplitNotApplicable("not enough free registers")
    counter = int_pool.take()
    p_loop = cc_pool.take()
    p_in = cc_pool.take()
    p_stay = cc_pool.take()
    try:
        loop_cond = branch_condition_to_cc(latch_term, p_loop)
    except ValueError as exc:
        raise SplitNotApplicable(str(exc)) from None

    report = SplitReport(branch_block=branch_bid, counter=counter,
                         cond_cc=p_loop,
                         boundaries=[s.start for s in segments[1:]])

    preheader = ensure_preheader(cfg, loop)
    insert_counter(cfg, loop, counter)
    body = sorted(loop.body)

    # Build clones for segments 1..k-1 (the original body serves the last
    # segment), laid out in segment order before the original header.
    clone_maps: list[dict[int, int]] = []
    for _seg in segments[:-1]:
        clone_maps.append(_clone_region(cfg, body, place_before=header))
    # Identity mapping for the final segment.
    clone_maps.append({b: b for b in body})

    # Specialize the split branch in every section, and stamp each section
    # with its share of the iteration space so later profile annotation
    # reflects PER-SEGMENT behavior — the paper's Figure 3 point: "the
    # operations from the true branch will be given more priority in the
    # first [segment] ... while giving operations in the false path more
    # priority in the last [segment]".
    total_iters = max(1, segments[-1].end)
    for seg, cmap in zip(segments, clone_maps):
        if _specialize_branch(cfg, cmap[branch_bid], seg.kind):
            report.likely_branches += 1
        report.new_blocks.extend(v for k, v in cmap.items() if v != k)
        fraction = seg.length / total_iters
        for bid in cmap.values():
            for ins in cfg.block(bid).instructions:
                ins.ann["split_fraction"] = fraction
        sec_term = cfg.block(cmap[branch_bid]).terminator
        if sec_term is not None and sec_term.is_branch:
            sec_term.ann["split_segment"] = (seg.start, seg.end)
            if seg.kind == "nottaken":
                # The branch was negated: its taken direction now follows
                # the original fall path.
                sec_term.ann["split_segment_negated"] = True

    # Rewrite each non-final section's latch:
    #   p_loop = <loop-continue condition>
    #   p_in   = counter < boundary
    #   p_stay = p_loop && p_in
    #   bctl p_stay -> this section's header          (hot, likely)
    #   bct  p_loop -> next section's header          (once per boundary)
    #   (fall)      -> loop exit
    for s, (seg, cmap) in enumerate(zip(segments[:-1], clone_maps[:-1])):
        boundary = segments[s + 1].start
        sec_latch = cmap[latch]
        sec_header = cmap[header]
        next_header = clone_maps[s + 1][header]
        lb = cfg.block(sec_latch)
        lb.instructions = lb.instructions[:-1]
        for i in loop_cond:
            lb.instructions.append(i.clone(fresh_uid=True))
        lb.instructions.append(make("cmpi", p_in, counter, boundary,
                                    split_pred=True))
        lb.instructions.append(make("cand", p_stay, p_loop, p_in,
                                    split_pred=True))
        cfg.remove_edges_from(sec_latch)
        stay = make("bctl", p_stay, "_")
        stay.ann["split_branch"] = True
        lb.instructions.append(stay)
        cfg.add_edge(sec_latch, sec_header, "taken")
        hand = cfg.new_block(after=sec_latch)
        hand.freq = lb.freq
        report.new_blocks.append(hand.bid)
        cfg.add_edge(sec_latch, hand.bid, "fall")
        cont = make("bct", p_loop, "_")
        cont.ann["split_branch"] = True
        hand.instructions.append(cont)
        cfg.add_edge(hand.bid, next_header, "taken")
        cfg.add_edge(hand.bid, exit_dst, "fall")
        report.likely_branches += 1

    # The loop-entry edge (from the preheader) now targets section 1.
    first_header = clone_maps[0][header]
    if first_header != header:
        for e in list(cfg.pred_edges[header]):
            if e.src != preheader:
                continue
            cfg.pred_edges[header].remove(e)
            e.dst = first_header
            cfg.pred_edges[first_header].append(e)
    return report


def split_branch(cfg: CFG, forest: LoopForest, branch_bid: int,
                 segments: Sequence[Segment],
                 style: str = "sectioned", **kw) -> SplitReport:
    """Split a phased loop branch.  ``style`` selects the codegen:
    ``"sectioned"`` (Figure 5, the default) or ``"inline"`` (Figure 7(b)).
    """
    if style == "sectioned":
        return split_branch_sectioned(cfg, forest, branch_bid, segments, **kw)
    if style == "inline":
        return split_branch_inline(cfg, forest, branch_bid, segments, **kw)
    raise ValueError(f"unknown split style {style!r}")


def split_from_profile(cfg: CFG, forest: LoopForest, branch_bid: int,
                       profile, style: str = "sectioned", **kw) -> SplitReport:
    """Convenience: split using the phased segmentation recorded in a
    :class:`~repro.profilefb.profiledb.ProfileDB` for this block's branch."""
    term = cfg.block(branch_bid).terminator
    if term is None:
        raise SplitNotApplicable("no terminator")
    bp = profile.branch_of(term)
    if bp is None:
        raise SplitNotApplicable("branch has no profile record")
    pattern = bp.classification.pattern
    if pattern.kind != "phased":
        raise SplitNotApplicable(f"pattern is {pattern.kind}, not phased")
    return split_branch(cfg, forest, branch_bid, pattern.segments,
                        style=style, **kw)
