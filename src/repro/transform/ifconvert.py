"""Guarded execution / if-conversion (paper Sections 1 and 3).

:func:`if_convert_diamond` converts a two-arm region

::

        B1: ... ; bXX cond, TAKEN
        B2: (fall arm) ... ; j B4
        B3: (taken arm) ...
        B4: join

into straight-line code: B1 computes the branch condition into a
condition-code register, both arms' instructions execute guarded by the
predicate (taken arm under ``(cc)``, fall arm under ``(!cc)``), and control
falls through to the join.  "The control dependences originally present in
the form of conditional branches are eliminated and now treated as data
dependences."

:func:`lower_guards` expands guarded operations into the conditional-move
subset actually offered by R10000-class hardware ("an issue of providing a
gamut of extra fictional operations to synthesize the full predicated
execution support in the compiler.  These fictional operations then need to
be expanded to their equivalent non-fully predicated versions sometime
before the final code layout phase", Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.graph import CFG
from ..isa.instruction import Guard, Instruction, make
from ..isa.registers import RegisterPool
from .renaming import free_registers

#: branch opcode -> (compare opcode producing "branch taken" in a cc reg,
#: second source is r0?)
_COND_OF_BRANCH = {
    "beq": ("cmpeq", False), "bne": ("cmpne", False),
    "beqz": ("cmpeq", True), "bnez": ("cmpne", True),
    "blez": ("cmple", True), "bgtz": ("cmpgt", True),
    "bltz": ("cmplt", True), "bgez": ("cmpge", True),
}


def branch_condition_to_cc(branch: Instruction, cc: str) -> list[Instruction]:
    """Instructions computing "branch would be taken" into cc register."""
    base = branch.op[:-1] if branch.is_likely else branch.op
    if base == "bct":
        return [make("cmov", cc, branch.srcs[0])]
    if base == "bcf":
        return [make("cmov", cc, branch.srcs[0]),
                make("cnot", cc, cc)]
    if base not in _COND_OF_BRANCH:
        raise ValueError(f"cannot express condition of {branch.op}")
    cmp_op, vs_zero = _COND_OF_BRANCH[base]
    if vs_zero:
        return [make(cmp_op, cc, branch.srcs[0], "r0")]
    return [make(cmp_op, cc, branch.srcs[0], branch.srcs[1])]


@dataclass
class IfConvertResult:
    """What :func:`if_convert_diamond` produced."""

    head: int
    removed_blocks: tuple[int, int]
    cc: str
    guarded_ops: int


def _is_simple_arm(cfg: CFG, bid: int, head: int, join: int) -> bool:
    """An arm is convertible when it has exactly one predecessor (the
    head), exactly one successor (the join), and contains no control
    transfers except an optional trailing jump, no calls, and no guarded
    instructions (no nested predication on this target)."""
    if cfg.preds(bid) != [head]:
        return False
    if cfg.succs(bid) != [join]:
        return False
    bb = cfg.block(bid)
    for i, ins in enumerate(bb.instructions):
        if ins.info.is_call or ins.is_guarded:
            return False
        if ins.is_control:
            if i != len(bb.instructions) - 1 or ins.is_branch or \
                    ins.op not in ("j",):
                return False
    return True


def find_diamond(cfg: CFG, head: int) -> Optional[tuple[int, int, int]]:
    """If *head* roots an if/else diamond, return (fall_arm, taken_arm,
    join); else None.  Also accepts triangles (one arm is the join itself)
    — those are returned with that arm id equal to the join id.
    """
    hb = cfg.block(head)
    term = hb.terminator
    if term is None or not term.is_branch:
        return None
    te, fe = cfg.taken_edge(head), cfg.fall_edge(head)
    if te is None or fe is None:
        return None
    taken, fall = te.dst, fe.dst
    if taken == fall:
        return None
    # Full diamond.
    for join_candidate in cfg.succs(fall):
        if cfg.succs(taken) == [join_candidate] and \
                cfg.succs(fall) == [join_candidate]:
            if _is_simple_arm(cfg, fall, head, join_candidate) and \
                    _is_simple_arm(cfg, taken, head, join_candidate):
                return (fall, taken, join_candidate)
    # Triangle: taken edge goes straight to the join.
    if taken in cfg.succs(fall) and _is_simple_arm(cfg, fall, head, taken):
        return (fall, taken, taken)
    # Triangle: fall-through goes straight to the join.
    if fall in cfg.succs(taken) and _is_simple_arm(cfg, taken, head, fall):
        return (fall, taken, fall)
    return None


def if_convert_diamond(cfg: CFG, head: int,
                       cc_pool: RegisterPool | None = None,
                       ) -> Optional[IfConvertResult]:
    """If-convert the diamond (or triangle) rooted at *head* in place.

    Returns None (CFG untouched) when the shape does not match, no cc
    register is free, or an arm is not convertible.
    """
    shape = find_diamond(cfg, head)
    if shape is None:
        return None
    fall, taken, join = shape
    if cc_pool is None:
        cc_pool = free_registers(cfg, "cc")
    if len(cc_pool) == 0:
        return None
    cc = cc_pool.take()

    hb = cfg.block(head)
    branch = hb.terminator
    assert branch is not None
    try:
        cond = branch_condition_to_cc(branch, cc)
    except ValueError:
        cc_pool.release(cc)
        return None

    hb.instructions = hb.instructions[:-1] + cond
    guarded = 0
    removed: list[int] = []
    for arm_bid, sense in ((fall, False), (taken, True)):
        if arm_bid == join:
            continue
        arm = cfg.block(arm_bid)
        for ins in arm.instructions:
            if ins.is_control:  # the trailing jump disappears
                continue
            hb.instructions.append(ins.guarded(Guard(cc, sense)))
            guarded += 1
        removed.append(arm_bid)

    # Rewire: head now falls straight into the join.
    cfg.remove_edges_from(head)
    for bid in removed:
        cfg.remove_edges_from(bid)
        cfg.blocks.remove(cfg.block(bid))
        del cfg._by_id[bid]
        del cfg.succ_edges[bid]
        # pred_edges entries from removed sources were cleared above;
        # drop the (now empty) key for hygiene.
        cfg.pred_edges.pop(bid, None)
    cfg.add_edge(head, join, "fall",
                 freq=sum(e.freq for e in cfg.pred_edges[join]) or hb.freq)
    while len(removed) < 2:
        removed.append(-1)
    return IfConvertResult(head=head, removed_blocks=(removed[0], removed[1]),
                           cc=cc, guarded_ops=guarded)


# ---------------------------------------------------------------------------
# Guard lowering (fictional ops -> conditional moves)
# ---------------------------------------------------------------------------


def lower_guards(cfg: CFG, pool: RegisterPool | None = None) -> int:
    """Expand guarded operations into conditional-move sequences.

    ``(cc) op rd, ...`` becomes ``op rt, ...`` into a scratch register
    followed by ``cmovt rd, rt, cc`` (``cmovf`` for negative sense).
    Conditional moves and cc-writing ops that are themselves guarded are
    left alone only if they are already native (cmovt/cmovf); guarded
    stores are not lowerable without reintroducing control flow and raise
    ValueError — the if-converter only produces them when the functional
    (fully-predicated) model is in use.

    Returns the number of instructions expanded.
    """
    if pool is None:
        pool = free_registers(cfg, "int")
    lowered = 0
    for bb in cfg.blocks:
        out: list[Instruction] = []
        for ins in bb.instructions:
            if ins.guard is None:
                out.append(ins)
                continue
            if ins.is_store:
                raise ValueError(
                    "guarded store requires full predication support; "
                    "run with the fully-predicated machine model instead")
            if ins.dest is None:
                out.append(ins.clone(guard=None, fresh_uid=True))
                lowered += 1
                continue
            if ins.dest[0] == "c":
                # Guarded cc write: compute into scratch cc? Simplest
                # correct lowering: keep as-is (cc ops are ALU-class and
                # the hardware model executes guards on cc ops natively).
                out.append(ins)
                continue
            if len(pool) == 0:
                out.append(ins)  # leave guarded; caller may retry
                continue
            scratch = pool.take()
            plain = ins.clone(guard=None, dest=scratch, fresh_uid=True)
            sel = make("cmovt" if ins.guard.sense else "cmovf",
                       ins.dest, scratch, ins.guard.reg)
            out.extend([plain, sel])
            pool.release(scratch)
            lowered += 1
        bb.instructions = out
    return lowered
