"""Dead-code elimination over a CFG.

Removes instructions whose results are never observed: no side effects
(stores, calls, control) and destination dead at that point.  Runs to a
fixpoint; primarily used to clean up copies left over after speculation +
forward substitution ("redundant load-store removal" class of peephole
cleanups, paper Section 1).
"""

from __future__ import annotations

from ..cfg.graph import CFG
from ..cfg.liveness import liveness
from ..isa.instruction import Instruction


def _has_side_effects(ins: Instruction) -> bool:
    if ins.is_store or ins.is_control or ins.info.is_call:
        return True
    if ins.op == "nop":
        return False
    return ins.dest is None


def eliminate_dead_code(cfg: CFG, live_at_exit: set[str] | None = None) -> int:
    """Remove dead instructions in place; returns how many were removed."""
    removed_total = 0
    changed = True
    while changed:
        changed = False
        info = liveness(cfg, live_at_exit)
        for bb in cfg.blocks:
            live = set(info.live_out[bb.bid])
            keep_rev: list[Instruction] = []
            for ins in reversed(bb.instructions):
                dead = (not _has_side_effects(ins)
                        and ins.dest is not None
                        and ins.dest not in live
                        and not ins.is_guarded)  # guarded writes are partial
                if dead and ins.op != "nop":
                    removed_total += 1
                    changed = True
                    continue
                if ins.op == "nop" and ins.guard is None:
                    removed_total += 1
                    changed = True
                    continue
                keep_rev.append(ins)
                if not (ins.is_cmov or ins.is_guarded):
                    live -= set(ins.defs())
                live |= set(ins.uses())
            bb.instructions = list(reversed(keep_rev))
    return removed_total
