"""Forward substitution (paper Section 1, Figure 1(b)).

"Forward substitution is a technique in which all subsequent uses of the
destination register of the copy instruction are replaced by its source
register.  This results in reduction of a true dependence between the copy
instruction and any subsequent instruction."

Operates within one basic block: given a copy ``mov rd, rs`` at position
*i*, later reads of ``rd`` become reads of ``rs`` until either register is
redefined.
"""

from __future__ import annotations

from ..cfg.basic_block import BasicBlock
from ..isa.instruction import Instruction


def is_copy(ins: Instruction) -> bool:
    """A plain unguarded register-to-register move."""
    return ins.op == "mov" and ins.guard is None


def forward_substitute_at(bb: BasicBlock, index: int) -> int:
    """Forward-substitute through the copy at *index*; returns the number
    of uses rewritten.  Raises ValueError if *index* is not a copy.
    """
    ins = bb.instructions[index]
    if not is_copy(ins):
        raise ValueError(f"instruction at {index} is not a copy: {ins}")
    rd = ins.dest
    rs = ins.srcs[0]
    if rd is None or rd == rs:
        return 0
    rewritten = 0
    for j in range(index + 1, len(bb.instructions)):
        cur = bb.instructions[j]
        if rd in cur.srcs:
            bb.instructions[j] = cur.with_substituted_uses({rd: rs})
            rewritten += 1
        # Stop at any redefinition of either register (including partial
        # writes — a guarded/cmov write of rd means later reads may see the
        # copy's value, so substitution must stop).
        cur = bb.instructions[j]
        if rd in cur.defs() or rs in cur.defs():
            break
    return rewritten


def forward_substitute_block(bb: BasicBlock) -> int:
    """Forward-substitute through every copy in the block; returns the
    total number of uses rewritten.  One pass front-to-back is enough to
    chase copy chains (mov b,a; mov c,b -> uses of c become a)."""
    total = 0
    for i, ins in enumerate(bb.instructions):
        if is_copy(ins):
            total += forward_substitute_at(bb, i)
    return total
