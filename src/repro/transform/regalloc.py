"""Register compaction: liveness-based renumbering of integer registers.

Why it exists (paper Section 3): guarded execution "necessitates the
presence of additional registers" and "may force an added pressure on the
limited general purpose integer and floating point register files"; the
speculation pass needs "free registers (at that time)" to rename into.
Compaction renumbers the integer registers a function actually uses so
that interference — not the programmer's numbering — determines how many
are occupied, replenishing the pools
:func:`repro.transform.renaming.free_registers` hands to the transforms.

The paper's conditional-lifetime problem ("a clear demarcation of the
different live ranges ... can be [a] complicated task especially now that
the register lifetimes are conditional") is handled the way the paper
recommends: conservatively.  Guarded and conditional-move writes are
partial, so our liveness keeps the old value live through them, which
simply makes their ranges longer.

Algorithm: per-instruction liveness (block live-out walked backward),
interference edges from each def to everything live after it, then greedy
coloring in first-appearance order with a preference for keeping a node's
original register.  Reserved registers (r0, r29-r31) and condition-code /
FP registers are never touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG
from ..cfg.liveness import liveness
from ..isa.instruction import Instruction
from ..isa.registers import INT_REGS, is_int_reg, reg_index
from .renaming import RESERVED


@dataclass
class RegAllocReport:
    """Result of one :func:`compact_registers` run."""

    mapping: dict[str, str] = field(default_factory=dict)
    registers_before: int = 0
    registers_after: int = 0

    @property
    def freed(self) -> int:
        return self.registers_before - self.registers_after


def _remap_instruction(ins: Instruction, mapping: dict[str, str]) -> Instruction:
    new_dest = mapping.get(ins.dest, ins.dest) if ins.dest else ins.dest
    new_srcs = tuple(mapping.get(s, s) for s in ins.srcs)
    if new_dest == ins.dest and new_srcs == ins.srcs:
        return ins
    return ins.clone(dest=new_dest, srcs=new_srcs)


def build_interference(cfg: CFG) -> dict[str, set[str]]:
    """Interference graph over the CFG's non-reserved integer registers.

    Two registers interfere when one is defined while the other is live;
    registers simultaneously live-in anywhere also interfere pairwise
    (conservative for values flowing around loops).
    """
    info = liveness(cfg)
    adj: dict[str, set[str]] = {}

    def node(r: str) -> bool:
        return is_int_reg(r) and r not in RESERVED

    def connect(a: str, b: str) -> None:
        if a != b and node(a) and node(b):
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set()).add(a)

    for bb in cfg.blocks:
        live = set(info.live_out[bb.bid])
        for a in live:
            for b in live:
                connect(a, b)
        for ins in reversed(bb.instructions):
            for d in ins.defs():
                if node(d):
                    adj.setdefault(d, set())
                for l in live:
                    connect(d, l)
            if not (ins.is_cmov or ins.is_guarded):
                live -= set(ins.defs())
            live |= set(ins.uses())
            for r in ins.registers():
                if node(r):
                    adj.setdefault(r, set())
        for a in info.live_in[bb.bid]:
            for b in info.live_in[bb.bid]:
                connect(a, b)
    return adj


def compact_registers(cfg: CFG) -> RegAllocReport:
    """Renumber integer registers to the smallest interference-compatible
    set, in place.  Returns the mapping applied.

    Skips functions using calls or indirect jumps conservatively only in
    the sense the liveness already does (everything live across them), so
    compaction degrades gracefully rather than miscompiling.
    """
    adj = build_interference(cfg)
    report = RegAllocReport(registers_before=len(adj))
    if not adj:
        return report

    allowed = [r for r in INT_REGS if r not in RESERVED]
    # First-appearance order keeps the mapping stable and readable.
    order: list[str] = []
    seen: set[str] = set()
    for bb in cfg.blocks:
        for ins in bb.instructions:
            for r in ins.registers():
                if r in adj and r not in seen:
                    seen.add(r)
                    order.append(r)
    for r in adj:
        if r not in seen:
            order.append(r)

    color: dict[str, str] = {}
    for r in order:
        taken = {color[n] for n in adj[r] if n in color}
        # Lowest-index free register: disjoint live ranges collapse onto
        # the same few names, freeing the rest for the rename pools.
        color[r] = next(c for c in allowed if c not in taken)

    mapping = {r: c for r, c in color.items() if r != c}
    if mapping:
        for bb in cfg.blocks:
            bb.instructions = [_remap_instruction(ins, mapping)
                               for ins in bb.instructions]
    report.mapping = mapping
    report.registers_after = len(set(color.values()))
    return report


def register_pressure(cfg: CFG) -> int:
    """Maximum number of simultaneously-live integer registers — the
    quantity guarded execution inflates (paper Section 3)."""
    info = liveness(cfg)
    peak = 0
    for bb in cfg.blocks:
        live = {r for r in info.live_out[bb.bid] if is_int_reg(r)}
        peak = max(peak, len(live))
        for ins in reversed(bb.instructions):
            if not (ins.is_cmov or ins.is_guarded):
                live -= set(ins.defs())
            live |= {r for r in ins.uses() if is_int_reg(r)}
            peak = max(peak, len(live))
    return peak
