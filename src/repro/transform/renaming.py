"""Software renaming support (paper Section 1).

"Software renaming involves replacing the destination register of the
concerned instruction and storing its result into an additional register.
This extra register can either be from the pool of free registers (at that
time) or dedicated registers."

:func:`free_registers` computes the pool of registers a program fragment
never touches; the speculation pass draws rename targets from it.
"""

from __future__ import annotations

from typing import Iterable

from ..cfg.graph import CFG
from ..isa.instruction import Instruction
from ..isa.registers import CC_REGS, FP_REGS, INT_REGS, RegisterPool

#: Registers never handed out as rename targets: the zero register and the
#: MIPS-convention stack/frame/return registers.
RESERVED = frozenset({"r0", "r29", "r30", "r31"})


def used_registers(instructions: Iterable[Instruction]) -> set[str]:
    """Every register mentioned by any instruction in the sequence."""
    used: set[str] = set()
    for ins in instructions:
        used.update(ins.registers())
    return used


def free_registers(cfg: CFG, reg_class: str = "int") -> RegisterPool:
    """Pool of registers of *reg_class* unused anywhere in the CFG.

    Conservative and simple — matching the paper's observation that "most
    conservative assumptions need to be made unless a full-blown predicate
    analyzer is available".
    """
    used: set[str] = set()
    for bb in cfg.blocks:
        used.update(used_registers(bb.instructions))
    if reg_class == "int":
        universe: Iterable[str] = INT_REGS
    elif reg_class == "fp":
        universe = FP_REGS
    elif reg_class == "cc":
        universe = CC_REGS
    else:
        raise ValueError(f"unknown register class {reg_class!r}")
    return RegisterPool(r for r in universe if r not in used and r not in RESERVED)


def free_registers_program(instructions: Iterable[Instruction],
                           reg_class: str = "int") -> RegisterPool:
    """Like :func:`free_registers` but over a flat instruction sequence."""
    used = used_registers(instructions)
    if reg_class == "int":
        universe: Iterable[str] = INT_REGS
    elif reg_class == "fp":
        universe = FP_REGS
    elif reg_class == "cc":
        universe = CC_REGS
    else:
        raise ValueError(f"unknown register class {reg_class!r}")
    return RegisterPool(r for r in universe if r not in used and r not in RESERVED)
