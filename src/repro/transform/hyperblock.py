"""Hyperblock-style region if-conversion (paper reference [6], Mahlke et
al., MICRO-25).

The paper's Section 2: "basic blocks with hard to predict frequencies are
coalesced (or if converted) to form larger blocks (or hyperblocks)".  Our
single-diamond converter (:func:`repro.transform.ifconvert.if_convert_diamond`)
composes into exactly that when applied bottom-up to a fixpoint: converting
an inner triangle straightens its parent's arm, which then becomes
convertible itself, until a whole acyclic region has collapsed into one
predicated block.

:func:`form_hyperblocks` drives that iteration, optionally gated per
diamond by the Figure 6 cost model so that only profitable regions
coalesce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG
from ..profilefb.profiledb import ProfileDB
from ..sched.machine_model import DEFAULT_MODEL, MachineModel
from .ifconvert import find_diamond, if_convert_diamond


@dataclass
class HyperblockReport:
    """Conversions performed by one :func:`form_hyperblocks` run."""

    conversions: int = 0
    rounds: int = 0
    merged: int = 0
    converted_heads: list[int] = field(default_factory=list)


def merge_straightline_blocks(cfg: CFG) -> int:
    """Fuse A -> B seams where A's only successor is B and B's only
    predecessor is A (if-conversion leaves these behind).  Returns the
    number of merges performed."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for bb in list(cfg.blocks):
            bid = bb.bid
            if bid not in cfg._by_id:
                continue
            succs = cfg.succ_edges[bid]
            if len(succs) != 1:
                continue
            nxt = succs[0].dst
            if nxt == bid or nxt == cfg.entry.bid:
                continue
            if len(cfg.pred_edges[nxt]) != 1:
                continue
            term = bb.terminator
            if term is not None and (term.is_branch or term.info.is_call
                                     or term.op in ("jr", "jalr")):
                continue
            nb = cfg.block(nxt)
            body = bb.instructions
            if term is not None:  # a plain jump: drop it
                body = body[:-1]
            bb.instructions = body + nb.instructions
            # Move nxt's outgoing edges to bb.
            cfg.remove_edges_from(bid)
            for e in list(cfg.succ_edges[nxt]):
                cfg.succ_edges[nxt].remove(e)
                e.src = bid
                cfg.succ_edges[bid].append(e)
            cfg.blocks.remove(nb)
            del cfg._by_id[nxt]
            del cfg.succ_edges[nxt]
            cfg.pred_edges.pop(nxt, None)
            merged += 1
            changed = True
            break
    return merged


def form_hyperblocks(cfg: CFG, profile: Optional[ProfileDB] = None,
                     heur=None, model: MachineModel = DEFAULT_MODEL,
                     max_rounds: int = 64) -> HyperblockReport:
    """Iteratively if-convert every (profitable) diamond/triangle until no
    more match.

    Without *profile*, every structurally convertible region converts —
    the pure Mahlke-style coalescing (useful before software pipelining,
    where the paper notes prior if-conversion "reduces messy control flow,
    makes the job of the cyclic scheduler much easier").  With *profile*
    (and optionally *heur*), each head is gated by the same cost check the
    Figure 6 algorithm uses, so well-predicted branches stay branches.
    """
    from ..core.algorithm import _ifconvert_cost_check
    from ..core.heuristics import DEFAULT_HEURISTICS

    heur = heur or DEFAULT_HEURISTICS
    report = HyperblockReport()
    for _ in range(max_rounds):
        report.rounds += 1
        changed = False
        for bb in list(cfg.blocks):
            if bb.bid not in cfg._by_id:
                continue
            if find_diamond(cfg, bb.bid) is None:
                continue
            if profile is not None:
                term = bb.terminator
                bp = profile.branch_of(term) if term is not None else None
                misrate = None
                if bp is not None and bp.executions:
                    misrate = 1.0 - bp.history.prediction_accuracy_2bit()
                ok, _gain = _ifconvert_cost_check(cfg, bb.bid, model, heur,
                                                  misrate=misrate)
                if not ok:
                    continue
            if if_convert_diamond(cfg, bb.bid) is not None:
                report.conversions += 1
                report.converted_heads.append(bb.bid)
                changed = True
        if not changed:
            break
    report.merged = merge_straightline_blocks(cfg)
    return report
