"""Compiler transformations: speculation, guarded execution, branch-likely
conversion, and the paper's split-branch transformation."""

from .renaming import RESERVED, free_registers, free_registers_program, used_registers
from .forward_subst import forward_substitute_at, forward_substitute_block, is_copy
from .speculation import (
    SpeculationReport, duplicate_into_predecessors, is_speculatable,
    speculate_from_successor,
)
from .ifconvert import (
    IfConvertResult, branch_condition_to_cc, find_diamond, if_convert_diamond,
    lower_guards,
)
from .meld import MeldResult, meld_diamond
from .branch_likely import LikelyReport, apply_branch_likely, negate_branch
from .branch_split import (
    SplitNotApplicable, SplitReport, ensure_preheader, insert_counter,
    split_branch, split_branch_inline, split_branch_sectioned,
    split_from_profile,
)
from .hyperblock import (
    HyperblockReport, form_hyperblocks, merge_straightline_blocks,
)
from .reverse_ifconvert import (
    ReverseIfConvertReport, fully_lower, reverse_if_convert,
)
from .regalloc import (
    RegAllocReport, build_interference, compact_registers, register_pressure,
)
from .dce import eliminate_dead_code
from .copyprop import propagate_copies, propagate_copies_block

__all__ = [
    "RESERVED", "free_registers", "free_registers_program", "used_registers",
    "forward_substitute_at", "forward_substitute_block", "is_copy",
    "SpeculationReport", "duplicate_into_predecessors", "is_speculatable",
    "speculate_from_successor",
    "IfConvertResult", "branch_condition_to_cc", "find_diamond",
    "if_convert_diamond", "lower_guards",
    "MeldResult", "meld_diamond",
    "LikelyReport", "apply_branch_likely", "negate_branch",
    "SplitNotApplicable", "SplitReport", "ensure_preheader", "insert_counter",
    "split_branch", "split_branch_inline", "split_branch_sectioned",
    "split_from_profile",
    "HyperblockReport", "form_hyperblocks", "merge_straightline_blocks",
    "ReverseIfConvertReport", "fully_lower", "reverse_if_convert",
    "RegAllocReport", "build_interference", "compact_registers",
    "register_pressure",
    "eliminate_dead_code", "propagate_copies", "propagate_copies_block",
]
