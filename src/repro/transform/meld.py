"""Branch melding: if-conversion without guards (the ``melded`` scheme).

Where :func:`~repro.transform.ifconvert.if_convert_diamond` predicates each
arm of a diamond behind a condition code, *melding* (PAPERS.md: "Eliminate
Branches by Melding IR Instructions") flattens the diamond into a fully
unconditional straight-line sequence:

1. the branch condition is computed into a cc register (reusing
   :func:`~repro.transform.ifconvert.branch_condition_to_cc`);
2. every arm's destination is software-renamed onto a scratch register, so
   both arms execute unconditionally without clobbering live state;
3. the surviving value of each original destination is selected with the
   *native* conditional moves (``cmovt``/``cmovf``) the R10000-class
   hardware actually offers — no fictional guarded ops remain, so the
   output needs no ``lower_guards`` pass and issues at full width.

The trade is the paper's classic one: melding executes both arms' work
every time (wasted issue slots on the not-taken side) in exchange for zero
control dependences and zero mispredictions on the melded branch.  The
transform is deliberately conservative: arms must be short straight-line
blocks of renameable int-destination ALU/load work.  Anything else —
stores, calls, cc writes, fp defs, divides (which could fault on the path
that would not have executed), partial-write cmovs, guarded ops — makes
the diamond ineligible and :func:`meld_diamond` returns None untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.graph import CFG
from ..isa.instruction import Instruction, make
from ..isa.registers import RegisterPool, is_int_reg
from .ifconvert import branch_condition_to_cc, find_diamond
from .renaming import free_registers

#: Ops excluded from melded arms because executing them on the wrong path
#: could trap or diverge (integer divide/remainder by a value the guarded
#: path never produces).
_FAULTING_OPS = frozenset({"div", "rem"})


@dataclass
class MeldResult:
    """What :func:`meld_diamond` produced."""

    head: int
    removed_blocks: tuple[int, int]
    cc: str
    melded_ops: int      # arm instructions flattened into the head
    selects: int         # conditional moves emitted to merge values


def _meldable_arm(cfg: CFG, bid: int, max_arm_ops: int) -> bool:
    """True when every instruction of arm *bid* may run unconditionally."""
    body = [ins for ins in cfg.block(bid).instructions if not ins.is_control]
    if len(body) > max_arm_ops:
        return False
    for ins in body:
        if ins.is_store or ins.info.is_call or ins.is_guarded:
            return False
        if ins.op in _FAULTING_OPS:
            return False
        if ins.dest is None or not is_int_reg(ins.dest) or ins.dest == "r0":
            return False
        if ins.is_cmov:
            # Partial write: dest is an implicit input the renamer cannot
            # substitute.  Explicit self-uses (addi r5, r5, 1) are fine —
            # the first occurrence reads the original register.
            return False
    return True


def _rename_arm(cfg: CFG, bid: int,
                pool: RegisterPool) -> tuple[list[Instruction],
                                             dict[str, str]]:
    """Arm *bid* with every def renamed onto scratch registers.

    Returns (renamed instructions, {original dest: final scratch}).
    Raises IndexError when the pool runs dry — the caller treats that as
    "melding not possible here".
    """
    out: list[Instruction] = []
    mapping: dict[str, str] = {}
    for ins in cfg.block(bid).instructions:
        if ins.is_control:  # the trailing jump disappears
            continue
        sub = ins.with_substituted_uses(mapping)
        scratch = pool.take()
        mapping[ins.dest] = scratch
        out.append(sub.clone(dest=scratch, fresh_uid=True))
    return out, mapping


def meld_diamond(cfg: CFG, head: int, *, max_arm_ops: int = 4,
                 int_pool: RegisterPool | None = None,
                 cc_pool: RegisterPool | None = None,
                 ) -> Optional[MeldResult]:
    """Meld the diamond (or triangle) rooted at *head* in place.

    Returns None (CFG untouched) when the shape does not match, an arm is
    not meldable, or no scratch/cc registers are free.
    """
    shape = find_diamond(cfg, head)
    if shape is None:
        return None
    fall, taken, join = shape
    arms = [bid for bid in dict.fromkeys((fall, taken)) if bid != join]
    if not arms:
        return None
    for bid in arms:
        if not _meldable_arm(cfg, bid, max_arm_ops):
            return None

    if cc_pool is None:
        cc_pool = free_registers(cfg, "cc")
    if len(cc_pool) == 0:
        return None
    if int_pool is None:
        int_pool = free_registers(cfg, "int")
    cc = cc_pool.take()

    hb = cfg.block(head)
    branch = hb.terminator
    assert branch is not None
    try:
        cond = branch_condition_to_cc(branch, cc)
        fall_code, fall_map = (
            _rename_arm(cfg, fall, int_pool) if fall != join else ([], {}))
        taken_code, taken_map = (
            _rename_arm(cfg, taken, int_pool) if taken != join else ([], {}))
    except (ValueError, IndexError):
        cc_pool.release(cc)
        return None

    # Merge order: original program order of first definition (fall arm
    # then taken arm), so the emitted selects are deterministic.
    selects: list[Instruction] = []
    for dest in dict.fromkeys(list(fall_map) + list(taken_map)):
        if dest in taken_map:
            selects.append(make("cmovt", dest, taken_map[dest], cc))
        if dest in fall_map:
            selects.append(make("cmovf", dest, fall_map[dest], cc))

    hb.instructions = (hb.instructions[:-1] + cond
                       + fall_code + taken_code + selects)

    # Rewire: head now falls straight into the join (same surgery as
    # if_convert_diamond).
    cfg.remove_edges_from(head)
    for bid in arms:
        cfg.remove_edges_from(bid)
        cfg.blocks.remove(cfg.block(bid))
        del cfg._by_id[bid]
        del cfg.succ_edges[bid]
        cfg.pred_edges.pop(bid, None)
    cfg.add_edge(head, join, "fall",
                 freq=sum(e.freq for e in cfg.pred_edges[join]) or hb.freq)
    removed = list(arms)
    while len(removed) < 2:
        removed.append(-1)
    return MeldResult(head=head, removed_blocks=(removed[0], removed[1]),
                      cc=cc, melded_ops=len(fall_code) + len(taken_code),
                      selects=len(selects))
