"""Branch-likely conversion (paper Sections 3 and 5).

"The branch-likely instructions are inserted to regulate control flow and
give more priority to instruction traces for the portion of the loop
execution where the probability (or profitability) of that instruction
trace is very high."

Highly-taken branches are rewritten to their ``-likely`` twins; highly
NOT-taken branches are first negated (taken/fall-through successors swap)
so that the likely form points down the frequent path.  Branch-likelies are
always predicted taken and hold no BHT/BTB entry, so this both removes the
mispredictions on the biased branch and stops it competing for predictor
capacity (paper: "there are now less branch instructions which compete
against each other").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG
from ..isa.opcodes import LIKELY_OF, NEGATED_BRANCH
from ..profilefb.classify import BranchClass
from ..profilefb.profiledb import ProfileDB


@dataclass
class LikelyReport:
    converted: int = 0
    negated: int = 0
    skipped_unsupported: int = 0
    details: list[tuple[int, str, str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        return {"converted": self.converted, "negated": self.negated,
                "skipped_unsupported": self.skipped_unsupported,
                "details": [list(t) for t in self.details]}

    @classmethod
    def from_dict(cls, d: dict) -> "LikelyReport":
        """Inverse of :meth:`to_dict`."""
        return cls(converted=d["converted"], negated=d["negated"],
                   skipped_unsupported=d["skipped_unsupported"],
                   details=[tuple(t) for t in d["details"]])


def negate_branch(cfg: CFG, bid: int) -> bool:
    """Invert the sense of the conditional branch ending block *bid*,
    swapping its taken and fall-through edges.  Returns False when the
    opcode has no negation (e.g. register-pair compare forms all do)."""
    bb = cfg.block(bid)
    term = bb.terminator
    if term is None or not term.is_branch:
        return False
    negated = NEGATED_BRANCH.get(term.op)
    if negated is None:
        return False
    te, fe = cfg.taken_edge(bid), cfg.fall_edge(bid)
    if te is None or fe is None:
        return False
    bb.instructions[-1] = term.clone(op=negated, fresh_uid=True)
    te.kind, fe.kind = "fall", "taken"
    return True


def apply_branch_likely(cfg: CFG, profile: ProfileDB) -> LikelyReport:
    """Rewrite highly-biased branches to branch-likely form, in place.

    Classification comes from the profile: ``HIGHLY_TAKEN`` converts
    directly; ``HIGHLY_NOTTAKEN`` negates first.  Branches with no profile
    record (never executed) are left alone.
    """
    report = LikelyReport()
    for bb in cfg.blocks:
        term = bb.terminator
        if term is None or not term.is_branch or term.is_likely:
            continue
        bp = profile.branch_of(term)
        if bp is None:
            continue
        cls = bp.classification.branch_class
        if cls == BranchClass.HIGHLY_TAKEN:
            likely = LIKELY_OF.get(term.op)
            if likely is None:
                report.skipped_unsupported += 1
                continue
            bb.instructions[-1] = term.clone(op=likely, fresh_uid=True)
            report.converted += 1
            report.details.append((bb.bid, term.op, likely))
        elif cls == BranchClass.HIGHLY_NOTTAKEN:
            if term.op not in NEGATED_BRANCH or \
                    NEGATED_BRANCH[term.op] not in LIKELY_OF:
                report.skipped_unsupported += 1
                continue
            if not negate_branch(cfg, bb.bid):
                report.skipped_unsupported += 1
                continue
            new_term = bb.instructions[-1]
            bb.instructions[-1] = new_term.clone(
                op=LIKELY_OF[new_term.op], fresh_uid=True)
            report.converted += 1
            report.negated += 1
            report.details.append((bb.bid, term.op, bb.instructions[-1].op))
    return report
