"""Local copy propagation.

Within each block, after ``mov rd, rs``, reads of ``rd`` become reads of
``rs`` until either register is redefined.  Combined with DCE this removes
the copies software renaming inserts when they turn out to be unnecessary.
"""

from __future__ import annotations

from ..cfg.graph import CFG
from ..cfg.basic_block import BasicBlock


def propagate_copies_block(bb: BasicBlock) -> int:
    """Propagate copies within one block; returns uses rewritten."""
    rewritten = 0
    copy_of: dict[str, str] = {}
    for i, ins in enumerate(bb.instructions):
        # Rewrite uses through the current copy map.
        mapping = {r: copy_of[r] for r in ins.srcs if r in copy_of}
        if mapping:
            bb.instructions[i] = ins.with_substituted_uses(mapping)
            ins = bb.instructions[i]
            rewritten += len(mapping)
        # Kill mappings invalidated by this instruction's defs.
        for r in ins.defs():
            copy_of.pop(r, None)
            for k in [k for k, v in copy_of.items() if v == r]:
                del copy_of[k]
        # Record a new copy (unguarded moves only — a guarded move is a
        # partial write and not a reliable alias).
        if ins.op == "mov" and ins.guard is None and ins.dest is not None \
                and ins.dest != ins.srcs[0]:
            copy_of[ins.dest] = ins.srcs[0]
    return rewritten


def propagate_copies(cfg: CFG) -> int:
    """Run local copy propagation over every block."""
    return sum(propagate_copies_block(bb) for bb in cfg.blocks)
