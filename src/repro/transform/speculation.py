"""Speculative code motion (paper Section 1, Figure 1).

Two primitives:

* :func:`speculate_from_successor` — hoist instructions from the top of a
  successor block into a predecessor, above the branch that controls them,
  with software renaming, copy insertion, and forward substitution exactly
  as in the paper's Figure 1(b): the destination is renamed to a free
  register, a copy restores the original name at the source position, and
  forward substitution removes the resulting true dependence.
* :func:`duplicate_into_predecessors` — the complementary downward motion
  of Figure 2(c): copy the leading operations of a join block into every
  (unconditional) predecessor, shrinking the join's schedule.

Safety here is deliberately conservative ("most conservative assumptions
need to be made", Section 3): no stores, calls, control transfers or
guarded operations are speculated upward, and loads do not move past
skipped stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG
from ..cfg.liveness import liveness
from ..isa.instruction import Instruction, make
from ..isa.registers import RegisterPool
from .forward_subst import forward_substitute_block
from .renaming import free_registers


@dataclass
class SpeculationReport:
    """What one call to :func:`speculate_from_successor` did."""

    hoisted: list[Instruction] = field(default_factory=list)
    copies: list[Instruction] = field(default_factory=list)
    renamed: dict[str, str] = field(default_factory=dict)
    #: hoists the safety guard allowed only behind a serializing fence
    fenced: list[Instruction] = field(default_factory=list)
    #: candidate hoists the safety guard refused outright
    suppressed: int = 0

    @property
    def count(self) -> int:
        return len(self.hoisted)


def is_speculatable(ins: Instruction) -> bool:
    """May this instruction execute on a path it wasn't on before?

    Loads are speculatable (our memory model is non-faulting, mirroring the
    paper's dismissable-load assumption); stores, control transfers, calls
    and already-guarded operations are not.
    """
    if ins.is_control or ins.info.is_call or ins.is_store:
        return False
    if ins.is_guarded:
        return False
    if ins.dest is None:  # nothing to rename; nop etc. — pointless
        return False
    return True


def speculate_from_successor(cfg: CFG, pred_bid: int, succ_bid: int,
                             max_ops: int,
                             pool: RegisterPool | None = None,
                             allow_rename: bool = True,
                             hoist_guard=None) -> SpeculationReport:
    """Hoist up to *max_ops* instructions from the top of block *succ_bid*
    into *pred_bid* (immediately before its terminator).

    With ``allow_rename=False`` only instructions whose destination is dead
    on every other path move (no copy insertion) — the "free" hoists a
    profile-guided policy prefers on an out-of-order target, where a
    rename+copy pair lengthens the hot path it was meant to shorten.

    *hoist_guard*, when given, is a speculative-safety oracle (see
    :class:`repro.robust.spectre.SpectreHoistGuard`): called as
    ``guard(cfg, pred_bid, ins)`` per candidate, its answer either lets
    the hoist through (``"allow"``), refuses it (``"suppress"``), or
    requires a serializing ``fence`` planted directly in front of the
    hoisted instruction (``"fence"``) — the safe-speculative scheme.

    Returns a report; ``report.count`` may be less than *max_ops* when
    candidates run out (non-speculatable op reached, source defined by a
    skipped instruction, or the rename pool is exhausted).
    """
    if succ_bid not in cfg.succs(pred_bid):
        raise ValueError(f"{succ_bid} is not a successor of {pred_bid}")
    if cfg.preds(succ_bid) != [pred_bid]:
        # Hoisting removes instructions from succ; with another entry path
        # those instructions would be lost on it.  Not speculatable.
        return SpeculationReport()
    pred = cfg.block(pred_bid)
    succ = cfg.block(succ_bid)
    if pool is None:
        pool = free_registers(cfg, "int")
    live = liveness(cfg)

    report = SpeculationReport()
    moved_map: dict[str, str] = {}
    skipped_defs: set[str] = set()
    skipped_store = False
    insert_at = len(pred.instructions)
    if pred.terminator is not None:
        insert_at -= 1

    # Registers that must keep their old value if the hoisted instruction
    # executes on the wrong path: anything live out of pred toward OTHER
    # successors, plus anything pred itself still reads (its terminator).
    other_live: set[str] = set()
    for s in cfg.succs(pred_bid):
        if s != succ_bid:
            other_live |= live.live_in[s]
    term = pred.terminator
    if term is not None:
        other_live |= set(term.uses())

    new_succ: list[Instruction] = []
    for pos, ins in enumerate(succ.instructions):
        if report.count >= max_ops:
            new_succ.extend(succ.instructions[pos:])
            break
        movable = is_speculatable(ins)
        if movable:
            for r in ins.uses():
                if r in skipped_defs:
                    movable = False
                    break
        if movable and ins.is_load and skipped_store:
            movable = False
        fence_before = False
        if movable and hoist_guard is not None:
            # Query on the substituted form: earlier hoists may have
            # renamed the registers this candidate reads, and the guard's
            # taint query must see the names as they exist in pred.
            action = hoist_guard(cfg, pred_bid,
                                 ins.with_substituted_uses(moved_map))
            if action == "suppress":
                movable = False
                report.suppressed += 1
            elif action == "fence":
                fence_before = True
        if not movable:
            skipped_defs.update(ins.defs())
            if ins.is_store:
                skipped_store = True
            new_succ.append(ins)
            continue

        dest = ins.dest
        assert dest is not None
        hoistable = ins.with_substituted_uses(moved_map)
        # Renaming needed when the destination's old value can still be
        # observed: on another path out of pred, by pred's own terminator,
        # or by a skipped instruction later in succ (we can't see later
        # uses of the OLD value once ins is gone, so any earlier skipped
        # use means the old value was needed up to here).
        needs_rename = dest in other_live or dest in moved_map.values()
        if not needs_rename and dest in live.live_in[succ_bid]:
            # Old value of dest flows into succ (used before this def by a
            # skipped instruction, or this is a partial write).
            needs_rename = True
        if needs_rename:
            if not allow_rename or len(pool) == 0:
                skipped_defs.update(ins.defs())
                new_succ.append(ins)
                continue
            fresh = pool.take()
            hoisted = hoistable.with_renamed_def(fresh)
            copy = make("mov", dest, fresh, speculated_copy=True)
            new_succ.append(copy)
            report.copies.append(copy)
            report.renamed[dest] = fresh
            moved_map[dest] = fresh
        else:
            hoisted = hoistable.clone(fresh_uid=True)
            moved_map[dest] = dest
        hoisted.ann["speculated_from"] = succ_bid
        if fence_before:
            # One barrier covers every consecutive flagged hoist at this
            # insertion point; don't stack redundant fences.
            prev = pred.instructions[insert_at - 1] if insert_at else None
            if prev is None or not prev.info.is_fence:
                barrier = make("fence", spectre_fence=True)
                pred.instructions.insert(insert_at, barrier)
                insert_at += 1
            report.fenced.append(hoisted)
        pred.instructions.insert(insert_at, hoisted)
        insert_at += 1
        report.hoisted.append(hoisted)

    succ.instructions = new_succ
    # Clean the copies' dependences downstream.
    forward_substitute_block(succ)
    return report


def duplicate_into_predecessors(cfg: CFG, join_bid: int, max_ops: int) -> int:
    """Move up to *max_ops* leading instructions of *join_bid* into every
    predecessor (paper Figure 2(c): "two operations are copied from B4 to
    B2 and B3 respectively").

    Legal only when every predecessor reaches the join unconditionally
    (single successor) — the moved operations must execute exactly when the
    join would have executed them.  Returns the number of instructions
    moved (0 if the shape is illegal).
    """
    preds = cfg.preds(join_bid)
    if not preds or join_bid == cfg.entry.bid:
        return 0
    for p in preds:
        if len(cfg.succs(p)) != 1:
            return 0
        term = cfg.block(p).terminator
        if term is not None and (term.is_branch or term.info.is_call):
            return 0
    join = cfg.block(join_bid)

    movable = 0
    for ins in join.instructions:
        if movable >= max_ops:
            break
        if ins.is_control or ins.info.is_call:
            break
        movable += 1
    if movable == 0:
        return 0

    moved = join.instructions[:movable]
    join.instructions = join.instructions[movable:]
    for p in preds:
        pb = cfg.block(p)
        at = len(pb.instructions)
        if pb.terminator is not None:
            at -= 1
        for k, ins in enumerate(moved):
            dup = ins.clone(fresh_uid=True)
            dup.ann["duplicated_from"] = join_bid
            pb.instructions.insert(at + k, dup)
    return movable
