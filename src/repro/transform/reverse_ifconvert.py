"""Reverse if-conversion (paper reference [15], Warter et al., PLDI 1993).

Converts guarded instructions back into explicit control flow.  The paper's
Section 3 explains why this is needed: commercial processors "provide a
limited predicated execution support", so the compiler's fully-predicated
fictional operations "need to be expanded to their equivalent non-fully
predicated versions sometime before the final code layout phase".

:func:`lower_guards <repro.transform.ifconvert.lower_guards>` handles
register-writing guarded ops via conditional moves but cannot lower guarded
*stores*; reverse if-conversion handles everything by re-materializing a
branch around each maximal run of same-guard instructions::

    (cc)  op1            bcf cc, skip     ;  (!cc) runs use bct
    (cc)  op2     ==>    op1
                         op2
                       skip:

The transformation is the inverse of if-conversion, so `if_convert` then
`reverse_if_convert` round-trips semantics (tested by differential tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import CFG
from ..isa.instruction import Instruction, make


@dataclass
class ReverseIfConvertReport:
    """What one pass did."""

    runs_converted: int = 0
    instructions_unguarded: int = 0
    blocks_added: int = 0


def _guard_runs(instructions: list[Instruction]) -> list[tuple[int, int]]:
    """Maximal [start, end) runs of instructions sharing one guard."""
    runs: list[tuple[int, int]] = []
    i = 0
    n = len(instructions)
    while i < n:
        g = instructions[i].guard
        if g is None:
            i += 1
            continue
        j = i + 1
        while j < n and instructions[j].guard == g:
            j += 1
        runs.append((i, j))
        i = j
    return runs


def reverse_if_convert(cfg: CFG) -> ReverseIfConvertReport:
    """Replace every guarded instruction in the CFG with branch-around
    control flow, in place.

    Each maximal same-guard run becomes its own block, entered through a
    conditional branch on the guard register (``bcf`` skips a
    positive-sense run, ``bct`` skips a negative-sense one).  Works on
    any guarded instruction, stores included.
    """
    report = ReverseIfConvertReport()
    worklist = [bb.bid for bb in cfg.blocks]
    for bid in worklist:
        bb = cfg.block(bid)
        runs = _guard_runs(bb.instructions)
        if not runs:
            continue
        # Process the FIRST run; re-queue the block until clean (later
        # runs end up in the tail block created here).
        start, end = runs[0]
        guard = bb.instructions[start].guard
        assert guard is not None

        body = [ins.clone(guard=None, fresh_uid=True)
                for ins in bb.instructions[start:end]]
        tail_instructions = bb.instructions[end:]
        head_instructions = bb.instructions[:start]

        # head: ... ; b<not guard> skip_label  -> falls into run block
        # run block: body                      -> falls into tail block
        # tail block: rest of original block (+ original terminator)
        run_bb = cfg.new_block(after=bid)
        tail_bb = cfg.new_block(after=run_bb.bid)
        report.blocks_added += 2
        run_bb.freq = bb.freq
        tail_bb.freq = bb.freq

        run_bb.instructions = body
        tail_bb.instructions = tail_instructions

        skip_op = "bcf" if guard.sense else "bct"
        branch = make(skip_op, guard.reg, "_")
        branch.ann["reverse_ifconvert"] = True
        bb.instructions = head_instructions + [branch]

        # Move bb's outgoing edges onto the tail block.
        for e in list(cfg.succ_edges[bid]):
            cfg.succ_edges[bid].remove(e)
            e.src = tail_bb.bid
            cfg.succ_edges[tail_bb.bid].append(e)
        cfg.add_edge(bid, tail_bb.bid, "taken")   # guard false: skip run
        cfg.add_edge(bid, run_bb.bid, "fall")
        cfg.add_edge(run_bb.bid, tail_bb.bid, "fall")

        report.runs_converted += 1
        report.instructions_unguarded += len(body)
        worklist.append(tail_bb.bid)  # it may hold further guarded runs
    return report


def fully_lower(cfg: CFG, prefer_cmov: bool = True) -> ReverseIfConvertReport:
    """Lower all predication for a limited-predication target: conditional
    moves where possible (cheap), reverse if-conversion for the rest
    (guarded stores and anything the cmov lowering left behind)."""
    from .ifconvert import lower_guards

    if prefer_cmov:
        # lower_guards refuses on guarded stores; strip those first by
        # reverse-converting only blocks that contain them.
        has_guarded_store = any(
            ins.guard is not None and ins.is_store
            for bb in cfg.blocks for ins in bb.instructions)
        if has_guarded_store:
            report = reverse_if_convert(cfg)
            return report
        lower_guards(cfg)
        return ReverseIfConvertReport()
    return reverse_if_convert(cfg)
