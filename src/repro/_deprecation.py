"""Deprecation shims for the pre-:class:`repro.api.Session` entry points.

The facade consolidation keeps every legacy free function working —
``repro.eval.run_benchmark``/``run_suite``, ``repro.engine.run_sweep``,
``repro.qa.run_campaign`` — but each now warns once per call site that
:class:`repro.api.Session` is the supported front door.

The shim carries the real implementation on its ``_deprecated_impl``
attribute so *internal* callers (e.g. the engine suite's serial path)
can execute it without triggering the user-facing warning, while still
resolving the name through the module at call time: a test that
monkeypatches the public name installs a plain function without the
attribute, which internal callers then use directly — the
fault-injection contract survives the deprecation.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable


def deprecated(replacement: str, name: str = "") -> Callable:
    """Wrap an implementation in a ``DeprecationWarning``-emitting shim.

    *replacement* is what the warning points the caller at; *name* is the
    public name being deprecated (default: the implementation's name with
    a trailing ``_impl`` stripped).
    """
    def deco(fn: Callable) -> Callable:
        public = name or fn.__name__.removesuffix("_impl")

        @functools.wraps(fn)
        def shim(*args, **kwargs):
            warnings.warn(
                f"{fn.__module__}.{public}() is deprecated; "
                f"use {replacement} instead",
                DeprecationWarning, stacklevel=2)
            return fn(*args, **kwargs)

        shim.__name__ = public
        shim.__qualname__ = public
        shim._deprecated_impl = fn
        return shim
    return deco


def resolve_impl(fn: Callable) -> Callable:
    """The warning-free implementation behind a shim (or *fn* itself).

    Internal call sites use this after a call-time attribute lookup, so
    monkeypatched replacements (which lack ``_deprecated_impl``) still
    intercept.
    """
    return getattr(fn, "_deprecated_impl", fn)
