"""The worker fleet: threads that pull cells and push results.

Each worker loops claim → execute → store → complete against one
:class:`~repro.serve.queue.JobQueue` and one
:class:`~repro.serve.store.TieredStore`.  Execution reuses the engine's
containment unchanged — :func:`~repro.engine.cells.execute_cell` for
evaluation cells (retry + the thread-portable watchdog timeout; workers
are threads, which is exactly why the watchdog replaced ``SIGALRM``) and
:func:`~repro.qa.cells.execute_fuzz_cell` for fuzz cells.  Both return
failure payloads instead of raising, so a cell can only take a worker
down through interpreter-level faults — and even then the dispatch loop
catches the escape, requeues the cell for a live worker (bounded by
:data:`~repro.serve.queue.MAX_CELL_ATTEMPTS`), and keeps serving.

Results are written through to **every subscribing tenant's cache
namespace** before completion: execution is deduplicated fleet-wide,
but each tenant's artifact store stays isolated — the next identical
submission from any of them replays from cache without queueing at all.

Utilization accounting: each worker tracks busy nanoseconds against its
lifetime; :meth:`WorkerFleet.stats` reports per-worker and fleet-level
utilization for the ``/v1/stats`` endpoint and BENCH_serve.json.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Optional

from ..core import serde
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from .queue import JobQueue
from .store import Backend
from . import protocol

#: Seconds a worker blocks in claim() before re-checking its stop flag.
CLAIM_POLL_S = 0.2


def _failure_payload(kind: str, exc: BaseException) -> dict:
    """A contained failure result for a cell whose execution escaped."""
    detail = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)[-4:])
    reason = f"{type(exc).__name__}: {exc}"[:80]
    if kind == "fuzz":
        return {"schemes": {}, "divergent": [], "error": reason,
                "error_detail": detail}
    return serde.stamp({"benchmark": "?", "scheme": "?", "stats": None,
                        "exec_stats": None, "compile_result": None,
                        "failure": reason, "failure_detail": detail})


def execute_payload(kind: str, spec: dict) -> dict:
    """Execute one claimed cell of *kind*; returns its result payload.

    ``"cells"`` decodes an evaluation :class:`CellSpec`; ``"fuzz"``
    decodes a :class:`FuzzCellSpec`.  Both executors contain Python-level
    failures themselves; decoding errors raise (the dispatch loop turns
    them into failure payloads after the attempt budget).
    """
    if kind == "fuzz":
        from ..qa.cells import FuzzCellSpec, execute_fuzz_cell

        return execute_fuzz_cell(FuzzCellSpec(
            strategy=spec["strategy"], seed=spec["seed"],
            max_steps=spec["max_steps"]))
    from ..engine.cells import execute_cell

    return execute_cell(protocol.cellspec_from_payload(spec))


class Worker:
    """One fleet thread (see module docstring)."""

    def __init__(self, name: str, queue: JobQueue, store: Backend,
                 subscribers_of) -> None:
        self.name = name
        self.queue = queue
        self.store = store
        self._subscribers_of = subscribers_of
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name,
                                        daemon=True)
        self.cells_executed = 0
        self.busy_ns = 0
        self.started_ns = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Launch the worker thread."""
        self.started_ns = time.monotonic_ns()
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop.set()
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        """Whether the worker thread is still running."""
        return self._thread.is_alive()

    # -- the loop ----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            claimed = self.queue.claim(timeout=CLAIM_POLL_S)
            if claimed is None:
                continue
            key, kind, spec = claimed
            t0 = time.monotonic_ns()
            try:
                with obs_span("serve.execute", worker=self.name,
                              kind=kind, key=key[:12]):
                    payload = execute_payload(kind, spec)
            except BaseException as exc:  # noqa: BLE001 - fleet survival
                REGISTRY.inc("serve.worker.escaped")
                if not self.queue.requeue(key):
                    # attempt budget exhausted: fail the cell for all
                    # subscribers rather than spinning forever
                    self._publish(key, kind, _failure_payload(kind, exc))
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                continue
            finally:
                self.busy_ns += time.monotonic_ns() - t0
            self.cells_executed += 1
            REGISTRY.inc("serve.worker.cells")
            self._publish(key, kind, payload)

    def _publish(self, key: str, kind: str, payload: dict) -> None:
        """Write the result into every subscriber namespace, complete."""
        for tenant in self._subscribers_of(key):
            try:
                self.store.put(tenant, key, payload)
            except Exception:  # noqa: BLE001 - cache write must not kill
                REGISTRY.inc("serve.worker.store_failures")
        self.queue.complete(key, payload)

    # -- reporting ---------------------------------------------------------

    def utilization(self) -> float:
        """Busy fraction of this worker's lifetime (0.0 when unstarted)."""
        if not self.started_ns:
            return 0.0
        alive_ns = time.monotonic_ns() - self.started_ns
        return self.busy_ns / alive_ns if alive_ns else 0.0


class WorkerFleet:
    """A fixed-size set of :class:`Worker` threads over one queue."""

    def __init__(self, queue: JobQueue, store: Backend, workers: int = 2):
        if workers < 1:
            raise ValueError("the fleet needs at least one worker")
        self.queue = queue
        self.store = store
        self._subscriber_index: dict[str, list[str]] = {}
        self._index_lock = threading.Lock()
        self.workers = [
            Worker(f"worker-{i}", queue, store, self.subscribers_of)
            for i in range(workers)]

    # -- subscriber index --------------------------------------------------
    # The queue tracks jobs; the fleet only needs key -> tenant namespaces
    # for the write-through.  The server registers subscriptions at
    # submission time and the fleet drops them at completion.

    def subscribe(self, key: str, tenant: str) -> None:
        """Record that *tenant* wants the artifact of *key*."""
        with self._index_lock:
            tenants = self._subscriber_index.setdefault(key, [])
            if tenant not in tenants:
                tenants.append(tenant)

    def subscribers_of(self, key: str) -> list[str]:
        """Tenant namespaces awaiting *key* (cleared on completion)."""
        with self._index_lock:
            return list(self._subscriber_index.pop(key, []))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Launch every worker."""
        for w in self.workers:
            w.start()

    def stop(self) -> None:
        """Stop every worker (the queue is closed first by the server)."""
        for w in self.workers:
            w.stop()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Fleet snapshot: per-worker and aggregate utilization."""
        per_worker = {
            w.name: {
                "alive": w.alive,
                "cells_executed": w.cells_executed,
                "utilization": round(w.utilization(), 4),
            } for w in self.workers}
        executed = sum(w.cells_executed for w in self.workers)
        return {
            "workers": len(self.workers),
            "alive": sum(1 for w in self.workers if w.alive),
            "cells_executed": executed,
            "utilization": round(
                sum(w.utilization() for w in self.workers)
                / len(self.workers), 4),
            "per_worker": per_worker,
        }
