"""Namespaced, remote-capable artifact storage for the service tier.

Layers, bottom to top:

* :class:`~repro.engine.cache.ArtifactCache` — the existing atomic,
  LRU-capped on-disk store (unchanged; one instance per namespace);
* :class:`LocalBackend` — per-tenant namespaces on one root:
  ``<root>/ns/<namespace>/<shard>/<key>.json``, with the root's own
  top-level entries readable as the ``default`` namespace, so a plain
  ``.repro-cache/`` keeps working verbatim;
* :class:`RemoteBackend` — the same get/put surface over HTTP against a
  serve host's ``/v1/cache/<namespace>/<key>`` endpoints (stdlib
  ``urllib``).  All the local store's degradation rules carry over: a
  network fault, a 404, a corrupt body, or a schema mismatch is a miss,
  never an error — the worker then simply recomputes the cell;
* :class:`TieredStore` — local in front of an optional remote:
  read-through (remote hits are replicated into the local tier) and
  write-through (puts go to both), which is how one shared cache host
  backs a fleet of workers without becoming a point of failure.

Namespaces are tenant names sanitized by :func:`check_namespace`
(``[A-Za-z0-9._-]``, no traversal).  Cross-tenant *execution* dedup
happens in the queue; the artifact namespaces stay isolated so one
tenant's eviction pressure or corrupted entries never touch another's.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional, Union

from ..engine.cache import ArtifactCache, default_cache_dir
from ..engine.keys import SCHEMA_VERSION
from ..obs.metrics import REGISTRY

#: The implicit namespace of a store root's top-level entries (the
#: layout every pre-service cache already has).
DEFAULT_NAMESPACE = "default"

#: Subdirectory holding the non-default namespaces.
NAMESPACE_DIR = "ns"

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def check_namespace(namespace: str) -> str:
    """Validate a namespace token; returns it for chaining.

    Rejects path traversal and shell-hostile names outright — tenant
    names become directory names and URL path segments.
    """
    if not _NAMESPACE_RE.match(namespace) or namespace in (".", ".."):
        raise ValueError(f"invalid namespace {namespace!r} "
                         f"(want [A-Za-z0-9._-], 1-64 chars)")
    return namespace


class Backend:
    """The storage surface the service tier programs against."""

    def get(self, namespace: str, key: str) -> Optional[dict]:
        """The payload under (namespace, key), or None on any miss."""
        raise NotImplementedError

    def put(self, namespace: str, key: str, payload: dict) -> None:
        """Store *payload*; failures degrade silently (cache semantics)."""
        raise NotImplementedError


class LocalBackend(Backend):
    """Per-namespace :class:`ArtifactCache` instances on one root."""

    def __init__(self, root: Union[None, str, Path] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes
        self._caches: dict[str, ArtifactCache] = {}

    def namespace_root(self, namespace: str) -> Path:
        """On-disk directory of one namespace."""
        check_namespace(namespace)
        if namespace == DEFAULT_NAMESPACE:
            return self.root
        return self.root / NAMESPACE_DIR / namespace

    def cache(self, namespace: str) -> ArtifactCache:
        """The namespace's cache, created lazily."""
        cache = self._caches.get(namespace)
        if cache is None:
            cache = ArtifactCache(self.namespace_root(namespace),
                                  max_bytes=self.max_bytes)
            self._caches[namespace] = cache
        return cache

    def get(self, namespace: str, key: str) -> Optional[dict]:
        """Namespace-local lookup (counted per namespace)."""
        return self.cache(namespace).get(key)

    def put(self, namespace: str, key: str, payload: dict) -> None:
        """Namespace-local store (atomic, LRU-capped per namespace)."""
        self.cache(namespace).put(key, payload)

    def namespaces(self) -> list[str]:
        """Every namespace present on disk (default first)."""
        names = [DEFAULT_NAMESPACE]
        ns_dir = self.root / NAMESPACE_DIR
        if ns_dir.is_dir():
            names.extend(sorted(
                p.name for p in ns_dir.iterdir()
                if p.is_dir() and _NAMESPACE_RE.match(p.name)))
        return names

    def stats(self) -> dict:
        """Per-namespace breakdown plus the aggregate."""
        spaces = {}
        for name in self.namespaces():
            spaces[name] = self.cache(name).stats()
        return {
            "root": str(self.root),
            "namespaces": spaces,
            "entries": sum(s["entries"] for s in spaces.values()),
            "total_bytes": sum(s["total_bytes"] for s in spaces.values()),
        }


class RemoteBackend(Backend):
    """The serve host's cache endpoints as a storage backend.

    Speaks the exact on-disk envelope over the wire — ``{"schema",
    "key", "payload"}`` — so a remote entry is validated by the same
    rules as a local file: wrong schema generation or mismatched key is
    a miss.  Every network or HTTP failure is likewise a miss (get) or a
    silent drop (put): the cache tier must never take a worker down.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, namespace: str, key: str) -> str:
        check_namespace(namespace)
        return f"{self.base_url}/v1/cache/{namespace}/{key}"

    def get(self, namespace: str, key: str) -> Optional[dict]:
        """Remote lookup; any failure mode is a miss."""
        try:
            with urllib.request.urlopen(self._url(namespace, key),
                                        timeout=self.timeout) as resp:
                entry = json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            REGISTRY.inc("serve.remote_cache.misses")
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != SCHEMA_VERSION
                or entry.get("key") != key
                or "payload" not in entry):
            REGISTRY.inc("serve.remote_cache.corrupt")
            return None
        REGISTRY.inc("serve.remote_cache.hits")
        return entry["payload"]

    def put(self, namespace: str, key: str, payload: dict) -> None:
        """Remote store; failures are dropped (the local tier still has
        the artifact, and the next reader recomputes at worst)."""
        body = json.dumps({"schema": SCHEMA_VERSION, "key": key,
                           "payload": payload}).encode("utf-8")
        req = urllib.request.Request(
            self._url(namespace, key), data=body, method="PUT",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout):
                pass
            REGISTRY.inc("serve.remote_cache.puts")
        except (urllib.error.URLError, OSError):
            REGISTRY.inc("serve.remote_cache.put_failures")


class TieredStore(Backend):
    """Local tier in front of an optional remote tier.

    Reads go local → remote (a remote hit is written through to the
    local tier, so the fleet converges on local hits); writes go to
    both.  With no remote this is a thin pass-through over
    :class:`LocalBackend`.
    """

    def __init__(self, local: LocalBackend,
                 remote: Optional[Backend] = None):
        self.local = local
        self.remote = remote

    def get(self, namespace: str, key: str) -> Optional[dict]:
        """Read-through lookup across the tiers."""
        payload = self.local.get(namespace, key)
        if payload is not None:
            return payload
        if self.remote is None:
            return None
        payload = self.remote.get(namespace, key)
        if payload is not None:
            self.local.put(namespace, key, payload)
        return payload

    def put(self, namespace: str, key: str, payload: dict) -> None:
        """Write-through store into every tier."""
        self.local.put(namespace, key, payload)
        if self.remote is not None:
            self.remote.put(namespace, key, payload)

    def stats(self) -> dict:
        """The local tier's breakdown, flagged with the remote's presence."""
        stats = self.local.stats()
        stats["remote"] = (getattr(self.remote, "base_url", None)
                           if self.remote is not None else None)
        return stats


def namespace_stats(root: Union[None, str, Path] = None) -> dict:
    """Per-namespace stats of an on-disk root (CLI ``cache stats``)."""
    return LocalBackend(root).stats()
