"""Multi-tenant job queue with fleet-wide in-flight dedup.

A *job* is one tenant's batch of content-addressed cells; a *cell* is
the unit of execution (an evaluation or fuzz cell, already keyed by
:mod:`repro.engine.keys` / :func:`repro.qa.cells.fuzz_cell_key`).  The
queue's one load-bearing invariant: **each unique cell key executes at
most once fleet-wide**, no matter how many tenants' jobs reference it
concurrently — overlapping sweeps from different tenants share the same
in-flight execution, and every subscribed job receives the result.

Mechanics: cells live in ``_cells`` keyed by cell key, each holding the
executable spec and the list of ``(job, index)`` subscribers.  A key
submitted while already pending/running gains a subscriber instead of a
second queue entry (counted as ``serve.queue.deduped``).  Workers
:meth:`claim` keys FIFO, :meth:`complete` them with a result payload, or
:meth:`requeue` them when a worker dies mid-cell — a requeued cell keeps
its subscribers and runs on the next live worker, so worker death
degrades latency, never results (the same contract as
:func:`repro.engine.pool.run_cells`).

Thread-safety: one lock + condition guards all state; every public
method is safe from any thread (HTTP handler threads submit while
worker threads claim/complete).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..obs.metrics import REGISTRY

#: Executions per cell before the queue gives up and records a failure
#: result for its subscribers (covers repeated worker death on one cell;
#: Python-level failures are already contained inside the cell).
MAX_CELL_ATTEMPTS = 3


@dataclass
class Job:
    """One tenant's submitted batch (bookkeeping view)."""

    job_id: str
    tenant: str
    kind: str
    keys: list[str]                      # cell keys in submission order
    submitted_ns: int
    results: dict[str, dict] = field(default_factory=dict)
    n_deduped: int = 0                   # cells shared with in-flight work
    n_cache_hits: int = 0                # cells answered straight from cache

    @property
    def n_done(self) -> int:
        """Number of cells with a recorded result."""
        return len(set(self.keys) & set(self.results))

    @property
    def done(self) -> bool:
        """True when every cell has a result."""
        return all(k in self.results for k in self.keys)

    @property
    def state(self) -> str:
        """``queued`` | ``running`` | ``done``."""
        if self.done:
            return "done"
        return "running" if self.results else "queued"

    def ordered_results(self) -> list[dict]:
        """Results in submission order (requires :attr:`done`)."""
        return [self.results[k] for k in self.keys]


@dataclass
class _CellEntry:
    """Queue-internal state of one unique in-flight cell."""

    key: str
    kind: str
    spec: dict
    subscribers: list[Job] = field(default_factory=list)
    claimed: bool = False
    attempts: int = 0


class JobQueue:
    """The service's dedup-aware work queue (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._cells: dict[str, _CellEntry] = {}
        self._pending: deque[str] = deque()
        self._jobs: dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self._closed = False

    # -- submission --------------------------------------------------------

    def submit(self, tenant: str, kind: str,
               cells: list[tuple[str, dict]],
               precomputed: Optional[dict[str, dict]] = None) -> Job:
        """Enqueue one job; returns its :class:`Job` record.

        *cells* is ``[(key, spec_payload), ...]`` in result order.
        *precomputed* maps keys the caller already resolved (tenant cache
        hits) to their payloads — those cells never enter the queue.
        A key that is already pending or running gains this job as a
        subscriber instead of a second execution (the dedup invariant).
        """
        precomputed = precomputed or {}
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is shut down")
            job = Job(job_id=f"job-{next(self._job_ids)}", tenant=tenant,
                      kind=kind, keys=[k for k, _ in cells],
                      submitted_ns=time.monotonic_ns())
            for key, spec in cells:
                if key in precomputed:
                    job.results[key] = precomputed[key]
                    job.n_cache_hits += 1
                    continue
                entry = self._cells.get(key)
                if entry is not None:
                    entry.subscribers.append(job)
                    job.n_deduped += 1
                    REGISTRY.inc("serve.queue.deduped")
                    continue
                entry = _CellEntry(key=key, kind=kind, spec=spec,
                                   subscribers=[job])
                self._cells[key] = entry
                self._pending.append(key)
                REGISTRY.inc("serve.queue.enqueued")
            self._jobs[job.job_id] = job
            REGISTRY.inc("serve.jobs.submitted")
            self._work.notify_all()
            return job

    # -- worker surface ----------------------------------------------------

    def claim(self, timeout: Optional[float] = None
              ) -> Optional[tuple[str, str, dict]]:
        """Block for the next cell; returns ``(key, kind, spec)``.

        Returns None on *timeout* (seconds) or queue shutdown — the
        worker loop uses that to re-check its own stop flag.
        """
        with self._lock:
            while not self._pending:
                if self._closed or not self._work.wait(timeout=timeout):
                    return None
            key = self._pending.popleft()
            entry = self._cells[key]
            entry.claimed = True
            entry.attempts += 1
            return key, entry.kind, entry.spec

    def complete(self, key: str, payload: dict) -> None:
        """Record *payload* for every job subscribed to *key*."""
        with self._lock:
            entry = self._cells.pop(key, None)
            if entry is None:
                return  # stale completion after a shutdown/requeue race
            for job in entry.subscribers:
                job.results[key] = payload
            REGISTRY.inc("serve.queue.completed")
            self._work.notify_all()

    def requeue(self, key: str) -> bool:
        """Put a claimed cell back at the queue head (worker death).

        Returns False — and drops the cell, leaving its subscribers a
        failure payload to be completed by the caller — when the cell
        has exhausted :data:`MAX_CELL_ATTEMPTS`.
        """
        with self._lock:
            entry = self._cells.get(key)
            if entry is None:
                return False
            if entry.attempts >= MAX_CELL_ATTEMPTS:
                return False
            entry.claimed = False
            self._pending.appendleft(key)
            REGISTRY.inc("serve.queue.requeued")
            self._work.notify_all()
            return True

    # -- queries -----------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        """The job record, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: Optional[str] = None) -> list[Job]:
        """All jobs (optionally one tenant's), oldest first."""
        with self._lock:
            out = [j for j in self._jobs.values()
                   if tenant is None or j.tenant == tenant]
        return sorted(out, key=lambda j: j.submitted_ns)

    def wait_job(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until *job_id* is done; returns its done state."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return False
                if job.done:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._work.wait(timeout=remaining)

    def depth(self) -> int:
        """Number of cells waiting (excludes claimed in-flight cells)."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict:
        """Queue snapshot for the stats endpoint."""
        with self._lock:
            in_flight = sum(1 for e in self._cells.values() if e.claimed)
            return {
                "depth": len(self._pending),
                "in_flight": in_flight,
                "unique_cells": len(self._cells),
                "jobs": len(self._jobs),
                "jobs_done": sum(1 for j in self._jobs.values() if j.done),
            }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work and wake every blocked waiter."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
