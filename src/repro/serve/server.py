"""The stdlib HTTP/JSON front end: ``python -m repro serve``.

One :class:`EvalServer` owns the whole service stack — tiered store,
dedup queue, worker fleet, per-tenant rate limiter — and exposes it over
a :class:`ThreadingHTTPServer` (each request handled on its own thread;
all shared state is lock-guarded in the queue/fleet/limiter layers).

Routes (all JSON unless noted)::

    GET  /v1/healthz                     liveness + protocol version
    GET  /v1/stats                       queue depth, worker utilization,
                                         per-namespace cache stats,
                                         rate-limiter balances
    POST /v1/jobs                        batch submission (tenant, kind,
                                         cells=[{key, spec}]); 429 with
                                         structured backpressure when the
                                         tenant's token bucket is empty
    GET  /v1/jobs?tenant=T               job listing
    GET  /v1/jobs/<id>                   one job's status
    GET  /v1/jobs/<id>/results?wait=S    JSONL result stream (one line
                                         per cell, submission order);
                                         202 + status while not done
    GET  /v1/cache/<ns>/<key>            remote-cache read (the on-disk
                                         envelope, schema-checked)
    PUT  /v1/cache/<ns>/<key>            remote-cache write

The cache endpoints are what :class:`~repro.serve.store.RemoteBackend`
talks to: pointing a worker host's store at another serve instance
turns that instance into the fleet's shared artifact tier.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from ..engine.keys import SCHEMA_VERSION
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from . import protocol
from .queue import JobQueue
from .ratelimit import DEFAULT_BURST, DEFAULT_RATE, RateLimiter
from .store import (
    Backend, LocalBackend, RemoteBackend, TieredStore, check_namespace,
)
from .worker import WorkerFleet


@dataclass
class ServeConfig:
    """Deployment knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8732                      # 0 = ephemeral (tests)
    workers: int = 2
    cache_dir: Union[None, str, Path] = None
    remote_cache: Optional[str] = None    # upstream serve URL, or None
    rate: float = DEFAULT_RATE            # submissions/second per tenant
    burst: int = DEFAULT_BURST            # burst capacity per tenant
    results_wait_s: float = 300.0         # max long-poll on /results


@dataclass
class _ServerState:
    """The live subsystems one handler instance reaches through."""

    config: ServeConfig
    store: TieredStore
    queue: JobQueue
    fleet: WorkerFleet
    limiter: RateLimiter
    started_ns: int = 0
    submissions: int = field(default=0)


class _Handler(BaseHTTPRequestHandler):
    """Request router; state lives on the server object, not the handler."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr per request; the service logs
    # through metrics/spans instead.
    def log_message(self, fmt: str, *args) -> None:  # noqa: D102
        pass

    @property
    def state(self) -> _ServerState:
        """The owning server's shared state."""
        return self.server.state  # type: ignore[attr-defined]

    # -- response plumbing -------------------------------------------------

    def _send_json(self, status: int, body: dict) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_body(self, status: int, code: str, message: str,
                         **details) -> None:
        self._send_json(status, protocol.error_body(code, message,
                                                    **details))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise protocol.ProtocolError("request body must be an object")
        return body

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "healthz"]:
                self._send_json(200, protocol.ok_body(status="ok"))
            elif parts == ["v1", "stats"]:
                self._get_stats()
            elif parts == ["v1", "jobs"]:
                self._get_jobs(parse_qs(url.query))
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._get_job(parts[2])
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "results":
                self._get_results(parts[2], parse_qs(url.query))
            elif len(parts) == 4 and parts[:2] == ["v1", "cache"]:
                self._get_cache(parts[2], parts[3])
            else:
                self._send_error_body(404, "not_found",
                                      f"no route {url.path!r}")
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._send_error_body(400, "bad_request", str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                self._post_job()
            else:
                self._send_error_body(404, "not_found",
                                      f"no route {self.path!r}")
        except protocol.ProtocolError as exc:
            self._send_error_body(400, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._send_error_body(400, "bad_request", str(exc))

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if len(parts) == 4 and parts[:2] == ["v1", "cache"]:
                self._put_cache(parts[2], parts[3])
            else:
                self._send_error_body(404, "not_found",
                                      f"no route {self.path!r}")
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._send_error_body(400, "bad_request", str(exc))

    # -- job endpoints -----------------------------------------------------

    def _post_job(self) -> None:
        state = self.state
        body = self._read_body()
        tenant, kind, cells = protocol.validate_submission(body)
        check_namespace(tenant)

        ok, retry_after = state.limiter.check(tenant)
        if not ok:
            REGISTRY.inc("serve.http.rate_limited")
            self._send_error_body(
                429, "rate_limited",
                f"tenant {tenant!r} exceeded its submission budget",
                tenant=tenant, retry_after_s=round(retry_after, 3))
            return

        with obs_span("serve.submit", tenant=tenant, kind=kind,
                      cells=len(cells)):
            # Tenant-namespace warm hits never enter the queue at all.
            precomputed: dict[str, dict] = {}
            for cell in cells:
                key = cell["key"]
                if key in precomputed:
                    continue
                hit = state.store.get(tenant, key)
                if hit is not None:
                    precomputed[key] = hit
            for cell in cells:
                if cell["key"] not in precomputed:
                    state.fleet.subscribe(cell["key"], tenant)
            job = state.queue.submit(
                tenant, kind, [(c["key"], c["spec"]) for c in cells],
                precomputed=precomputed)
        state.submissions += 1
        REGISTRY.inc("serve.http.submissions")
        self._send_json(200, protocol.ok_body(
            job=protocol.job_to_dict(job)))

    def _get_jobs(self, query: dict) -> None:
        tenant = (query.get("tenant") or [None])[0]
        jobs = self.state.queue.jobs(tenant)
        self._send_json(200, protocol.ok_body(
            jobs=[protocol.job_to_dict(j) for j in jobs]))

    def _get_job(self, job_id: str) -> None:
        job = self.state.queue.job(job_id)
        if job is None:
            self._send_error_body(404, "not_found",
                                  f"no such job {job_id!r}")
            return
        self._send_json(200, protocol.ok_body(
            job=protocol.job_to_dict(job)))

    def _get_results(self, job_id: str, query: dict) -> None:
        state = self.state
        job = state.queue.job(job_id)
        if job is None:
            self._send_error_body(404, "not_found",
                                  f"no such job {job_id!r}")
            return
        wait = min(float((query.get("wait") or ["0"])[0]),
                   state.config.results_wait_s)
        if wait > 0:
            state.queue.wait_job(job_id, timeout=wait)
        if not job.done:
            self._send_json(202, protocol.ok_body(
                job=protocol.job_to_dict(job)))
            return
        # JSONL stream: one line per cell, submission order.
        lines = [json.dumps({"key": key, "payload": job.results[key]},
                            sort_keys=True)
                 for key in job.keys]
        data = ("\n".join(lines) + "\n").encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    # -- cache endpoints ---------------------------------------------------

    def _get_cache(self, namespace: str, key: str) -> None:
        check_namespace(namespace)
        payload = self.state.store.local.get(namespace, key)
        if payload is None:
            self._send_error_body(
                404, "not_found", f"no artifact {key[:12]}… "
                f"in namespace {namespace!r}")
            return
        self._send_json(200, {"schema": SCHEMA_VERSION, "key": key,
                              "payload": payload})

    def _put_cache(self, namespace: str, key: str) -> None:
        check_namespace(namespace)
        entry = self._read_body()
        if (entry.get("schema") != SCHEMA_VERSION
                or entry.get("key") != key
                or "payload" not in entry):
            self._send_error_body(
                400, "bad_request",
                "cache entry must carry the current schema envelope",
                expected_schema=SCHEMA_VERSION)
            return
        self.state.store.local.put(namespace, key, entry["payload"])
        self._send_json(200, protocol.ok_body(stored=True))

    # -- stats -------------------------------------------------------------

    def _get_stats(self) -> None:
        state = self.state
        self._send_json(200, protocol.ok_body(
            queue=state.queue.stats(),
            fleet=state.fleet.stats(),
            cache=state.store.stats(),
            ratelimit={"rate": state.limiter.rate,
                       "burst": state.limiter.burst,
                       "tokens": state.limiter.snapshot()},
            submissions=state.submissions))


class EvalServer:
    """The assembled service: store + queue + fleet + HTTP front end.

    Usable embedded (tests construct one on an ephemeral port inside the
    test process, where the engine counters then measure fleet work
    directly) or standalone via :func:`serve_forever` (the CLI).
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        local = LocalBackend(self.config.cache_dir)
        remote: Optional[Backend] = None
        if self.config.remote_cache:
            remote = RemoteBackend(self.config.remote_cache)
        self.store = TieredStore(local, remote)
        self.queue = JobQueue()
        self.fleet = WorkerFleet(self.queue, self.store,
                                 workers=self.config.workers)
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self._http = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._http.daemon_threads = True
        self._http.state = _ServerState(  # type: ignore[attr-defined]
            config=self.config, store=self.store, queue=self.queue,
            fleet=self.fleet, limiter=self.limiter)
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EvalServer":
        """Launch the fleet and the HTTP listener (returns self)."""
        self.fleet.start()
        self._serve_thread = threading.Thread(
            target=self._http.serve_forever, name="serve-http",
            daemon=True)
        self._serve_thread.start()
        REGISTRY.inc("serve.started")
        return self

    def stop(self) -> None:
        """Shut everything down in dependency order."""
        self.queue.close()
        self._http.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self.fleet.stop()
        self._http.server_close()

    def __enter__(self) -> "EvalServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def serve_forever(config: ServeConfig) -> int:
    """Run a server until interrupted (the CLI entry point's body)."""
    server = EvalServer(config)
    server.start()
    print(f"repro-serve listening on {server.url} "
          f"(workers={config.workers}, rate={config.rate}/s, "
          f"burst={config.burst})")
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        print("shutting down ...")
        server.stop()
    return 0
