"""Client side of the evaluation service: HTTP access + remote runners.

:class:`ServeClient` wraps the wire protocol (submission with
backpressure-aware retry, long-polled JSONL result streaming, job and
stats queries).  On top of it, :func:`remote_run_suite`,
:func:`remote_run_sweep`, and :func:`remote_fuzz_executor` reproduce the
local engine entry points **byte-identically**:

* the client builds the same programs, :class:`CellSpec`\\ s, and
  content-addressed cell keys the local engine would build;
* the server executes each unique cell through the same
  :func:`~repro.engine.cells.execute_cell` containment;
* the client reassembles :class:`~repro.eval.runner.BenchmarkRun`
  objects from the returned payloads exactly like
  :mod:`repro.engine.suite` does from cache hits.

Because keys are content-addressed and process-independent, a result
computed remotely is indistinguishable from one computed locally — which
is the property ``Session(remote=...)`` advertises and
``tests/serve/test_service_e2e.py`` asserts.

Backpressure: a 429 response carries ``retry_after_s``; the client
sleeps exactly that long (bounded) and retries up to
:data:`MAX_BACKPRESSURE_RETRIES` times before raising
:class:`Backpressure` with the structured details attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Optional

from ..core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from ..engine.cells import SCHEME_PLAN, CellSpec, overrides_as_items
from ..engine.keys import cell_key
from ..obs.metrics import REGISTRY
from ..obs.trace import span as obs_span
from . import protocol

#: 429 retries before :class:`Backpressure` propagates to the caller.
MAX_BACKPRESSURE_RETRIES = 5

#: Cap on one backpressure sleep (a misconfigured server cannot park the
#: client for minutes).
MAX_RETRY_SLEEP_S = 10.0


class ServeError(RuntimeError):
    """The server answered with a structured error envelope."""

    def __init__(self, status: int, code: str, message: str,
                 details: Optional[dict] = None):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.details = details or {}


class Backpressure(ServeError):
    """Rate-limit rejections outlasted every retry."""


class ServeClient:
    """One tenant's HTTP handle on a serve instance."""

    def __init__(self, base_url: str, tenant: str = "default",
                 timeout: float = 60.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        self._sleep = sleep

    # -- HTTP plumbing -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple[int, bytes]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        """One request decoded as JSON; structured errors raise."""
        status, raw = self._request(method, path, body)
        decoded = json.loads(raw.decode("utf-8"))
        if "error" in decoded:
            err = decoded["error"]
            cls = Backpressure if err.get("code") == "rate_limited" \
                else ServeError
            raise cls(status, err.get("code", "?"),
                      err.get("message", ""), err)
        return decoded

    # -- core API ----------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness probe (raises on protocol mismatch)."""
        return protocol.check_protocol(
            self._json("GET", "/v1/healthz"), "healthz")

    def stats(self) -> dict:
        """The server's stats snapshot."""
        return self._json("GET", "/v1/stats")

    def submit_cells(self, cells: list[tuple[str, dict]],
                     kind: str = "cells") -> dict:
        """Submit one batch; returns the job record dict.

        Honors structured backpressure: each 429 sleeps the advertised
        ``retry_after_s`` (capped) and retries; persistent rejection
        raises :class:`Backpressure`.
        """
        body = {"protocol": protocol.PROTOCOL_VERSION,
                "tenant": self.tenant, "kind": kind,
                "cells": [{"key": k, "spec": s} for k, s in cells]}
        last: Optional[Backpressure] = None
        for _ in range(MAX_BACKPRESSURE_RETRIES + 1):
            try:
                resp = self._json("POST", "/v1/jobs", body)
                return resp["job"]
            except Backpressure as exc:
                last = exc
                REGISTRY.inc("serve.client.backpressure")
                self._sleep(min(float(exc.details.get("retry_after_s", 1.0)),
                                MAX_RETRY_SLEEP_S))
        raise last  # type: ignore[misc]  # loop ran at least once

    def job(self, job_id: str) -> dict:
        """One job's status record."""
        return self._json("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self, all_tenants: bool = False) -> list[dict]:
        """Job listing (this tenant's by default)."""
        query = "" if all_tenants else f"?tenant={self.tenant}"
        return self._json("GET", f"/v1/jobs{query}")["jobs"]

    def results(self, job_id: str,
                poll_s: float = 2.0) -> list[tuple[str, dict]]:
        """Block until *job_id* finishes; returns ``[(key, payload)]``.

        Uses the server's long-poll (bounded per request by the client
        timeout) and falls back to re-polling on 202.
        """
        wait = max(1.0, min(poll_s * 10, self.timeout / 2))
        while True:
            status, raw = self._request(
                "GET", f"/v1/jobs/{job_id}/results?wait={wait}")
            if status == 202:
                self._sleep(poll_s)
                continue
            if status != 200:
                decoded = json.loads(raw.decode("utf-8"))
                err = decoded.get("error", {})
                raise ServeError(status, err.get("code", "?"),
                                 err.get("message", ""), err)
            out = []
            for line in raw.decode("utf-8").splitlines():
                if not line.strip():
                    continue
                record = json.loads(line)
                out.append((record["key"], record["payload"]))
            return out

    def run_cells(self, cells: list[tuple[str, dict]],
                  kind: str = "cells") -> dict[str, dict]:
        """Submit + wait; returns ``{key: payload}`` for the batch."""
        job = self.submit_cells(cells, kind=kind)
        return dict(self.results(job["job_id"]))


# -- remote engine entry points --------------------------------------------

def suite_cells(programs: dict, heur: FeedbackHeuristics,
                config_overrides: Optional[dict], max_steps: int,
                timeout: Optional[float] = None,
                backend: str = "reference"
                ) -> list[tuple[str, str, str, CellSpec, str]]:
    """The suite's cell grid: (name, scheme, key, spec, spec-payload).

    Factored out so the client, the bench harness, and the CI smoke job
    derive *identical* cells for identical inputs — the dedup and
    warm-replay assertions depend on that.
    """
    out = []
    over_items = overrides_as_items(config_overrides)
    for name, prog in programs.items():
        payload_d = prog.to_dict()
        for scheme, kind, predictor in SCHEME_PLAN:
            spec = CellSpec(
                benchmark=name, scheme=scheme, kind=kind,
                predictor=predictor, program=payload_d, heur=heur,
                config_overrides=over_items, max_steps=max_steps,
                timeout=timeout, backend=backend)
            key = cell_key(prog, scheme, heur, spec.resolve_config(),
                           max_steps, backend=backend)
            out.append((name, scheme, key, spec,
                        protocol.cellspec_to_payload(spec)))
    return out


def remote_run_suite(client: ServeClient, scale: float = 1.0,
                     heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                     benchmarks: Optional[dict] = None,
                     config_overrides: Optional[dict] = None,
                     progress: Optional[Callable[[str], None]] = None,
                     max_steps: int = 50_000_000,
                     timeout: Optional[float] = None,
                     seed: Optional[int] = None,
                     backend: Optional[str] = None) -> dict:
    """The service-backed twin of :func:`repro.engine.suite.run_suite`.

    Same signature surface, same return shape (``{name:
    BenchmarkRun}``), byte-identical cells — execution just happens on
    the other side of the wire, deduplicated fleet-wide.
    """
    from ..eval.runner import BenchmarkRun, SchemeResult
    from ..fastsim.backend import resolve_backend
    from ..workloads import benchmark_programs

    backend = resolve_backend(backend)
    programs = benchmarks if benchmarks is not None \
        else benchmark_programs(scale, seed=seed)
    with obs_span("serve.client.suite", scale=scale, tenant=client.tenant,
                  benchmarks=len(programs), backend=backend):
        grid = suite_cells(programs, heur, config_overrides, max_steps,
                           timeout, backend=backend)
        if progress:
            progress(f"submitting {len(grid)} cells to {client.base_url} "
                     f"as tenant {client.tenant!r}")
        payloads = client.run_cells([(key, payload)
                                     for _, _, key, _, payload in grid])
        runs: dict[str, BenchmarkRun] = {}
        for name, scheme, key, _, _ in grid:
            run = runs.setdefault(name, BenchmarkRun(name=name))
            run.results[scheme] = SchemeResult.from_dict(payloads[key])
        return runs


def remote_run_sweep(client: ServeClient, spec,
                     progress: Optional[Callable[[str], None]] = None,
                     timeout: Optional[float] = None,
                     backend: Optional[str] = None) -> list[dict]:
    """The service-backed twin of :func:`repro.engine.sweep.run_sweep`.

    Iterates the same cartesian points and emits the same flat records;
    every point's suite goes through :func:`remote_run_suite`, so
    overlapping points (and overlapping tenants) share executions.
    """
    from dataclasses import replace

    from ..engine.sweep import _cell_record
    from ..workloads import benchmark_programs

    spec.validate()
    records: list[dict] = []
    for i, point in enumerate(spec.points()):
        if progress:
            progress(f"point {i + 1}/{spec.num_points}: "
                     f"scale={point['scale']} config={point['config']} "
                     f"heur={point['heur']}")
        heur = (replace(DEFAULT_HEURISTICS, **point["heur"])
                if point["heur"] else DEFAULT_HEURISTICS)
        programs = benchmark_programs(point["scale"], seed=spec.seed)
        if spec.benchmarks is not None:
            programs = {n: p for n, p in programs.items()
                        if n in spec.benchmarks}
        runs = remote_run_suite(
            client, benchmarks=programs, heur=heur,
            config_overrides=point["config"], max_steps=spec.max_steps,
            timeout=timeout, backend=backend)
        for name, run in runs.items():
            for cell in run.results.values():
                records.append(_cell_record(point, name, cell))
    return records


def remote_cell_executor(client: ServeClient) -> Callable:
    """A batched cell executor for :func:`repro.tune.run_tune`.

    Returns ``executor(cells) -> {key: payload}`` where *cells* is a
    ``[(key, CellSpec)]`` batch: each tuning round submits its whole
    candidate grid as one job (kind ``"cells"``), so the fleet dedups
    identical cells across rounds, candidates, and tenants exactly as it
    does for suite submissions.
    """
    def _execute(cells: list) -> dict[str, dict]:
        if not cells:
            return {}
        batch = [(key, protocol.cellspec_to_payload(spec))
                 for key, spec in cells]
        with obs_span("serve.client.tune_batch", tenant=client.tenant,
                      cells=len(batch)):
            return client.run_cells(batch)

    return _execute


def remote_fuzz_executor(client: ServeClient) -> Callable:
    """An executor for :func:`repro.qa.campaign.run_campaign`'s hook.

    Returns ``executor(specs) -> payloads``: the campaign's cache-miss
    fuzz cells ride the service queue (kind ``"fuzz"``) instead of the
    local process pool; generation, shrinking, and triage stay local.
    """
    from ..qa.cells import fuzz_cell_key

    def _execute(specs: list) -> list[dict]:
        if not specs:
            return []
        cells = [(fuzz_cell_key(s),
                  {"strategy": s.strategy, "seed": s.seed,
                   "max_steps": s.max_steps}) for s in specs]
        payloads = client.run_cells(cells, kind="fuzz")
        return [payloads[key] for key, _ in cells]

    return _execute
