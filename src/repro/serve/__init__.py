"""repro.serve — the distributed evaluation service.

A multi-tenant job queue, a worker fleet, and a namespaced
remote-capable artifact store behind a stdlib HTTP/JSON front end.
Tenants submit batches of content-addressed cells (the same keys
:mod:`repro.engine` caches locally); the service executes each unique
cell exactly once fleet-wide and streams results back as JSONL.

Server side::

    from repro.serve import EvalServer, ServeConfig
    with EvalServer(ServeConfig(port=0, workers=4)) as server:
        print(server.url)          # e.g. http://127.0.0.1:43121

Client side::

    from repro.serve import ServeClient, remote_run_suite
    client = ServeClient("http://127.0.0.1:43121", tenant="alice")
    runs = remote_run_suite(client, scale=0.1)   # == run_suite(scale=0.1)

or, one level up, ``Session(remote="http://...", tenant="alice")`` from
:mod:`repro.api` routes ``run_suite`` / ``sweep`` / ``fuzz`` through the
service with byte-identical results.

See ``docs/SERVICE.md`` for the architecture and the wire protocol.
"""

from .client import (Backpressure, ServeClient, ServeError,
                     remote_cell_executor, remote_fuzz_executor,
                     remote_run_suite,
                     remote_run_sweep, suite_cells)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .queue import MAX_CELL_ATTEMPTS, Job, JobQueue
from .ratelimit import RateLimiter, TokenBucket
from .server import DEFAULT_BURST, DEFAULT_RATE, EvalServer, ServeConfig, \
    serve_forever
from .store import (DEFAULT_NAMESPACE, Backend, LocalBackend, RemoteBackend,
                    TieredStore, check_namespace, namespace_stats)
from .worker import Worker, WorkerFleet

__all__ = [
    "PROTOCOL_VERSION", "ProtocolError",
    "Job", "JobQueue", "MAX_CELL_ATTEMPTS",
    "RateLimiter", "TokenBucket",
    "Backend", "LocalBackend", "RemoteBackend", "TieredStore",
    "DEFAULT_NAMESPACE", "check_namespace", "namespace_stats",
    "Worker", "WorkerFleet",
    "EvalServer", "ServeConfig", "DEFAULT_RATE", "DEFAULT_BURST",
    "serve_forever",
    "ServeClient", "ServeError", "Backpressure",
    "remote_run_suite", "remote_run_sweep", "remote_fuzz_executor",
    "remote_cell_executor",
    "suite_cells",
]
