"""Wire protocol of the evaluation service: JSON envelopes and codecs.

Everything that crosses the HTTP boundary is plain JSON with an explicit
``protocol`` version, mirroring the schema-version discipline of
:mod:`repro.core.serde`: a client and server from different generations
fail loudly instead of silently mis-decoding each other's payloads.

Two codecs do the heavy lifting:

* :func:`cellspec_to_payload` / :func:`cellspec_from_payload` — an
  evaluation :class:`~repro.engine.cells.CellSpec` as JSON.  The program
  already travels as a plain dict; the heuristics dataclass (with its
  nested :class:`~repro.profilefb.classify.ClassifyConfig` and tuple
  fields) round-trips through :func:`heur_to_payload` /
  :func:`heur_from_payload`.  The round-trip is exact, so a cell key
  computed from the decoded spec equals the submitter's key — the
  property the queue's fleet-wide dedup rests on.
* :func:`error_body` — structured errors.  Backpressure is data, not
  prose: a rate-limited tenant receives ``{"error": {"code":
  "rate_limited", "retry_after_s": ...}}`` and can schedule its retry
  without parsing a message string.

Job kinds: ``"cells"`` (evaluation cells, :mod:`repro.engine.cells`) and
``"fuzz"`` (differential fuzz cells, :mod:`repro.qa.cells`).  Both are
content-addressed: a job is a list of ``{"key", "spec"}`` pairs where
``key`` is the cell's cache key and ``spec`` its executable description.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..core.heuristics import FeedbackHeuristics
from ..engine.cells import CellSpec
from ..profilefb.classify import ClassifyConfig

#: Version of the HTTP/JSON wire protocol.  Bump on any change to the
#: request/response shapes; mismatched peers refuse each other.
#: v2: cell-spec payloads carry the execution backend (repro.fastsim;
#: engine keys v4, result serde v3 — bumped in lockstep).
#: v3: the melded scheme — heuristics payloads may carry the meld knobs
#: and cell specs the ``"meld"`` kind (engine keys v5, result serde v4;
#: legacy heuristics payloads without the knobs still decode, taking the
#: defaults).
PROTOCOL_VERSION = 3

#: Accepted ``kind`` values of a submitted job.
JOB_KINDS = ("cells", "fuzz")

#: Lifecycle of a job: queued (cells waiting), running (at least one
#: cell claimed), done (every cell has a result).
JOB_STATES = ("queued", "running", "done")

#: Machine-readable error codes carried in :func:`error_body` envelopes.
ERROR_CODES = (
    "rate_limited", "bad_request", "not_found", "protocol_mismatch",
    "shutting_down",
)


class ProtocolError(ValueError):
    """A payload violated the wire protocol (shape or version)."""


def error_body(code: str, message: str, **details: Any) -> dict:
    """A structured error envelope (``code`` is machine-readable)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"protocol": PROTOCOL_VERSION,
            "error": {"code": code, "message": message, **details}}


def ok_body(**fields: Any) -> dict:
    """A successful response envelope carrying *fields*."""
    return {"protocol": PROTOCOL_VERSION, **fields}


def check_protocol(body: dict, context: str) -> dict:
    """Validate a peer's envelope version; returns *body* for chaining."""
    got = body.get("protocol")
    if got != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{context}: peer speaks protocol {got!r}, "
            f"this side speaks {PROTOCOL_VERSION}")
    return body


# -- heuristics codec ------------------------------------------------------

def heur_to_payload(heur: FeedbackHeuristics) -> dict:
    """JSON form of a :class:`FeedbackHeuristics` (nested + tuples)."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(heur):
        value = getattr(heur, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = dataclasses.asdict(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def heur_from_payload(payload: dict) -> FeedbackHeuristics:
    """Inverse of :func:`heur_to_payload` — an *exact* round-trip.

    Unknown fields raise (a newer peer must not be silently truncated
    into different-keyed cells); missing fields take their defaults so
    the codec tolerates sparse payloads from hand-written clients.
    """
    known = {f.name: f for f in dataclasses.fields(FeedbackHeuristics)}
    unknown = set(payload) - set(known)
    if unknown:
        raise ProtocolError(f"unknown heuristics fields {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in payload.items():
        if name == "classify":
            value = ClassifyConfig(**value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return FeedbackHeuristics(**kwargs)


# -- cell-spec codec -------------------------------------------------------

def cellspec_to_payload(spec: CellSpec) -> dict:
    """JSON form of one evaluation :class:`CellSpec`."""
    return {
        "benchmark": spec.benchmark,
        "scheme": spec.scheme,
        "kind": spec.kind,
        "predictor": spec.predictor,
        "program": spec.program,
        "heur": heur_to_payload(spec.heur),
        "config_overrides": [list(pair) for pair in spec.config_overrides],
        "max_steps": spec.max_steps,
        "timeout": spec.timeout,
        "strict": spec.strict,
        "backend": spec.backend,
    }


def cellspec_from_payload(payload: dict) -> CellSpec:
    """Inverse of :func:`cellspec_to_payload` (shape-checked)."""
    try:
        return CellSpec(
            benchmark=payload["benchmark"],
            scheme=payload["scheme"],
            kind=payload["kind"],
            predictor=payload["predictor"],
            program=payload["program"],
            heur=heur_from_payload(payload["heur"]),
            config_overrides=tuple(
                tuple(pair) for pair in payload["config_overrides"]),
            max_steps=payload["max_steps"],
            timeout=payload.get("timeout"),
            strict=bool(payload.get("strict", False)),
            backend=payload.get("backend", "reference"),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed cell spec: {exc}") from exc


# -- job descriptions ------------------------------------------------------

def validate_submission(body: dict) -> tuple[str, str, list[dict]]:
    """Check one ``POST /v1/jobs`` body; returns (tenant, kind, cells).

    Raises :class:`ProtocolError` on any shape violation — the server
    maps that to a structured ``bad_request`` response.
    """
    check_protocol(body, "job submission")
    tenant = body.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("submission lacks a tenant")
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r} (expected one of {JOB_KINDS})")
    cells = body.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ProtocolError("submission carries no cells")
    for cell in cells:
        if not isinstance(cell, dict) or "key" not in cell \
                or "spec" not in cell:
            raise ProtocolError("each cell needs {'key', 'spec'}")
        if not isinstance(cell["key"], str) or len(cell["key"]) != 64:
            raise ProtocolError(
                f"cell key must be a sha256 hex digest, "
                f"got {cell['key']!r}")
    return tenant, kind, cells


def job_to_dict(job: "Any") -> dict:
    """Public JSON view of one queue job (used by status endpoints)."""
    return {
        "job_id": job.job_id,
        "tenant": job.tenant,
        "kind": job.kind,
        "state": job.state,
        "n_cells": len(job.keys),
        "n_done": job.n_done,
        "n_deduped": job.n_deduped,
        "n_cache_hits": job.n_cache_hits,
        "submitted_ns": job.submitted_ns,
    }
