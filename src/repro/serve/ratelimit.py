"""Per-tenant token-bucket rate limiting with structured backpressure.

One :class:`TokenBucket` per tenant: ``burst`` tokens of capacity,
refilled continuously at ``rate`` tokens/second.  A submission costs one
token; an empty bucket yields ``(False, retry_after_s)`` where
``retry_after_s`` is the exact time until one token exists again — the
server returns it verbatim in the ``rate_limited`` error envelope so
clients can sleep precisely instead of guessing.

The clock is injectable (monotonic by default) which keeps the tests
deterministic: they drive a fake clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..obs.metrics import REGISTRY

#: Default sustained submission rate (requests per second per tenant).
DEFAULT_RATE = 10.0

#: Default burst capacity (requests) per tenant.
DEFAULT_BURST = 20


class TokenBucket:
    """One tenant's refillable budget; thread-safe."""

    def __init__(self, rate: float = DEFAULT_RATE,
                 burst: int = DEFAULT_BURST,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> tuple[bool, float]:
        """Spend *cost* tokens if available.

        Returns ``(True, 0.0)`` on success, or ``(False, retry_after_s)``
        with the seconds until *cost* tokens will have refilled.
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            deficit = cost - self._tokens
            return False, deficit / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (refreshed to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class RateLimiter:
    """Token buckets keyed by tenant, created lazily with shared limits."""

    def __init__(self, rate: float = DEFAULT_RATE,
                 burst: int = DEFAULT_BURST,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, created on first sight."""
        with self._lock:
            b = self._buckets.get(tenant)
            if b is None:
                b = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, self._clock)
            return b

    def check(self, tenant: str, cost: float = 1.0) -> tuple[bool, float]:
        """One admission decision; rejections count into the registry."""
        ok, retry_after = self.bucket(tenant).try_acquire(cost)
        if ok:
            REGISTRY.inc("serve.ratelimit.admitted")
        else:
            REGISTRY.inc("serve.ratelimit.rejected")
        return ok, retry_after

    def snapshot(self) -> dict[str, float]:
        """Current balance per known tenant (stats endpoint)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: round(b.tokens, 3)
                for tenant, b in sorted(buckets.items())}
