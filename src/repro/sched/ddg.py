"""Data-dependence graph over one basic block.

Edges:

* ``true``   — read-after-write, weighted by the producer's latency;
* ``anti``   — write-after-read, weight 0 (same-cycle OK on an OOO target
  with renaming, but ordering is preserved for the in-order view);
* ``output`` — write-after-write, weight 1;
* ``mem``    — conservative memory ordering (store-store, store-load,
  load-store; loads may reorder among themselves), weight 1 unless the
  scheduler's alias analysis can do better (we have none — the paper's
  "most conservative assumptions need to be made");
* ``ctrl``   — everything precedes the terminator; calls are barriers.

Guard registers participate like normal sources, so guarded instructions
depend on their predicate definition — the paper's "hidden constraints
(cycles etc.)" that make "the job of the scheduler hard".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction
from .machine_model import MachineModel, DEFAULT_MODEL


@dataclass
class DepEdge:
    src: int
    dst: int
    kind: str
    weight: int


@dataclass
class DDG:
    """Dependence graph; node ids are instruction positions in the block."""

    instructions: list[Instruction]
    edges: list[DepEdge] = field(default_factory=list)
    succs: dict[int, list[DepEdge]] = field(default_factory=dict)
    preds: dict[int, list[DepEdge]] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int, kind: str, weight: int) -> None:
        # Keep only the strongest constraint per (src, dst): max weight.
        for e in self.succs.get(src, ()):
            if e.dst == dst:
                if weight > e.weight:
                    e.weight = weight
                    e.kind = kind
                return
        e = DepEdge(src, dst, kind, weight)
        self.edges.append(e)
        self.succs.setdefault(src, []).append(e)
        self.preds.setdefault(dst, []).append(e)

    def predecessors(self, i: int) -> list[DepEdge]:
        return self.preds.get(i, [])

    def successors(self, i: int) -> list[DepEdge]:
        return self.succs.get(i, [])

    def roots(self) -> list[int]:
        return [i for i in range(len(self.instructions))
                if not self.preds.get(i)]

    def critical_path_heights(self, model: MachineModel) -> list[int]:
        """Longest-path height of each node to any sink, including its own
        latency — the classic list-scheduling priority."""
        n = len(self.instructions)
        height = [0] * n
        for i in reversed(self.topological_order()):
            lat = model.latency(self.instructions[i])
            best = lat
            for e in self.successors(i):
                best = max(best, e.weight + height[e.dst])
            height[i] = best
        return height

    def topological_order(self) -> list[int]:
        n = len(self.instructions)
        indeg = [len(self.preds.get(i, ())) for i in range(n)]
        order, work = [], [i for i in range(n) if indeg[i] == 0]
        work.sort()
        while work:
            i = work.pop(0)
            order.append(i)
            for e in self.successors(i):
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    work.append(e.dst)
            work.sort()
        if len(order) != n:
            raise ValueError("dependence graph has a cycle")
        return order


def build_ddg(instructions: list[Instruction],
              model: MachineModel = DEFAULT_MODEL) -> DDG:
    """Construct the dependence graph of a straight-line sequence."""
    ddg = DDG(instructions=list(instructions))
    n = len(instructions)
    last_def: dict[str, int] = {}
    last_uses: dict[str, list[int]] = {}
    last_store: int | None = None
    last_mems: list[int] = []   # loads since last store
    barrier: int | None = None  # last call

    for i, ins in enumerate(instructions):
        # Register dependences.
        for r in ins.uses():
            d = last_def.get(r)
            if d is not None:
                ddg.add_edge(d, i, "true", model.latency(instructions[d]))
            last_uses.setdefault(r, []).append(i)
        for r in ins.defs():
            d = last_def.get(r)
            if d is not None:
                ddg.add_edge(d, i, "output", 1)
            for u in last_uses.get(r, ()):
                if u != i:
                    ddg.add_edge(u, i, "anti", 0)
            last_uses[r] = [u for u in last_uses.get(r, ()) if u == i]
        # Partial writes (guarded / cmov) both read and write dest; keep the
        # def chain intact so later readers see ordering.
        for r in ins.defs():
            last_def[r] = i

        # Memory ordering.
        if ins.is_store:
            if last_store is not None:
                ddg.add_edge(last_store, i, "mem", 1)
            for l in last_mems:
                ddg.add_edge(l, i, "mem", 0)   # load before store
            last_store = i
            last_mems = []
        elif ins.is_load:
            if last_store is not None:
                ddg.add_edge(last_store, i, "mem", 1)
            last_mems.append(i)

        # Control: calls are barriers both ways; terminator is last.
        if barrier is not None:
            ddg.add_edge(barrier, i, "ctrl", 1)
        if ins.info.is_call:
            for j in range(i):
                # Cheap over-approximation: order every prior memory op and
                # def before the call (register args/side effects).
                pass
            barrier = i
        if ins.info.is_fence:
            # A speculation barrier pins the surrounding order completely:
            # nothing that precedes it in program order may issue after it
            # (and via the ``barrier`` edge above, nothing after may issue
            # before) — otherwise the local scheduler would re-hoist the
            # very load the fence was inserted to hold back.
            for j in range(i):
                ddg.add_edge(j, i, "ctrl", 0)
            barrier = i
        if ins.is_control and i != n - 1 and not ins.info.is_call:
            raise ValueError("control instruction not at block end")
    # Terminator depends on everything with a path... enforce directly:
    if n and instructions[-1].is_control:
        for j in range(n - 1):
            # Branches may not move past anything that could change visible
            # state after the block: stores and register defs it might read
            # are covered by register/mem edges; add a ctrl edge only from
            # stores (side effects must precede the transfer).
            if instructions[j].is_store or instructions[j].info.is_call:
                ddg.add_edge(j, n - 1, "ctrl", 0)
    return ddg
