"""Region scheduling: profile-guided global code motion.

The policy layer over the speculation primitives, in the spirit of the
enhanced region scheduler the paper builds on [1] (Allan et al., MICRO-25):
for every branch block with vacant issue slots, operations are speculated
up from the successor blocks — *balanced* across both arms when the branch
is unbiased (paper Figure 2(c)), or *prioritized toward the frequent arm*
when the profile says one path dominates (Figure 3(a)/(c)) — and join-block
operations are duplicated down into the freed arm slots.

"The desirable effect would be to facilitate mechanism in which the
operations from the true branch will be given more priority ..." — this is
where that priority is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG
from ..transform.dce import eliminate_dead_code
from ..transform.renaming import free_registers
from ..transform.speculation import (
    duplicate_into_predecessors, speculate_from_successor,
)
from .list_scheduler import list_schedule, reorder_block
from .machine_model import DEFAULT_MODEL, MachineModel


@dataclass
class RegionReport:
    """Summary of one region-scheduling pass."""

    speculated: int = 0
    duplicated: int = 0
    blocks_touched: int = 0
    per_block: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: hoists performed behind a serializing fence (safe-speculative)
    fenced: int = 0
    #: hoists the speculative-safety guard refused (safe-speculative)
    suppressed: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable form (engine artifact-cache payload)."""
        return {"speculated": self.speculated,
                "duplicated": self.duplicated,
                "blocks_touched": self.blocks_touched,
                "per_block": {str(bid): list(v)
                              for bid, v in self.per_block.items()},
                "fenced": self.fenced,
                "suppressed": self.suppressed}

    @classmethod
    def from_dict(cls, d: dict) -> "RegionReport":
        """Inverse of :meth:`to_dict`."""
        return cls(speculated=d["speculated"], duplicated=d["duplicated"],
                   blocks_touched=d["blocks_touched"],
                   per_block={int(bid): tuple(v)
                              for bid, v in d["per_block"].items()},
                   fenced=d.get("fenced", 0),
                   suppressed=d.get("suppressed", 0))


def schedule_region(cfg: CFG, model: MachineModel = DEFAULT_MODEL,
                    bias_threshold: float = 0.65,
                    max_moves_per_block: int = 4,
                    run_dce: bool = True,
                    profile=None,
                    mispredict_window: float = 3.0,
                    hoist_guard=None) -> RegionReport:
    """Apply profile-guided speculation across the CFG, then locally
    re-schedule every block.

    Edge frequencies must be annotated.  Speculation from the hot arm of a
    branch executes its hoisted work on the cold path too, wasting
    ``(1 - p_hot)`` dynamic operations per op; it pays off only when the
    work overlaps misprediction-resolution bubbles.  The gate is therefore
    ``misrate * mispredict_window > (1 - p_hot)``, with the branch's
    expected 2-bit miss rate taken from *profile* when available.  The CFG
    is modified in place.

    *hoist_guard* (a :class:`repro.robust.spectre.SpectreHoistGuard` or
    compatible callable) is threaded through to
    :func:`~repro.transform.speculation.speculate_from_successor`; when
    set, flagged hoists are fenced or refused — the safe-speculative
    scheme's only difference from the plain speculative one.
    """
    report = RegionReport()
    for bb in list(cfg.blocks):
        term = bb.terminator
        if term is None or not term.is_branch:
            continue
        edges = cfg.succ_edges[bb.bid]
        if len(edges) != 2:
            continue
        sched = list_schedule(bb.instructions, model)
        vacant = sched.vacant_slots(model)
        if vacant <= 0:
            continue
        budget = min(vacant, max_moves_per_block)
        total = sum(e.freq for e in edges)
        hot, cold = sorted(edges, key=lambda e: -e.freq)
        p_hot = hot.freq / total if total > 0 else 0.5
        pool = free_registers(cfg, "int")

        accuracy = max(p_hot, 1.0 - p_hot)  # static fallback estimate
        if profile is not None:
            bp = profile.branch_of(term)
            if bp is not None and bp.executions:
                accuracy = bp.history.prediction_accuracy_2bit()
        misrate = 1.0 - accuracy
        profitable = misrate * mispredict_window > (1.0 - p_hot)

        moved_here = 0
        if profitable and p_hot >= bias_threshold and total > 0:
            # Prioritize the frequent arm (Figure 3(a)/(c)).  Work hoisted
            # from an arm taken with probability p wastes (1-p) of its
            # dynamic instructions on an out-of-order target, so only
            # strongly-biased branches are worth static speculation here —
            # the paper's own caveat ("it is therefore debatable as to how
            # much we would like to perform speculation at compile-time
            # versus doing it dynamically", Section 3).  Balanced 50/50
            # speculation (Figure 2(c)) pays off on an in-order machine
            # with genuinely idle slots, but measurably regresses on the
            # R10000-like model; see EXPERIMENTS.md.
            rep = speculate_from_successor(cfg, bb.bid, hot.dst, budget,
                                           pool=pool, allow_rename=False,
                                           hoist_guard=hoist_guard)
            moved_here += rep.count
            report.fenced += len(rep.fenced)
            report.suppressed += rep.suppressed
        report.speculated += moved_here

        # Fill the freed arm slots from a common join, when one exists.
        arms = [e.dst for e in edges]
        joins = [s for s in cfg.succs(arms[0])
                 if cfg.succs(arms[1]) == [s] and cfg.succs(arms[0]) == [s]]
        dup_here = 0
        if joins and moved_here:
            dup_here = duplicate_into_predecessors(cfg, joins[0], moved_here)
            report.duplicated += dup_here
        if moved_here or dup_here:
            report.blocks_touched += 1
            report.per_block[bb.bid] = (moved_here, dup_here)

    if run_dce:
        eliminate_dead_code(cfg)
    for bb in cfg.blocks:
        if bb.instructions:
            reorder_block(bb, model)
    return report
