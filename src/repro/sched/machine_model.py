"""Static machine model for the compiler's schedulers.

This is the *scheduler's* view of the machine — issue slots per cycle per
unit class and operation latencies — as opposed to the dynamic model in
:mod:`repro.sim.pipeline`.  The paper's cost examples (Figure 2) annotate
blocks with "schedule lengths obtained using a local scheduler" against
exactly such a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction
from ..isa.opcodes import Unit, opinfo
from ..sim.config import Latencies, MachineConfig, R10K

#: unit-class key used for slot accounting
_UNIT_KEY = {
    Unit.ALU: "alu",
    Unit.SHIFT: "sft",
    Unit.MEM: "mem",
    Unit.BRANCH: "br",
    Unit.FPADD: "fpadd",
    Unit.FPMUL: "fpmul",
    Unit.FPDIV: "fpdiv",
    Unit.NONE: "alu",
}


@dataclass(frozen=True)
class MachineModel:
    """Issue resources and latencies as the scheduler sees them."""

    issue_width: int = 4
    slots: dict[str, int] = field(default_factory=lambda: {
        "alu": 2, "sft": 1, "mem": 1, "br": 1,
        "fpadd": 1, "fpmul": 1, "fpdiv": 1,
    })
    latencies: Latencies = field(default_factory=Latencies)

    @classmethod
    def from_config(cls, cfg: MachineConfig = R10K) -> "MachineModel":
        return cls(
            issue_width=cfg.dispatch_width,
            slots={
                "alu": cfg.num_alus, "sft": cfg.num_shifters,
                "mem": cfg.num_mem_units, "br": cfg.num_branch_units,
                "fpadd": cfg.num_fpadd, "fpmul": cfg.num_fpmul,
                "fpdiv": cfg.num_fpdiv,
            },
            latencies=cfg.latencies,
        )

    def unit_key(self, ins: Instruction) -> str:
        return _UNIT_KEY[ins.info.unit]

    def latency(self, ins: Instruction) -> int:
        return self.latencies.of_class(ins.info.latency_class)

    def slots_for(self, unit_key: str) -> int:
        return self.slots.get(unit_key, 1)

    def total_slots_per_cycle(self) -> int:
        """Upper bound of operations startable per cycle (min of issue
        width and summed unit slots)."""
        return min(self.issue_width, sum(self.slots.values()))


#: Default model matching the paper's R10000 description.
DEFAULT_MODEL = MachineModel()
