"""Scheduling substrate: machine model, dependence graphs, local list
scheduling, and the profile-guided region scheduler."""

from .machine_model import DEFAULT_MODEL, MachineModel
from .ddg import DDG, DepEdge, build_ddg
from .list_scheduler import (
    Schedule, list_schedule, reorder_block, schedule_block, schedule_length,
)
from .modulo import (
    CrossEdge, ModuloSchedule, NotPipelinable, cross_iteration_edges,
    loop_pipeline_report, modulo_schedule, rec_mii, res_mii,
)
from .region import RegionReport, schedule_region

__all__ = [
    "DEFAULT_MODEL", "MachineModel",
    "DDG", "DepEdge", "build_ddg",
    "Schedule", "list_schedule", "reorder_block", "schedule_block",
    "schedule_length",
    "CrossEdge", "ModuloSchedule", "NotPipelinable",
    "cross_iteration_edges", "loop_pipeline_report", "modulo_schedule",
    "rec_mii", "res_mii",
    "RegionReport", "schedule_region",
]
