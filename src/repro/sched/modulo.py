"""Iterative modulo scheduling (software pipelining) for single-block loops.

Why it's here: the paper's Section 3 argues that *prior* application of
guarded execution enables software pipelining — "It has been proved that
software pipelining is one such transformation which benefits from it
[10, 15].  Prior application reduces messy control flow, makes the job of
the cyclic scheduler much easier ...".  This module provides that cyclic
scheduler so the claim can be demonstrated quantitatively
(``benchmarks/bench_pipelining.py``): a loop whose body contains branches
cannot be modulo-scheduled at all, while its if-converted (hyperblock)
form schedules at an initiation interval close to the resource bound.

Scope: a *schedule analysis* in the style of Rau's iterative modulo
scheduling — it computes the achievable initiation interval (II) and the
kernel slot assignment under modulo resource reservation and loop-carried
dependences.  Prologue/epilogue code generation (modulo variable
expansion) is out of scope; the II itself is the quantity the paper's
argument needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG
from ..cfg.loops import Loop
from ..isa.instruction import Instruction
from .ddg import DDG, build_ddg
from .machine_model import DEFAULT_MODEL, MachineModel


@dataclass
class CrossEdge:
    """A loop-carried dependence: src of iteration *i* reaches dst of
    iteration *i + distance*."""

    src: int
    dst: int
    latency: int
    distance: int = 1


@dataclass
class ModuloSchedule:
    """Result of :func:`modulo_schedule`."""

    ii: int
    res_mii: int
    rec_mii: int
    start: dict[int, int] = field(default_factory=dict)

    @property
    def stages(self) -> int:
        if not self.start:
            return 0
        return max(self.start.values()) // self.ii + 1

    def kernel(self) -> list[list[int]]:
        """Instruction indices per kernel slot (t mod II)."""
        slots: list[list[int]] = [[] for _ in range(self.ii)]
        for i, t in sorted(self.start.items()):
            slots[t % self.ii].append(i)
        return slots


class NotPipelinable(Exception):
    """The loop body cannot be modulo-scheduled (control flow inside the
    body, or no II up to the limit admits a schedule)."""


def cross_iteration_edges(instructions: list[Instruction],
                          model: MachineModel = DEFAULT_MODEL) -> list[CrossEdge]:
    """Loop-carried register and memory dependences at distance 1.

    For every register, the last write of iteration *i* feeds every
    upward-exposed read of iteration *i+1*; stores order against the next
    iteration's loads and stores conservatively (no disambiguation — the
    paper's "most conservative assumptions").
    """
    last_def: dict[str, int] = {}
    first_uses: dict[str, list[int]] = {}
    defined: set[str] = set()
    loads: list[int] = []
    stores: list[int] = []
    for i, ins in enumerate(instructions):
        for r in ins.uses():
            if r not in defined:
                first_uses.setdefault(r, []).append(i)
        for r in ins.defs():
            last_def[r] = i
            defined.add(r)
        if ins.is_load:
            loads.append(i)
        elif ins.is_store:
            stores.append(i)
    edges: list[CrossEdge] = []
    for reg, d in last_def.items():
        for u in first_uses.get(reg, ()):
            edges.append(CrossEdge(d, u, model.latency(instructions[d])))
        # Anti dependence across iterations: reads of the old value must
        # precede next iteration's write (latency 0 suffices).
        for u in first_uses.get(reg, ()):
            edges.append(CrossEdge(u, d, 0))
    for s in stores:
        for l in loads:
            edges.append(CrossEdge(s, l, 1))
        for s2 in stores:
            if s2 != s:
                edges.append(CrossEdge(s, s2, 1))
    return edges


def res_mii(instructions: list[Instruction],
            model: MachineModel = DEFAULT_MODEL) -> int:
    """Resource-constrained lower bound on II."""
    counts: dict[str, int] = {}
    for ins in instructions:
        counts[model.unit_key(ins)] = counts.get(model.unit_key(ins), 0) + 1
    bound = max((math.ceil(n / model.slots_for(k))
                 for k, n in counts.items()), default=1)
    width_bound = math.ceil(len(instructions) / model.issue_width)
    return max(1, bound, width_bound)


def rec_mii(instructions: list[Instruction],
            cross: list[CrossEdge],
            model: MachineModel = DEFAULT_MODEL,
            max_ii: int = 64) -> int:
    """Recurrence-constrained lower bound on II.

    Smallest II for which no dependence cycle has positive slack deficit —
    found by testing each candidate II with Bellman-Ford-style longest
    paths over edges weighted ``latency - II * distance`` (a positive
    cycle means the recurrence cannot close within II).
    """
    n = len(instructions)
    if n == 0:
        return 1
    ddg = build_ddg(instructions, model)
    edges: list[tuple[int, int, int, int]] = []
    for e in ddg.edges:
        edges.append((e.src, e.dst, e.weight, 0))
    for c in cross:
        edges.append((c.src, c.dst, c.latency, c.distance))

    def feasible(ii: int) -> bool:
        dist = [0] * n
        for _ in range(n):
            changed = False
            for (s, d, lat, k) in edges:
                w = lat - ii * k
                if dist[s] + w > dist[d]:
                    dist[d] = dist[s] + w
                    changed = True
            if not changed:
                return True
        return False  # still relaxing after n rounds: positive cycle

    for ii in range(1, max_ii + 1):
        if feasible(ii):
            return ii
    return max_ii


def modulo_schedule(instructions: list[Instruction],
                    model: MachineModel = DEFAULT_MODEL,
                    max_ii: int = 64) -> ModuloSchedule:
    """Compute a modulo schedule for a straight-line loop body.

    Raises :class:`NotPipelinable` when the body contains control flow
    (other than nothing — pass the body WITHOUT the closing branch) or no
    II up to *max_ii* admits a schedule.
    """
    for ins in instructions:
        if ins.is_control or ins.info.is_call:
            raise NotPipelinable(
                f"loop body contains control flow ({ins.op}); if-convert "
                f"first (paper Section 3)")
    if not instructions:
        return ModuloSchedule(ii=1, res_mii=1, rec_mii=1)
    cross = cross_iteration_edges(instructions, model)
    r_mii = res_mii(instructions, model)
    c_mii = rec_mii(instructions, cross, model, max_ii)
    ddg = build_ddg(instructions, model)
    order = ddg.topological_order()

    for ii in range(max(r_mii, c_mii), max_ii + 1):
        sched = _try_schedule(instructions, ddg, cross, order, ii, model)
        if sched is not None:
            return ModuloSchedule(ii=ii, res_mii=r_mii, rec_mii=c_mii,
                                  start=sched)
    raise NotPipelinable(f"no feasible II <= {max_ii}")


def _try_schedule(instructions, ddg: DDG, cross: list[CrossEdge],
                  order: list[int], ii: int,
                  model: MachineModel) -> Optional[dict[int, int]]:
    """One scheduling attempt at a fixed II (earliest-fit with modulo
    resource reservation, then cross-iteration validation)."""
    start: dict[int, int] = {}
    # Modulo reservation: per slot (t mod II), per unit class, a count.
    res: list[dict[str, int]] = [dict() for _ in range(ii)]
    width: list[int] = [0] * ii

    for i in order:
        earliest = 0
        for e in ddg.predecessors(i):
            if e.src in start:
                earliest = max(earliest, start[e.src] + e.weight)
        placed = False
        for t in range(earliest, earliest + ii):
            slot = t % ii
            key = model.unit_key(instructions[i])
            if width[slot] >= model.issue_width:
                continue
            if res[slot].get(key, 0) >= model.slots_for(key):
                continue
            start[i] = t
            width[slot] += 1
            res[slot][key] = res[slot].get(key, 0) + 1
            placed = True
            break
        if not placed:
            return None

    # Validate loop-carried constraints: t_dst + II*dist >= t_src + lat.
    for c in cross:
        if start[c.dst] + ii * c.distance < start[c.src] + c.latency:
            return None
    return start


def loop_pipeline_report(cfg: CFG, loop: Loop,
                         model: MachineModel = DEFAULT_MODEL,
                         max_ii: int = 64) -> ModuloSchedule:
    """Modulo-schedule a natural loop.

    The loop must consist of a single block (header == latch) whose only
    control instruction is the closing branch; otherwise
    :class:`NotPipelinable` is raised — which is exactly the paper's point
    about why if-conversion comes first.
    """
    if len(loop.body) != 1:
        raise NotPipelinable(
            f"loop body spans {len(loop.body)} blocks; if-convert to a "
            f"single hyperblock first")
    bb = cfg.block(loop.header)
    body = bb.instructions
    if body and body[-1].is_branch:
        body = body[:-1]
    return modulo_schedule(body, model, max_ii)
