"""Local (basic-block) list scheduling.

Produces the per-block schedules the paper's cost examples are built on:
"the annotations on the basic blocks represent the schedule lengths obtained
using a local scheduler" (Figure 2), and the *vacant slot* counts that the
speculation heuristics fill ("assume that block one has four vacant slots").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.basic_block import BasicBlock
from ..isa.instruction import Instruction
from .ddg import DDG, build_ddg
from .machine_model import DEFAULT_MODEL, MachineModel


@dataclass
class Schedule:
    """A cycle-accurate local schedule of one instruction sequence."""

    instructions: list[Instruction]
    start: dict[int, int] = field(default_factory=dict)  # node -> cycle
    cycles: list[list[int]] = field(default_factory=list)  # cycle -> nodes
    length: int = 0  # cycles until every op completes ("schedule length")

    def linear_order(self) -> list[int]:
        """Instruction indices in schedule order (cycle, then original)."""
        out: list[int] = []
        for ops in self.cycles:
            out.extend(sorted(ops))
        return out

    def vacant_slots(self, model: MachineModel = DEFAULT_MODEL) -> int:
        """Unused issue slots across the schedule's issue cycles.

        This is the quantity the speculation pass fills with operations
        hoisted from successor blocks.
        """
        issue_cycles = len(self.cycles)
        return issue_cycles * model.issue_width - len(self.instructions)


def list_schedule(instructions: list[Instruction],
                  model: MachineModel = DEFAULT_MODEL,
                  ddg: DDG | None = None) -> Schedule:
    """Greedy cycle-by-cycle list scheduling.

    Priority: critical-path height (descending), original order as the
    tiebreak.  Resources: total issue width plus per-unit slots per cycle.
    A block terminator issues only after every other operation has been
    scheduled (it ends the block).
    """
    n = len(instructions)
    sched = Schedule(instructions=list(instructions))
    if n == 0:
        return sched
    ddg = ddg or build_ddg(instructions, model)
    height = ddg.critical_path_heights(model)

    terminator = n - 1 if instructions[-1].is_control else None
    unscheduled = set(range(n))
    earliest = [0] * n
    cycle = 0
    max_cycles_guard = 10 * n + 64

    while unscheduled:
        ready = []
        for i in sorted(unscheduled):
            if earliest[i] > cycle:
                continue
            if any(e.src in unscheduled for e in ddg.predecessors(i)):
                continue
            if i == terminator and len(unscheduled) > 1:
                continue
            ready.append(i)
        ready.sort(key=lambda i: (-height[i], i))

        used_width = 0
        used_slots: dict[str, int] = {}
        issued: list[int] = []
        for i in ready:
            if used_width >= model.issue_width:
                break
            key = model.unit_key(instructions[i])
            if used_slots.get(key, 0) >= model.slots_for(key):
                continue
            used_width += 1
            used_slots[key] = used_slots.get(key, 0) + 1
            issued.append(i)
            sched.start[i] = cycle
            unscheduled.discard(i)
            for e in ddg.successors(i):
                earliest[e.dst] = max(earliest[e.dst], cycle + e.weight)
        sched.cycles.append(issued)
        cycle += 1
        if cycle > max_cycles_guard:  # pragma: no cover - safety net
            raise RuntimeError("list scheduler failed to converge")

    sched.length = max(sched.start[i] + model.latency(instructions[i])
                       for i in range(n))
    # Trim trailing empty cycles (can appear while waiting on latencies).
    while sched.cycles and not sched.cycles[-1]:
        sched.cycles.pop()
    return sched


def schedule_length(instructions: list[Instruction],
                    model: MachineModel = DEFAULT_MODEL) -> int:
    """Shortcut: schedule and return the length only."""
    return list_schedule(instructions, model).length


def schedule_block(bb: BasicBlock,
                   model: MachineModel = DEFAULT_MODEL) -> Schedule:
    """Schedule a basic block's instructions."""
    return list_schedule(bb.instructions, model)


def reorder_block(bb: BasicBlock, model: MachineModel = DEFAULT_MODEL) -> Schedule:
    """Schedule a block and rewrite its instruction order to match.

    The relative order within a cycle keeps original positions (stable), so
    the terminator remains last.
    """
    sched = schedule_block(bb, model)
    order = sched.linear_order()
    bb.instructions = [bb.instructions[i] for i in order]
    return sched
