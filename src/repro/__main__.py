"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``  — run the three-scheme suite and print Tables 1-4 plus the
  headline improvement summary;
* ``profile`` — functional-profile a benchmark (or .s file) and print its
  per-branch feedback metrics;
* ``compile`` — run the proposed pipeline and print the Figure 6 decision
  trail plus the transformed assembly;
* ``run``     — simulate a program under one prediction scheme and print
  the timing counters;
* ``verify``  — IR-verify and differentially check the baseline and
  proposed compiles of a benchmark (or ``all``) against the original
  program: structural invariants plus architectural equivalence; with
  ``--spectre`` it instead runs the speculative-safety taint analysis
  and exits nonzero when any gadget is flagged (see docs/ROBUSTNESS.md);
* ``fuzz``    — run a differential fuzzing campaign over generated
  programs (all schemes cross-checked against the functional simulator),
  shrink and triage any divergence into ``corpus/``, or ``--replay`` an
  existing corpus (see docs/QA.md);
* ``cache``   — inspect (``stats``, with per-tenant-namespace breakdowns
  and ``--json``) or wipe (``clear``, optionally one ``--namespace``)
  the engine's content-addressed artifact cache;
* ``serve``   — run the distributed evaluation service (multi-tenant
  job queue + worker fleet + namespaced cache; see docs/SERVICE.md);
* ``submit``  — submit a suite batch to a running service and stream
  the results back (byte-identical to a local ``tables`` run);
* ``jobs``    — list a service's jobs and show its queue/fleet stats;
* ``sweep``   — run a declarative design-space sweep and write one JSON
  record per (point, benchmark, scheme) cell;
* ``tune``    — run a closed-loop heuristic search (successive halving
  plus mutation) over cached engine cells and print the Pareto front
  and per-workload winning vectors (see docs/TUNE.md);
* ``trace``   — ``trace run`` executes a traced suite (JSONL spans to
  ``--out``), ``trace summarize`` renders a per-span timing table from a
  trace file (see docs/OBSERVABILITY.md);
* ``ingest``  — import external programs (Bril-like ``.bril`` sources or
  JSONL ``.trace.jsonl`` basic-block traces) as first-class workloads:
  lower onto the ISA, verify, and print or ``--emit`` the assembly;
  ``--check`` replays committed ``.golden.s`` files (the CI gate) and
  ``--update-goldens`` regenerates them (see docs/INGEST.md).

Program arguments (``profile``/``compile``/``run``/``verify``) accept a
benchmark name, a ``.s`` assembly file, or any ``repro ingest`` input
file; ``tables --import FILE`` evaluates imported workloads alongside
the synthetic suite.

Every experiment command (``tables``, ``sweep``, ``fuzz``, ``verify``)
constructs exactly one :class:`repro.api.Session` from the shared engine
flags, so ``--jobs``, ``--no-cache``, ``--cache-dir``, and ``--trace``
behave identically everywhere: results are cached in ``.repro-cache/``
(override with ``--cache-dir`` or ``$REPRO_CACHE_DIR``, disable with
``--no-cache``), cache misses fan out over ``--jobs N`` worker
processes, and ``--trace FILE`` writes a JSONL span trace of the run.
``--remote URL`` (with ``--tenant NAME``) routes the experiment through
a running ``repro serve`` instance instead of the local pool.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import Session
from .core import compile_baseline, compile_proposed
from .eval import (
    format_improvements, format_table1, format_table2, format_table3,
    format_table4, suite_failures,
)
from .isa import format_program, parse
from .isa.program import Program
from .profilefb import ProfileDB
from .sim import FunctionalSim, TimingSim, r10k_config
from .workloads import BENCHMARKS


def _load_program(name: str, scale: float) -> Program:
    if name in BENCHMARKS:
        from .workloads import benchmark_programs

        return benchmark_programs(scale)[name]
    path = Path(name)
    if path.exists():
        from .ingest import IngestError
        from .ingest.lower import SUFFIXES

        if any(path.name.endswith(s) for s in SUFFIXES):
            from .ingest import import_path

            try:
                return import_path(path)
            except IngestError as exc:
                raise SystemExit(f"cannot import {name}: {exc}")
        return parse(path.read_text(), name=path.stem)
    raise SystemExit(
        f"unknown program {name!r}: not a benchmark "
        f"({', '.join(sorted(BENCHMARKS))}) and not a file")


def _session_from(args: argparse.Namespace, *, cache=None,
                  trace_path=None, **kw) -> Session:
    """One :class:`Session` per CLI invocation, from the shared flags.

    Every subcommand translates its engine flags through the one shared
    :func:`repro.api.options_from_args` helper, so ``--jobs`` /
    ``--no-cache`` / ``--backend`` / ``--trace`` behave identically
    everywhere.  Explicit *cache*/*trace_path* arguments override the
    flag-derived values (``trace run`` routes its ``--out`` here).
    """
    from dataclasses import replace

    from .api import options_from_args

    opts = options_from_args(args)
    if cache is not None:
        opts = replace(opts, cache=cache)
    if trace_path is not None:
        opts = replace(opts, trace=trace_path)
    return Session(options=opts, **kw)


def _report_cache(store) -> None:
    """One stderr line of cache traffic (greppable by tools/smoke.sh)."""
    if store is None:
        return
    s = store.stats()
    print(f"cache: hits={s['hits']} misses={s['misses']} "
          f"entries={s['entries']}", file=sys.stderr)


def cmd_tables(args: argparse.Namespace) -> int:
    benchmarks = None
    if getattr(args, "imports", None):
        from .ingest import IngestError
        from .workloads import benchmark_programs, load_imported

        try:
            imported = load_imported(args.imports)
        except IngestError as exc:
            return _usage_error(f"--import: {exc}")
        benchmarks = {**benchmark_programs(args.scale), **imported}
        for name in imported:
            print(f"imported workload: {name}", file=sys.stderr)
    with _session_from(args) as session:
        try:
            runs = session.run_suite(
                scale=args.scale, benchmarks=benchmarks,
                progress=lambda b: print(f"running {b} ...",
                                         file=sys.stderr))
        except Exception as exc:  # noqa: BLE001 - --strict fail-fast exit
            if args.strict:
                print(f"FATAL ({type(exc).__name__}): {exc}",
                      file=sys.stderr)
                return 2
            raise
    for text in (format_table1(runs), "", format_table2(), "",
                 format_table3(runs), "", format_table4(runs), "",
                 format_improvements(runs)):
        print(text)
    _report_cache(session.cache)
    failed = suite_failures(runs)
    for cell in failed:
        print(f"warning: {cell.benchmark}/{cell.scheme} failed: "
              f"{cell.failure}", file=sys.stderr)
    if failed and args.strict:
        return 2
    if args.json:
        import json

        from .eval import suite_to_dict

        Path(args.json).write_text(
            json.dumps(suite_to_dict(runs), indent=2, sort_keys=True) + "\n")
        print(f"json results written to {args.json}", file=sys.stderr)
    if args.report:
        from .eval import write_report

        path = write_report(runs, args.report,
                            title=f"Suite results (scale {args.scale})")
        print(f"markdown report written to {path}", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .serve.store import DEFAULT_NAMESPACE, LocalBackend

    backend = LocalBackend(args.cache_dir)
    if args.action == "clear":
        spaces = ([args.namespace] if args.namespace
                  else backend.namespaces())
        for name in spaces:
            removed = backend.cache(name).clear()
            print(f"cleared {removed} entries from namespace {name!r} "
                  f"({backend.namespace_root(name)})")
        return 0
    stats = backend.stats()
    if args.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache root : {stats['root']}")
    print(f"entries    : {stats['entries']}")
    print(f"total bytes: {stats['total_bytes']}")
    print("namespaces :")
    for name, s in stats["namespaces"].items():
        suffix = " (top-level)" if name == DEFAULT_NAMESPACE else ""
        print(f"  {name:<16} {s['entries']:>6} entries, "
              f"{s['total_bytes']:>10} bytes{suffix}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the distributed evaluation service until interrupted."""
    from .serve import ServeConfig, serve_forever

    if args.workers < 1:
        return _usage_error(f"--workers must be >= 1 (got {args.workers})")
    return serve_forever(ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        cache_dir=args.cache_dir, remote_cache=args.remote_cache,
        rate=args.rate, burst=args.burst))


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a suite batch to a running service; stream results back."""
    from .serve import Backpressure, ServeClient, ServeError
    from .serve.client import remote_run_suite, suite_cells

    client = ServeClient(args.remote, tenant=args.tenant,
                         timeout=args.timeout)
    try:
        if args.no_wait:
            from .core.heuristics import DEFAULT_HEURISTICS
            from .workloads import benchmark_programs

            from .fastsim.backend import resolve_backend

            grid = suite_cells(benchmark_programs(args.scale,
                                                  seed=args.seed),
                               DEFAULT_HEURISTICS, None, args.max_steps,
                               backend=resolve_backend(args.backend))
            job = client.submit_cells(
                [(key, payload) for _, _, key, _, payload in grid])
            print(f"submitted {job['job_id']} ({job['n_cells']} cells, "
                  f"{job['n_cache_hits']} cached, "
                  f"{job['n_deduped']} deduped) as tenant {args.tenant!r}")
            print(f"poll with: python -m repro jobs --remote {args.remote}")
            return 0
        runs = remote_run_suite(
            client, scale=args.scale, seed=args.seed,
            max_steps=args.max_steps, backend=args.backend,
            progress=lambda msg: print(msg, file=sys.stderr))
    except (Backpressure, ServeError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    print(format_table1(runs))
    print()
    print(format_improvements(runs))
    if args.json:
        import json

        from .eval import suite_to_dict

        Path(args.json).write_text(
            json.dumps(suite_to_dict(runs), indent=2, sort_keys=True) + "\n")
        print(f"json results written to {args.json}", file=sys.stderr)
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List a running service's jobs and show its stats snapshot."""
    from .serve import ServeClient, ServeError

    client = ServeClient(args.remote, tenant=args.tenant or "default")
    try:
        jobs = client.jobs(all_tenants=args.tenant is None)
        stats = client.stats()
    except (ServeError, OSError) as exc:
        print(f"cannot reach {args.remote}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps({"jobs": jobs, "stats": stats}, indent=2,
                         sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
    for j in jobs:
        print(f"{j['job_id']:<10} {j['tenant']:<12} {j['kind']:<6} "
              f"{j['state']:<8} {j['n_done']}/{j['n_cells']} cells "
              f"(hits={j['n_cache_hits']} deduped={j['n_deduped']})")
    q, f = stats["queue"], stats["fleet"]
    print(f"queue: depth={q['depth']} in-flight={q['in_flight']} | "
          f"fleet: {f['alive']}/{f['workers']} workers alive, "
          f"utilization={f['utilization']:.0%} | "
          f"cache: {stats['cache']['entries']} entries")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .engine import SweepSpec, grid_from_dict

    def _parse_axes(pairs: list[str]) -> dict:
        grid: dict = {}
        for pair in pairs or []:
            if "=" not in pair:
                raise SystemExit(f"bad axis {pair!r}: expected field=v1,v2")
            name, _, values = pair.partition("=")
            grid[name] = tuple(_coerce(v) for v in values.split(","))
        return grid

    def _coerce(text: str):
        for conv in (int, float):
            try:
                return conv(text)
            except ValueError:
                continue
        if text in ("true", "false"):
            return text == "true"
        return text

    spec = SweepSpec(
        scales=tuple(float(s) for s in args.scales.split(",")),
        config_grid=grid_from_dict(_parse_axes(args.config)),
        heur_grid=grid_from_dict(_parse_axes(args.heur)),
        benchmarks=(tuple(args.benchmarks.split(","))
                    if args.benchmarks else None),
        max_steps=args.max_steps,
        seed=args.seed)
    try:
        spec.validate()
    except ValueError as exc:
        raise SystemExit(f"invalid sweep: {exc}")
    with _session_from(args) as session:
        records = session.sweep(
            spec, progress=lambda msg: print(msg, file=sys.stderr))
    text = json.dumps(records, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"{len(records)} records written to {args.out}",
              file=sys.stderr)
    else:
        print(text, end="")
    _report_cache(session.cache)
    return 0


def _usage_error(message: str) -> int:
    """Print a CLI usage error to stderr; returns the exit code (2)."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def cmd_tune(args: argparse.Namespace) -> int:
    """Run a closed-loop heuristic search (see docs/TUNE.md)."""
    import json

    from .tune import (DEFAULT_PARAM_NAMES, ParamSpec, TuneSpec,
                       format_tune_result)

    def _parse_param(text: str) -> ParamSpec:
        # NAME (registered bounds) or NAME=LO:HI (narrowed range) or
        # NAME=a,b,c (choice values).
        name, _, rng = text.partition("=")
        if not rng:
            return ParamSpec(name)
        if ":" in rng:
            lo, _, hi = rng.partition(":")
            return ParamSpec(name, lo=float(lo), hi=float(hi))
        return ParamSpec(name, choices=tuple(rng.split(",")))

    names = args.param or list(DEFAULT_PARAM_NAMES)
    spec = TuneSpec(
        params=tuple(_parse_param(t) for t in names),
        benchmarks=(tuple(args.benchmarks.split(","))
                    if args.benchmarks else None),
        scale=args.scale, budget=args.budget, seed=args.seed,
        max_steps=args.max_steps)
    try:
        spec.validate()
    except ValueError as exc:
        raise SystemExit(f"invalid tune spec: {exc}")
    with _session_from(args) as session:
        result = session.tune(
            spec, progress=lambda msg: print(msg, file=sys.stderr))
    print(format_tune_result(result))
    if args.out:
        Path(args.out).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"tune result written to {args.out}", file=sys.stderr)
    _report_cache(session.cache)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a differential fuzzing campaign (or replay a corpus)."""
    from .qa import replay_corpus

    if args.jobs < 1:
        return _usage_error(f"--jobs must be >= 1 (got {args.jobs})")
    if args.budget < 1:
        return _usage_error(f"--budget must be >= 1 (got {args.budget})")
    if args.cache_dir and Path(args.cache_dir).is_file():
        return _usage_error(
            f"--cache-dir {args.cache_dir!r} exists and is not a directory")

    if args.replay:
        if not Path(args.replay).is_dir():
            return _usage_error(f"--replay: no such corpus directory: "
                                f"{args.replay}")
        records = replay_corpus(args.replay, max_steps=args.max_steps)
        bad = 0
        for r in records:
            broken = bool(r["divergent"] or r["error"])
            bad += broken
            detail = (r["error"] or ", ".join(r["divergent"]) or "clean")
            print(f"{r['name']:<32} {'FAIL' if broken else 'ok':<5} {detail}")
        print(f"replayed {len(records)} reproducer(s): "
              f"{'all clean' if not bad else f'{bad} FAILED'}")
        return 1 if bad else 0

    with _session_from(args) as session:
        try:
            result = session.fuzz(
                budget=args.budget, seed=args.seed, shrink=args.shrink,
                max_steps=args.max_steps,
                strategies=(args.strategies.split(",")
                            if args.strategies else None),
                corpus_dir=args.corpus,
                progress=lambda msg: print(msg, file=sys.stderr))
        except ValueError as exc:  # unknown strategy names
            return _usage_error(str(exc))
    print(result.summary.format())
    _report_cache(session.cache)
    return 0 if result.summary.clean else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from .fastsim.backend import resolve_backend

    prog = _load_program(args.program, args.scale)
    db = ProfileDB.from_run(prog, backend=resolve_backend(
        getattr(args, "backend", None)))
    print(db.summary())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    prog = _load_program(args.program, args.scale)
    result = compile_proposed(prog)
    print(result.summary())
    if args.emit:
        print()
        print(format_program(result.program))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    with _session_from(args) as session:
        if args.spectre:
            return _spectre_in_session(args, session)
        return _verify_in_session(args, session)


def _spectre_in_session(args: argparse.Namespace, session: Session) -> int:
    """Body of ``verify --spectre``: flag Spectre-v1 gadgets statically.

    Accepts the same program argument as plain ``verify`` (benchmark
    name, ``.s`` file, or ``all``) and exits 1 when any finding exists —
    the CI contract: known-positive gadget files must fail, the stock
    workloads must stay clean.
    """
    untrusted = (tuple(args.untrusted.split(","))
                 if args.untrusted else None)
    total = 0
    names = sorted(BENCHMARKS) if args.program == "all" else [args.program]
    for name in names:
        prog = _load_program(name, args.scale)
        findings = session.spectre(prog, sew=args.sew, untrusted=untrusted)
        total += len(findings)
        print(f"{name:<12} spectre   "
              f"{'CLEAN' if not findings else f'{len(findings)} finding(s)'}"
              f" (sew={args.sew})")
        for f in findings:
            print(f"    {f}")
    print(f"spectre: {'clean' if not total else f'{total} finding(s)'}")
    return 1 if total else 0


def _verify_in_session(args: argparse.Namespace, session: Session) -> int:
    """Body of ``verify``, run inside the session's observability scope.

    Verification always recompiles (the point is to check the compiler
    that exists *now*, not a cached artifact), so the session's cache is
    deliberately not consulted; the engine flags still matter for
    ``--trace`` and flag uniformity across subcommands.
    """
    from .robust import check_equivalence, verify_program

    names = sorted(BENCHMARKS) if args.program == "all" else [args.program]
    failed = 0
    for name in names:
        prog = _load_program(name, args.scale)
        for tag, result in (("baseline", compile_baseline(prog)),
                            ("proposed", compile_proposed(prog))):
            violations = verify_program(result.program)
            diff = check_equivalence(prog, result.program,
                                     max_steps=args.max_steps)
            ok = not violations and bool(diff)
            print(f"{name:<12} {tag:<9} "
                  f"{'OK' if ok else 'FAIL':<5} "
                  f"invariants={'clean' if not violations else 'BROKEN'} "
                  f"equivalence={'proved' if diff else 'FAILED'} "
                  f"({diff.original_steps} vs {diff.transformed_steps} steps)")
            for v in violations[:5]:
                print(f"    {v}")
            if not diff:
                print(f"    {diff.reason}")
            if result.fallback is not None or any(
                    f.kind != "skip" for f in result.failures):
                print(f"    note: compile degraded "
                      f"(fallback={result.fallback})")
                for f in result.failures:
                    print(f"    {f}")
            if not ok:
                failed += 1
    print(f"{'verify: all clean' if not failed else f'verify: {failed} FAILED'}")
    return 1 if failed else 0


def cmd_run(args: argparse.Namespace) -> int:
    prog = _load_program(args.program, args.scale)
    scheme = args.scheme
    if scheme is None:  # legacy flags
        scheme = ("proposed" if args.proposed
                  else "raw" if args.raw else "baseline")
    if scheme == "proposed":
        prog = compile_proposed(prog).program
    elif scheme == "safe-speculative":
        from dataclasses import replace

        from .core.heuristics import DEFAULT_HEURISTICS

        prog = compile_proposed(
            prog, heur=replace(DEFAULT_HEURISTICS,
                               spectre_safe=True)).program
    elif scheme == "melded":
        from dataclasses import replace

        from .core.heuristics import DEFAULT_HEURISTICS

        prog = compile_proposed(
            prog, heur=replace(DEFAULT_HEURISTICS,
                               enable_meld=True)).program
    elif scheme == "baseline":
        prog = compile_baseline(prog).program
    # scheme == "raw": simulate the program untouched
    observer = None
    if args.sample:
        from .obs import PipelineObserver

        observer = PipelineObserver(sample_interval=args.sample)
    from .fastsim.backend import resolve_backend

    if resolve_backend(getattr(args, "backend", None)) == "fast" \
            and observer is None:
        from .fastsim.backend import simulate as fast_simulate

        stats, _ = fast_simulate(prog, r10k_config(args.predictor))
    else:
        fsim = FunctionalSim(prog, record_outcomes=False)
        stats = TimingSim(r10k_config(args.predictor),
                          observer=observer).run(fsim.trace())
    print(f"program    : {prog.name}")
    print(f"predictor  : {args.predictor}")
    print(stats.summary())
    if observer is not None:
        from .obs import heat_report

        print()
        print(heat_report(observer.pc_samples, prog))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Import/lower external programs; check or refresh their goldens."""
    from .ingest import (IngestError, check_fixture, expand_fixtures,
                         import_path, update_fixture)

    files = expand_fixtures(args.paths)
    if not files:
        return _usage_error("no import files found (expected .bril or "
                            ".trace.jsonl files, or a directory of them)")
    problems: list[str] = []
    for f in files:
        try:
            if args.update_goldens:
                written = update_fixture(f, stats=not args.no_stats,
                                         max_steps=args.max_steps)
                print(f"{f}: wrote "
                      + ", ".join(w.name for w in written))
            elif args.check:
                drift = check_fixture(f)
                problems.extend(drift)
                print(f"{f}: {'ok' if not drift else 'DRIFT'}")
            else:
                prog = import_path(f)
                print(f"{f}: imported as {prog.name} "
                      f"({len(prog)} instructions)")
                if args.emit:
                    print(format_program(prog))
        except IngestError as exc:
            problems.append(f"{f}: {exc}")
            print(f"{f}: FAILED\n    {exc}", file=sys.stderr)
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    print(f"ingest: {len(files)} file(s), "
          f"{'all ok' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace run`` / ``trace summarize`` — see docs/OBSERVABILITY.md."""
    from .obs import read_trace, summarize_trace

    if args.action == "summarize":
        if not args.file:
            return _usage_error("trace summarize requires a trace FILE")
        try:
            records = read_trace(args.file)
        except (OSError, ValueError) as exc:
            return _usage_error(f"cannot read trace: {exc}")
        print(summarize_trace(records))
        return 0

    # action == "run": a traced (and optionally metric-counted) suite run.
    # Spans are process-local, so the traced suite runs with the session's
    # default jobs=1 unless the caller insists on a pool.
    with _session_from(args, trace_path=args.out) as session:
        session.run_suite(
            scale=args.scale,
            progress=lambda b: print(f"running {b} ...", file=sys.stderr))
        emitted = session._tracer.emitted if session._tracer else 0
        print(f"{emitted} spans written to {args.out}", file=sys.stderr)
    if args.metrics:
        import json

        from .obs import metrics_snapshot

        print(json.dumps(metrics_snapshot(), indent=2, sort_keys=True))
    if args.summarize:
        print(summarize_trace(read_trace(args.out)))
    _report_cache(session.cache)
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Srinivas & Nicolau (IPPS 1998) reproduction toolkit")
    sub = ap.add_subparsers(dest="command", required=True)

    def _engine_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for cache misses (default 1 "
                            "= in-process)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache for this run")
        p.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache directory (default "
                            ".repro-cache/ or $REPRO_CACHE_DIR)")
        p.add_argument("--trace", metavar="FILE",
                       help="write a JSONL span trace of this run to FILE "
                            "(see docs/OBSERVABILITY.md)")
        p.add_argument("--remote", metavar="URL",
                       help="route execution through a running "
                            "'repro serve' instance (see docs/SERVICE.md)")
        p.add_argument("--tenant", default="default", metavar="NAME",
                       help="tenant namespace on the remote service "
                            "(default 'default')")
        p.add_argument("--backend", default=None,
                       choices=["reference", "fast"],
                       help="execution backend: 'fast' uses the "
                            "decode-once generated-step simulators of "
                            "repro.fastsim (byte-identical results; see "
                            "docs/FASTSIM.md). Default: $REPRO_BACKEND "
                            "or 'reference'")

    p = sub.add_parser("tables", help="regenerate Tables 1-4")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor (default 1.0)")
    p.add_argument("--report", metavar="FILE",
                   help="also write a markdown report to FILE")
    p.add_argument("--json", metavar="FILE",
                   help="also write machine-readable results to FILE")
    p.add_argument("--strict", action="store_true",
                   help="fail fast: abort (exit nonzero) on the first "
                        "failed benchmark/scheme cell instead of rendering "
                        "FAIL cells")
    p.add_argument("--import", action="append", dest="imports",
                   metavar="FILE",
                   help="also evaluate this imported workload (.bril "
                        "source or .trace.jsonl trace, repeatable; see "
                        "docs/INGEST.md)")
    _engine_flags(p)
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("cache", help="inspect or clear the artifact cache")
    p.add_argument("action", choices=["stats", "clear"],
                   help="stats: print cache size/contents (with "
                        "per-namespace breakdown); clear: wipe it")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact cache directory (default .repro-cache/ "
                        "or $REPRO_CACHE_DIR)")
    p.add_argument("--namespace", metavar="NAME",
                   help="clear only this tenant namespace (clear only; "
                        "default: every namespace)")
    p.add_argument("--json", action="store_true",
                   help="print stats as JSON (stats only)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the distributed evaluation service (docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8732,
                   help="bind port (default 8732; 0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker threads executing cells (default 2)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact store root (default .repro-cache/ "
                        "or $REPRO_CACHE_DIR)")
    p.add_argument("--remote-cache", metavar="URL",
                   help="upstream serve instance used as a shared "
                        "second-tier cache")
    p.add_argument("--rate", type=float, default=10.0, metavar="R",
                   help="per-tenant submissions/second (default 10)")
    p.add_argument("--burst", type=int, default=20, metavar="N",
                   help="per-tenant burst capacity (default 20)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a suite batch to a running service")
    p.add_argument("--remote", required=True, metavar="URL",
                   help="base URL of the serve instance")
    p.add_argument("--tenant", default="default", metavar="NAME",
                   help="tenant namespace (default 'default')")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor (default 1.0)")
    p.add_argument("--seed", type=int, default=None,
                   help="master seed for the synthetic workload inputs")
    p.add_argument("--max-steps", type=int, default=50_000_000,
                   help="per-cell functional step budget")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="HTTP timeout per request (default 600s)")
    p.add_argument("--no-wait", action="store_true",
                   help="submit and print the job id instead of waiting "
                        "for results")
    p.add_argument("--json", metavar="FILE",
                   help="also write machine-readable results to FILE")
    p.add_argument("--backend", default=None,
                   choices=["reference", "fast"],
                   help="execution backend for the submitted cells "
                        "(default: $REPRO_BACKEND or 'reference')")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "jobs", help="list a running service's jobs and stats")
    p.add_argument("--remote", required=True, metavar="URL",
                   help="base URL of the serve instance")
    p.add_argument("--tenant", default=None, metavar="NAME",
                   help="restrict to one tenant (default: all)")
    p.add_argument("--json", action="store_true",
                   help="print the raw jobs + stats JSON")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "sweep", help="run a design-space sweep, one JSON record per cell")
    p.add_argument("--scales", default="1.0", metavar="S1,S2",
                   help="comma-separated workload scale factors")
    p.add_argument("--config", action="append", metavar="FIELD=V1,V2",
                   help="MachineConfig axis (repeatable), e.g. "
                        "--config fetch_width=2,4,8")
    p.add_argument("--heur", action="append", metavar="FIELD=V1,V2",
                   help="FeedbackHeuristics axis (repeatable), e.g. "
                        "--heur speculation_bias=0.5,0.65,0.8")
    p.add_argument("--benchmarks", metavar="B1,B2",
                   help="restrict to these benchmarks (default: all)")
    p.add_argument("--max-steps", type=int, default=50_000_000,
                   help="per-cell functional step budget")
    p.add_argument("--seed", type=int, default=None,
                   help="master seed for the synthetic workload inputs")
    p.add_argument("--out", metavar="FILE",
                   help="write records to FILE instead of stdout")
    _engine_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "tune",
        help="closed-loop heuristic search over cached engine cells "
             "(docs/TUNE.md)")
    p.add_argument("--param", action="append", metavar="NAME[=LO:HI|=A,B]",
                   help="search axis (repeatable): a FeedbackHeuristics "
                        "knob ('speculation_bias', dotted "
                        "'classify.likely_threshold') or machine axis "
                        "('config.fetch_width'); optional =LO:HI narrows "
                        "the registered bound, =A,B restricts a choice "
                        "parameter. Default: the paper's four Figure 6 "
                        "thresholds")
    p.add_argument("--budget", type=int, default=32, metavar="N",
                   help="(candidate, fidelity-rung) evaluations to spend "
                        "(default 32)")
    p.add_argument("--seed", type=int, default=0,
                   help="search seed (same seed + budget => identical "
                        "Pareto front; default 0)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="full-fidelity workload scale factor (default 1.0)")
    p.add_argument("--benchmarks", metavar="B1,B2",
                   help="restrict to these benchmarks (default: all)")
    p.add_argument("--max-steps", type=int, default=50_000_000,
                   help="per-cell functional step budget")
    p.add_argument("--out", metavar="FILE",
                   help="also write the serialized TuneResult JSON to FILE")
    _engine_flags(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("profile", help="print a program's feedback metrics")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--backend", default=None,
                   choices=["reference", "fast"],
                   help="profiling-run execution backend "
                        "(default: $REPRO_BACKEND or 'reference')")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compile", help="run the proposed pipeline")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--emit", action="store_true",
                   help="also print the transformed assembly")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "verify",
        help="IR-verify + differentially check compiled benchmarks "
             "(always recompiles; the cache flags exist for flag "
             "uniformity and --trace)")
    p.add_argument("program", help="benchmark name, .s file, or 'all'")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--max-steps", type=int, default=20_000_000,
                   help="step budget for the reference run")
    p.add_argument("--spectre", action="store_true",
                   help="run the speculative-safety (Spectre-v1) taint "
                        "analysis instead; exit 1 when any gadget is "
                        "flagged")
    p.add_argument("--sew", type=int, default=16, metavar="N",
                   help="speculative-execution window for --spectre "
                        "(instructions, default 16)")
    p.add_argument("--untrusted", metavar="R1,R2",
                   help="registers treated as attacker-controlled at "
                        "entry (default r4,r5,r6,r7)")
    _engine_flags(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign over generated programs")
    p.add_argument("--budget", type=int, default=100, metavar="N",
                   help="number of programs to generate and cross-check "
                        "(default 100)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign master seed (default 0)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for fuzz cells (default 1)")
    p.add_argument("--strategies", metavar="S1,S2",
                   help="restrict to these lattice strategies "
                        "(default: all; see docs/QA.md)")
    p.add_argument("--corpus", default="corpus", metavar="DIR",
                   help="directory for shrunk reproducers (default corpus/)")
    p.add_argument("--replay", metavar="DIR",
                   help="replay every .s reproducer under DIR through all "
                        "schemes instead of fuzzing")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="skip delta-debug minimization of failures")
    p.add_argument("--max-steps", type=int, default=5_000_000,
                   help="per-run functional step budget (default 5M)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache for this run")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact cache directory (default .repro-cache/ "
                        "or $REPRO_CACHE_DIR)")
    p.add_argument("--trace", metavar="FILE",
                   help="write a JSONL span trace of this run to FILE")
    p.add_argument("--remote", metavar="URL",
                   help="execute fuzz cells on a running 'repro serve' "
                        "instance")
    p.add_argument("--tenant", default="default", metavar="NAME",
                   help="tenant namespace on the remote service")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "trace",
        help="run a traced suite or summarize an existing trace file")
    p.add_argument("action", choices=["run", "summarize"],
                   help="run: traced suite to --out; summarize: per-span "
                        "timing table of FILE")
    p.add_argument("file", nargs="?",
                   help="trace file to summarize (summarize only)")
    p.add_argument("--scale", type=float, default=0.3,
                   help="workload scale factor for trace run (default 0.3)")
    p.add_argument("--out", metavar="FILE", default="trace.jsonl",
                   help="trace output path for trace run "
                        "(default trace.jsonl)")
    p.add_argument("--summarize", action="store_true",
                   help="after trace run, also print the span summary")
    p.add_argument("--metrics", action="store_true",
                   help="enable the metrics registry during trace run and "
                        "print its JSON snapshot")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (spans are process-local: "
                        "workers do not contribute spans, so the default "
                        "is serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache for this run")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact cache directory (default .repro-cache/ "
                        "or $REPRO_CACHE_DIR)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "ingest",
        help="import external programs as workloads (docs/INGEST.md)")
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help=".bril source, .trace.jsonl trace, or a directory "
                        "of fixtures (bad_* files are skipped)")
    p.add_argument("--check", action="store_true",
                   help="replay each file against its committed .golden.s "
                        "and exit nonzero on drift (the CI gate)")
    p.add_argument("--update-goldens", action="store_true",
                   help="(re)write each file's .golden.s and .stats.json")
    p.add_argument("--no-stats", action="store_true",
                   help="with --update-goldens: skip the (slower) "
                        "six-scheme .stats.json golden")
    p.add_argument("--emit", action="store_true",
                   help="print the lowered assembly of each file")
    p.add_argument("--max-steps", type=int, default=200_000,
                   help="step budget for .stats.json goldens "
                        "(default 200000)")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("run", help="simulate a program")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--predictor", default="twobit",
                   choices=["twobit", "twolevel", "perfect", "static-taken"])
    p.add_argument("--scheme", default=None,
                   choices=["raw", "baseline", "proposed",
                            "safe-speculative", "melded"],
                   help="compilation scheme before simulating "
                        "(safe-speculative = proposed with Spectre-flagged "
                        "hoists fenced; melded = proposed with if-converted "
                        "diamonds flattened into cmov selects; "
                        "default baseline)")
    p.add_argument("--proposed", action="store_true",
                   help="compile with the proposed pipeline first "
                        "(same as --scheme proposed)")
    p.add_argument("--raw", action="store_true",
                   help="skip baseline local scheduling "
                        "(same as --scheme raw)")
    p.add_argument("--sample", type=int, default=0, metavar="N",
                   help="sample every N-th retired instruction and print "
                        "a per-basic-block heat report")
    p.add_argument("--backend", default=None,
                   choices=["reference", "fast"],
                   help="execution backend (ignored with --sample; "
                        "default: $REPRO_BACKEND or 'reference')")
    p.set_defaults(func=cmd_run)

    args = ap.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output truncated by a pipe reader (e.g. `| head`); not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
