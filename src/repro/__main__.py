"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``  — run the three-scheme suite and print Tables 1-4 plus the
  headline improvement summary;
* ``profile`` — functional-profile a benchmark (or .s file) and print its
  per-branch feedback metrics;
* ``compile`` — run the proposed pipeline and print the Figure 6 decision
  trail plus the transformed assembly;
* ``run``     — simulate a program under one prediction scheme and print
  the timing counters;
* ``verify``  — IR-verify and differentially check the baseline and
  proposed compiles of a benchmark (or ``all``) against the original
  program: structural invariants plus architectural equivalence.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import compile_baseline, compile_proposed
from .eval import (
    format_improvements, format_table1, format_table2, format_table3,
    format_table4, run_suite, suite_failures,
)
from .isa import format_program, parse
from .isa.program import Program
from .profilefb import ProfileDB
from .sim import FunctionalSim, TimingSim, r10k_config
from .workloads import BENCHMARKS


def _load_program(name: str, scale: float) -> Program:
    if name in BENCHMARKS:
        from .workloads import benchmark_programs

        return benchmark_programs(scale)[name]
    path = Path(name)
    if path.exists():
        return parse(path.read_text(), name=path.stem)
    raise SystemExit(
        f"unknown program {name!r}: not a benchmark "
        f"({', '.join(sorted(BENCHMARKS))}) and not a file")


def cmd_tables(args: argparse.Namespace) -> int:
    try:
        runs = run_suite(scale=args.scale, strict=args.strict,
                         progress=lambda b: print(f"running {b} ...",
                                                  file=sys.stderr))
    except Exception as exc:  # noqa: BLE001 - --strict fail-fast exit
        if args.strict:
            print(f"FATAL ({type(exc).__name__}): {exc}", file=sys.stderr)
            return 2
        raise
    for text in (format_table1(runs), "", format_table2(), "",
                 format_table3(runs), "", format_table4(runs), "",
                 format_improvements(runs)):
        print(text)
    failed = suite_failures(runs)
    for cell in failed:
        print(f"warning: {cell.benchmark}/{cell.scheme} failed: "
              f"{cell.failure}", file=sys.stderr)
    if failed and args.strict:
        return 2
    if args.report:
        from .eval import write_report

        path = write_report(runs, args.report,
                            title=f"Suite results (scale {args.scale})")
        print(f"markdown report written to {path}", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    prog = _load_program(args.program, args.scale)
    db = ProfileDB.from_run(prog)
    print(db.summary())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    prog = _load_program(args.program, args.scale)
    result = compile_proposed(prog)
    print(result.summary())
    if args.emit:
        print()
        print(format_program(result.program))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .robust import check_equivalence, verify_program

    names = sorted(BENCHMARKS) if args.program == "all" else [args.program]
    failed = 0
    for name in names:
        prog = _load_program(name, args.scale)
        for tag, result in (("baseline", compile_baseline(prog)),
                            ("proposed", compile_proposed(prog))):
            violations = verify_program(result.program)
            diff = check_equivalence(prog, result.program,
                                     max_steps=args.max_steps)
            ok = not violations and bool(diff)
            print(f"{name:<12} {tag:<9} "
                  f"{'OK' if ok else 'FAIL':<5} "
                  f"invariants={'clean' if not violations else 'BROKEN'} "
                  f"equivalence={'proved' if diff else 'FAILED'} "
                  f"({diff.original_steps} vs {diff.transformed_steps} steps)")
            for v in violations[:5]:
                print(f"    {v}")
            if not diff:
                print(f"    {diff.reason}")
            if result.fallback is not None or any(
                    f.kind != "skip" for f in result.failures):
                print(f"    note: compile degraded "
                      f"(fallback={result.fallback})")
                for f in result.failures:
                    print(f"    {f}")
            if not ok:
                failed += 1
    print(f"{'verify: all clean' if not failed else f'verify: {failed} FAILED'}")
    return 1 if failed else 0


def cmd_run(args: argparse.Namespace) -> int:
    prog = _load_program(args.program, args.scale)
    if args.proposed:
        prog = compile_proposed(prog).program
    elif not args.raw:
        prog = compile_baseline(prog).program
    fsim = FunctionalSim(prog, record_outcomes=False)
    stats = TimingSim(r10k_config(args.predictor)).run(fsim.trace())
    print(f"program    : {prog.name}")
    print(f"predictor  : {args.predictor}")
    print(stats.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Srinivas & Nicolau (IPPS 1998) reproduction toolkit")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate Tables 1-4")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor (default 1.0)")
    p.add_argument("--report", metavar="FILE",
                   help="also write a markdown report to FILE")
    p.add_argument("--strict", action="store_true",
                   help="fail fast: abort (exit nonzero) on the first "
                        "failed benchmark/scheme cell instead of rendering "
                        "FAIL cells")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("profile", help="print a program's feedback metrics")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compile", help="run the proposed pipeline")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--emit", action="store_true",
                   help="also print the transformed assembly")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "verify",
        help="IR-verify + differentially check compiled benchmarks")
    p.add_argument("program", help="benchmark name, .s file, or 'all'")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--max-steps", type=int, default=20_000_000,
                   help="step budget for the reference run")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("run", help="simulate a program")
    p.add_argument("program", help="benchmark name or .s file")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--predictor", default="twobit",
                   choices=["twobit", "twolevel", "perfect", "static-taken"])
    p.add_argument("--proposed", action="store_true",
                   help="compile with the proposed pipeline first")
    p.add_argument("--raw", action="store_true",
                   help="skip baseline local scheduling")
    p.set_defaults(func=cmd_run)

    args = ap.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output truncated by a pipe reader (e.g. `| head`); not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
