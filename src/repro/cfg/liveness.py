"""Backward-dataflow liveness analysis.

Liveness drives the software-renaming decision in the speculation pass
(paper Section 1 / Figure 1): an instruction speculated above a branch must
have its destination renamed iff that destination is *live* on the path not
being speculated from.

Guarded instructions and conditional moves are treated as partial writes:
they use but do not kill their destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import CFG


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    live_in: dict[int, set[str]] = field(default_factory=dict)
    live_out: dict[int, set[str]] = field(default_factory=dict)


def liveness(cfg: CFG, live_at_exit: set[str] | None = None) -> LivenessInfo:
    """Compute live-in/live-out sets for every block.

    ``live_at_exit`` seeds the live-out of exit blocks (e.g. return-value
    registers); defaults to empty.
    """
    info = LivenessInfo()
    gen: dict[int, set[str]] = {}
    kill: dict[int, set[str]] = {}
    indirect_exits: set[int] = set()
    all_used: set[str] = set()
    for bb in cfg.blocks:
        gen[bb.bid] = bb.uses_before_def()
        kill[bb.bid] = bb.kills()
        info.live_in[bb.bid] = set()
        info.live_out[bb.bid] = set()
        for ins in bb.instructions:
            all_used.update(ins.registers())
        term = bb.terminator
        if term is not None and (term.op in ("jr", "jalr")
                                 or term.info.is_call):
            # Indirect transfer (computed jump / return) or a call: the
            # code reached next is not visible through CFG successors
            # (callee bodies are intra-procedurally unreachable), so
            # conservatively treat every register the function mentions as
            # live across the transfer.
            indirect_exits.add(bb.bid)

    exit_live = set(live_at_exit or ())
    # Iterate to fixpoint in postorder (backward problem).
    order = list(reversed(cfg.reverse_postorder()))
    changed = True
    while changed:
        changed = False
        for bid in order:
            succs = cfg.succs(bid)
            out: set[str] = set(exit_live) if not succs else set()
            if bid in indirect_exits:
                out |= all_used
            for s in succs:
                out |= info.live_in[s]
            new_in = gen[bid] | (out - kill[bid])
            if out != info.live_out[bid] or new_in != info.live_in[bid]:
                info.live_out[bid] = out
                info.live_in[bid] = new_in
                changed = True
    return info


def live_at_block_entry(cfg: CFG, bid: int,
                        live_at_exit: set[str] | None = None) -> set[str]:
    """Registers live on entry to block *bid*."""
    return liveness(cfg, live_at_exit).live_in[bid]


def live_after_index(cfg: CFG, bid: int, index: int,
                     info: LivenessInfo | None = None,
                     live_at_exit: set[str] | None = None) -> set[str]:
    """Registers live immediately *after* instruction ``index`` of block
    *bid* (i.e. before index+1).

    Walks backward from the block's live-out through the tail of the block.
    """
    if info is None:
        info = liveness(cfg, live_at_exit)
    bb = cfg.block(bid)
    live = set(info.live_out[bid])
    for ins in reversed(bb.instructions[index + 1:]):
        if not (ins.is_cmov or ins.is_guarded):
            live -= set(ins.defs())
        live |= set(ins.uses())
    return live
