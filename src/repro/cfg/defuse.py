"""Def-use information within basic blocks.

The transforms (forward substitution, copy propagation, dead-code
elimination) are intentionally local — matching the paper's peephole framing
("coupled with other optimizations especially peephole optimizations like
forward substitution, redundant load-store removal", Section 1) — so this
module provides intra-block def-use chains plus a conservative summary of
cross-block liveness from :mod:`repro.cfg.liveness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction
from .basic_block import BasicBlock


@dataclass
class DefUse:
    """Intra-block def-use chains.

    ``uses_of[i]`` — indices of instructions using the value defined by
    instruction *i* (up to the next kill of that register).
    ``def_of_use[(i, reg)]`` — index of the in-block instruction defining the
    value instruction *i* reads from *reg*, or -1 if live-in.
    """

    uses_of: dict[int, list[int]] = field(default_factory=dict)
    def_of_use: dict[tuple[int, str], int] = field(default_factory=dict)
    last_def: dict[str, int] = field(default_factory=dict)


def analyze_block(bb: BasicBlock) -> DefUse:
    """Build def-use chains for one basic block."""
    du = DefUse()
    current_def: dict[str, int] = {}
    for i, ins in enumerate(bb.instructions):
        du.uses_of[i] = []
        for r in ins.uses():
            d = current_def.get(r, -1)
            du.def_of_use[(i, r)] = d
            if d >= 0 and (not du.uses_of[d] or du.uses_of[d][-1] != i):
                du.uses_of[d].append(i)
        # Partial writes (guarded / cmov) merge with the old value: they do
        # not start a fresh def for forward-substitution purposes.
        if ins.is_cmov or ins.is_guarded:
            for r in ins.defs():
                current_def.pop(r, None)
        else:
            for r in ins.defs():
                current_def[r] = i
    du.last_def = current_def
    return du


def is_redefined_between(bb: BasicBlock, reg: str, start: int, end: int) -> bool:
    """True if *reg* is written by any instruction in ``(start, end)``
    (exclusive bounds), counting partial writes."""
    for ins in bb.instructions[start + 1:end]:
        if reg in ins.defs():
            return True
    return False


def is_used_between(bb: BasicBlock, reg: str, start: int, end: int) -> bool:
    """True if *reg* is read by any instruction in ``(start, end)``."""
    for ins in bb.instructions[start + 1:end]:
        if reg in ins.uses():
            return True
    return False


def instructions_reading(bb: BasicBlock, reg: str) -> list[int]:
    """Indices of instructions in *bb* that read *reg*."""
    return [i for i, ins in enumerate(bb.instructions) if reg in ins.uses()]


def instructions_writing(bb: BasicBlock, reg: str) -> list[int]:
    """Indices of instructions in *bb* that write *reg*."""
    return [i for i, ins in enumerate(bb.instructions) if reg in ins.defs()]


def single_use(bb: BasicBlock, def_index: int) -> int | None:
    """If the value defined at *def_index* has exactly one in-block use and
    is killed before block exit, return that use's index; else None."""
    du = analyze_block(bb)
    uses = du.uses_of.get(def_index, [])
    ins = bb.instructions[def_index]
    defs = ins.defs()
    if len(uses) != 1 or not defs:
        return None
    reg = defs[0]
    # Killed before exit?
    if du.last_def.get(reg) == def_index:
        return None  # value escapes the block
    return uses[0]
