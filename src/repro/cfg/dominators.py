"""Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

Used by loop detection (back edges target dominators) and by the region
scheduler to reason about speculation safety.
"""

from __future__ import annotations

from typing import Optional

from .graph import CFG


class Dominators:
    """Immediate-dominator tree for a CFG.

    Unreachable blocks have no idom and dominate nothing.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.idom: dict[int, Optional[int]] = {}
        self._order_index: dict[int, int] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        if not cfg.blocks:
            return
        rpo = [b for b in cfg.reverse_postorder() if b in cfg.reachable()]
        self._order_index = {b: i for i, b in enumerate(rpo)}
        entry = cfg.entry.bid
        idom: dict[int, Optional[int]] = {b: None for b in rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == entry:
                    continue
                preds = [p for p in cfg.preds(b) if idom.get(p) is not None]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = self._intersect(idom, new, p)
                if idom[b] != new:
                    idom[b] = new
                    changed = True
        idom[entry] = None  # entry has no immediate dominator
        self.idom = idom

    def _intersect(self, idom: dict[int, Optional[int]], a: int, b: int) -> int:
        oi = self._order_index
        while a != b:
            while oi[a] > oi[b]:
                a = idom[a]  # type: ignore[assignment]
            while oi[b] > oi[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def dominates(self, a: int, b: int) -> bool:
        """True if block *a* dominates block *b* (reflexive)."""
        if a == b:
            return True
        x: Optional[int] = b
        while x is not None:
            x = self.idom.get(x)
            if x == a:
                return True
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, b: int) -> list[int]:
        """All dominators of *b*, from *b* up to the entry."""
        out = [b]
        x = self.idom.get(b)
        while x is not None:
            out.append(x)
            x = self.idom.get(x)
        return out

    def dom_tree_children(self) -> dict[int, list[int]]:
        children: dict[int, list[int]] = {b: [] for b in self.idom}
        for b, d in self.idom.items():
            if d is not None:
                children[d].append(b)
        for v in children.values():
            v.sort()
        return children


class PostDominators:
    """Post-dominators, computed on the reversed CFG.

    Exits are blocks without successors; a virtual exit unifies them.  Used
    to decide "control-equivalent" code motion (non-speculative global
    motion) in the region scheduler.
    """

    VIRTUAL_EXIT = -1

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.ipdom: dict[int, Optional[int]] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        if not cfg.blocks:
            return
        exits = [bb.bid for bb in cfg.blocks if not cfg.succs(bb.bid)]
        if not exits:
            # Irreducible endless loop: every block post-dominated only by itself.
            self.ipdom = {bb.bid: None for bb in cfg.blocks}
            return
        # Reverse graph with virtual exit.
        rsucc: dict[int, list[int]] = {bb.bid: list(cfg.preds(bb.bid))
                                       for bb in cfg.blocks}
        rsucc[self.VIRTUAL_EXIT] = list(exits)
        rpred: dict[int, list[int]] = {bb.bid: list(cfg.succs(bb.bid))
                                       for bb in cfg.blocks}
        for e in exits:
            rpred[e] = rpred[e] + [self.VIRTUAL_EXIT]
        rpred[self.VIRTUAL_EXIT] = []

        # Postorder from virtual exit over the reverse graph.
        seen: set[int] = set()
        post: list[int] = []

        def dfs(root: int) -> None:
            stack = [(root, iter(rsucc.get(root, ())))]
            seen.add(root)
            while stack:
                b, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(rsucc.get(s, ()))))
                        advanced = True
                        break
                if not advanced:
                    post.append(b)
                    stack.pop()

        dfs(self.VIRTUAL_EXIT)
        rpo = list(reversed(post))
        oi = {b: i for i, b in enumerate(rpo)}
        ipdom: dict[int, Optional[int]] = {b: None for b in rpo}
        ipdom[self.VIRTUAL_EXIT] = self.VIRTUAL_EXIT

        def intersect(a: int, b: int) -> int:
            while a != b:
                while oi[a] > oi[b]:
                    a = ipdom[a]  # type: ignore[assignment]
                while oi[b] > oi[a]:
                    b = ipdom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == self.VIRTUAL_EXIT:
                    continue
                preds = [p for p in rpred.get(b, ()) if ipdom.get(p) is not None]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if ipdom[b] != new:
                    ipdom[b] = new
                    changed = True
        ipdom[self.VIRTUAL_EXIT] = None
        self.ipdom = ipdom

    def post_dominates(self, a: int, b: int) -> bool:
        """True if *a* post-dominates *b* (reflexive)."""
        if a == b:
            return True
        x: Optional[int] = b
        while x is not None:
            x = self.ipdom.get(x)
            if x == a:
                return True
        return False
