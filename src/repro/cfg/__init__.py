"""Control-flow substrate: basic blocks, CFG, dominators, loops, liveness."""

from .basic_block import BasicBlock
from .graph import CFG, Edge, build_cfg
from .dominators import Dominators, PostDominators
from .loops import Loop, LoopBranch, LoopForest
from .liveness import LivenessInfo, live_after_index, live_at_block_entry, liveness
from .defuse import (
    DefUse, analyze_block, instructions_reading, instructions_writing,
    is_redefined_between, is_used_between, single_use,
)

__all__ = [
    "BasicBlock", "CFG", "Edge", "build_cfg",
    "Dominators", "PostDominators",
    "Loop", "LoopBranch", "LoopForest",
    "LivenessInfo", "live_after_index", "live_at_block_entry", "liveness",
    "DefUse", "analyze_block", "instructions_reading", "instructions_writing",
    "is_redefined_between", "is_used_between", "single_use",
]
