"""Basic blocks: maximal straight-line instruction sequences.

A block's instructions are mutable — the schedulers and transforms edit them
in place — and the owning :class:`~repro.cfg.graph.CFG` re-linearizes blocks
back into a :class:`~repro.isa.program.Program` when asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..isa.instruction import Instruction


@dataclass
class BasicBlock:
    """One basic block.

    Attributes:
        bid: block id, unique within its CFG (entry is 0 by convention).
        label: primary label naming the block (used when re-linearizing);
            blocks that were fall-through targets get synthetic labels only
            if something ends up branching to them.
        instructions: the block body.  At most the final instruction may be
            a control transfer; guarded non-control instructions may appear
            anywhere.
        freq: execution frequency (visits), filled in from profile data or
            by analytic annotation (paper Figure 2 style).
    """

    bid: int
    label: Optional[str] = None
    instructions: list[Instruction] = field(default_factory=list)
    freq: float = 0.0

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final control-transfer instruction, if any."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        t = self.terminator
        return self.instructions[:-1] if t is not None else list(self.instructions)

    @property
    def falls_through(self) -> bool:
        """True when control may continue to the next block in layout order."""
        t = self.terminator
        if t is None:
            return True
        if t.is_branch:  # conditional: not-taken path falls through
            return True
        return False  # jumps and halt do not fall through

    def defs(self) -> set[str]:
        out: set[str] = set()
        for ins in self.instructions:
            out.update(ins.defs())
        return out

    def uses_before_def(self) -> set[str]:
        """Registers read before any write in this block (upward-exposed)."""
        defined: set[str] = set()
        exposed: set[str] = set()
        for ins in self.instructions:
            for r in ins.uses():
                if r not in defined:
                    exposed.add(r)
            # A guarded or conditional-move write may not happen: the old
            # value can flow through, so it does NOT kill the register.
            if ins.is_cmov or ins.is_guarded:
                continue
            defined.update(ins.defs())
        return exposed

    def kills(self) -> set[str]:
        """Registers unconditionally written by this block."""
        out: set[str] = set()
        for ins in self.instructions:
            if ins.is_cmov or ins.is_guarded:
                continue
            out.update(ins.defs())
        return out

    def __repr__(self) -> str:
        name = self.label or f"bb{self.bid}"
        return f"<BB{self.bid} {name} n={len(self.instructions)} freq={self.freq:g}>"
