"""Control-flow graph construction and re-linearization.

Call handling: ``jal``/``jalr`` end a basic block (they are scheduling
barriers) but have a single fall-through successor — the CFG is
intra-procedural, like the paper's region scheduler.  ``jr`` (return /
computed jump) and ``halt`` are exits with no static successors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..isa.instruction import Instruction, make
from ..isa.program import Program
from .basic_block import BasicBlock


@dataclass
class Edge:
    """A CFG edge with a kind and an execution frequency.

    kind is ``"taken"`` (branch taken), ``"fall"`` (fall-through or
    not-taken), or ``"jump"`` (unconditional transfer).
    """

    src: int
    dst: int
    kind: str
    freq: float = 0.0

    def __repr__(self) -> str:
        return f"<{self.src}->{self.dst} {self.kind} freq={self.freq:g}>"


class CFG:
    """A control-flow graph over :class:`BasicBlock` objects.

    Blocks are kept in *layout order* (the order they will be emitted in by
    :meth:`to_program`).  ``blocks[0]`` is the entry block.
    """

    def __init__(self, name: str = "cfg"):
        self.name = name
        self.blocks: list[BasicBlock] = []
        self._by_id: dict[int, BasicBlock] = {}
        self.succ_edges: dict[int, list[Edge]] = {}
        self.pred_edges: dict[int, list[Edge]] = {}
        #: carried over from the source Program for re-linearization
        self.data_symbols: dict[str, int] = {}
        self.data_image: dict[int, int] = {}
        self.code_refs: dict[int, str] = {}

    # -- container ----------------------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, bid: int) -> BasicBlock:
        return self._by_id[bid]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def new_block(self, label: Optional[str] = None,
                  after: Optional[int] = None) -> BasicBlock:
        """Create an empty block; *after* places it in layout order."""
        bid = (max(self._by_id) + 1) if self._by_id else 0
        bb = BasicBlock(bid=bid, label=label)
        if after is None:
            self.blocks.append(bb)
        else:
            pos = self.layout_index(after) + 1
            self.blocks.insert(pos, bb)
        self._by_id[bid] = bb
        self.succ_edges[bid] = []
        self.pred_edges[bid] = []
        return bb

    def layout_index(self, bid: int) -> int:
        for i, bb in enumerate(self.blocks):
            if bb.bid == bid:
                return i
        raise KeyError(bid)

    def layout_next(self, bid: int) -> Optional[BasicBlock]:
        i = self.layout_index(bid)
        return self.blocks[i + 1] if i + 1 < len(self.blocks) else None

    # -- edges --------------------------------------------------------------------

    def add_edge(self, src: int, dst: int, kind: str, freq: float = 0.0) -> Edge:
        e = Edge(src, dst, kind, freq)
        self.succ_edges[src].append(e)
        self.pred_edges[dst].append(e)
        return e

    def remove_edges_from(self, src: int) -> None:
        for e in self.succ_edges[src]:
            self.pred_edges[e.dst].remove(e)
        self.succ_edges[src] = []

    def succs(self, bid: int) -> list[int]:
        return [e.dst for e in self.succ_edges[bid]]

    def preds(self, bid: int) -> list[int]:
        return [e.src for e in self.pred_edges[bid]]

    def edge(self, src: int, dst: int) -> Edge:
        for e in self.succ_edges[src]:
            if e.dst == dst:
                return e
        raise KeyError(f"no edge {src}->{dst}")

    def taken_edge(self, bid: int) -> Optional[Edge]:
        for e in self.succ_edges[bid]:
            if e.kind == "taken":
                return e
        return None

    def fall_edge(self, bid: int) -> Optional[Edge]:
        for e in self.succ_edges[bid]:
            if e.kind == "fall":
                return e
        return None

    # -- traversal -----------------------------------------------------------------

    def reverse_postorder(self) -> list[int]:
        """Block ids in reverse postorder from the entry (forward dataflow
        order); unreachable blocks are appended in layout order."""
        seen: set[int] = set()
        post: list[int] = []

        def dfs(bid: int) -> None:
            stack = [(bid, iter(self.succs(bid)))]
            seen.add(bid)
            while stack:
                b, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.succs(s))))
                        advanced = True
                        break
                if not advanced:
                    post.append(b)
                    stack.pop()

        if self.blocks:
            dfs(self.entry.bid)
        order = list(reversed(post))
        for bb in self.blocks:
            if bb.bid not in seen:
                order.append(bb.bid)
        return order

    def reachable(self) -> set[int]:
        seen: set[int] = set()
        work = [self.entry.bid] if self.blocks else []
        while work:
            b = work.pop()
            if b in seen:
                continue
            seen.add(b)
            work.extend(self.succs(b))
        return seen

    # -- construction from / linearization to a Program ------------------------------

    @classmethod
    def from_program(cls, prog: Program) -> "CFG":
        """Build the CFG of *prog*.

        Leaders: instruction 0, every branch/jump target, every instruction
        following a control transfer or call.
        """
        cfg = cls(name=prog.name)
        cfg.data_symbols = dict(prog.data_symbols)
        cfg.data_image = dict(prog.data_image)
        cfg.code_refs = dict(prog.code_refs)
        n = len(prog.instructions)
        if n == 0:
            return cfg
        targets = prog.branch_targets()
        leaders = {0}
        for i, ins in enumerate(prog.instructions):
            if ins.target is not None and not ins.is_store:
                leaders.add(targets[i])
            if ins.is_control or ins.info.is_call:
                if i + 1 < n:
                    leaders.add(i + 1)
        # Labels pointing one-past-end are modeled as an implicit exit label.
        order = sorted(leaders)
        index_to_block: dict[int, BasicBlock] = {}
        label_by_index: dict[int, str] = {}
        for name, idx in sorted(prog.labels.items()):
            if idx < n:
                label_by_index.setdefault(idx, name)
        for start in order:
            bb = cfg.new_block(label=label_by_index.get(start))
            index_to_block[start] = bb
        # Fill bodies.
        bounds = order + [n]
        for k, start in enumerate(order):
            end = bounds[k + 1]
            bb = index_to_block[start]
            bb.instructions = [prog.instructions[i] for i in range(start, end)]
        # Edges.
        for k, start in enumerate(order):
            end = bounds[k + 1]
            bb = index_to_block[start]
            last = prog.instructions[end - 1]
            next_bb = index_to_block.get(end)
            if last.is_branch:
                cfg.add_edge(bb.bid, index_to_block[targets[end - 1]].bid, "taken")
                if next_bb is not None:
                    cfg.add_edge(bb.bid, next_bb.bid, "fall")
            elif last.is_jump and last.target is not None:
                if last.info.is_call:
                    if next_bb is not None:
                        cfg.add_edge(bb.bid, next_bb.bid, "fall")
                else:
                    cfg.add_edge(bb.bid, index_to_block[targets[end - 1]].bid,
                                 "jump")
            elif last.op == "jr" and prog.code_refs:
                # The compiler laid out the jump table itself, so the
                # possible targets of a register-relative jump ARE known:
                # connect them (kind "indirect") so interpreter-style
                # dispatch loops are visible to loop detection and the
                # Figure 6 algorithm.
                seen_targets = set()
                for label in prog.code_refs.values():
                    t = prog.target_index(label)
                    if t in index_to_block and t not in seen_targets:
                        seen_targets.add(t)
                        cfg.add_edge(bb.bid, index_to_block[t].bid, "indirect")
            elif last.is_halt or last.op == "jr":
                pass  # exit
            elif last.op == "jalr":
                if next_bb is not None:
                    cfg.add_edge(bb.bid, next_bb.bid, "fall")
            else:
                if next_bb is not None:
                    cfg.add_edge(bb.bid, next_bb.bid, "fall")
        return cfg

    def to_program(self, name: Optional[str] = None) -> Program:
        """Re-linearize the CFG into a Program in layout order.

        Every block that is the destination of a taken/jump edge gets a
        label; fall-through edges whose destination is not the next block in
        layout get an explicit jump appended.
        """
        prog = Program(name=name or self.name)
        prog.data_symbols = dict(self.data_symbols)
        prog.data_image = dict(self.data_image)
        prog.code_refs = dict(self.code_refs)

        # Assign labels.
        label_of: dict[int, str] = {}
        used: set[str] = set()
        for bb in self.blocks:
            if bb.label:
                label_of[bb.bid] = bb.label
                used.add(bb.label)
        counter = 0
        for bb in self.blocks:
            if bb.bid not in label_of:
                while f".bb{counter}" in used:
                    counter += 1
                label_of[bb.bid] = f".bb{counter}"
                used.add(f".bb{counter}")
                counter += 1

        for i, bb in enumerate(self.blocks):
            prog.add_label(label_of[bb.bid], len(prog.instructions))
            body = list(bb.instructions)
            term = bb.terminator
            # Retarget the terminator at the taken/jump successor's label.
            if term is not None and term.is_branch:
                te = self.taken_edge(bb.bid)
                if te is None:
                    raise ValueError(f"block {bb.bid}: branch without taken edge")
                body[-1] = term.clone(target=label_of[te.dst])
            elif term is not None and term.is_jump and term.target is not None \
                    and not term.info.is_call:
                e = self.succ_edges[bb.bid][0] if self.succ_edges[bb.bid] else None
                if e is not None:
                    body[-1] = term.clone(target=label_of[e.dst])
            prog.extend(body)
            # Materialize fall-through: a block continuing into a
            # non-adjacent successor needs an explicit jump.
            falls_to: Optional[int] = None
            if term is None or term.is_branch or term.info.is_call:
                fe = self.fall_edge(bb.bid)
                if fe is not None:
                    falls_to = fe.dst
            if falls_to is not None:
                nxt = self.blocks[i + 1].bid if i + 1 < len(self.blocks) else None
                if nxt != falls_to:
                    prog.append(make("j", label_of[falls_to]))
        prog.validate()
        return prog

    # -- frequency annotation ---------------------------------------------------------

    def scale_frequencies(self, block_freqs: dict[int, float],
                          edge_freqs: Optional[dict[tuple[int, int], float]] = None,
                          ) -> None:
        """Attach execution frequencies to blocks and edges."""
        for bb in self.blocks:
            bb.freq = block_freqs.get(bb.bid, 0.0)
        if edge_freqs:
            for bid, edges in self.succ_edges.items():
                for e in edges:
                    e.freq = edge_freqs.get((e.src, e.dst), e.freq)

    def check(self) -> None:
        """Structural sanity checks; raises AssertionError on violation."""
        for bb in self.blocks:
            for k, ins in enumerate(bb.instructions):
                if ins.is_control and not ins.info.is_call \
                        and k != len(bb.instructions) - 1:
                    raise AssertionError(
                        f"block {bb.bid}: control instruction {ins.op} "
                        f"not at block end")
            term = bb.terminator
            kinds = sorted(e.kind for e in self.succ_edges[bb.bid])
            if term is not None and term.is_branch:
                if "taken" not in kinds:
                    raise AssertionError(f"block {bb.bid}: branch lacks taken edge")
            if term is not None and term.is_halt and kinds:
                raise AssertionError(f"block {bb.bid}: halt with successors")


def build_cfg(source: Program | str) -> CFG:
    """Convenience: build a CFG from a Program or assembly text."""
    if isinstance(source, str):
        from ..isa.parser import parse

        source = parse(source)
    return CFG.from_program(source)
