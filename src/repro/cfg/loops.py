"""Natural-loop detection and the loop nesting forest.

The paper's algorithm (Figure 6) starts with "for each procedure, detect all
loops and create a loop-list L; for each branch in L ...".  This module
provides that loop list: back edges (edges whose destination dominates their
source), the natural loop body of each back edge, headers, exits, and the
classification of each branch inside a loop as *forward* (target later in
layout) or *backward* (the loop-closing branch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.instruction import Instruction
from .dominators import Dominators
from .graph import CFG


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: block id of the loop header.
        body: set of block ids in the loop (header included).
        back_edges: (tail, header) pairs that close this loop.
        exits: (src, dst) edges leaving the loop.
        parent: enclosing loop, or None for a top-level loop.
    """

    header: int
    body: set[int] = field(default_factory=set)
    back_edges: list[tuple[int, int]] = field(default_factory=list)
    exits: list[tuple[int, int]] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, p = 1, self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def contains(self, bid: int) -> bool:
        return bid in self.body

    def __repr__(self) -> str:
        return (f"<Loop header={self.header} blocks={sorted(self.body)} "
                f"depth={self.depth}>")


@dataclass
class LoopBranch:
    """A conditional branch inside a loop, as the paper's algorithm sees it.

    direction is ``"forward"`` when the branch target lies later in layout
    order (an if/else or exit test) and ``"backward"`` when it targets an
    earlier block (typically the loop-closing branch).
    """

    loop: Loop
    block: int
    instr: Instruction
    direction: str  # "forward" | "backward"
    is_exit: bool   # does the taken edge leave the loop?


class LoopForest:
    """All natural loops of a CFG, nested."""

    def __init__(self, cfg: CFG, doms: Optional[Dominators] = None):
        self.cfg = cfg
        self.doms = doms or Dominators(cfg)
        self.loops: list[Loop] = []
        self._find_loops()
        self._nest()

    def _find_loops(self) -> None:
        cfg = self.cfg
        reachable = cfg.reachable()
        by_header: dict[int, Loop] = {}
        for bb in cfg.blocks:
            if bb.bid not in reachable:
                continue
            for succ in cfg.succs(bb.bid):
                if self.doms.dominates(succ, bb.bid):
                    loop = by_header.setdefault(succ, Loop(header=succ))
                    loop.back_edges.append((bb.bid, succ))
                    self._collect_body(loop, bb.bid)
        for loop in by_header.values():
            loop.body.add(loop.header)
            for bid in sorted(loop.body):
                for succ in cfg.succs(bid):
                    if succ not in loop.body:
                        loop.exits.append((bid, succ))
            self.loops.append(loop)
        self.loops.sort(key=lambda l: (len(l.body), l.header))

    def _collect_body(self, loop: Loop, tail: int) -> None:
        # Standard natural-loop body: header + all nodes reaching the tail
        # without passing through the header.
        if tail == loop.header:
            return
        stack = [tail]
        while stack:
            b = stack.pop()
            if b in loop.body or b == loop.header:
                continue
            loop.body.add(b)
            stack.extend(self.cfg.preds(b))

    def _nest(self) -> None:
        # Smallest-first order means the first strictly-containing loop seen
        # is the immediate parent.
        for i, inner in enumerate(self.loops):
            for outer in self.loops[i + 1:]:
                if inner.header in outer.body and inner is not outer \
                        and inner.body <= outer.body:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    def innermost(self) -> list[Loop]:
        return [l for l in self.loops if not l.children]

    def loop_of_block(self, bid: int) -> Optional[Loop]:
        """The innermost loop containing *bid*, or None."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if bid in loop.body and (best is None or len(loop.body) < len(best.body)):
                best = loop
        return best

    def branches(self, loop: Loop) -> list[LoopBranch]:
        """All conditional branches in *loop*, classified per Figure 6."""
        cfg = self.cfg
        layout = {bb.bid: i for i, bb in enumerate(cfg.blocks)}
        out: list[LoopBranch] = []
        for bid in sorted(loop.body, key=layout.get):
            bb = cfg.block(bid)
            term = bb.terminator
            if term is None or not term.is_branch:
                continue
            te = cfg.taken_edge(bid)
            if te is None:
                continue
            direction = "backward" if layout[te.dst] <= layout[bid] else "forward"
            out.append(LoopBranch(
                loop=loop, block=bid, instr=term, direction=direction,
                is_exit=te.dst not in loop.body))
        return out
