"""The unified experiment front door: :class:`Session` + :class:`RunOptions`.

After PRs 1–3 the repository had four overlapping ways to run an
experiment (``eval.run_benchmark``, ``eval.run_suite``,
``engine.run_sweep``, ``qa.run_campaign``), each with slightly different
signatures for the same knobs.  PR 4 consolidated them behind
:class:`Session`; this module now goes one step further and bundles every
*execution* knob — worker count, artifact cache, execution backend,
observability sinks, remote routing — into one frozen
:class:`RunOptions` value held once per session.  Every experiment
method (``run_benchmark`` / ``run_suite`` / ``sweep`` / ``fuzz`` /
``tune``) resolves its knobs through it instead of re-declaring the same
parameter list, with three precedence levels::

    session default  <  per-call options=RunOptions(...)  <  explicit kwarg

Usage::

    from repro.api import RunOptions, Session

    opts = RunOptions(jobs=4, cache=True, trace="trace.jsonl")
    with Session(options=opts) as s:
        runs = s.run_suite(scale=0.3)
        campaign = s.fuzz(budget=50, seed=0)
        # one-off override without touching the session default:
        cold = s.run_suite(scale=0.3, options=replace(opts, cache=None))

Every pre-RunOptions keyword keeps working (``Session(jobs=4,
cache=True)`` maps onto the options value, byte-identically), and the
CLI builds its per-invocation options through one shared
:func:`options_from_args` helper so ``--jobs`` / ``--no-cache`` /
``--backend`` / ``--trace`` behave identically across every subcommand.

A session can also point at a running evaluation service
(``repro serve``) instead of the local pool — ``RunOptions(remote="http://
host:8732", tenant="alice")`` routes ``run_suite`` / ``sweep`` /
``fuzz`` / ``tune`` through :mod:`repro.serve` with byte-identical
results.

Entering the session installs the JSONL tracer (when ``trace`` is set)
and enables the metrics registry (when ``metrics=True``); exiting
restores both, so observability state never leaks across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields, replace as dc_replace
from pathlib import Path
from typing import Callable, Optional, Union

from ._deprecation import resolve_impl
from .core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from .engine.suite import CacheLike, coerce_cache
from .obs import metrics as _metrics
from .obs import trace as _trace

#: Sentinel distinguishing "keyword not passed" from an explicit value
#: (so a legacy kwarg can override ``options=`` only when actually given).
_UNSET = object()


@dataclass(frozen=True)
class RunOptions:
    """Every execution knob of an experiment run, as one frozen value.

    Passed to :class:`Session` (held as the session default) or to any
    experiment method (one-off override).  Being frozen, variants are
    derived with :func:`dataclasses.replace` — which is exactly how
    explicit per-call keywords are layered on top.

    ``cache`` accepts the same forms as before (None/False = off, True =
    the default store, a path, or an :class:`~repro.engine.ArtifactCache`
    instance); ``cache_dir`` names the directory used when ``cache`` is
    True (None = ``.repro-cache/`` or ``$REPRO_CACHE_DIR``).  ``backend``
    is the execution backend (``"reference"``/``"fast"``; None defers to
    ``$REPRO_BACKEND``).  ``remote``/``tenant`` route execution through a
    running ``repro serve`` instance.
    """

    jobs: int = 1
    cache: CacheLike = None
    cache_dir: Optional[Union[str, Path]] = None
    backend: Optional[str] = None
    trace: Optional[Union[str, Path]] = None
    metrics: bool = False
    remote: Optional[str] = None
    tenant: str = "default"
    max_steps: int = 50_000_000
    strict: bool = False
    timeout: Optional[float] = None

    def resolve_cache(self):
        """The options' artifact store (or None): ``cache`` coerced, with
        ``cache=True`` landing at ``cache_dir`` when one is set."""
        if self.cache is True and self.cache_dir is not None:
            from .engine import ArtifactCache

            return ArtifactCache(self.cache_dir)
        return coerce_cache(self.cache)

    def resolve_backend(self) -> str:
        """The options' execution backend with the env default applied."""
        from .fastsim.backend import resolve_backend

        return resolve_backend(self.backend)


#: RunOptions field names, for legacy-kwarg mapping and validation.
_OPTION_FIELDS = tuple(f.name for f in dc_fields(RunOptions))


def options_from_args(args) -> RunOptions:
    """Build :class:`RunOptions` from a CLI argparse namespace.

    The one shared translation of the engine flags (``--jobs``,
    ``--no-cache``, ``--cache-dir``, ``--backend``, ``--trace``,
    ``--remote``, ``--tenant``) every subcommand routes through, so the
    flags behave identically everywhere.  Flags a subcommand does not
    declare fall back to the option defaults (with the CLI-wide default
    of caching *on* unless ``--no-cache``).
    """
    return RunOptions(
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        backend=getattr(args, "backend", None),
        trace=getattr(args, "trace", None),
        metrics=getattr(args, "metrics", False),
        remote=getattr(args, "remote", None),
        tenant=getattr(args, "tenant", "default"),
        max_steps=getattr(args, "max_steps", RunOptions.max_steps),
        strict=getattr(args, "strict", False),
        timeout=getattr(args, "timeout", None),
    )


class Session:
    """One configured experiment context (see module docstring).

    Construction only records configuration; :meth:`start` (or entering
    the context manager) activates the observability sinks.  Running
    methods outside the context works too — they just run untraced
    unless a tracer is already installed.

    Execution knobs live on :attr:`options` (a :class:`RunOptions`);
    the legacy constructor keywords (``jobs=``, ``cache=``, ...) are
    mapped onto it and override an explicit ``options=`` value.
    ``trace_path=`` is the pre-RunOptions spelling of ``trace``.
    """

    def __init__(self,
                 heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                 config_overrides: Optional[dict] = None,
                 cache: CacheLike = _UNSET,
                 jobs: int = _UNSET,
                 max_steps: int = _UNSET,
                 strict: bool = _UNSET,
                 timeout: Optional[float] = _UNSET,
                 trace_path: Optional[Union[str, Path]] = _UNSET,
                 metrics: bool = _UNSET,
                 remote: Optional[str] = _UNSET,
                 tenant: str = _UNSET,
                 backend: Optional[str] = _UNSET,
                 options: Optional[RunOptions] = None):
        self.heur = heur
        self.config_overrides = dict(config_overrides or {})
        opts = options if options is not None else RunOptions()
        legacy = {"cache": cache, "jobs": jobs, "max_steps": max_steps,
                  "strict": strict, "timeout": timeout, "trace": trace_path,
                  "metrics": metrics, "remote": remote, "tenant": tenant,
                  "backend": backend}
        overrides = {k: v for k, v in legacy.items() if v is not _UNSET}
        if overrides:
            opts = dc_replace(opts, **overrides)
        # The session's backend is pinned at construction (environment
        # lookup happens once, here — not per experiment).
        opts = dc_replace(opts, backend=opts.resolve_backend())
        #: The session's default :class:`RunOptions`.
        self.options = opts
        # The cache store is coerced once so its hit/miss counters (and
        # identity, when an ArtifactCache instance was passed) persist
        # across the session's experiments.
        self._cache = opts.resolve_cache()
        self._tracer: Optional[_trace.Tracer] = None
        self._client = None

    # -- option plumbing ---------------------------------------------------

    def _resolve(self, options: Optional[RunOptions],
                 **explicit) -> RunOptions:
        """One experiment's effective options.

        Precedence: session default < per-call ``options=`` < explicit
        per-call keyword (``None`` means "not passed" for the keywords,
        which all have non-None session-level defaults).
        """
        opts = self.options if options is None else options
        overrides = {k: v for k, v in explicit.items() if v is not None}
        return dc_replace(opts, **overrides) if overrides else opts

    def _cache_of(self, opts: RunOptions):
        """*opts*' artifact store — the session's own coerced store
        whenever the cache knobs are untouched (preserving identity and
        counters), a freshly coerced one otherwise."""
        if opts.cache is self.options.cache \
                and opts.cache_dir == self.options.cache_dir:
            return self._cache
        return opts.resolve_cache()

    def _client_of(self, opts: RunOptions):
        """*opts*' :class:`~repro.serve.ServeClient` (None when local)."""
        if opts.remote is None:
            return None
        if opts.remote == self.options.remote \
                and opts.tenant == self.options.tenant:
            return self.client
        from .serve import ServeClient

        return ServeClient(opts.remote, tenant=opts.tenant)

    # -- legacy attribute surface (reads resolve through the options) ------

    @property
    def jobs(self) -> int:
        """Worker-process count (``options.jobs``)."""
        return self.options.jobs

    @property
    def cache(self):
        """The session's coerced artifact store (None when caching is off)."""
        return self._cache

    @property
    def max_steps(self) -> int:
        """Per-cell functional step budget (``options.max_steps``)."""
        return self.options.max_steps

    @property
    def strict(self) -> bool:
        """Fail-fast flag (``options.strict``)."""
        return self.options.strict

    @property
    def timeout(self) -> Optional[float]:
        """Per-cell wall-clock budget in seconds (``options.timeout``)."""
        return self.options.timeout

    @property
    def trace_path(self):
        """JSONL span-trace destination (``options.trace``)."""
        return self.options.trace

    @property
    def metrics(self) -> bool:
        """Whether the metrics registry is enabled (``options.metrics``)."""
        return self.options.metrics

    @property
    def remote(self) -> Optional[str]:
        """Base URL of the evaluation service (``options.remote``)."""
        return self.options.remote

    @property
    def tenant(self) -> str:
        """Tenant namespace on the remote service (``options.tenant``)."""
        return self.options.tenant

    @property
    def backend(self) -> str:
        """Execution backend of every experiment this session runs:
        "reference" or "fast" (:mod:`repro.fastsim`)."""
        return self.options.backend

    @property
    def client(self):
        """The session's :class:`~repro.serve.ServeClient` (remote only)."""
        if self.remote is None:
            return None
        if self._client is None:
            from .serve import ServeClient

            self._client = ServeClient(self.remote, tenant=self.tenant)
        return self._client

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Session":
        """Activate the observability sinks (idempotent)."""
        if self.trace_path is not None and self._tracer is None:
            self._tracer = _trace.Tracer(self.trace_path)
            _trace.install(self._tracer)
        if self.metrics:
            _metrics.metrics_enable()
        return self

    def close(self) -> None:
        """Deactivate and flush the observability sinks (idempotent)."""
        if self._tracer is not None:
            if _trace.active_tracer() is self._tracer:
                _trace.uninstall()
            self._tracer.close()
            self._tracer = None
        if self.metrics:
            _metrics.metrics_disable()

    def __enter__(self) -> "Session":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- experiments -------------------------------------------------------

    def run_benchmark(self, name: str, prog, *,
                      max_steps: Optional[int] = None,
                      strict: Optional[bool] = None,
                      options: Optional[RunOptions] = None):
        """Run every evaluation scheme on one program (serial, uncached)."""
        from .eval import runner as _runner

        opts = self._resolve(options, max_steps=max_steps, strict=strict)
        fn = resolve_impl(_runner.run_benchmark)
        backend = opts.resolve_backend()
        extra = {"backend": backend} if backend != "reference" else {}
        return fn(name, prog, heur=self.heur,
                  config_overrides=self.config_overrides or None,
                  max_steps=opts.max_steps, strict=opts.strict, **extra)

    def run_suite(self, scale: float = 1.0, *,
                  benchmarks: Optional[dict] = None,
                  progress: Optional[Callable[[str], None]] = None,
                  seed: Optional[int] = None,
                  max_steps: Optional[int] = None,
                  strict: Optional[bool] = None,
                  options: Optional[RunOptions] = None):
        """Run the full suite through the session's cache and pool.

        With ``remote=`` set (on the session or the per-call options),
        the suite routes through the evaluation service instead
        (byte-identical results; see
        :func:`repro.serve.client.remote_run_suite`).
        """
        opts = self._resolve(options, max_steps=max_steps, strict=strict)
        if opts.remote is not None:
            from .serve.client import remote_run_suite

            return remote_run_suite(
                self._client_of(opts), scale=scale, heur=self.heur,
                benchmarks=benchmarks,
                config_overrides=self.config_overrides or None,
                progress=progress, max_steps=opts.max_steps,
                timeout=opts.timeout, seed=seed,
                backend=opts.resolve_backend())
        from .engine import suite as _suite

        return _suite.run_suite(
            scale=scale, heur=self.heur, benchmarks=benchmarks,
            config_overrides=self.config_overrides or None,
            progress=progress, max_steps=opts.max_steps,
            strict=opts.strict, jobs=opts.jobs,
            cache=self._cache_of(opts), timeout=opts.timeout,
            seed=seed, backend=opts.resolve_backend())

    def sweep(self, spec, *,
              progress: Optional[Callable[[str], None]] = None,
              options: Optional[RunOptions] = None):
        """Evaluate a :class:`~repro.engine.sweep.SweepSpec` grid.

        With ``remote=`` set, every point's suite rides the service
        queue (overlapping points and tenants share executions).
        """
        opts = self._resolve(options)
        if opts.remote is not None:
            from .serve.client import remote_run_sweep

            return remote_run_sweep(self._client_of(opts), spec,
                                    progress=progress,
                                    timeout=opts.timeout,
                                    backend=opts.resolve_backend())
        from .engine import sweep as _sweep

        fn = resolve_impl(_sweep.run_sweep)
        backend = opts.resolve_backend()
        extra = {"backend": backend} if backend != "reference" else {}
        return fn(spec, jobs=opts.jobs, cache=self._cache_of(opts),
                  progress=progress, timeout=opts.timeout, **extra)

    def fuzz(self, cfg=None, *,
             progress: Optional[Callable[[str], None]] = None,
             options: Optional[RunOptions] = None, **kw):
        """Run a differential fuzzing campaign.

        Pass a full :class:`~repro.qa.campaign.CampaignConfig` as *cfg*,
        or keyword fields for one — the session supplies ``jobs`` and
        ``cache`` unless overridden.
        """
        from .qa import campaign as _campaign

        opts = self._resolve(options)
        if cfg is None:
            kw.setdefault("jobs", opts.jobs)
            kw.setdefault("cache", self._cache_of(opts))
            cfg = _campaign.CampaignConfig(**kw)
        executor = None
        if opts.remote is not None:
            from .serve.client import remote_fuzz_executor

            executor = remote_fuzz_executor(self._client_of(opts))
        fn = resolve_impl(_campaign.run_campaign)
        return fn(cfg, progress=progress, executor=executor)

    def tune(self, spec, *,
             progress: Optional[Callable[[str], None]] = None,
             options: Optional[RunOptions] = None):
        """Run a closed-loop heuristic search (see :mod:`repro.tune`).

        Candidates are evaluated as ordinary cached engine cells through
        the session's cache/pool — or, with ``remote=`` set, submitted
        to the evaluation service in per-round batches.  Returns a
        :class:`~repro.tune.TuneResult`.
        """
        from .tune import run_tune

        opts = self._resolve(options)
        return run_tune(spec, cache=self._cache_of(opts), jobs=opts.jobs,
                        backend=opts.resolve_backend(),
                        client=self._client_of(opts),
                        timeout=opts.timeout, progress=progress)

    def spectre(self, prog, *, sew: Optional[int] = None,
                untrusted: Optional[tuple] = None):
        """Run the speculative-safety analysis on one program.

        Returns the (possibly empty) list of
        :class:`~repro.robust.spectre.SpectreFinding` records.  Knobs
        default to the session heuristics' ``spectre_sew`` /
        ``spectre_untrusted`` / ``spectre_fence`` fields.
        """
        from .robust.spectre import SpectreConfig, analyze_program

        config = SpectreConfig(
            untrusted=(tuple(untrusted) if untrusted is not None
                       else tuple(self.heur.spectre_untrusted)),
            sew=self.heur.spectre_sew if sew is None else sew,
            mode="fence" if self.heur.spectre_fence else "suppress")
        with _trace.span("spectre.analyze", program=prog.name,
                         sew=config.sew):
            return analyze_program(prog, config)

    # -- reporting ---------------------------------------------------------

    def cache_stats(self) -> Optional[dict]:
        """The artifact cache's stats snapshot (None when caching is off)."""
        return self.cache.stats() if self.cache is not None else None

    def __repr__(self) -> str:
        where = (f"remote={self.remote!r}, tenant={self.tenant!r}"
                 if self.remote is not None else f"jobs={self.jobs}")
        return (f"Session({where}, "
                f"cache={'on' if self.cache else 'off'}, "
                f"trace={self.trace_path!r}, metrics={self.metrics})")
