"""The unified experiment front door: :class:`Session`.

After PRs 1–3 the repository had four overlapping ways to run an
experiment (``eval.run_benchmark``, ``eval.run_suite``,
``engine.run_sweep``, ``qa.run_campaign``), each with slightly different
signatures for the same knobs.  A :class:`Session` holds those knobs
once — heuristics, machine-config overrides, artifact cache, worker
count, step budget, and the observability sinks — and exposes one method
per experiment kind, all delegating to the existing implementations (so
results are byte-identical to the legacy free functions, which now warn
via :mod:`repro._deprecation`).

Usage::

    from repro.api import Session

    with Session(jobs=4, cache=True, trace_path="trace.jsonl") as s:
        runs = s.run_suite(scale=0.3)
        campaign = s.fuzz(budget=50, seed=0)

A session can also point at a running evaluation service
(``repro serve``) instead of the local pool — ``Session(remote="http://
host:8732", tenant="alice")`` routes ``run_suite`` / ``sweep`` /
``fuzz`` through :mod:`repro.serve` with byte-identical results.

Entering the session installs the JSONL tracer (when ``trace_path`` is
set) and enables the metrics registry (when ``metrics=True``); exiting
restores both, so observability state never leaks across sessions.  The
CLI builds exactly one Session per invocation, which is what makes
``--jobs/--cache-dir/--no-cache/--trace`` behave identically across
``verify``, ``tables``, ``sweep``, and ``fuzz``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Union

from ._deprecation import resolve_impl
from .core.heuristics import DEFAULT_HEURISTICS, FeedbackHeuristics
from .engine.suite import CacheLike, coerce_cache
from .obs import metrics as _metrics
from .obs import trace as _trace


class Session:
    """One configured experiment context (see module docstring).

    Construction only records configuration; :meth:`start` (or entering
    the context manager) activates the observability sinks.  Running
    methods outside the context works too — they just run untraced
    unless a tracer is already installed.
    """

    def __init__(self,
                 heur: FeedbackHeuristics = DEFAULT_HEURISTICS,
                 config_overrides: Optional[dict] = None,
                 cache: CacheLike = None,
                 jobs: int = 1,
                 max_steps: int = 50_000_000,
                 strict: bool = False,
                 timeout: Optional[float] = None,
                 trace_path: Optional[Union[str, Path]] = None,
                 metrics: bool = False,
                 remote: Optional[str] = None,
                 tenant: str = "default",
                 backend: Optional[str] = None):
        from .fastsim.backend import resolve_backend

        self.heur = heur
        self.config_overrides = dict(config_overrides or {})
        self.cache = coerce_cache(cache)
        self.jobs = jobs
        self.max_steps = max_steps
        self.strict = strict
        self.timeout = timeout
        self.trace_path = trace_path
        self.metrics = metrics
        self.remote = remote
        self.tenant = tenant
        #: Execution backend of every experiment this session runs:
        #: "reference" or "fast" (repro.fastsim).  None at construction
        #: defers to the REPRO_BACKEND environment variable.
        self.backend = resolve_backend(backend)
        self._tracer: Optional[_trace.Tracer] = None
        self._client = None

    @property
    def client(self):
        """The session's :class:`~repro.serve.ServeClient` (remote only)."""
        if self.remote is None:
            return None
        if self._client is None:
            from .serve import ServeClient

            self._client = ServeClient(self.remote, tenant=self.tenant)
        return self._client

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Session":
        """Activate the observability sinks (idempotent)."""
        if self.trace_path is not None and self._tracer is None:
            self._tracer = _trace.Tracer(self.trace_path)
            _trace.install(self._tracer)
        if self.metrics:
            _metrics.metrics_enable()
        return self

    def close(self) -> None:
        """Deactivate and flush the observability sinks (idempotent)."""
        if self._tracer is not None:
            if _trace.active_tracer() is self._tracer:
                _trace.uninstall()
            self._tracer.close()
            self._tracer = None
        if self.metrics:
            _metrics.metrics_disable()

    def __enter__(self) -> "Session":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- experiments -------------------------------------------------------

    def run_benchmark(self, name: str, prog, *,
                      max_steps: Optional[int] = None,
                      strict: Optional[bool] = None):
        """Run every evaluation scheme on one program (serial, uncached)."""
        from .eval import runner as _runner

        fn = resolve_impl(_runner.run_benchmark)
        extra = {"backend": self.backend} \
            if self.backend != "reference" else {}
        return fn(name, prog, heur=self.heur,
                  config_overrides=self.config_overrides or None,
                  max_steps=self.max_steps if max_steps is None
                  else max_steps,
                  strict=self.strict if strict is None else strict,
                  **extra)

    def run_suite(self, scale: float = 1.0, *,
                  benchmarks: Optional[dict] = None,
                  progress: Optional[Callable[[str], None]] = None,
                  seed: Optional[int] = None,
                  max_steps: Optional[int] = None,
                  strict: Optional[bool] = None):
        """Run the full suite through the session's cache and pool.

        With ``remote=`` set, the suite routes through the evaluation
        service instead (byte-identical results; see
        :func:`repro.serve.client.remote_run_suite`).
        """
        if self.remote is not None:
            from .serve.client import remote_run_suite

            return remote_run_suite(
                self.client, scale=scale, heur=self.heur,
                benchmarks=benchmarks,
                config_overrides=self.config_overrides or None,
                progress=progress,
                max_steps=self.max_steps if max_steps is None else max_steps,
                timeout=self.timeout, seed=seed, backend=self.backend)
        from .engine import suite as _suite

        return _suite.run_suite(
            scale=scale, heur=self.heur, benchmarks=benchmarks,
            config_overrides=self.config_overrides or None,
            progress=progress,
            max_steps=self.max_steps if max_steps is None else max_steps,
            strict=self.strict if strict is None else strict,
            jobs=self.jobs, cache=self.cache, timeout=self.timeout,
            seed=seed, backend=self.backend)

    def sweep(self, spec, *,
              progress: Optional[Callable[[str], None]] = None):
        """Evaluate a :class:`~repro.engine.sweep.SweepSpec` grid.

        With ``remote=`` set, every point's suite rides the service
        queue (overlapping points and tenants share executions).
        """
        if self.remote is not None:
            from .serve.client import remote_run_sweep

            return remote_run_sweep(self.client, spec, progress=progress,
                                    timeout=self.timeout,
                                    backend=self.backend)
        from .engine import sweep as _sweep

        fn = resolve_impl(_sweep.run_sweep)
        extra = {"backend": self.backend} \
            if self.backend != "reference" else {}
        return fn(spec, jobs=self.jobs, cache=self.cache,
                  progress=progress, timeout=self.timeout, **extra)

    def fuzz(self, cfg=None, *,
             progress: Optional[Callable[[str], None]] = None, **kw):
        """Run a differential fuzzing campaign.

        Pass a full :class:`~repro.qa.campaign.CampaignConfig` as *cfg*,
        or keyword fields for one — the session supplies ``jobs`` and
        ``cache`` unless overridden.
        """
        from .qa import campaign as _campaign

        if cfg is None:
            kw.setdefault("jobs", self.jobs)
            kw.setdefault("cache", self.cache)
            cfg = _campaign.CampaignConfig(**kw)
        executor = None
        if self.remote is not None:
            from .serve.client import remote_fuzz_executor

            executor = remote_fuzz_executor(self.client)
        fn = resolve_impl(_campaign.run_campaign)
        return fn(cfg, progress=progress, executor=executor)

    def spectre(self, prog, *, sew: Optional[int] = None,
                untrusted: Optional[tuple] = None):
        """Run the speculative-safety analysis on one program.

        Returns the (possibly empty) list of
        :class:`~repro.robust.spectre.SpectreFinding` records.  Knobs
        default to the session heuristics' ``spectre_sew`` /
        ``spectre_untrusted`` / ``spectre_fence`` fields.
        """
        from .robust.spectre import SpectreConfig, analyze_program

        config = SpectreConfig(
            untrusted=(tuple(untrusted) if untrusted is not None
                       else tuple(self.heur.spectre_untrusted)),
            sew=self.heur.spectre_sew if sew is None else sew,
            mode="fence" if self.heur.spectre_fence else "suppress")
        with _trace.span("spectre.analyze", program=prog.name,
                         sew=config.sew):
            return analyze_program(prog, config)

    # -- reporting ---------------------------------------------------------

    def cache_stats(self) -> Optional[dict]:
        """The artifact cache's stats snapshot (None when caching is off)."""
        return self.cache.stats() if self.cache is not None else None

    def __repr__(self) -> str:
        where = (f"remote={self.remote!r}, tenant={self.tenant!r}"
                 if self.remote is not None else f"jobs={self.jobs}")
        return (f"Session({where}, "
                f"cache={'on' if self.cache else 'off'}, "
                f"trace={self.trace_path!r}, metrics={self.metrics})")
