"""The ingest mid-level IR: functions of labeled basic blocks.

Both front ends (the Bril-like source parser and the JSONL trace reader)
produce the same tiny IR — :class:`Function` of :class:`Block` of
:class:`Op` — which the lowering pass turns into an
:class:`~repro.isa.program.Program`.  The IR is deliberately minimal: one
function, int/bool values (bools are 0/1 ints), explicit terminators, no
fallthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Value-producing ops and their argument counts.
VALUE_OPS: dict[str, int] = {
    "const": 0, "id": 1, "not": 1,
    "add": 2, "sub": 2, "mul": 2, "div": 2,
    "eq": 2, "ne": 2, "lt": 2, "gt": 2, "le": 2, "ge": 2,
    "and": 2, "or": 2,
}

#: Effect ops: argument count and label count.
EFFECT_OPS: dict[str, tuple[int, int]] = {
    "jmp": (0, 1), "br": (1, 2), "ret": (0, 0),
    "print": (1, 0), "nop": (0, 0),
}

#: Ops that must terminate a block.
TERMINATORS = ("jmp", "br", "ret")

#: Admissible value types.
TYPES = ("int", "bool")


@dataclass(frozen=True)
class Op:
    """One ingest instruction.

    ``lineno`` is provenance, not identity: two ops parsed from different
    lines still compare equal, which is what the parse → print → parse
    round-trip property asserts.
    """

    op: str
    dest: Optional[str] = None
    type: Optional[str] = None          # "int" | "bool" (value ops only)
    args: tuple[str, ...] = ()
    labels: tuple[str, ...] = ()        # jmp/br targets (with leading dot)
    value: Optional[int] = None         # const payload (bools are 0/1)
    lineno: int = field(default=0, compare=False)

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS


@dataclass
class Block:
    """A labeled basic block; the last op is always a terminator."""

    label: str                           # with the leading dot: ".loop"
    ops: list[Op] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Op]:
        return self.ops[-1] if self.ops and self.ops[-1].is_terminator \
            else None


@dataclass
class Function:
    """One imported function; the first block is the entry."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    def block_labels(self) -> list[str]:
        return [b.label for b in self.blocks]

    def variables(self) -> list[str]:
        """Every variable, in order of first mention (defs and uses)."""
        seen: dict[str, None] = {}
        for b in self.blocks:
            for op in b.ops:
                if op.dest is not None:
                    seen.setdefault(op.dest, None)
                for a in op.args:
                    seen.setdefault(a, None)
        return list(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return (self.name == other.name
                and [(b.label, b.ops) for b in self.blocks]
                == [(b.label, b.ops) for b in other.blocks])
