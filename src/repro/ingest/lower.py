"""Lowering: ingest :class:`Function` → :class:`repro.isa.program.Program`.

The pass is deliberately naive — it is a *front end*, not a compiler; the
interesting transformations (splitting, guarding, melding, speculation)
happen downstream in :mod:`repro.core.pipeline` exactly as they do for
the synthetic workloads.  Lowering rules (see docs/INGEST.md):

* variables get one integer register each, ``r1``..``r26`` in order of
  first mention; more variables than that raises
  :class:`RegisterPressureError` (a spiller is out of scope).
* ``r27`` is the output pointer, initialised to the conventional
  ``OUT_BASE``; ``print x`` becomes ``sw``-then-bump, so imported
  programs leave the same memory-resident footprint the synthetic
  workloads do and the functional simulator diff-checks apply unchanged.
* block ``.foo`` becomes asm label ``b_foo``; ``br c .t .e`` becomes
  ``bnez``+``j`` (the ``j`` is elided when ``.e`` is the next block in
  layout order, so trace-derived hot-path layouts really do fall
  through); ``ret`` becomes ``halt``.

The emitted text goes through the real :func:`repro.isa.parser.parse` and
the :mod:`repro.robust` verifier; any violation is re-raised as
:class:`LowerError` — the front end never hands the engine an unverified
program.

Cache safety: the program's name embeds a content hash of the import
source (``name@ab12cd34ef56``).  The engine keys cells by
``Program.to_dict()`` *and* benchmark name, so two different imported
files can never alias each other's — or a synthetic workload's — cache
cells, even if a user names them identically.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from ..isa.parser import ParseError, parse
from ..isa.program import Program
from ..robust.verifier import verify_program
from ..workloads.common import OUT_BASE
from .errors import LowerError, RegisterPressureError
from .model import Function
from .source import parse_source
from .trace import parse_trace

#: Registers handed to variables, in allocation order.  r0 is the zero
#: register, r27 the output pointer, r28 scratch headroom for downstream
#: transforms, r29-r31 reserved by the ABI (see isa.registers).
ALLOCATABLE = tuple(f"r{i}" for i in range(1, 27))

#: Compare ops → native set-style compare opcodes.
_CMP = {"eq": "seq", "ne": "sne", "lt": "slt",
        "gt": "sgt", "le": "sle", "ge": "sge"}

#: Straight-through three-register arithmetic.
_ARITH = {"add": "add", "sub": "sub", "mul": "mul", "div": "div",
          "and": "and", "or": "or"}


def allocate_registers(fn: Function) -> dict[str, str]:
    """Map every variable to a register, first mention first.

    Raises :class:`RegisterPressureError` when the function has more
    live names than :data:`ALLOCATABLE` registers.
    """
    variables = fn.variables()
    if len(variables) > len(ALLOCATABLE):
        raise RegisterPressureError(
            f"function @{fn.name} has {len(variables)} variables but only "
            f"{len(ALLOCATABLE)} allocatable registers "
            f"({ALLOCATABLE[0]}..{ALLOCATABLE[-1]}); "
            f"spilling is not supported",
            variables=len(variables), available=len(ALLOCATABLE))
    return dict(zip(variables, ALLOCATABLE))


def _asm_label(label: str) -> str:
    return "b_" + label.lstrip(".")


def lower_function(fn: Function) -> str:
    """Emit assembly text for *fn* (no parsing/verification — see
    :func:`import_source` for the checked entry point)."""
    regs = allocate_registers(fn)
    lines = [f"# lowered from ingest function @{fn.name}",
             "main:",
             f"    li r27, {OUT_BASE:#x}"]
    layout = fn.block_labels()
    for i, block in enumerate(fn.blocks):
        nxt = layout[i + 1] if i + 1 < len(layout) else None
        lines.append(f"{_asm_label(block.label)}:")
        for op in block.ops:
            lines.extend("    " + t for t in _lower_op(op, regs, nxt))
    return "\n".join(lines) + "\n"


def _lower_op(op, regs: dict[str, str], next_label: Optional[str]) \
        -> list[str]:
    a = [regs[x] for x in op.args]
    if op.op == "const":
        return [f"li {regs[op.dest]}, {op.value}"]
    if op.op == "id":
        return [f"mov {regs[op.dest]}, {a[0]}"]
    if op.op == "not":
        return [f"seq {regs[op.dest]}, {a[0]}, r0"]
    if op.op in _ARITH:
        return [f"{_ARITH[op.op]} {regs[op.dest]}, {a[0]}, {a[1]}"]
    if op.op in _CMP:
        return [f"{_CMP[op.op]} {regs[op.dest]}, {a[0]}, {a[1]}"]
    if op.op == "print":
        return [f"sw {a[0]}, 0(r27)", "addi r27, r27, 4"]
    if op.op == "jmp":
        return [f"j {_asm_label(op.labels[0])}"]
    if op.op == "br":
        then_l, else_l = op.labels
        out = [f"bnez {a[0]}, {_asm_label(then_l)}"]
        if else_l != next_label:
            out.append(f"j {_asm_label(else_l)}")
        return out
    if op.op == "ret":
        return ["halt"]
    if op.op == "nop":
        return ["nop"]
    raise LowerError(f"no lowering for op {op.op!r}", op.lineno)


def _finish(fn: Function, source_text: str) -> Program:
    """Lower, parse, verify; name embeds the source content hash."""
    digest = hashlib.sha256(source_text.encode()).hexdigest()[:12]
    asm = lower_function(fn)
    try:
        prog = parse(asm, name=f"{fn.name}@{digest}")
    except ParseError as exc:  # a lowering bug, surfaced as our error
        raise LowerError(f"lowered assembly does not parse: {exc}") from exc
    violations = verify_program(prog)
    if violations:
        raise LowerError(
            "lowered program fails IR verification: "
            + "; ".join(str(v) for v in violations[:3]))
    prog.validate()
    return prog


def import_source(text: str) -> Program:
    """Parse + lower + verify one Bril-like source text."""
    return _finish(parse_source(text), text)


def import_trace(text: str) -> Program:
    """Parse + lower + verify one JSONL basic-block trace."""
    return _finish(parse_trace(text), text)


#: Recognised file suffixes → front end.
SUFFIXES = {".bril": import_source, ".trace.jsonl": import_trace,
            ".jsonl": import_trace}


def import_path(path: Union[str, Path]) -> Program:
    """Import one file, dispatching on its suffix (see :data:`SUFFIXES`)."""
    p = Path(path)
    name = p.name
    for suffix, front in SUFFIXES.items():
        if name.endswith(suffix):
            return front(p.read_text())
    raise LowerError(
        f"unknown import suffix on {name!r} "
        f"(expected one of {', '.join(SUFFIXES)})")
