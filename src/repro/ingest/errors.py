"""Structured ingest errors: every front-end failure is a located fact.

The import front end is the first part of the system that consumes
*untrusted* input (third-party sources and traces), so its failure mode is
part of its API: a malformed input must produce a :class:`IngestError`
subclass carrying the offending line number and text — never a raw
traceback from deep inside the lowering machinery.  The adversarial-input
tests in ``tests/ingest/test_errors.py`` pin exactly this contract,
mirroring the :class:`repro.isa.parser.ParseError` idiom.
"""

from __future__ import annotations

from typing import Optional


class IngestError(ValueError):
    """Base class: a located, user-readable import failure."""

    def __init__(self, message: str, lineno: Optional[int] = None,
                 line: Optional[str] = None):
        self.message = message
        self.lineno = lineno
        self.line = line
        loc = f"line {lineno}: " if lineno is not None else ""
        text = f"{loc}{message}"
        if line:
            text += f"\n    {line.strip()}"
        super().__init__(text)


class SourceError(IngestError):
    """The Bril-like source text violated the grammar or its invariants."""


class TraceError(IngestError):
    """A basic-block trace line was malformed or inconsistent."""


class LowerError(IngestError):
    """Lowering produced a program the robust IR verifier rejects."""


class RegisterPressureError(LowerError):
    """The program's variables overflow the allocatable register file."""

    def __init__(self, message: str, variables: int, available: int):
        self.variables = variables
        self.available = available
        super().__init__(message)
